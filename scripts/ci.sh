#!/usr/bin/env bash
# Offline CI gate for the simdize workspace.
#
# Everything runs with `--offline`: the repo has no external
# dependencies, and CI must never reach for the network. The root
# `cargo build`/`cargo test` pair is the tier-1 gate; the rest of the
# script widens it to the full workspace (bench + cli are not in the
# root package's dependency graph), lints with clippy at -D warnings,
# builds rustdoc with warnings denied (every crate warns on
# missing_docs), re-runs the simd-backend differential matrix forced to
# the SSE2 tier, runs the doctests, builds the examples, checks that
# the generated worked-example docs are current,
# and finishes with an end-to-end smoke sweep through the CLI binary:
# eight seeds of Figure 1 compiled by the native engine and verified
# against the scalar oracle on four worker threads (with telemetry
# collection on), an instrumented `simdize profile` pass, a
# request-scoped `simdize trace` export (JSON + Chrome trace events),
# the disabled-instrumentation overhead gate, a server smoke that
# checks trace-id echoing, the flight recorder's dump verb and the
# Prometheus /metrics endpoint, the engine
# bench harness in quick mode (floors: engine >= 5x the interpreter,
# fused >= 1.3x unfused on reorg-dominated kernels), a
# `simdize bench diff` of that quick run against the checked-in
# bench-history baseline at a deliberately generous threshold, and the
# bounded-equivalence prover: a quick proof of every sample loop plus
# the mutate-and-catch meta-test (an injected off-by-one must be
# caught and shrunk to a replayable counterexample).

set -euo pipefail
cd "$(dirname "$0")/.."

# Scratch space for smoke artifacts (bench history entries, serve logs,
# chrome traces); CI never dirties the checked-in bench_history/.
BENCH_TMP=$(mktemp -d)
trap 'rm -rf "$BENCH_TMP"' EXIT

echo "== build (release, workspace) =="
cargo build --release --offline --workspace

echo "== test (tier-1: root package) =="
cargo test -q --offline

echo "== test (release, workspace) =="
cargo test -q --release --offline --workspace

echo "== simd backend differential matrix, forced to the SSE2 tier =="
# The host probably dispatches AVX2, so the plain test runs above cover
# that tier; forcing SIMDIZE_ISA=sse2 re-runs the full policy x
# alignment x trip matrix through the baseline tier's synthesized
# shift/splice/perm sequences. (The override can only lower the tier,
# so this is safe on any x86_64 host.)
SIMDIZE_ISA=sse2 cargo test -q --release --offline --test simd_native

echo "== clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== docs (rustdoc builds cleanly, doctests pass) =="
# Every crate carries #![warn(missing_docs)]; promote rustdoc warnings
# to errors so public items cannot ship undocumented.
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --no-deps --workspace
cargo test -q --offline --doc --workspace

echo "== examples build =="
cargo build -q --release --offline --examples

echo "== worked-example docs are current =="
# Regenerates docs/worked-examples/ into a temp dir and diffs against
# the checked-in pages; any drift fails CI (see scripts/gen-docs.sh).
# The matrix includes the optimal-policy pages, so a placement change
# that shifts a proven minimum fails here.
scripts/gen-docs.sh --check

echo "== optimality study table is current =="
# Re-runs the full greedy-vs-optimal study (deterministic, placement
# only — no execution) and diffs the summary table embedded in
# docs/POLICIES.md; drift fails CI (see crates/bench/src/bin/study.rs).
target/release/study --check-docs

echo "== optimal placement proves on every sample loop =="
# The full verify matrix below already includes optimal among its
# policies; this focused pass pins the domain to the exact search so a
# regression in it cannot hide behind the greedy configs.
for loop in loops/*.loop; do
    target/release/simdize verify "$loop" --quick --policy optimal \
        | grep -q '^PROVED:' \
        || { echo "verify --policy optimal: $loop did not prove" >&2; exit 1; }
done

echo "== smoke sweep (native engine, 8 seeds, telemetry on) =="
target/release/simdize sweep loops/figure1.loop --smoke --jobs 4 --telemetry

echo "== profile smoke (span tree + versioned telemetry JSON) =="
target/release/simdize profile loops/figure1.loop > /dev/null
target/release/simdize profile loops/figure1.loop --json \
    | grep -q '"schema":"simdize-telemetry/v1"'

echo "== trace smoke (request-scoped export + chrome trace events) =="
# The byte-exact normalized form is pinned by the tier-1 golden
# (tests/trace.rs, regenerate with UPDATE_GOLDEN=1); this smoke drives
# the release binary: schema-versioned JSON on stdout and a loadable
# chrome://tracing file via --chrome-out.
target/release/simdize trace loops/figure1.loop > /dev/null
target/release/simdize trace loops/figure1.loop --json \
    | grep -q '"schema":"simdize-trace/v1"'
target/release/simdize trace loops/figure1.loop \
    --chrome-out "$BENCH_TMP/chrome-trace.json" > /dev/null
grep -q '"traceEvents":\[' "$BENCH_TMP/chrome-trace.json"
grep -q '"ph":"X"' "$BENCH_TMP/chrome-trace.json"

echo "== telemetry disabled-overhead gate (<2% of a kernel run) =="
# Run the timing-sensitive gate alone (--exact): the concurrent
# request-scope stress test in the same binary would otherwise enable
# collection mid-measurement.
TELEMETRY_OVERHEAD=1 cargo test -q --release --offline --test telemetry \
    -- --exact disabled_instrumentation_overhead_under_two_percent

echo "== bench smoke (engine telemetry, quick mode) =="
# Re-measures engine-vs-interpreter and fused-vs-unfused on reduced
# trip counts; exits non-zero if the fused engine is under 5x the
# interpreter or a gated kernel loses its fusion gain. Both the bench
# document and the history entry go to scratch — the checked-in
# BENCH_engine.json stays the full-mode baseline — and the history
# entry gets its own subdir so other smoke artifacts (e.g. the chrome
# trace) can't shadow it.
target/release/engine --quick --floor 5 --out "$BENCH_TMP/BENCH_engine.json" --history-dir "$BENCH_TMP/engine_hist"

echo "== bench history diff (fresh quick run vs checked-in baseline) =="
# Generous threshold: quick-mode numbers on a loaded CI machine wobble;
# this smoke only guards against order-of-magnitude collapses and
# proves the diff pipeline end to end. The history now carries two
# schemas (engine and server), so each diff picks its baseline by
# schema, not just recency.
baseline=$(grep -l '"schema": "simdize-bench-engine/v1"' bench_history/*.json | tail -1)
fresh=$(ls "$BENCH_TMP"/engine_hist/*.json | tail -1)
target/release/simdize bench diff "$baseline" "$fresh" --threshold 0.9

echo "== server smoke (serve round-trip, trace ids, dump, /metrics) =="
# Boots `simdize serve` on port 0 with the metrics endpoint on a second
# ephemeral port, drives a compile/run/sweep/stats/trace/dump round-trip
# over /dev/tcp (every response must echo a trace id), scrapes the
# Prometheus exposition, then requests shutdown and insists on a clean
# exit. The loop source is quote-free so it embeds in the JSON request
# lines without escaping.
target/release/simdize serve 127.0.0.1:0 --metrics-addr 127.0.0.1:0 \
    > "$BENCH_TMP/serve.log" &
serve_pid=$!
for _ in $(seq 1 200); do
    grep -q '^metrics on ' "$BENCH_TMP/serve.log" && break
    sleep 0.05
done
addr=$(sed -n 's/^listening on //p' "$BENCH_TMP/serve.log")
port=${addr##*:}
maddr=$(sed -n 's/^metrics on //p' "$BENCH_TMP/serve.log")
mport=${maddr##*:}
src='arrays { a: i32[64] @ 0; b: i32[64] @ 4; } for i in 0..40 { a[i+1] = b[i]; }'
exec 3<>"/dev/tcp/127.0.0.1/$port"
{
    printf '{"v":1,"id":1,"cmd":"compile","source":"%s"}\n' "$src"
    printf '{"v":1,"id":2,"cmd":"run","source":"%s","seed":7}\n' "$src"
    printf '{"v":1,"id":3,"cmd":"sweep","source":"%s","count":4}\n' "$src"
    printf '{"v":1,"id":4,"cmd":"trace","source":"%s"}\n' "$src"
    printf '{"v":1,"id":5,"cmd":"stats"}\n'
    printf '{"v":1,"id":6,"cmd":"dump"}\n'
} >&3
for id in 1 2 3 4 5 6; do
    IFS= read -r line <&3
    echo "$line" | grep -q "\"id\":$id,\"trace\":\"c" \
        || { echo "server smoke: request $id carries no trace id: $line" >&2; exit 1; }
    echo "$line" | grep -q '"ok":true' \
        || { echo "server smoke: request $id failed: $line" >&2; exit 1; }
    case $id in
        4) echo "$line" | grep -q '"schema":"simdize-trace/v1"' \
            || { echo "server smoke: trace verb missing schema: $line" >&2; exit 1; } ;;
        6) echo "$line" | grep -q '"schema":"simdize-flight/v1"' \
            || { echo "server smoke: dump verb missing schema: $line" >&2; exit 1; } ;;
    esac
done
# Prometheus scrape over /dev/tcp (no curl in the CI image): at least
# one known counter must expose with a live value.
exec 4<>"/dev/tcp/127.0.0.1/$mport"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&4
metrics=$(cat <&4)
exec 4<&- 4>&-
echo "$metrics" | grep -q '# TYPE simdize_server_requests_total counter' \
    || { echo "server smoke: /metrics missing requests counter" >&2; exit 1; }
echo "$metrics" | grep -Eq 'simdize_server_requests_total [1-9][0-9]*' \
    || { echo "server smoke: /metrics requests counter not live" >&2; exit 1; }
printf '{"v":1,"id":7,"cmd":"shutdown"}\n' >&3
IFS= read -r line <&3
echo "$line" | grep -q '"stopping":true' \
    || { echo "server smoke: shutdown failed: $line" >&2; exit 1; }
exec 3<&- 3>&-
wait "$serve_pid"
grep -Eq 'served [0-9]+ request' "$BENCH_TMP/serve.log" \
    || { echo "server smoke: missing serve summary" >&2; exit 1; }

echo "== loadgen smoke (quick mode vs checked-in server baseline) =="
# 64 concurrent connections against an in-process server; writes the
# simdize-bench-server/v1 document and diffs it against the checked-in
# baseline at the same generous threshold as the engine bench.
target/release/loadgen --quick --out "$BENCH_TMP/BENCH_server.json" --history-dir "$BENCH_TMP/server_hist"
server_baseline=$(grep -l '"schema": "simdize-bench-server/v1"' bench_history/*.json | tail -1)
server_fresh=$(ls "$BENCH_TMP"/server_hist/*.json | tail -1)
target/release/simdize bench diff "$server_baseline" "$server_fresh" --threshold 0.9

echo "== static analysis (all sample loops) =="
for loop in loops/*.loop; do
    target/release/simdize analyze "$loop"
done
target/release/simdize analyze loops/figure1.loop --reuse pc --policy lazy --json

echo "== explain smoke (decision traces render in all three formats) =="
target/release/simdize explain loops/figure1.loop > /dev/null
target/release/simdize explain loops/figure1.loop --policy zero --json > /dev/null
target/release/simdize explain loops/runtime.loop --policy eager --markdown > /dev/null

echo "== bounded verification (quick proofs over every sample loop) =="
# The --quick domain still crosses alignments x policies x trip
# regimes; a non-PROVED verdict (violation or 0 compiled units) means
# the prover or the pipeline regressed. Every proof must include the
# intrinsics backend (harness_native_equiv with a non-zero run count),
# so a silently skipped native harness also fails CI.
for loop in loops/*.loop; do
    report=$(target/release/simdize verify "$loop" --quick)
    echo "$report" | grep -q '^PROVED:' \
        || { echo "verify: $loop did not prove" >&2; exit 1; }
    echo "$report" | grep -q 'harness_native_equiv: [1-9][0-9]* runs' \
        || { echo "verify: $loop proof skipped the intrinsics backend" >&2; exit 1; }
done
target/release/simdize verify loops/figure1.loop --quick --json \
    | grep -q '"schema":"simdize-verify/v1"'

echo "== mutate-and-catch (an injected fault must fail with a replay) =="
# Meta-test of the prover itself: a seeded off-by-one in the generated
# code must produce a non-zero exit and a shrunk counterexample with a
# replayable `simdize run` command line.
if target/release/simdize verify loops/figure1.loop --quick --mutate splice \
    > "$BENCH_TMP/mutate.log" 2>&1; then
    echo "mutate-and-catch: injected mutation went uncaught" >&2; exit 1
fi
grep -q '| simdize run -' "$BENCH_TMP/mutate.log" \
    || { echo "mutate-and-catch: no replayable counterexample" >&2
         cat "$BENCH_TMP/mutate.log" >&2; exit 1; }

echo "== ci OK =="
