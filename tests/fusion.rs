//! Differential tests for the engine's trace fusion pass: a fused
//! kernel must be byte-for-byte and stat-for-stat identical to its
//! unfused twin across the full policy × reuse × alignment matrix
//! (fusion is a pure execution-plan optimization — [`RunStats`] are
//! fixed analytically before it runs), and the fused plan for the
//! paper's Figure 1 loop is pinned by a golden trace snapshot.
//!
//! [`RunStats`]: simdize::RunStats

use simdize::{
    KernelOptions, MemoryImage, Policy, PredecodedKernel, ReuseMode, RunInput, SimdizeError,
    Simdizer, VectorShape,
};

const REUSES: [ReuseMode; 3] = [
    ReuseMode::None,
    ReuseMode::SoftwarePipeline,
    ReuseMode::PredictiveCommoning,
];

/// The same two alignment regimes the engine differential matrix uses:
/// compile-time misaligned arrays, and runtime alignments with a
/// runtime trip count.
const MISALIGNED: &str = "arrays { a: i32[256] @ 12; b: i32[256] @ 4; c: i32[256] @ 8; }
                          for i in 0..200 { a[i+1] = b[i+3] + c[i+2]; }";
const RUNTIME: &str = "arrays { a: i32[256] @ ?; b: i32[256] @ ?; c: i32[256] @ ?; }
                       for i in 0..ub { a[i+1] = b[i+3] + c[i+2]; }";

#[test]
fn fused_matches_unfused_across_policy_reuse_alignment_matrix() {
    let mut combos = 0;
    for (src, ub) in [(MISALIGNED, 200u64), (RUNTIME, 197)] {
        let program = simdize::parse_program(src).unwrap();
        for policy in Policy::ALL {
            for reuse in REUSES {
                let compiled = match Simdizer::new()
                    .policy(policy)
                    .reuse(reuse)
                    .compile(&program)
                {
                    Ok(c) => c,
                    // Some policies legitimately reject some loops
                    // (e.g. dominant-alignment needs a dominant one).
                    Err(SimdizeError::Policy(_)) => continue,
                    Err(e) => panic!("{policy}/{reuse:?}: {e}"),
                };
                let pre = PredecodedKernel::new(&compiled).unwrap();
                for seed in [2, 11, 2004] {
                    let input = RunInput::with_ub(ub);
                    let mut fused_img =
                        MemoryImage::with_seed(&program, VectorShape::V16, seed);
                    let mut unfused_img = fused_img.clone();
                    let fused = pre
                        .bake(&fused_img, &input, &KernelOptions::new())
                        .unwrap();
                    let unfused = pre
                        .bake(&unfused_img, &input, &KernelOptions::new().fuse(false))
                        .unwrap();
                    // Stats are finalized before fusion, so the two
                    // plans must *promise* the same counts...
                    assert_eq!(
                        fused.stats(),
                        unfused.stats(),
                        "{policy}/{reuse:?} seed {seed}: baked stats diverged"
                    );
                    // ...and report them identically after running.
                    let got = fused.run(&mut fused_img).unwrap();
                    let want = unfused.run(&mut unfused_img).unwrap();
                    assert_eq!(got, want, "{policy}/{reuse:?} seed {seed}: run stats diverged");
                    assert_eq!(
                        fused_img.first_difference(&unfused_img),
                        None,
                        "{policy}/{reuse:?} seed {seed}: memory diverged"
                    );
                    combos += 1;
                }
            }
        }
    }
    assert!(combos >= 36, "matrix too sparse: only {combos} combinations ran");
}

#[test]
fn fusion_fires_on_every_policy_for_the_misaligned_loop() {
    // The matrix above proves fusion is *safe*; this proves it is not
    // vacuous. MISALIGNED is *relatively* aligned (offset plus index
    // cancel mod 16 for every reference) so it compiles shift-free;
    // this loop keeps all three streams at distinct alignments and
    // must produce load+shift chains for the pass to collapse.
    let program = simdize::parse_program(
        "arrays { a: i32[256] @ 0; b: i32[256] @ 0; c: i32[256] @ 0; }
         for i in 0..200 { a[i+1] = b[i+3] + c[i+2]; }",
    )
    .unwrap();
    let img = MemoryImage::with_seed(&program, VectorShape::V16, 7);
    for policy in [Policy::Zero, Policy::Eager, Policy::Lazy] {
        let compiled = Simdizer::new()
            .policy(policy)
            .reuse(ReuseMode::SoftwarePipeline)
            .compile(&program)
            .unwrap();
        let pre = PredecodedKernel::new(&compiled).unwrap();
        let kernel = pre
            .bake(&img, &RunInput::with_ub(200), &KernelOptions::new())
            .unwrap();
        let stats = kernel.fusion_stats();
        assert!(stats.fused_loads > 0, "{policy}: no loads fused");
        assert!(stats.eliminated > 0, "{policy}: nothing eliminated");
    }
}

/// Pins the fused execution plan for the paper's Figure 1 loop under
/// the zero-shift policy with software pipelining — the fused twin of
/// `golden_disassembly_for_figure1_zero_sp` in `tests/engine.rs`. Every
/// `load`+`shift` chain collapses into a `vload.fused` at the shifted
/// byte offset, and the software pipeline's rotation copies for the
/// raw load registers die with the shifts (only the computed-value
/// rotation `v17 = v88` survives, feeding the store-side shift). The
/// unrolled pair body drops from 16 ops to 11.
#[test]
fn golden_trace_for_figure1_zero_sp() {
    let program = simdize::parse_program(
        "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
         for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
    )
    .unwrap();
    let compiled = Simdizer::new()
        .policy(Policy::Zero)
        .reuse(ReuseMode::SoftwarePipeline)
        .compile(&program)
        .unwrap();
    let img = MemoryImage::with_seed(&program, VectorShape::V16, 1);
    let kernel = PredecodedKernel::new(&compiled)
        .unwrap()
        .bake(&img, &RunInput::with_ub(100), &KernelOptions::new())
        .unwrap();
    let expected = "\
; trace: V=16 regs=90 fused=true fused-loads=12 splat-ops=0 hoisted=0 eliminated=20
prologue:
  v2 = vload.fused arr1[base-12]
  v5 = vload.fused arr2[base-8]
  v6 = add(v2, v5)
  v9 = vload.fused arr1[base+4]
  v12 = vload.fused arr2[base+8]
  v13 = add(v9, v12)
  v14 = vshiftpair(v6, v13, 4)
  v15 = vload arr0[base+0]
  v16 = vsplice(v15, v14, 12)
  vstore arr0[base+0], v16
  v17 = v13
pair x12:
  v28 = vload.fused arr1[base+20; +32/iter]
  v32 = vload.fused arr2[base+24; +32/iter]
  v33 = add(v28, v32)
  v34 = vshiftpair(v17, v33, 4)
  vstore arr0[base+16; +32/iter], v34
  v85 = vload.fused arr1[base+36; +32/iter]
  v87 = vload.fused arr2[base+40; +32/iter]
  v88 = add(v85, v87)
  v89 = vshiftpair(v33, v88, 4)
  vstore arr0[base+32; +32/iter], v89
  v17 = v88
epilogue:
  v69 = vload.fused arr1[base+388]
  v72 = vload.fused arr2[base+392]
  v73 = add(v69, v72)
  v76 = vload.fused arr1[base+404]
  v79 = vload.fused arr2[base+408]
  v80 = add(v76, v79)
  v81 = vshiftpair(v73, v80, 4)
  v82 = vload arr0[base+400]
  v83 = vsplice(v81, v82, 12)
  vstore arr0[base+400], v83
";
    assert_eq!(kernel.trace(), expected);
}
