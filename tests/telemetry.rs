//! Telemetry tier contract tests: the `simdize-telemetry/v1` document
//! for a Figure 1 profile is golden-pinned (timings normalized), the
//! span tree covers every pipeline phase, and the disabled
//! instrumentation path costs a negligible fraction of a kernel run.

use simdize::{
    parse_program, profile_source, KernelOptions, MemoryImage, PredecodedKernel, RunInput,
    Simdizer, VectorShape, PROFILE_SWEEP_SEEDS,
};
use simdize_telemetry as telemetry;
use simdize_telemetry::json;

fn repo(path: &str) -> String {
    format!("{}/{path}", env!("CARGO_MANIFEST_DIR"))
}

fn figure1() -> String {
    let path = repo("loops/figure1.loop");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {path}: {e}"))
}

/// Pins the normalized `simdize-telemetry/v1` JSON for a Figure 1
/// profile, byte for byte. Counts, tree shape and cache metrics are
/// deterministic on this loop (single worker, compile-time-known
/// alignments); wall-clock fields are normalized to zero. Regenerate
/// after an intentional pipeline change with
/// `UPDATE_GOLDEN=1 cargo test --test telemetry`.
#[test]
fn figure1_profile_json_golden() {
    let outcome = profile_source(&figure1()).unwrap();
    assert!(outcome.verified);
    let json = outcome.report.render_json(true);
    let path = repo("tests/golden/telemetry-figure1.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, format!("{json}\n")).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e} (run with UPDATE_GOLDEN=1)"));
    assert_eq!(
        expected.trim_end(),
        json,
        "telemetry schema drift; if intended, UPDATE_GOLDEN=1 and re-review"
    );
}

/// The acceptance contract, independent of the golden bytes: the JSON
/// document is versioned, its span tree names every pipeline phase,
/// and the sweep-cache counters show the expected one-miss pattern.
#[test]
fn figure1_profile_document_covers_every_phase() {
    let outcome = profile_source(&figure1()).unwrap();
    let doc = json::parse(&outcome.report.render_json(false)).unwrap();
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("simdize-telemetry/v1")
    );
    let spans = doc.get("spans").unwrap().as_arr().unwrap();
    let roots: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(json::Json::as_str))
        .collect();
    for phase in [
        "parse",
        "reorg",
        "codegen",
        "analysis",
        "predecode",
        "bake",
        "run",
        "sweep",
        "sweep.job",
    ] {
        assert!(roots.contains(&phase), "missing phase {phase} in {roots:?}");
    }
    let counters = doc.get("counters").unwrap();
    assert_eq!(
        counters.get("sweep.kernel_cache.miss").unwrap().as_f64(),
        Some(1.0)
    );
    assert_eq!(
        counters.get("sweep.kernel_cache.hit").unwrap().as_f64(),
        Some((PROFILE_SWEEP_SEEDS - 1) as f64)
    );
}

/// Request-scoped collection under contention: 16 threads open their
/// own request scopes behind a barrier, each records a known number of
/// nested spans (exercising the flush-on-stack-empty path) and a
/// same-key tag on every iteration; every finished trace must carry
/// exactly its own records — no loss, no cross-thread leakage — and
/// plain histograms merged across the threads must account for every
/// observation.
#[test]
fn concurrent_request_scopes_collect_exact_counts() {
    use simdize_telemetry::{Histogram, TraceId};
    use std::sync::{Arc, Barrier};
    const THREADS: usize = 16;
    const ITERS: usize = 25;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let scope = telemetry::begin_request(TraceId::next(t as u64 + 1), "stress");
                barrier.wait();
                let mut hist = Histogram::new();
                for i in 0..ITERS {
                    let _outer = telemetry::span("stress.outer");
                    let _inner = telemetry::span("stress.inner");
                    telemetry::tag("iter", i);
                    hist.observe(i as u64 + 1);
                }
                (scope.finish(None), hist)
            })
        })
        .collect();
    let mut merged = Histogram::new();
    let mut ids = std::collections::HashSet::new();
    for handle in handles {
        let (trace, hist) = handle.join().unwrap();
        assert!(ids.insert(trace.trace_id.clone()), "{}", trace.trace_id);
        // Exactly this thread's records: ITERS outer spans each with
        // one inner child, flushed when the outer guard emptied the
        // thread's span stack.
        assert_eq!(trace.events.len(), ITERS * 2, "{:?}", trace.events);
        assert_eq!(trace.spans.len(), 1);
        let outer = &trace.spans[0];
        assert_eq!((outer.name.as_str(), outer.count), ("stress.outer", ITERS as u64));
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!((inner.name.as_str(), inner.count), ("stress.inner", ITERS as u64));
        // The same-key tag kept the last write.
        assert_eq!(trace.attrs["iter"], (ITERS - 1).to_string());
        merged.merge(&hist);
    }
    // The multi-threaded merge lost nothing: every observation from
    // every thread is accounted for, with exact extremes and sum.
    assert_eq!(merged.count(), (THREADS * ITERS) as u64);
    assert_eq!(merged.max(), ITERS as u64);
    assert_eq!(
        merged.sum(),
        (THREADS * ITERS * (ITERS + 1) / 2) as u64
    );
    // This thread never held a scope, so its context is clear.
    assert!(telemetry::current_context().is_none());
}

/// With telemetry disabled (the default), one instrumentation call is
/// a relaxed atomic load and must cost well under 2% of a Figure 1
/// kernel run. Timing-sensitive, so gated: set `TELEMETRY_OVERHEAD=1`
/// to run it (alone, on a quiet machine).
#[test]
fn disabled_instrumentation_overhead_under_two_percent() {
    if std::env::var_os("TELEMETRY_OVERHEAD").is_none() {
        eprintln!("skipped: set TELEMETRY_OVERHEAD=1 to measure instrumentation overhead");
        return;
    }
    assert!(!telemetry::enabled());
    let program = parse_program(&figure1()).unwrap();
    let compiled = Simdizer::new().compile(&program).unwrap();
    let ub = program.trip().known().unwrap_or(256);
    let input = RunInput::with_ub(ub);
    let image = MemoryImage::with_seed(&program, VectorShape::V16, 1);
    let kernel = PredecodedKernel::new(&compiled)
        .unwrap()
        .bake(&image, &input, &KernelOptions::default())
        .unwrap();

    // Median-of-runs kernel wall time, the denominator.
    let mut runs: Vec<u64> = (0..32)
        .map(|_| {
            let mut img = image.clone();
            let t0 = std::time::Instant::now();
            kernel.run(&mut img).unwrap();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    runs.sort_unstable();
    let run_ns = runs[runs.len() / 2] as f64;

    // Per-call cost of a disabled span — the engine adds one per
    // `CompiledKernel::run`, so this *is* the added overhead.
    const CALLS: u32 = 1_000_000;
    let t0 = std::time::Instant::now();
    for _ in 0..CALLS {
        let _g = telemetry::span("overhead.probe");
    }
    let per_call_ns = t0.elapsed().as_nanos() as f64 / f64::from(CALLS);

    assert!(
        per_call_ns < 0.02 * run_ns,
        "disabled span costs {per_call_ns:.1} ns vs {run_ns:.0} ns kernel run (>= 2%)"
    );
    // Nothing may have been recorded while disabled.
    assert!(telemetry::drain_spans().is_empty());
}
