//! End-to-end pipeline tests spanning all crates: IR → reorganization →
//! policies → code generation → simulated execution → verification.

use simdize::{
    alpha_blend, fir_filter, generate, offset_saxpy, parse_program, run_differential,
    CodegenOptions, DiffConfig, Policy, ReorgGraph, ReuseMode, Scheme, Simdizer, VInst,
    VectorShape,
};

const FIG1: &str = "arrays { a: i32[1024] @ 0; b: i32[1024] @ 0; c: i32[1024] @ 0; }
                    for i in 0..1000 { a[i+3] = b[i+1] + c[i+2]; }";

#[test]
fn all_schemes_verify_and_order_sensibly() {
    let p = parse_program(FIG1).unwrap();
    let mut naive_opd = f64::NEG_INFINITY;
    let mut best_opd = f64::INFINITY;
    for scheme in Scheme::all() {
        let r = Simdizer::new().scheme(scheme).evaluate(&p, 5).unwrap();
        assert!(r.verified, "{scheme}");
        if scheme.reuse == ReuseMode::None {
            naive_opd = naive_opd.max(r.opd);
        } else {
            best_opd = best_opd.min(r.opd);
        }
    }
    // Reuse exploitation must clearly beat the naive generator (the
    // paper reports more than a factor-of-2 gap at the extreme).
    assert!(
        best_opd < naive_opd,
        "reuse ({best_opd}) did not beat naive ({naive_opd})"
    );
}

#[test]
fn sp_and_pc_generate_equally_efficient_loops() {
    // The paper treats software pipelining and predictive commoning as
    // interchangeable ways to exploit the same reuse; our PC pass
    // converges to the SP code shape. Compare dynamic counts.
    for policy in Policy::ALL {
        let p = parse_program(FIG1).unwrap();
        let sp = Simdizer::new()
            .policy(policy)
            .reuse(ReuseMode::SoftwarePipeline)
            .evaluate(&p, 9)
            .unwrap();
        let pc = Simdizer::new()
            .policy(policy)
            .reuse(ReuseMode::PredictiveCommoning)
            .evaluate(&p, 9)
            .unwrap();
        assert_eq!(sp.stats.loads, pc.stats.loads, "{policy}");
        assert_eq!(sp.stats.shifts, pc.stats.shifts, "{policy}");
        assert_eq!(sp.stats.copies, pc.stats.copies, "{policy}");
    }
}

#[test]
fn policy_shift_ranking_on_dynamic_counts() {
    // Figure 11's middle components: dominant introduces no more
    // dynamic shift work than lazy, lazy no more than eager, and all
    // compile-time policies no more than runtime-restricted zero.
    let p = parse_program(
        "arrays { a: i32[1024] @ 0; b: i32[1024] @ 0; c: i32[1024] @ 0; d: i32[1024] @ 0; }
         for i in 0..1000 { a[i+3] = b[i+1] * c[i+2] + d[i+1]; }",
    )
    .unwrap();
    let shifts = |policy: Policy| {
        Simdizer::new()
            .policy(policy)
            .reuse(ReuseMode::SoftwarePipeline)
            .evaluate(&p, 2)
            .unwrap()
            .stats
            .shifts
    };
    let (z, e, l, d) = (
        shifts(Policy::Zero),
        shifts(Policy::Eager),
        shifts(Policy::Lazy),
        shifts(Policy::Dominant),
    );
    assert!(d <= l, "dominant {d} > lazy {l}");
    assert!(l <= e, "lazy {l} > eager {e}");
    assert!(e <= z, "eager {e} > zero {z}");
    assert!(d < z, "no improvement from placement at all");
}

#[test]
fn wider_and_narrower_vector_shapes() {
    // The pipeline is generic in V: run the same loop at V8 and V32.
    let p = parse_program(
        "arrays { a: i16[2048] @ 2; b: i16[2048] @ 6; c: i16[2048] @ 0; }
         for i in 0..2000 { a[i] = b[i+1] + c[i+3]; }",
    )
    .unwrap();
    for shape in [VectorShape::V8, VectorShape::V16, VectorShape::V32] {
        let report = Simdizer::new().shape(shape).evaluate(&p, 4).unwrap();
        assert!(report.verified, "{shape}");
        let lanes = shape.bytes() as f64 / 2.0;
        assert!(
            report.speedup <= lanes + 1e-9,
            "{shape}: speedup {} exceeds the lane count",
            report.speedup
        );
    }
    // More lanes must produce a higher speedup on this large loop.
    let s8 = Simdizer::new()
        .shape(VectorShape::V8)
        .evaluate(&p, 4)
        .unwrap();
    let s32 = Simdizer::new()
        .shape(VectorShape::V32)
        .evaluate(&p, 4)
        .unwrap();
    assert!(s32.speedup > s8.speedup);
}

#[test]
fn kernels_verify_under_their_natural_drivers() {
    let (fir, coeffs) = fir_filter(1000, 7);
    let coeff_values: Vec<i64> = (0..coeffs.len() as i64).collect();
    let r = Simdizer::new()
        .evaluate_with(&fir, &DiffConfig::with_seed(1).params(coeff_values))
        .unwrap();
    assert!(r.verified);
    assert!(r.speedup > 2.0, "fir speedup {}", r.speedup);

    let (blend, _) = alpha_blend(1920);
    let r = Simdizer::new()
        .evaluate_with(&blend, &DiffConfig::with_seed(2).params(vec![77, 179]))
        .unwrap();
    assert!(r.verified);
    assert!(r.speedup > 4.0, "blend speedup {}", r.speedup);

    let (saxpy, _) = offset_saxpy(1000);
    let r = Simdizer::new()
        .evaluate_with(&saxpy, &DiffConfig::with_seed(3).params(vec![-3]))
        .unwrap();
    assert!(r.verified);
}

#[test]
fn epilogue_residues_cover_all_cases() {
    // Sweep store misalignment × trip residue: every (ProSplice,
    // EpiLeftOver) combination of eqs. 8/14 must verify, including the
    // two-store epilogue (EpiLeftOver > V) and the empty one.
    for store_off in 0..4i64 {
        for residue in 0..4u64 {
            let ub = 96 + residue;
            let src = format!(
                "arrays {{ a: i32[128] @ 0; b: i32[128] @ 4; }}
                 for i in 0..{ub} {{ a[i+{store_off}] = b[i+1] * 3; }}"
            );
            let p = parse_program(&src).unwrap();
            for scheme in Scheme::contenders() {
                let r = Simdizer::new()
                    .scheme(scheme)
                    .evaluate(&p, ub)
                    .unwrap_or_else(|e| panic!("store_off={store_off} ub={ub} {scheme}: {e}"));
                assert!(r.verified, "store_off={store_off} ub={ub} {scheme}");
            }
        }
    }
}

#[test]
fn guard_boundary_is_exact() {
    // 3B = 12 for i32/V16: ub = 12 falls back, ub = 13 simdizes.
    let p = parse_program(
        "arrays { a: i32[64] @ 4; b: i32[64] @ 8; }
         for i in 0..ub { a[i] = b[i+1]; }",
    )
    .unwrap();
    let compiled = Simdizer::new().compile(&p).unwrap();
    for (ub, fallback) in [(12u64, true), (13, false)] {
        let out = run_differential(&compiled, &DiffConfig::with_seed(0).runtime_ub(ub)).unwrap();
        assert_eq!(out.stats.used_fallback, fallback, "ub = {ub}");
        assert!(out.verified);
    }
}

#[test]
fn generated_code_contains_no_unaligned_memory_ops() {
    // Structural check: every memory instruction in the generated code
    // is the truncating LoadA/StoreA — the machine has nothing else.
    let p = parse_program(FIG1).unwrap();
    let g = ReorgGraph::build(&p, VectorShape::V16)
        .unwrap()
        .with_policy(Policy::Dominant)
        .unwrap();
    let prog = generate(
        &g,
        &CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline),
    )
    .unwrap();
    let mut memops = 0;
    let mut visit = |insts: &[VInst]| {
        fn walk(insts: &[VInst], memops: &mut usize) {
            for inst in insts {
                match inst {
                    VInst::LoadA { .. } | VInst::StoreA { .. } => *memops += 1,
                    VInst::Guarded { body, .. } => walk(body, memops),
                    _ => {}
                }
            }
        }
        walk(insts, &mut memops);
    };
    visit(prog.prologue());
    visit(prog.body());
    visit(prog.epilogue());
    assert!(memops > 0);
}

#[test]
fn multi_statement_distinct_store_alignments() {
    // The §4.3 headline case: statements whose stores have all four
    // possible alignments, in one loop, sharing input arrays.
    let src = "arrays { w: i32[256] @ 0; x: i32[256] @ 0; y: i32[256] @ 0; z: i32[256] @ 0;
                        in0: i32[256] @ 0; in1: i32[256] @ 0; }
               for i in 0..200 {
                   w[i] = in0[i+1] + in1[i+2];
                   x[i+1] = in0[i+3] + in1[i];
                   y[i+2] = in0[i] + in1[i+1];
                   z[i+3] = in0[i+2] + in1[i+3];
               }";
    let p = parse_program(src).unwrap();
    for scheme in Scheme::contenders() {
        let r = Simdizer::new().scheme(scheme).evaluate(&p, 31).unwrap();
        assert!(r.verified, "{scheme}");
    }
}

#[test]
fn unaligned_target_verifies_and_skips_reorg() {
    use simdize::Target;
    // The hardware-misaligned machine needs no shifts at all; results
    // must still match the oracle, including residual iterations.
    for ub in [96u64, 97, 99, 102] {
        let src = format!(
            "arrays {{ a: i32[128] @ 4; b: i32[128] @ 8; c: i32[128] @ 12; }}
             for i in 0..{ub} {{ a[i+1] = b[i+3] + c[i+2]; }}"
        );
        let p = parse_program(&src).unwrap();
        let r = Simdizer::new()
            .target(Target::Unaligned)
            .evaluate(&p, ub)
            .unwrap();
        assert!(r.verified, "ub = {ub}");
        assert_eq!(r.stats.shifts, 0);
        assert_eq!(r.stats.loads, 0); // only unaligned accesses
        assert!(r.stats.unaligned_mem > 0);
    }
    // Runtime trip count and alignments work identically.
    let p = parse_program(
        "arrays { a: i16[4096] @ ?; b: i16[4096] @ ?; }
         for i in 0..ub { a[i] = b[i+5] * 3; }",
    )
    .unwrap();
    for ub in [50u64, 997, 1000] {
        let r = Simdizer::new()
            .target(Target::Unaligned)
            .evaluate_with(&p, &DiffConfig::with_seed(9).runtime_ub(ub))
            .unwrap();
        assert!(r.verified, "runtime ub = {ub}");
    }
}

#[test]
fn non_naturally_aligned_arrays_verify() {
    // §7 extension: base addresses that are not multiples of the
    // element size. Lane arithmetic must happen at natural offsets, so
    // policies quantize reconciliation targets; the byte-level shifts,
    // splices and truncating stores handle the rest.
    let src = "arrays { a: i32[256] @ 2; b: i32[256] @ 1; c: i32[256] @ 7; }
               for i in 0..200 { a[i+1] = b[i+2] + c[i]; }";
    let p = parse_program(src).unwrap();
    for scheme in Scheme::contenders() {
        let r = Simdizer::new()
            .scheme(scheme)
            .evaluate(&p, 77)
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(r.verified, "{scheme}");
    }
    // Odd offsets on i16, mixed with a naturally aligned stream, and a
    // multi-statement loop.
    let src = "arrays { a: i16[512] @ 3; b: i16[512] @ 5; c: i16[512] @ 0;
                        x: i16[512] @ 9; y: i16[512] @ 1; }
               for i in 0..400 { a[i] = b[i+1] + c[i+2]; x[i+3] = y[i] * 5; }";
    let p = parse_program(src).unwrap();
    for scheme in Scheme::contenders() {
        let r = Simdizer::new()
            .scheme(scheme.reassoc(true))
            .evaluate(&p, 78)
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(r.verified, "{scheme}+reassoc");
    }
    // The unaligned-hardware target is byte-exact by construction.
    let r = Simdizer::new()
        .target(simdize::Target::Unaligned)
        .evaluate(&p, 79)
        .unwrap();
    assert!(r.verified);
}
