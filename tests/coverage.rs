//! The paper's §5.4 coverage analysis, as an integration test.
//!
//! "More than a thousand loops were generated with varying
//! (l, s, n, b, r) parameters. … Our compiler simdized all the loops.
//! The generated binaries were simulated on a cycle-accurate simulator,
//! and the results were verified."
//!
//! This file sweeps the same parameter space (up to eight loads per
//! statement, four statements per loop, random bias and reuse, both
//! compile-time and runtime alignments and trip counts) at a trip-count
//! scale that keeps the suite fast; the full >1000-loop sweep at the
//! paper's trip counts lives in `cargo run -p simdize-bench --bin
//! coverage --release`.

use simdize_prng::SplitMix64;
use simdize::{synthesize, DiffConfig, Scheme, Simdizer, TripSpec, WorkloadSpec};

fn verify_spec(spec: &WorkloadSpec, seed: u64) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let program = synthesize(spec, &mut rng);
    let schemes = if spec.runtime_align {
        Scheme::runtime_contenders()
    } else {
        Scheme::contenders()
    };
    for scheme in schemes {
        let report = Simdizer::new()
            .scheme(scheme)
            .evaluate_with(
                &program,
                &DiffConfig::with_seed(seed ^ 0xABCD).runtime_ub(197),
            )
            .unwrap_or_else(|e| panic!("{} under {scheme} failed: {e}", spec.name()));
        assert!(report.verified, "{} under {scheme}", spec.name());
        // The CSE-aware floor, with 10% slack: predictive commoning
        // plus unroll-by-2 can legally dip slightly below any static
        // per-iteration count by chaining next-iteration values through
        // carried registers (a producer becomes an amortized copy).
        let floor =
            simdize::lower_bound_opd_cse(&program, simdize::VectorShape::V16, scheme.policy);
        assert!(
            report.opd >= floor * 0.9,
            "{} under {scheme}: opd {} implausibly beat the CSE floor {}",
            spec.name(),
            report.opd,
            floor
        );
    }
}

#[test]
fn coverage_compile_time_alignments() {
    let mut seed = 0u64;
    for s in [1usize, 2, 4] {
        for l in [1usize, 2, 4, 6, 8] {
            for _ in 0..4 {
                seed += 1;
                let mut meta = SplitMix64::seed_from_u64(seed * 31);
                let spec = WorkloadSpec::new(s, l)
                    .bias(meta.range_f64(0.0, 1.0))
                    .reuse(meta.range_f64(0.0, 1.0))
                    .trip(TripSpec::KnownInRange(197, 200));
                verify_spec(&spec, seed);
            }
        }
    }
}

#[test]
fn coverage_runtime_alignments() {
    let mut seed = 1000u64;
    for s in [1usize, 2, 4] {
        for l in [2usize, 4, 8] {
            for _ in 0..3 {
                seed += 1;
                let mut meta = SplitMix64::seed_from_u64(seed * 31);
                let spec = WorkloadSpec::new(s, l)
                    .bias(meta.range_f64(0.0, 1.0))
                    .reuse(meta.range_f64(0.0, 1.0))
                    .trip(TripSpec::KnownInRange(197, 200))
                    .runtime_align(true);
                verify_spec(&spec, seed);
            }
        }
    }
}

#[test]
fn coverage_runtime_trip_counts() {
    let mut seed = 2000u64;
    for s in [1usize, 3] {
        for l in [3usize, 5] {
            for runtime_align in [false, true] {
                seed += 1;
                let spec = WorkloadSpec::new(s, l)
                    .trip(TripSpec::Runtime)
                    .runtime_align(runtime_align);
                let mut rng = SplitMix64::seed_from_u64(seed);
                let program = synthesize(&spec, &mut rng);
                let schemes = if runtime_align {
                    Scheme::runtime_contenders()
                } else {
                    Scheme::contenders()
                };
                for scheme in schemes {
                    for ub in [197u64, 200, 203] {
                        let report = Simdizer::new()
                            .scheme(scheme)
                            .evaluate_with(&program, &DiffConfig::with_seed(seed).runtime_ub(ub))
                            .unwrap_or_else(|e| panic!("{scheme}/ub={ub}: {e}"));
                        assert!(report.verified);
                    }
                }
            }
        }
    }
}

#[test]
fn coverage_short_and_byte_elements() {
    use simdize::ScalarType;
    let mut seed = 3000u64;
    for elem in [ScalarType::I16, ScalarType::U8, ScalarType::I64] {
        for s in [1usize, 2] {
            for l in [2usize, 5] {
                seed += 1;
                let spec = WorkloadSpec::new(s, l)
                    .elem(elem)
                    .trip(TripSpec::KnownInRange(197, 200));
                verify_spec(&spec, seed);
            }
        }
    }
}

#[test]
fn coverage_reassociation_everywhere() {
    let mut seed = 4000u64;
    for s in [1usize, 4] {
        for l in [4usize, 8] {
            seed += 1;
            let spec = WorkloadSpec::new(s, l).trip(TripSpec::KnownInRange(197, 200));
            let mut rng = SplitMix64::seed_from_u64(seed);
            let program = synthesize(&spec, &mut rng);
            for scheme in Scheme::contenders() {
                let report = Simdizer::new()
                    .scheme(scheme.reassoc(true))
                    .evaluate(&program, seed)
                    .unwrap();
                assert!(report.verified, "{scheme}+reassoc");
            }
        }
    }
}

#[test]
fn coverage_other_vector_shapes() {
    // The pipeline is generic in V: sweep V8 and V32 too.
    use simdize::VectorShape;
    let mut seed = 5000u64;
    for shape in [VectorShape::V8, VectorShape::V32] {
        for s in [1usize, 2] {
            for l in [2usize, 5] {
                seed += 1;
                let spec = WorkloadSpec::new(s, l).trip(TripSpec::KnownInRange(197, 200));
                let mut rng = SplitMix64::seed_from_u64(seed);
                let program = synthesize(&spec, &mut rng);
                for scheme in Scheme::contenders() {
                    let report = Simdizer::new()
                        .shape(shape)
                        .scheme(scheme)
                        .evaluate(&program, seed)
                        .unwrap_or_else(|e| panic!("{shape}/{scheme}: {e}"));
                    assert!(report.verified, "{shape}/{scheme}");
                }
            }
        }
    }
}

#[test]
fn coverage_strided_workloads() {
    // The §7 strided extension across the (s, l, bias, reuse) space.
    let mut seed = 6000u64;
    for s in [1usize, 2, 3] {
        for l in [1usize, 3, 5] {
            seed += 1;
            let mut meta = SplitMix64::seed_from_u64(seed * 31);
            let spec = WorkloadSpec::new(s, l)
                .bias(meta.range_f64(0.0, 1.0))
                .reuse(meta.range_f64(0.0, 1.0))
                .trip(TripSpec::KnownInRange(197, 203))
                .strides(vec![1, 2, 4]);
            let mut rng = SplitMix64::seed_from_u64(seed);
            let program = synthesize(&spec, &mut rng);
            let report = Simdizer::new()
                .evaluate(&program, seed)
                .unwrap_or_else(|e| panic!("strided {}: {e}", spec.name()));
            assert!(report.verified, "{}", spec.name());
        }
    }
}
