//! The static-analysis tier, exercised end to end.
//!
//! Two halves:
//!
//! * a **corpus sweep**: every workload kernel and Figure-1 variant,
//!   compiled under every applicable policy × reuse mode × unroll
//!   setting (plus the strided and hardware-misaligned paths), must
//!   come out of the abstract interpreter with zero deny-level
//!   findings — the static counterpart of the differential sweeps;
//! * a **seeded mutation property**: random well-formed programs,
//!   randomly mutated at one instruction, must be caught by the
//!   structural verifier or the analyzer. Every case derives from its
//!   index, so a failing `case` number reproduces it exactly.

use simdize::{
    alpha_blend, analyze_program, dot_product, fir_filter, offset_saxpy, parse_program,
    rgba_to_gray, sum_abs_diff, synthesize, verify_program, Addr, AnalyzeOptions, ArrayId,
    LoopProgram, Policy, ReuseMode, SExpr, ScalarType, SimdProgram, SimdizeError, Simdizer, Target,
    TripSpec, VInst, WorkloadSpec,
};
use simdize_prng::SplitMix64;

/// Case-count multiplier: 1 normally, 8 under `--features fuzz`.
const SCALE: usize = if cfg!(feature = "fuzz") { 8 } else { 1 };

const REUSES: [ReuseMode; 3] = [
    ReuseMode::None,
    ReuseMode::SoftwarePipeline,
    ReuseMode::PredictiveCommoning,
];

/// The corpus: the paper's Figure 1 in several alignment flavours plus
/// every workload kernel (including reductions and a strided loop).
fn corpus() -> Vec<(&'static str, LoopProgram)> {
    let mut programs: Vec<(&'static str, LoopProgram)> = vec![
        (
            "fig1",
            parse_program(
                "arrays { a: i32[256] @ 0; b: i32[256] @ 0; c: i32[256] @ 0; }
                 for i in 0..200 { a[i+3] = b[i+1] + c[i+2]; }",
            )
            .unwrap(),
        ),
        (
            "fig1-runtime",
            parse_program(
                "arrays { a: i32[256] @ ?; b: i32[256] @ ?; c: i32[256] @ ?; }
                 for i in 0..ub { a[i+3] = b[i+1] + c[i+2]; }",
            )
            .unwrap(),
        ),
        (
            "multi-stmt",
            parse_program(
                "arrays { a: i32[300] @ 4; b: i32[300] @ 8; c: i32[300] @ 0; d: i32[300] @ 12; }
                 for i in 0..250 { a[i+1] = b[i+2] * 3; d[i] = b[i+2] + c[i+1]; }",
            )
            .unwrap(),
        ),
        (
            "i16-misaligned",
            parse_program(
                "arrays { a: i16[512] @ 2; b: i16[512] @ 6; c: i16[512] @ 0; }
                 for i in 0..400 { a[i+1] = b[i] + c[i+3]; }",
            )
            .unwrap(),
        ),
    ];
    programs.push(("fir", fir_filter(200, 3).0));
    programs.push(("alpha-blend", alpha_blend(200).0));
    programs.push(("offset-saxpy", offset_saxpy(200).0));
    programs.push(("dot-product", dot_product(200)));
    programs.push(("sum-abs-diff", sum_abs_diff(200)));
    programs.push(("rgba-to-gray", rgba_to_gray(200).0));
    programs
}

/// Zero deny findings over the whole corpus under every configuration
/// the pipeline accepts.
#[test]
fn corpus_is_deny_free_under_all_configs() {
    for (name, program) in corpus() {
        let strided = program.all_refs().iter().any(|r| !r.is_unit_stride());
        for policy in Policy::ALL {
            for reuse in REUSES {
                for unroll in [false, true] {
                    let driver = Simdizer::new().policy(policy).reuse(reuse).unroll(unroll);
                    let compiled = match driver.compile(&program) {
                        Ok(c) => c,
                        // Non-zero policies legitimately refuse loops
                        // with runtime alignments.
                        Err(SimdizeError::Policy(_)) => continue,
                        Err(e) => panic!("{name}/{policy:?}/{reuse:?}: {e}"),
                    };
                    let mut opts = AnalyzeOptions::new().memnorm(true);
                    if !strided {
                        opts = opts.reuse(reuse);
                    }
                    let report = analyze_program(&compiled, &opts);
                    // Generated code must be deny-free; in practice it
                    // is warning-free too, which pins the lints against
                    // false positives.
                    assert!(
                        report.is_clean(),
                        "{name} {policy:?} {reuse:?} unroll={unroll}:\n{}",
                        report.render_text()
                    );
                }
            }
        }
        if !strided {
            // SSE2-style hardware-misaligned target.
            let compiled = Simdizer::new()
                .target(Target::Unaligned)
                .compile(&program)
                .unwrap();
            let report = analyze_program(&compiled, &AnalyzeOptions::new().memnorm(true));
            assert!(
                report.is_clean(),
                "{name} unaligned target:\n{}",
                report.render_text()
            );
        }
    }
}

/// The applicable single-instruction mutations for a compiled program.
/// Each provably breaks a property the analyzer or verifier owns.
fn mutate(prog: &mut SimdProgram, pick: u64) -> &'static str {
    let has_const_shift = prog
        .body()
        .iter()
        .any(|i| matches!(i, VInst::ShiftPair { amt, .. } if amt.as_const().is_some()));
    let has_prologue_splice = prog.prologue().iter().any(
        |i| matches!(i, VInst::Splice { point, .. } if point.as_const().is_some_and(|p| p > 0)),
    );
    let mut menu: Vec<&'static str> = vec!["store-undefined", "bad-perm"];
    if has_const_shift {
        menu.push("skew-shift");
    }
    if has_prologue_splice {
        menu.push("skew-splice");
    }
    let v = prog.shape().bytes() as i64;
    match menu[(pick % menu.len() as u64) as usize] {
        // An undefined register flows into memory: the verifier rejects
        // the use-before-def, and the analyzer sees undefined store
        // bytes.
        "store-undefined" => {
            let ghost = prog.alloc_vreg();
            prog.body_mut().push(VInst::StoreA {
                addr: Addr::new(ArrayId::from_index(0), 0),
                src: ghost,
            });
            "store-undefined"
        }
        // A permute selecting past both sources.
        "bad-perm" => {
            let src = prog.body().iter().find_map(|i| i.def()).unwrap_or_else(|| {
                prog.prologue().iter().find_map(|i| i.def()).expect("defs")
            });
            let dst = prog.alloc_vreg();
            prog.body_mut().push(VInst::Perm {
                dst,
                a: src,
                b: src,
                pattern: vec![2 * v as u8 + 7; v as usize],
            });
            "bad-perm"
        }
        // Rotate a stream by one extra byte: every store byte downstream
        // holds the neighbouring stream byte.
        "skew-shift" => {
            for inst in prog.body_mut() {
                if let VInst::ShiftPair { amt, .. } = inst {
                    if let Some(a) = amt.as_const() {
                        *amt = SExpr::c(if a < v { a + 1 } else { a - 1 });
                        break;
                    }
                }
            }
            "skew-shift"
        }
        // Shrink the prologue partial-store window: a byte before the
        // store's first element is clobbered.
        "skew-splice" => {
            for inst in prog.prologue_mut() {
                if let VInst::Splice { point, .. } = inst {
                    if let Some(p) = point.as_const() {
                        if p > 0 {
                            *point = SExpr::c(p - 1);
                            break;
                        }
                    }
                }
            }
            "skew-splice"
        }
        _ => unreachable!(),
    }
}

/// Any random well-formed program, mutated at a random instruction, is
/// caught by the structural verifier or the abstract interpreter.
#[test]
fn random_mutations_are_caught() {
    for case in 0..32 * SCALE {
        let mut rng = SplitMix64::seed_from_u64(0x1147_0000 + case as u64);
        let spec = WorkloadSpec::new(
            rng.range_inclusive(1, 3) as usize,
            rng.range_inclusive(1, 4) as usize,
        )
        .elem(if rng.chance(0.5) {
            ScalarType::I32
        } else {
            ScalarType::I16
        })
        .trip(TripSpec::KnownInRange(117, 130))
        .runtime_align(rng.chance(0.3));
        let program = synthesize(&spec, &mut SplitMix64::seed_from_u64(rng.next_u64()));

        let reuse = REUSES[rng.index(REUSES.len())];
        let driver = Simdizer::new().reuse(reuse).unroll(rng.chance(0.5));
        let mut compiled = driver
            .compile(&program)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));

        let opts = AnalyzeOptions::new().memnorm(true).reuse(reuse);
        verify_program(&compiled).unwrap_or_else(|e| panic!("case {case} baseline: {e}"));
        let base = analyze_program(&compiled, &opts);
        assert!(
            base.is_clean(),
            "case {case} baseline should be clean:\n{}",
            base.render_text()
        );

        let which = mutate(&mut compiled, rng.next_u64());
        let verifier_caught = verify_program(&compiled).is_err();
        let analyzer_caught = !analyze_program(&compiled, &opts).is_clean();
        assert!(
            verifier_caught || analyzer_caught,
            "case {case}: mutation `{which}` slipped past both the verifier and the analyzer"
        );
    }
}
