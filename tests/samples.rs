//! The shipped sample loops (`loops/*.loop`) must stay valid, compile,
//! execute and verify — they are the CLI's first-contact surface.

use simdize::{parse_program, DiffConfig, Simdizer};

fn sample(name: &str) -> String {
    let path = format!("{}/loops/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {path}: {e}"))
}

#[test]
fn all_samples_verify() {
    for name in [
        "figure1.loop",
        "runtime.loop",
        "dot_product.loop",
        "deinterleave.loop",
        "halfword.loop",
    ] {
        let program = parse_program(&sample(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = Simdizer::new()
            .evaluate_with(&program, &DiffConfig::with_seed(1).runtime_ub(1000))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.verified, "{name}");
        assert!(report.speedup > 1.0, "{name}: speedup {}", report.speedup);
    }
}

#[test]
fn samples_roundtrip_through_the_printer() {
    for name in [
        "figure1.loop",
        "dot_product.loop",
        "deinterleave.loop",
        "halfword.loop",
    ] {
        let program = parse_program(&sample(name)).unwrap();
        let reparsed = parse_program(&program.to_source()).unwrap();
        assert_eq!(program, reparsed, "{name}");
    }
}

#[test]
fn traced_execution_matches_plain() {
    use simdize::{run_simd, run_simd_traced, MemoryImage, RunInput, VectorShape};
    let program = parse_program(&sample("figure1.loop")).unwrap();
    let compiled = Simdizer::new().compile(&program).unwrap();
    let mut a = MemoryImage::with_seed(&program, VectorShape::V16, 3);
    let mut b = a.clone();
    let plain = run_simd(&compiled, &mut a, &RunInput::with_ub(1000)).unwrap();
    let (traced, trace) =
        run_simd_traced(&compiled, &mut b, &RunInput::with_ub(1000), 64).unwrap();
    assert_eq!(plain, traced);
    assert_eq!(a.first_difference(&b), None);
    assert!(!trace.is_empty());
    assert!(trace.iter().all(|l| l.starts_with("[i=")));
}

#[test]
fn reduction_graph_metadata() {
    use simdize::{Offset, ReorgGraph, VectorShape};
    let program = parse_program(&sample("dot_product.loop")).unwrap();
    let graph = ReorgGraph::build(&program, VectorShape::V16).unwrap();
    // Reductions require stream offset 0 of their expression.
    assert_eq!(graph.store_offset(0), Offset::Byte(0));
    let placed = graph
        .with_policy(simdize::Policy::Dominant)
        .unwrap();
    placed.validate().unwrap();
    let stats = placed.stats();
    assert_eq!(stats.stores, 1);
    assert!(stats.shifts >= 1);
}
