//! Integration tests for the bounded-equivalence prover
//! (`simdize-verify`): the quick proof over the bundled loops, the
//! mutate-and-catch meta-test (an injected off-by-one must surface as
//! a shrunk, replayable counterexample), and a golden
//! `simdize-verify/v1` JSON report.

use simdize::{prove_source, MutationKind, VerifyOptions};

fn repo(path: &str) -> String {
    format!("{}/{path}", env!("CARGO_MANIFEST_DIR"))
}

fn sample(name: &str) -> String {
    let path = repo(&format!("loops/{name}.loop"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {path}: {e}"))
}

fn quick(threads: usize) -> VerifyOptions {
    let mut opts = VerifyOptions::quick();
    opts.threads = threads;
    opts
}

#[test]
fn figure1_quick_proof_holds() {
    let report = prove_source("figure1", &sample("figure1"), &quick(2)).unwrap();
    assert!(report.proved, "{}", report.render_text());
    assert_eq!(report.violations_total, 0);
    assert_eq!(report.inconsistencies_total, 0);
    assert!(!report.budget_exhausted);
    // The quick domain still crosses policies, modes and alignments.
    assert!(report.units_compiled >= 10, "{}", report.units_compiled);
    assert!(report.points > 100, "{}", report.points);
    assert_eq!(report.harnesses.len(), 4);
    for h in &report.harnesses {
        assert!(h.runs > 0, "harness {} never ran", h.name);
        assert_eq!(h.violations, 0);
    }
    assert!(
        report.harnesses.iter().any(|h| h.name == "harness_native_equiv"),
        "the intrinsics backend must be part of the quick proof"
    );
}

#[test]
fn runtime_alignment_loop_quick_proof_holds() {
    let report = prove_source("runtime", &sample("runtime"), &quick(2)).unwrap();
    assert!(report.proved, "{}", report.render_text());
    // Runtime alignments restrict the applicable policies, so some
    // enumerated units are skipped — but counted, not silently lost.
    assert!(report.units_compiled > 0);
}

#[test]
fn mutate_and_catch_shrinks_to_a_replayable_counterexample() {
    for kind in [MutationKind::SpliceOffByOne, MutationKind::ShiftOffByOne] {
        let mut opts = quick(2);
        opts.mutation = Some(kind);
        let report = prove_source("figure1", &sample("figure1"), &opts).unwrap();
        assert!(!report.proved, "mutation {kind:?} went uncaught");
        assert!(report.violations_total > 0, "{kind:?}");
        assert!(report.units_mutated > 0, "{kind:?} found no site");
        let ce = report
            .violations
            .first()
            .unwrap_or_else(|| panic!("{kind:?}: no shrunk counterexample"));
        assert!(
            ce.replay.contains("| simdize run -"),
            "{kind:?} replay not a command line: {}",
            ce.replay
        );
        assert!(
            ce.replay.contains("--policy") && ce.replay.contains("--reuse"),
            "{kind:?} replay lacks the configuration: {}",
            ce.replay
        );
        assert!(ce.shrink_steps > 0, "{kind:?}: shrinker never ran");
        assert!(ce.trip >= 1);
        // A wrong splice window is invisible to the lints, so the
        // prover/lint cross-check must flag the disagreement. A wrong
        // shift amount the abstract interpreter catches itself —
        // prover and lints agree, so no inconsistency is reported.
        if kind == MutationKind::SpliceOffByOne {
            assert!(
                report.inconsistencies_total > 0,
                "prover violation on lint-clean code must be an inconsistency"
            );
        }
    }
}

/// Pins the `simdize-verify/v1` JSON shape for the figure-1 quick
/// proof. `wall_ms` is the one nondeterministic field and is zeroed.
/// Regenerate after an intentional report change with
/// `UPDATE_GOLDEN=1 cargo test --test verify`.
#[test]
fn verify_report_json_golden() {
    let mut report = prove_source("figure1", &sample("figure1"), &quick(2)).unwrap();
    report.wall_ms = 0;
    let mut rendered = report.render_json();
    rendered.push('\n');

    let path = repo("tests/golden/verify-figure1-quick.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e} (run with UPDATE_GOLDEN=1)"));
    assert_eq!(
        expected, rendered,
        "verify-report drift; if intended, UPDATE_GOLDEN=1 and re-review"
    );
}
