//! Golden-pinned `simdize trace` export: the normalized
//! `simdize-trace/v1` document for the paper's Figure 1 loop must stay
//! byte-stable (`tests/golden/trace-figure1.json`), and the Chrome
//! trace-event export must agree with the span timeline it was derived
//! from. Regenerate after an intentional schema change with
//! `UPDATE_GOLDEN=1 cargo test --test trace`.

use simdize::trace_source;

fn repo(path: &str) -> String {
    format!("{}/{path}", env!("CARGO_MANIFEST_DIR"))
}

fn figure1() -> String {
    let path = repo("loops/figure1.loop");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {path}: {e}"))
}

/// Pins the `isa` attribute host-independently: `IsaLevel::detect()`
/// re-reads the override on every call, and `scalar` is a valid tier
/// on every host. Both tests in this binary set the same value, so the
/// parallel writes are idempotent.
fn force_scalar_isa() {
    std::env::set_var("SIMDIZE_ISA", "scalar");
}

#[test]
fn normalized_trace_json_matches_golden() {
    force_scalar_isa();
    let outcome = trace_source(&figure1()).unwrap();
    assert!(outcome.verified);
    let mut rendered = outcome.trace.render_json(true);
    rendered.push('\n');

    let path = repo("tests/golden/trace-figure1.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e} (run with UPDATE_GOLDEN=1)"));
    assert_eq!(
        expected, rendered,
        "trace schema drift; if intended, UPDATE_GOLDEN=1 and re-review"
    );
}

#[test]
fn chrome_export_agrees_with_the_span_timeline() {
    force_scalar_isa();
    let outcome = trace_source(&figure1()).unwrap();
    let chrome = outcome.trace.render_chrome();
    // One complete event per recorded span, plus the request root.
    let events = chrome.matches("\"ph\":\"X\"").count();
    assert_eq!(events, outcome.trace.events.len() + 1, "{chrome}");
    // The root request event's duration is the request wall time, and
    // every span's microsecond duration appears with its name.
    assert!(
        chrome.contains(&format!(
            "\"name\":\"request:trace\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":0,\"dur\":{}",
            outcome.trace.wall_us
        )),
        "{chrome}"
    );
    for ev in &outcome.trace.events {
        let name = ev.path.rsplit('/').next().unwrap();
        assert!(chrome.contains(&format!("\"name\":\"{name}\"")), "{name} missing");
    }
    // The document is parseable JSON with the trace id in the root args.
    let doc = simdize_telemetry::json::parse(&chrome).unwrap();
    assert!(doc.get("traceEvents").is_some());
    assert!(chrome.contains(&format!("\"trace_id\":\"{}\"", outcome.trace.trace_id)));
}
