//! Differential tests for the `std::arch` intrinsics backend: every
//! available ISA tier of `SimdKernel` must be byte-for-byte and
//! stat-for-stat identical to the `simdize-vm` interpreter (the
//! reference semantics) and to the fused `CompiledKernel` engine,
//! across the full policy × alignment × trip matrix and every shipped
//! sample loop — including the 16-bit `halfword.loop`.

use simdize::{
    run_simd, CompiledKernel, IsaLevel, MemoryImage, Policy, ReuseMode, RunInput, SimdKernel,
    SimdizeError, Simdizer, VectorShape,
};

/// Every ISA tier the host can actually execute. On x86_64 this always
/// contains at least `Scalar` and `Sse2` (the baseline is unconditional),
/// plus `Avx2` when the CPU has it; elsewhere it degrades gracefully.
fn host_tiers() -> Vec<IsaLevel> {
    let tiers: Vec<IsaLevel> = IsaLevel::ALL.into_iter().filter(|t| t.available()).collect();
    assert!(tiers.contains(&IsaLevel::Scalar));
    #[cfg(target_arch = "x86_64")]
    assert!(tiers.contains(&IsaLevel::Sse2), "SSE2 is baseline on x86_64");
    tiers
}

const REUSES: [ReuseMode; 3] = [
    ReuseMode::None,
    ReuseMode::SoftwarePipeline,
    ReuseMode::PredictiveCommoning,
];

/// Compile-time misaligned and runtime-aligned regimes (paper §4.1 and
/// §4.4), mirroring `tests/engine.rs` so the two engines face the same
/// matrix.
const MISALIGNED: &str = "arrays { a: i32[256] @ 12; b: i32[256] @ 4; c: i32[256] @ 8; }
                          for i in 0..200 { a[i+1] = b[i+3] + c[i+2]; }";
const RUNTIME: &str = "arrays { a: i32[256] @ ?; b: i32[256] @ ?; c: i32[256] @ ?; }
                       for i in 0..ub { a[i+1] = b[i+3] + c[i+2]; }";

fn check_all_tiers(
    program: &simdize::LoopProgram,
    compiled: &simdize::SimdProgram,
    ub: u64,
    seed: u64,
    label: &str,
) {
    let input = RunInput::with_ub(ub);
    let mut interp_img = MemoryImage::with_seed(program, VectorShape::V16, seed);
    let mut fused_img = interp_img.clone();
    let want = run_simd(compiled, &mut interp_img, &input).unwrap();
    let kernel = CompiledKernel::compile(compiled, &fused_img, &input).unwrap();
    let fused = kernel.run(&mut fused_img).unwrap();
    assert_eq!(fused, want, "{label}: fused engine diverged from interpreter");
    assert_eq!(fused_img.first_difference(&interp_img), None, "{label}");
    for tier in host_tiers() {
        let lowered = SimdKernel::lower(&kernel, tier);
        assert_eq!(lowered.isa(), tier);
        let mut simd_img = MemoryImage::with_seed(program, VectorShape::V16, seed);
        let got = lowered.run(&mut simd_img).unwrap();
        assert_eq!(got, want, "{label}/{tier}: stats diverged");
        assert_eq!(
            simd_img.first_difference(&interp_img),
            None,
            "{label}/{tier}: memory diverged"
        );
    }
}

#[test]
fn simd_backend_matches_interpreter_across_policy_reuse_alignment_matrix() {
    let mut combos = 0;
    for (src, ubs) in [
        (MISALIGNED, &[200u64][..]),
        (RUNTIME, &[1u64, 9, 197, 256][..]),
    ] {
        let program = simdize::parse_program(src).unwrap();
        for policy in Policy::ALL {
            for reuse in REUSES {
                let compiled = match Simdizer::new()
                    .policy(policy)
                    .reuse(reuse)
                    .compile(&program)
                {
                    Ok(c) => c,
                    Err(SimdizeError::Policy(_)) => continue,
                    Err(e) => panic!("{policy}/{reuse:?}: {e}"),
                };
                for &ub in ubs {
                    check_all_tiers(
                        &program,
                        &compiled,
                        ub,
                        2004,
                        &format!("{policy}/{reuse:?}/ub={ub}"),
                    );
                    combos += 1;
                }
            }
        }
    }
    assert!(combos >= 20, "matrix too sparse: only {combos} combinations ran");
}

#[test]
fn simd_backend_matches_on_every_sample_loop() {
    for (name, ub) in [
        ("figure1.loop", 1000u64),
        ("runtime.loop", 777),
        ("dot_product.loop", 1000),
        ("deinterleave.loop", 500),
        ("halfword.loop", 1800),
    ] {
        let path = format!("{}/loops/{name}", env!("CARGO_MANIFEST_DIR"));
        let src = std::fs::read_to_string(&path).unwrap();
        let program = simdize::parse_program(&src).unwrap();
        for policy in Policy::ALL {
            let compiled = match Simdizer::new().policy(policy).compile(&program) {
                Ok(c) => c,
                Err(SimdizeError::Policy(_)) => continue,
                Err(e) => panic!("{name}/{policy}: {e}"),
            };
            check_all_tiers(&program, &compiled, ub, 7, &format!("{name}/{policy}"));
        }
    }
}

/// The 16-bit sample must actually exercise the halfword domain: eight
/// realizable byte offsets per stream and i16 lane products that wrap
/// mod 2^16 (the paths the intrinsics tiers lower to pmullw/vmulq.i16).
#[test]
fn halfword_sample_covers_the_i16_offset_domain() {
    let path = format!("{}/loops/halfword.loop", env!("CARGO_MANIFEST_DIR"));
    let program = simdize::parse_program(&std::fs::read_to_string(path).unwrap()).unwrap();
    let graph = simdize::ReorgGraph::build(&program, VectorShape::V16).unwrap();
    // B = V/elem = 8 halfword lanes ⇒ 8 realizable byte offsets per stream.
    assert_eq!(graph.blocking_factor(), 8, "i16 ⇒ 8 lanes per V16 chunk");
    check_all_tiers(
        &program,
        &Simdizer::new().compile(&program).unwrap(),
        1800,
        13,
        "halfword",
    );
}
