//! Randomized property tests over the whole pipeline.
//!
//! These were proptest properties; they are now driven by seeded
//! [`SplitMix64`] sweeps so the suite builds and runs with no registry
//! access. Every case is derived deterministically from its index, so a
//! failure message's `case` number is a complete reproduction recipe.
//! Build with `--features fuzz` to multiply the case counts.

use simdize::{
    parse_program, reassociate, synthesize, DiffConfig, Policy, ReorgGraph, ReuseMode, ScalarType,
    Scheme, Simdizer, TripSpec, Value, VectorShape, WorkloadSpec,
};
use simdize_prng::SplitMix64;

/// Case-count multiplier: 1 normally, 8 under `--features fuzz`.
const SCALE: usize = if cfg!(feature = "fuzz") { 8 } else { 1 };

const ELEMS: [ScalarType; 7] = [
    ScalarType::I8,
    ScalarType::U8,
    ScalarType::I16,
    ScalarType::U16,
    ScalarType::I32,
    ScalarType::U32,
    ScalarType::I64,
];

/// Draws a workload spec the way the old proptest strategy did:
/// 1–4 statements, 1–8 loads, free bias/reuse, any element type,
/// short trip counts, half the cases with runtime alignments.
fn draw_spec(rng: &mut SplitMix64) -> (WorkloadSpec, u64) {
    let spec = WorkloadSpec::new(
        rng.range_inclusive(1, 4) as usize,
        rng.range_inclusive(1, 8) as usize,
    )
    .bias(rng.range_f64(0.0, 1.0))
    .reuse(rng.range_f64(0.0, 1.0))
    .elem(ELEMS[rng.index(ELEMS.len())])
    .trip(TripSpec::KnownInRange(117, 130))
    .runtime_align(rng.chance(0.5));
    let seed = rng.next_u64();
    (spec, seed)
}

/// The crown jewel: any loop the generator can produce, simdized under
/// any applicable scheme, computes exactly what the scalar loop
/// computes.
#[test]
fn any_workload_verifies() {
    for case in 0..32 * SCALE {
        let mut rng = SplitMix64::seed_from_u64(0xA11_0000 + case as u64);
        let (spec, seed) = draw_spec(&mut rng);
        let program = synthesize(&spec, &mut SplitMix64::seed_from_u64(seed));
        let schemes = if spec.runtime_align {
            Scheme::runtime_contenders()
        } else {
            Scheme::contenders()
        };
        let scheme = schemes[rng.index(schemes.len())];
        let report = Simdizer::new()
            .scheme(scheme)
            .evaluate_with(&program, &DiffConfig::with_seed(seed ^ 0x5A5A))
            .unwrap_or_else(|e| panic!("case {case} ({scheme}): {e}"));
        assert!(report.verified, "case {case} ({scheme}) diverged");
    }
}

/// Every policy yields a graph satisfying (C.2)/(C.3), and the
/// placement quality ordering lazy ≤ eager holds.
#[test]
fn policies_valid_and_ordered() {
    for case in 0..64 * SCALE {
        let mut rng = SplitMix64::seed_from_u64(0xB01 + case as u64);
        let (spec, seed) = draw_spec(&mut rng);
        let spec = spec.runtime_align(false);
        let program = synthesize(&spec, &mut SplitMix64::seed_from_u64(seed));
        let graph = ReorgGraph::build(&program, VectorShape::V16).unwrap();
        let mut counts = std::collections::HashMap::new();
        for policy in Policy::ALL {
            let placed = graph.with_policy(policy).unwrap();
            placed.validate().unwrap();
            counts.insert(policy, placed.shift_count());
        }
        assert!(
            counts[&Policy::Lazy] <= counts[&Policy::Eager],
            "case {case}"
        );
        // Zero shifts exactly the misaligned streams: one per misaligned
        // load occurrence plus one per misaligned store.
        let mut expected_zero = 0usize;
        for stmt in program.stmts() {
            stmt.rhs.visit_loads(&mut |r| {
                if simdize::Offset::of_ref(r, &program, VectorShape::V16) != simdize::Offset::Byte(0)
                {
                    expected_zero += 1;
                }
            });
            if simdize::Offset::of_ref(stmt.target, &program, VectorShape::V16)
                != simdize::Offset::Byte(0)
            {
                expected_zero += 1;
            }
        }
        assert_eq!(counts[&Policy::Zero], expected_zero, "case {case}");
    }
}

/// After common-offset reassociation, lazy placement reaches the
/// paper's analytic minimum of n−1 shifts per statement.
#[test]
fn reassoc_lazy_reaches_minimum() {
    for case in 0..64 * SCALE {
        let mut rng = SplitMix64::seed_from_u64(0x2EA550C + case as u64);
        let (spec, seed) = draw_spec(&mut rng);
        let spec = spec.runtime_align(false);
        let program = synthesize(&spec, &mut SplitMix64::seed_from_u64(seed));
        let re = reassociate(&program, VectorShape::V16);
        let placed = ReorgGraph::build(&re, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Lazy)
            .unwrap();
        placed.validate().unwrap();
        let unshifted = ReorgGraph::build(&re, VectorShape::V16).unwrap();
        let stats = placed.stats();
        for s in 0..program.stmts().len() {
            let n = simdize::distinct_alignments(&unshifted, s);
            assert_eq!(
                stats.per_stmt_shifts[s],
                n.saturating_sub(1),
                "case {case}, statement {s} of {re}"
            );
        }
    }
}

/// Reassociation never *increases* lazy's shift count, and preserves
/// the multiset of loads.
#[test]
fn reassoc_monotone() {
    for case in 0..64 * SCALE {
        let mut rng = SplitMix64::seed_from_u64(0x3030 + case as u64);
        let (spec, seed) = draw_spec(&mut rng);
        let spec = spec.runtime_align(false);
        let program = synthesize(&spec, &mut SplitMix64::seed_from_u64(seed));
        let re = reassociate(&program, VectorShape::V16);
        let shifts = |p: &simdize::LoopProgram| {
            ReorgGraph::build(p, VectorShape::V16)
                .unwrap()
                .with_policy(Policy::Lazy)
                .unwrap()
                .shift_count()
        };
        assert!(shifts(&re) <= shifts(&program), "case {case}");
        for (a, b) in program.stmts().iter().zip(re.stmts()) {
            let mut la = a.rhs.loads();
            let mut lb = b.rhs.loads();
            la.sort_by_key(|r| (r.array.index(), r.offset));
            lb.sort_by_key(|r| (r.array.index(), r.offset));
            assert_eq!(la, lb, "case {case}");
        }
    }
}

/// Textual round trip: printing a program and re-parsing it yields the
/// same program.
#[test]
fn source_roundtrip() {
    for case in 0..64 * SCALE {
        let mut rng = SplitMix64::seed_from_u64(0x5011D + case as u64);
        let (spec, seed) = draw_spec(&mut rng);
        let program = synthesize(&spec, &mut SplitMix64::seed_from_u64(seed));
        let reparsed = parse_program(&program.to_source()).unwrap();
        assert_eq!(program, reparsed, "case {case}");
    }
}

/// Software pipelining never loads more than the naive generator on
/// long loops without cross-statement array sharing. (With heavy reuse
/// the comparison genuinely goes both ways: LVN dedupes the naive
/// code's identical shifts *across* statements, while each SP carried
/// chain is private — the paper's harmonic means average over this.)
#[test]
fn sp_never_loads_more() {
    for case in 0..16 * SCALE {
        let mut rng = SplitMix64::seed_from_u64(0x5B00 + case as u64);
        let (spec, seed) = draw_spec(&mut rng);
        let spec = spec.reuse(0.0).trip(TripSpec::Known(1000));
        let program = synthesize(&spec, &mut SplitMix64::seed_from_u64(seed));
        let policy = if spec.runtime_align {
            Policy::Zero
        } else {
            Policy::Lazy
        };
        let naive = Simdizer::new()
            .policy(policy)
            .reuse(ReuseMode::None)
            .evaluate_with(&program, &DiffConfig::with_seed(seed))
            .unwrap();
        let sp = Simdizer::new()
            .policy(policy)
            .reuse(ReuseMode::SoftwarePipeline)
            .evaluate_with(&program, &DiffConfig::with_seed(seed))
            .unwrap();
        assert!(sp.stats.loads <= naive.stats.loads, "case {case}");
        assert!(sp.stats.total() <= naive.stats.total() + 16, "case {case}");
    }
}

/// Lane value algebra: wrapping ops are closed and obey the expected
/// identities for every element type.
#[test]
fn value_algebra() {
    let mut rng = SplitMix64::seed_from_u64(0xA16EB2A);
    for case in 0..256 * SCALE {
        let elem = ELEMS[rng.index(ELEMS.len())];
        let a = Value::new(elem, rng.next_u64());
        let b = Value::new(elem, rng.next_u64());
        assert_eq!(a.wrapping_add(b), b.wrapping_add(a), "case {case}");
        assert_eq!(a.wrapping_mul(b), b.wrapping_mul(a), "case {case}");
        assert_eq!(a.min_lane(b), b.min_lane(a), "case {case}");
        assert_eq!(a.max_lane(b).max_lane(b), a.max_lane(b), "case {case}");
        assert_eq!(a.wrapping_sub(b).wrapping_add(b), a, "case {case}");
        assert_eq!(a.not().not(), a, "case {case}");
        assert_eq!(a.wrapping_neg().wrapping_neg(), a, "case {case}");
        assert_eq!(Value::from_le_bytes(elem, &a.to_le_bytes()), a, "case {case}");
        // min/max bracket both operands.
        let lo = a.min_lane(b).as_i64();
        let hi = a.max_lane(b).as_i64();
        assert!(lo <= hi, "case {case}");
    }
}

/// The strided extension: any mixed-stride workload (strides 1, 2, 4;
/// compile-time alignments and trip counts) verifies against the
/// scalar oracle.
#[test]
fn strided_workloads_verify() {
    for case in 0..24 * SCALE {
        let mut rng = SplitMix64::seed_from_u64(0x57B1DE + case as u64);
        let spec = WorkloadSpec::new(
            rng.range_inclusive(1, 3) as usize,
            rng.range_inclusive(1, 5) as usize,
        )
        .bias(rng.range_f64(0.0, 1.0))
        .reuse(rng.range_f64(0.0, 1.0))
        .trip(TripSpec::KnownInRange(117, 130))
        .strides(vec![1, 2, 4]);
        let seed = rng.next_u64();
        let program = synthesize(&spec, &mut SplitMix64::seed_from_u64(seed));
        let report = Simdizer::new()
            .evaluate_with(&program, &DiffConfig::with_seed(seed ^ 0xFEED))
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert!(report.verified, "case {case}");
    }
}

/// Reductions: random expressions folded with every reassociable
/// operation match the scalar fold exactly (wrapping arithmetic is
/// order-insensitive for these ops).
#[test]
fn reductions_verify() {
    use simdize::{BinOp, LoopBuilder};
    let ops = [
        BinOp::Add,
        BinOp::Mul,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
    ];
    for case in 0..24 * SCALE {
        let mut rng = SplitMix64::seed_from_u64(0x2ED0CE + case as u64);
        let op = ops[rng.index(ops.len())];
        let elem = ELEMS[rng.index(ELEMS.len())];
        let loads = rng.range_inclusive(1, 4) as usize;
        let misalign = rng.range_u64(0, 16) as u32;
        let ub = rng.range_u64(100, 400);
        let seed = rng.next_u64();
        let d = elem.size() as u32;
        let mut b = LoopBuilder::new(elem);
        let acc = b.array("acc", 32, misalign - misalign % d);
        let len = ub + 32;
        let rhs = (0..loads)
            .map(|l| {
                let arr = b.array(format!("x{l}"), len, (l as u32 * d) % 16);
                arr.load(l as i64)
            })
            .reduce(|a, e| simdize::Expr::binary(op, a, e))
            .unwrap();
        b.reduce(acc.at(1), op, rhs);
        let program = b.finish(ub).unwrap();
        let report = Simdizer::new()
            .evaluate_with(&program, &DiffConfig::with_seed(seed))
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert!(report.verified, "case {case}");
    }
}

/// The parser never panics: arbitrary input is either a valid program
/// or a clean error.
#[test]
fn parser_never_panics() {
    let mut rng = SplitMix64::seed_from_u64(0xFA22);
    for _ in 0..256 * SCALE {
        let len = rng.index(200);
        let input: String = (0..len)
            .map(|_| char::from_u32(rng.range_u64(1, 0x500) as u32).unwrap_or('?'))
            .collect();
        let _ = parse_program(&input);
    }
}

/// Structured fuzzing: near-miss programs built from valid fragments
/// with random mutations still never panic the parser.
#[test]
fn parser_survives_mutations() {
    const TOKENS: &[u8] = b"[]{}();:=+*@?0123456789abcdefghij ";
    let base = "arrays { a: i32[128] @ 0; b: i32[128] @ 4; }
                params { k; }
                for i in 0..ub { a[i+3] += b[2*i+1] * k; }";
    let mut rng = SplitMix64::seed_from_u64(0x3417A7E);
    for _ in 0..256 * SCALE {
        let insert: String = (0..rng.index(9))
            .map(|_| TOKENS[rng.index(TOKENS.len())] as char)
            .collect();
        let mut at = rng.index(base.len() + 1);
        while !base.is_char_boundary(at) {
            at -= 1;
        }
        let mutated = format!("{}{}{}", &base[..at], insert, &base[at..]);
        let _ = parse_program(&mutated);
    }
}

/// Every program the pipeline generates passes the static VIR verifier
/// (SSA discipline, permute/shift/splice ranges).
#[test]
fn generated_programs_pass_the_verifier() {
    for case in 0..32 * SCALE {
        let mut rng = SplitMix64::seed_from_u64(0x7E21F1E2 + case as u64);
        let (spec, seed) = draw_spec(&mut rng);
        let program = synthesize(&spec, &mut SplitMix64::seed_from_u64(seed));
        let schemes = if spec.runtime_align {
            Scheme::runtime_contenders()
        } else {
            Scheme::contenders()
        };
        let scheme = schemes[rng.index(schemes.len())];
        let compiled = Simdizer::new().scheme(scheme).compile(&program).unwrap();
        simdize::verify_program(&compiled)
            .unwrap_or_else(|e| panic!("case {case} ({scheme}): {e}"));
    }
}
