//! Property-based tests over the whole pipeline.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simdize::{
    parse_program, reassociate, synthesize, DiffConfig, Policy, ReorgGraph, ReuseMode, ScalarType,
    Scheme, Simdizer, TripSpec, Value, VectorShape, WorkloadSpec,
};

fn elem_strategy() -> impl Strategy<Value = ScalarType> {
    prop::sample::select(vec![
        ScalarType::I8,
        ScalarType::U8,
        ScalarType::I16,
        ScalarType::U16,
        ScalarType::I32,
        ScalarType::U32,
        ScalarType::I64,
    ])
}

fn spec_strategy() -> impl Strategy<Value = (WorkloadSpec, u64)> {
    (
        1usize..=4,
        1usize..=8,
        0.0f64..=1.0,
        0.0f64..=1.0,
        elem_strategy(),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(s, l, bias, reuse, elem, runtime_align, seed)| {
            let spec = WorkloadSpec::new(s, l)
                .bias(bias)
                .reuse(reuse)
                .elem(elem)
                .trip(TripSpec::KnownInRange(117, 130))
                .runtime_align(runtime_align);
            (spec, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The crown jewel: any loop the generator can produce, simdized
    /// under any applicable scheme, computes exactly what the scalar
    /// loop computes.
    #[test]
    fn any_workload_verifies((spec, seed) in spec_strategy(), scheme_idx in 0usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = synthesize(&spec, &mut rng);
        let schemes = if spec.runtime_align {
            Scheme::runtime_contenders()
        } else {
            Scheme::contenders()
        };
        let scheme = schemes[scheme_idx % schemes.len()];
        let report = Simdizer::new()
            .scheme(scheme)
            .evaluate_with(&program, &DiffConfig::with_seed(seed ^ 0x5A5A))
            .unwrap();
        prop_assert!(report.verified);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every policy yields a graph satisfying (C.2)/(C.3), and the
    /// placement quality ordering lazy ≤ eager holds.
    #[test]
    fn policies_valid_and_ordered((spec, seed) in spec_strategy()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = spec.runtime_align(false);
        let program = synthesize(&spec, &mut rng);
        let graph = ReorgGraph::build(&program, VectorShape::V16).unwrap();
        let mut counts = std::collections::HashMap::new();
        for policy in Policy::ALL {
            let placed = graph.with_policy(policy).unwrap();
            placed.validate().unwrap();
            counts.insert(policy, placed.shift_count());
        }
        prop_assert!(counts[&Policy::Lazy] <= counts[&Policy::Eager]);
        // Zero shifts exactly the misaligned streams: one per
        // misaligned load occurrence plus one per misaligned store.
        let mut expected_zero = 0usize;
        for stmt in program.stmts() {
            stmt.rhs.visit_loads(&mut |r| {
                if simdize::Offset::of_ref(r, &program, VectorShape::V16)
                    != simdize::Offset::Byte(0)
                {
                    expected_zero += 1;
                }
            });
            if simdize::Offset::of_ref(stmt.target, &program, VectorShape::V16)
                != simdize::Offset::Byte(0)
            {
                expected_zero += 1;
            }
        }
        prop_assert_eq!(counts[&Policy::Zero], expected_zero);
    }

    /// After common-offset reassociation, lazy placement reaches the
    /// paper's analytic minimum of n−1 shifts per statement.
    #[test]
    fn reassoc_lazy_reaches_minimum((spec, seed) in spec_strategy()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = spec.runtime_align(false);
        let program = synthesize(&spec, &mut rng);
        let re = reassociate(&program, VectorShape::V16);
        let placed = ReorgGraph::build(&re, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Lazy)
            .unwrap();
        placed.validate().unwrap();
        let unshifted = ReorgGraph::build(&re, VectorShape::V16).unwrap();
        let stats = placed.stats();
        for s in 0..program.stmts().len() {
            let n = simdize::distinct_alignments(&unshifted, s);
            prop_assert_eq!(
                stats.per_stmt_shifts[s],
                n.saturating_sub(1),
                "statement {} of {}", s, re
            );
        }
    }

    /// Reassociation never *increases* lazy's shift count, and
    /// preserves the multiset of loads.
    #[test]
    fn reassoc_monotone((spec, seed) in spec_strategy()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = spec.runtime_align(false);
        let program = synthesize(&spec, &mut rng);
        let re = reassociate(&program, VectorShape::V16);
        let shifts = |p: &simdize::LoopProgram| {
            ReorgGraph::build(p, VectorShape::V16)
                .unwrap()
                .with_policy(Policy::Lazy)
                .unwrap()
                .shift_count()
        };
        prop_assert!(shifts(&re) <= shifts(&program));
        for (a, b) in program.stmts().iter().zip(re.stmts()) {
            let mut la = a.rhs.loads();
            let mut lb = b.rhs.loads();
            la.sort_by_key(|r| (r.array.index(), r.offset));
            lb.sort_by_key(|r| (r.array.index(), r.offset));
            prop_assert_eq!(la, lb);
        }
    }

    /// Textual round trip: printing a program and re-parsing it yields
    /// the same program.
    #[test]
    fn source_roundtrip((spec, seed) in spec_strategy()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = synthesize(&spec, &mut rng);
        let reparsed = parse_program(&program.to_source()).unwrap();
        prop_assert_eq!(program, reparsed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Software pipelining never loads more than the naive generator
    /// on long loops without cross-statement array sharing. (With heavy
    /// reuse the comparison genuinely goes both ways: LVN dedupes the
    /// naive code's identical shifts *across* statements, while each SP
    /// carried chain is private — the paper's harmonic means average
    /// over this.)
    #[test]
    fn sp_never_loads_more((spec, seed) in spec_strategy()) {
        let spec = spec.reuse(0.0).trip(TripSpec::Known(1000));
        let mut rng = StdRng::seed_from_u64(seed);
        let program = synthesize(&spec, &mut rng);
        let policy = if spec.runtime_align { Policy::Zero } else { Policy::Lazy };
        let naive = Simdizer::new()
            .policy(policy)
            .reuse(ReuseMode::None)
            .evaluate_with(&program, &DiffConfig::with_seed(seed))
            .unwrap();
        let sp = Simdizer::new()
            .policy(policy)
            .reuse(ReuseMode::SoftwarePipeline)
            .evaluate_with(&program, &DiffConfig::with_seed(seed))
            .unwrap();
        prop_assert!(sp.stats.loads <= naive.stats.loads);
        prop_assert!(sp.stats.total() <= naive.stats.total() + 16);
    }
}

proptest! {
    /// Lane value algebra: wrapping ops are closed and obey the
    /// expected identities for every element type.
    #[test]
    fn value_algebra(bits_a in any::<u64>(), bits_b in any::<u64>(), elem in elem_strategy()) {
        let a = Value::new(elem, bits_a);
        let b = Value::new(elem, bits_b);
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        prop_assert_eq!(a.wrapping_mul(b), b.wrapping_mul(a));
        prop_assert_eq!(a.min_lane(b), b.min_lane(a));
        prop_assert_eq!(a.max_lane(b).max_lane(b), a.max_lane(b));
        prop_assert_eq!(a.wrapping_sub(b).wrapping_add(b), a);
        prop_assert_eq!(a.not().not(), a);
        prop_assert_eq!(a.wrapping_neg().wrapping_neg(), a);
        prop_assert_eq!(Value::from_le_bytes(elem, &a.to_le_bytes()), a);
        // min/max bracket both operands.
        let lo = a.min_lane(b).as_i64();
        let hi = a.max_lane(b).as_i64();
        prop_assert!(lo <= hi);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The strided extension: any mixed-stride workload (strides 1, 2,
    /// 4; compile-time alignments and trip counts) verifies against the
    /// scalar oracle.
    #[test]
    fn strided_workloads_verify(
        s in 1usize..=3,
        l in 1usize..=5,
        bias in 0.0f64..=1.0,
        reuse in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let spec = WorkloadSpec::new(s, l)
            .bias(bias)
            .reuse(reuse)
            .trip(TripSpec::KnownInRange(117, 130))
            .strides(vec![1, 2, 4]);
        let mut rng = StdRng::seed_from_u64(seed);
        let program = synthesize(&spec, &mut rng);
        let report = Simdizer::new()
            .evaluate_with(&program, &DiffConfig::with_seed(seed ^ 0xFEED))
            .unwrap();
        prop_assert!(report.verified);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reductions: random expressions folded with every reassociable
    /// operation match the scalar fold exactly (wrapping arithmetic is
    /// order-insensitive for these ops).
    #[test]
    fn reductions_verify(
        op_idx in 0usize..7,
        elem in elem_strategy(),
        loads in 1usize..=4,
        misalign in 0u32..16,
        ub in 100u64..400,
        seed in any::<u64>(),
    ) {
        use simdize::{BinOp, LoopBuilder};
        let ops = [
            BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max,
            BinOp::And, BinOp::Or, BinOp::Xor,
        ];
        let op = ops[op_idx];
        let d = elem.size() as u32;
        let mut b = LoopBuilder::new(elem);
        let acc = b.array("acc", 32, misalign - misalign % d);
        let len = ub + 32;
        let rhs = (0..loads)
            .map(|l| {
                let arr = b.array(format!("x{l}"), len, (l as u32 * d) % 16);
                arr.load(l as i64)
            })
            .reduce(|a, e| simdize::Expr::binary(op, a, e))
            .unwrap();
        b.reduce(acc.at(1), op, rhs);
        let program = b.finish(ub).unwrap();
        let report = Simdizer::new()
            .evaluate_with(&program, &DiffConfig::with_seed(seed))
            .unwrap();
        prop_assert!(report.verified);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics: arbitrary input is either a valid
    /// program or a clean error.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse_program(&input);
    }

    /// Structured fuzzing: near-miss programs built from valid fragments
    /// with random mutations still never panic the parser.
    #[test]
    fn parser_survives_mutations(
        cut_at in 0usize..200,
        insert in "[\\[\\]{}();:=+*@?0-9a-z ]{0,8}",
    ) {
        let base = "arrays { a: i32[128] @ 0; b: i32[128] @ 4; }
                    params { k; }
                    for i in 0..ub { a[i+3] += b[2*i+1] * k; }";
        let cut = cut_at.min(base.len());
        // Cut at a char boundary and splice random tokens in.
        let mut at = cut;
        while !base.is_char_boundary(at) {
            at -= 1;
        }
        let mutated = format!("{}{}{}", &base[..at], insert, &base[at..]);
        let _ = parse_program(&mutated);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every program the pipeline generates passes the static VIR
    /// verifier (SSA discipline, permute/shift/splice ranges).
    #[test]
    fn generated_programs_pass_the_verifier(
        (spec, seed) in spec_strategy(),
        scheme_idx in 0usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = synthesize(&spec, &mut rng);
        let schemes = if spec.runtime_align {
            Scheme::runtime_contenders()
        } else {
            Scheme::contenders()
        };
        let scheme = schemes[scheme_idx % schemes.len()];
        let compiled = Simdizer::new().scheme(scheme).compile(&program).unwrap();
        simdize::verify_program(&compiled).unwrap();
    }
}
