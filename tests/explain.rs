//! The explain layer's contract tests: the versioned JSON schema is
//! golden-pinned, every generated instruction is back-linked to at
//! least one decision, the OPD accounting sums exactly to the measured
//! stats, and the checked-in worked-example docs cannot rot out of
//! sync with the compiler.

use simdize::{parse_program, Policy};
use simdize_explain::{render_json, render_markdown, ExplainReport, Explainer};

const POLICIES: [(Policy, &str); 5] = [
    (Policy::Zero, "zero"),
    (Policy::Eager, "eager"),
    (Policy::Lazy, "lazy"),
    (Policy::Dominant, "dominant"),
    (Policy::Optimal, "optimal"),
];

const LOOPS: [&str; 4] = ["figure1", "runtime", "dot_product", "deinterleave"];

fn repo(path: &str) -> String {
    format!("{}/{path}", env!("CARGO_MANIFEST_DIR"))
}

fn sample(name: &str) -> String {
    let path = repo(&format!("loops/{name}.loop"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {path}: {e}"))
}

fn explain(name: &str, policy: Policy) -> ExplainReport {
    let program = parse_program(&sample(name)).unwrap();
    Explainer::new()
        .policy(policy)
        .explain(&program)
        .unwrap_or_else(|e| panic!("{name}/{}: {e}", policy.name()))
}

/// Pins the `simdize-explain/v1` JSON documents for Figure 1 under all
/// five policies, byte for byte. If an intentional pipeline change
/// shifts a decision or a count, re-verify and regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test explain`.
#[test]
fn figure1_json_golden() {
    for (policy, pname) in POLICIES {
        let json = render_json(&explain("figure1", policy));
        let path = repo(&format!("tests/golden/explain-figure1-{pname}.json"));
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, format!("{json}\n")).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {path}: {e} (run with UPDATE_GOLDEN=1)"));
        assert_eq!(
            expected.trim_end(),
            json,
            "golden drift for figure1/{pname}; if intended, UPDATE_GOLDEN=1 and re-review"
        );
    }
}

/// The schema discriminants the v1 contract promises, independent of
/// the golden bytes.
#[test]
fn json_schema_fields() {
    let json = render_json(&explain("figure1", Policy::Dominant));
    assert!(json.starts_with("{\"schema\":\"simdize-explain/v1\",\"mode\":\"stream\""));
    for key in [
        "\"loop\":", "\"decisions\":", "\"program\":", "\"accounting\":", "\"stats\":",
        "\"verified\":", "\"engine\":",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
    let inapp = render_json(&explain("runtime", Policy::Eager));
    assert!(inapp.contains("\"mode\":\"inapplicable\""));
    assert!(inapp.contains("\"explanation\":"));
    let strided = render_json(&explain("deinterleave", Policy::Zero));
    assert!(strided.contains("\"mode\":\"strided\""));
    assert!(strided.contains("\"model_opd\":"));
}

/// Every instruction of every stream report is back-linked to at least
/// one decision — the tentpole's coverage guarantee.
#[test]
fn every_instruction_is_backlinked() {
    for name in LOOPS {
        for (policy, pname) in POLICIES {
            let ExplainReport::Stream(r) = explain(name, policy) else {
                continue;
            };
            for section in &r.sections {
                for inst in &section.insts {
                    assert!(
                        !inst.links.is_empty(),
                        "{name}/{pname}: `{}` in {} has no decision links",
                        inst.text,
                        section.name
                    );
                }
            }
            assert!(r.verified, "{name}/{pname}");
            assert!(r.engine_matches, "{name}/{pname}");
        }
    }
}

/// The accounting rows sum *exactly* to the engine's measured total
/// for every loop × policy — no operation goes unattributed.
#[test]
fn accounting_covers_every_op() {
    for name in LOOPS {
        for (policy, pname) in POLICIES {
            let ExplainReport::Stream(r) = explain(name, policy) else {
                continue;
            };
            let sum: u64 = r.accounting.rows.iter().map(|row| row.contribution).sum();
            assert_eq!(sum, r.accounting.total, "{name}/{pname}");
            assert_eq!(sum, r.stats.total(), "{name}/{pname}");
            // Rows with operations must carry a decision attribution
            // (unaligned_mem is pure hardware cost and exempt).
            for row in &r.accounting.rows {
                if row.count > 0 && row.class != "unaligned_mem" {
                    assert!(
                        !row.links.is_empty(),
                        "{name}/{pname}: row `{}` unattributed",
                        row.class
                    );
                }
            }
        }
    }
}

/// Inapplicable (loop, policy) pairs produce an explanation page, not
/// an error — the docs generator relies on this to cover the full
/// loop × policy matrix.
#[test]
fn inapplicable_is_a_page_not_an_error() {
    for (policy, _) in &POLICIES[1..] {
        let report = explain("runtime", *policy);
        let ExplainReport::Inapplicable(r) = report else {
            panic!("runtime/{} should be inapplicable", policy.name());
        };
        assert!(r.error.contains("zero-shift"), "{}", r.error);
        assert!(r.explanation.contains("§4.4"), "{}", r.explanation);
    }
    // Zero-shift is the one policy that does apply (§4.4).
    assert!(matches!(
        explain("runtime", Policy::Zero),
        ExplainReport::Stream(_)
    ));
}

/// The checked-in worked examples must match what the compiler
/// produces today (the in-process twin of `scripts/gen-docs.sh
/// --check`).
#[test]
fn worked_example_docs_are_current() {
    for name in LOOPS {
        for (policy, pname) in POLICIES {
            let path = repo(&format!("docs/worked-examples/{name}-{pname}.md"));
            let checked_in = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing {path}: {e} (run scripts/gen-docs.sh)"));
            let fresh = render_markdown(&explain(name, policy));
            assert_eq!(
                checked_in, fresh,
                "{path} is stale; run scripts/gen-docs.sh"
            );
        }
    }
}
