//! End-to-end tests of the reduction extension (§7: scalar accesses in
//! non-address computation): `out[k] op= expr(i)` folded over the loop.

use simdize::{
    BinOp, Expr, LoopBuilder, LoopProgram, Report, ScalarType, Scheme, SimdizeError, Simdizer,
};

fn verify(p: &LoopProgram, seed: u64) -> Report {
    let r = Simdizer::new()
        .evaluate(p, seed)
        .unwrap_or_else(|e| panic!("reduction loop failed: {e}\n{p}"));
    assert!(r.verified, "reduction diverged:\n{p}");
    r
}

#[test]
fn dot_product() {
    // acc[0] += x[i+1] * y[i+2]: both inputs misaligned.
    let mut b = LoopBuilder::new(ScalarType::I32);
    let acc = b.array("acc", 4, 4);
    let x = b.array("x", 1024, 4);
    let y = b.array("y", 1024, 8);
    b.reduce(acc.at(0), BinOp::Add, x.load(1) * y.load(2));
    let p = b.finish(1000).unwrap();
    let r = verify(&p, 1);
    assert!(r.speedup > 2.0, "speedup {}", r.speedup);
}

#[test]
fn all_reduction_ops_and_residues() {
    for op in [
        BinOp::Add,
        BinOp::Mul,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
    ] {
        for ub in [96u64, 97, 99, 100] {
            let mut b = LoopBuilder::new(ScalarType::I16);
            let acc = b.array("acc", 8, 2);
            let x = b.array("x", 128, 6);
            b.reduce(acc.at(3), op, x.load(1));
            let p = b.finish(ub).unwrap();
            verify(&p, ub ^ 0xC0FFEE);
        }
    }
}

#[test]
fn unsigned_min_max_identities() {
    for op in [BinOp::Min, BinOp::Max] {
        let mut b = LoopBuilder::new(ScalarType::U8);
        let acc = b.array("acc", 16, 0);
        let x = b.array("x", 256, 3);
        b.reduce(acc.at(5), op, x.load(0));
        let p = b.finish(200).unwrap();
        verify(&p, 77);
    }
}

#[test]
fn mixed_reduction_and_store_statements() {
    // A loop computing both an output stream and a running checksum.
    let mut b = LoopBuilder::new(ScalarType::I32);
    let out = b.array("out", 256, 12);
    let sum = b.array("sum", 4, 0);
    let x = b.array("x", 256, 4);
    let y = b.array("y", 256, 8);
    b.stmt(out.at(3), x.load(1) + y.load(2));
    b.reduce(sum.at(0), BinOp::Add, x.load(1) * y.load(2));
    let p = b.finish(200).unwrap();
    for scheme in Scheme::contenders() {
        let r = Simdizer::new()
            .scheme(scheme)
            .evaluate(&p, 5)
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(r.verified, "{scheme}");
    }
}

#[test]
fn reduction_with_runtime_aligned_inputs() {
    // Input alignments unknown (zero-shift handles them); only the
    // accumulator's alignment must be static.
    let mut b = LoopBuilder::new(ScalarType::I32);
    let acc = b.array("acc", 4, 8);
    let x = b.array_runtime_align("x", 512);
    b.reduce(acc.at(0), BinOp::Add, x.load(3));
    let p = b.finish(500).unwrap();
    for seed in 0..8 {
        verify(&p, seed);
    }
}

#[test]
fn reduction_rejections() {
    // Non-reassociable op is rejected at IR validation.
    let mut b = LoopBuilder::new(ScalarType::I32);
    let acc = b.array("acc", 4, 0);
    let x = b.array("x", 64, 0);
    b.reduce(acc.at(0), BinOp::Sub, x.load(0));
    assert!(b.finish(32).is_err());

    // Runtime trip counts are rejected at code generation.
    let mut b = LoopBuilder::new(ScalarType::I32);
    let acc = b.array("acc", 4, 0);
    let x = b.array("x", 8192, 0);
    b.reduce(acc.at(0), BinOp::Add, x.load(0));
    let p = b.finish_runtime_trip().unwrap();
    assert!(matches!(
        Simdizer::new().compile(&p),
        Err(SimdizeError::Gen(
            simdize::GenCodeError::ReductionNeedsKnownTrip
        ))
    ));

    // Runtime-aligned accumulators are rejected at code generation.
    let mut b = LoopBuilder::new(ScalarType::I32);
    let acc = b.array_runtime_align("acc", 4);
    let x = b.array("x", 128, 0);
    b.reduce(acc.at(0), BinOp::Add, x.load(0));
    let p = b.finish(100).unwrap();
    assert!(matches!(
        Simdizer::new().compile(&p),
        Err(SimdizeError::Gen(
            simdize::GenCodeError::ReductionNeedsKnownAlignment
        ))
    ));
}

#[test]
fn tiny_trips_fall_back_to_scalar() {
    let mut b = LoopBuilder::new(ScalarType::I32);
    let acc = b.array("acc", 4, 0);
    let x = b.array("x", 64, 4);
    b.reduce(acc.at(1), BinOp::Add, x.load(2));
    let p = b.finish(10).unwrap(); // 10 <= 3B = 12
    let r = verify(&p, 3);
    assert!(r.stats.used_fallback);
}

#[test]
fn wide_accumulation_is_exact() {
    // Wrapping adds reassociate exactly: a long i8 sum must match the
    // scalar fold bit for bit.
    let mut b = LoopBuilder::new(ScalarType::I8);
    let acc = b.array("acc", 16, 7);
    let x = b.array("x", 4096, 3);
    let y = b.array("y", 4096, 9);
    b.reduce(acc.at(2), BinOp::Add, x.load(1) + y.load(5));
    let p = b.finish(4000).unwrap();
    let r = verify(&p, 11);
    // 16 lanes of i8: near-peak accumulation throughput.
    assert!(r.speedup > 4.0, "speedup {}", r.speedup);
    let _ = Expr::constant(0);
}
