//! Wire-protocol contract tests for `simdize serve`: golden-pinned
//! request/response round-trips over a real TCP connection (trace ids
//! and timing fields normalized), malformed-request error paths,
//! backpressure, trace-id uniqueness, the flight recorder's ring and
//! dump verb, the Prometheus `/metrics` endpoint, and a
//! concurrent-client stress test asserting that responses served from
//! the kernel cache are byte-identical to cold ones.

use simdize_server::{Server, ServerConfig};
use simdize_telemetry::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

fn repo(path: &str) -> String {
    format!("{}/{path}", env!("CARGO_MANIFEST_DIR"))
}

fn sample(name: &str) -> String {
    let path = repo(&format!("loops/{name}.loop"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {path}: {e}"))
}

/// A running server plus a helper to open request/response clients.
struct Harness {
    addr: std::net::SocketAddr,
    handle: Option<std::thread::JoinHandle<std::io::Result<simdize_server::ServeSummary>>>,
}

struct Client {
    conn: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let conn = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(conn.try_clone().unwrap());
        Client { conn, reader }
    }

    /// Sends one request line and reads the one response line.
    fn roundtrip(&mut self, request: &str) -> String {
        writeln!(self.conn, "{request}").unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        assert!(line.ends_with('\n'), "response not newline-terminated");
        line.trim_end().to_string()
    }
}

impl Harness {
    fn start(config: ServerConfig) -> Harness {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.serve());
        Harness {
            addr,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr)
    }

    fn shutdown(mut self) -> simdize_server::ServeSummary {
        let mut client = self.client();
        let resp = client.roundtrip(r#"{"v":1,"id":9999,"cmd":"shutdown"}"#);
        assert!(resp.contains("\"stopping\":true"), "{resp}");
        self.handle.take().unwrap().join().unwrap().unwrap()
    }
}

/// Escapes loop source for embedding in a request line.
fn inline(source: &str) -> String {
    json::escape(source)
}

/// Replaces every `"<key>":<integer>` value with 0 (hand-rolled — the
/// workspace carries no regex dependency).
fn zero_int_field(line: &mut String, key: &str) {
    let needle = format!("\"{key}\":");
    let mut from = 0;
    while let Some(pos) = line[from..].find(&needle) {
        let start = from + pos + needle.len();
        let end = line[start..]
            .find(|c: char| !c.is_ascii_digit())
            .map_or(line.len(), |n| start + n);
        if end > start {
            line.replace_range(start..end, "0");
        }
        from = start + 1;
    }
}

/// Replaces every `"<key>":"<value>"` value with `fixed`.
fn fix_str_field(line: &mut String, key: &str, fixed: &str) {
    let needle = format!("\"{key}\":\"");
    let mut from = 0;
    while let Some(pos) = line[from..].find(&needle) {
        let start = from + pos + needle.len();
        let Some(len) = line[start..].find('"') else {
            break;
        };
        line.replace_range(start..start + len, fixed);
        from = start + fixed.len() + 1;
    }
}

/// Normalizes the run-order- and clock-dependent fields of a response:
/// trace ids (a process-scoped counter), thread tracks, flight sequence
/// numbers, the dispatched ISA name, and every wall-clock field. Verbs,
/// attributes, counts and payload shape stay exact — this is the form
/// the golden transcript pins.
fn normalize(line: &str) -> String {
    let mut out = line.to_string();
    for key in [
        "wall_ms", "wall_us", "latency_us", "seq", "tid", "start_ns", "dur_ns", "total_ns",
        "p50_ns", "p95_ns", "max_ns",
    ] {
        zero_int_field(&mut out, key);
    }
    for (key, fixed) in [("trace", "c0-0"), ("trace_id", "c0-0"), ("isa", "host")] {
        fix_str_field(&mut out, key, fixed);
    }
    out
}

/// The golden round-trip corpus: deterministic request/response pairs
/// (everything except `stats`, whose latency numbers necessarily
/// differ run to run).
fn golden_corpus() -> Vec<String> {
    let fig1 = inline(&sample("figure1"));
    let runtime = inline(&sample("runtime"));
    vec![
        r#"{"v":1,"id":1,"cmd":"ping"}"#.to_string(),
        format!(r#"{{"v":1,"id":2,"cmd":"compile","source":"{fig1}"}}"#),
        format!(r#"{{"v":1,"id":3,"cmd":"analyze","source":"{fig1}"}}"#),
        format!(r#"{{"v":1,"id":4,"cmd":"run","source":"{fig1}","seed":7}}"#),
        format!(r#"{{"v":1,"id":5,"cmd":"run","source":"{runtime}","seed":3,"ub":500}}"#),
        format!(r#"{{"v":1,"id":6,"cmd":"sweep","source":"{runtime}","seed":1,"ub":300,"count":6}}"#),
        format!(r#"{{"v":1,"id":7,"cmd":"explain","source":"{fig1}","policy":"zero"}}"#),
        format!(r#"{{"v":1,"id":8,"cmd":"compile","source":"{runtime}","policy":"eager"}}"#),
        // The request-scoped trace export and the flight recorder's
        // dump, pinned right after the deterministic exec prefix (the
        // dump replays every entry recorded so far on this server).
        format!(r#"{{"v":1,"id":17,"cmd":"trace","source":"{fig1}"}}"#),
        r#"{"v":1,"id":18,"cmd":"dump"}"#.to_string(),
        r#"{"v":1,"id":9,"cmd":"frobnicate"}"#.to_string(),
        r#"{"v":2,"id":10,"cmd":"ping"}"#.to_string(),
        format!(r#"{{"v":1,"id":11,"cmd":"run","source":"{fig1}","policy":"unknown"}}"#),
        r#"{"v":1,"id":12,"cmd":"run","source":"arrays { broken"}"#.to_string(),
        format!(r#"{{"v":1,"id":13,"cmd":"verify","source":"{fig1}"}}"#),
        // The simd backend reports identical stats by construction, so
        // these responses match their fused-engine twins byte for byte
        // on every host — which is exactly what the golden pins.
        format!(r#"{{"v":1,"id":14,"cmd":"run","source":"{fig1}","seed":7,"engine":"simd"}}"#),
        format!(
            r#"{{"v":1,"id":15,"cmd":"sweep","source":"{runtime}","seed":1,"ub":300,"count":6,"engine":"simd"}}"#
        ),
        format!(r#"{{"v":1,"id":16,"cmd":"run","source":"{fig1}","engine":"jit"}}"#),
    ]
}

/// Pins the wire protocol byte for byte: each corpus request's
/// response over a live server must match `tests/golden/server-wire.txt`
/// (alternating request/response lines). Regenerate after an
/// intentional protocol change with
/// `UPDATE_GOLDEN=1 cargo test --test server`.
#[test]
fn wire_round_trips_golden() {
    let harness = Harness::start(ServerConfig::default());
    let mut client = harness.client();
    let mut transcript = String::new();
    for request in golden_corpus() {
        let response = client.roundtrip(&request);
        assert!(
            response.contains("\"trace\":\"c"),
            "response carries no trace id: {response}"
        );
        transcript.push_str(&request);
        transcript.push('\n');
        transcript.push_str(&normalize(&response));
        transcript.push('\n');
    }
    harness.shutdown();

    let path = repo("tests/golden/server-wire.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &transcript).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e} (run with UPDATE_GOLDEN=1)"));
    assert_eq!(
        expected, transcript,
        "wire-protocol drift; if intended, UPDATE_GOLDEN=1 and re-review"
    );
}

/// Malformed requests get error envelopes (with the id echoed whenever
/// it was recoverable) and never kill the connection.
#[test]
fn malformed_requests_answer_errors_and_keep_the_connection() {
    let harness = Harness::start(ServerConfig::default());
    let mut client = harness.client();
    for (request, expect) in [
        ("this is not json", "bad JSON"),
        (r#"{"v":1,"cmd":"ping"}"#, "missing request `id`"),
        (r#"{"id":1,"cmd":"ping"}"#, "missing protocol version"),
        (r#"{"v":9,"id":1,"cmd":"ping"}"#, "unsupported protocol version"),
        (r#"{"v":1,"id":1}"#, "missing `cmd`"),
        (r#"{"v":1,"id":1,"cmd":"nope"}"#, "unknown cmd"),
        (r#"{"v":1,"id":1,"cmd":"run"}"#, "missing `source`"),
        (
            r#"{"v":1,"id":1,"cmd":"run","source":"x","params":5}"#,
            "`params` must be an array",
        ),
    ] {
        let response = client.roundtrip(request);
        let doc = json::parse(&response).unwrap_or_else(|e| panic!("{response}: {e}"));
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)), "{response}");
        let error = doc.get("error").and_then(Json::as_str).unwrap();
        assert!(error.contains(expect), "{response} missing {expect:?}");
    }
    // The connection survived all of it.
    let pong = client.roundtrip(r#"{"v":1,"id":42,"cmd":"ping"}"#);
    assert!(pong.contains("\"pong\":true"), "{pong}");
    harness.shutdown();
}

/// `stats` reports latency percentiles from the telemetry histograms
/// plus the shared cache's counters, and repeated identical `run`
/// requests hit the cache.
#[test]
fn stats_report_latency_and_cache_counters() {
    let harness = Harness::start(ServerConfig::default());
    let mut client = harness.client();
    let run = format!(
        r#"{{"v":1,"id":1,"cmd":"run","source":"{}","seed":5}}"#,
        inline(&sample("figure1"))
    );
    let first = client.roundtrip(&run);
    assert!(first.contains("\"verified\":true"), "{first}");
    for _ in 0..4 {
        // Each response carries its own trace id; normalized, the
        // payloads must not drift.
        assert_eq!(
            normalize(&client.roundtrip(&run)),
            normalize(&first),
            "responses must not drift"
        );
    }
    let stats = client.roundtrip(r#"{"v":1,"id":2,"cmd":"stats"}"#);
    let doc = json::parse(&stats).unwrap();
    let result = doc.get("result").unwrap();
    assert_eq!(
        result.get("schema").and_then(Json::as_str),
        Some("simdize-wire/v1")
    );
    // The dispatched ISA is reported so bench rows and cache-occupancy
    // numbers are interpretable across hosts.
    assert_eq!(
        result.get("isa").and_then(Json::as_str),
        Some(simdize::IsaLevel::detect().name()),
        "{stats}"
    );
    let latency = result.get("latency").unwrap();
    assert_eq!(latency.get("count").and_then(Json::as_f64), Some(5.0));
    assert!(latency.get("p50_us").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(
        latency.get("p95_us").and_then(Json::as_f64).unwrap()
            >= latency.get("p50_us").and_then(Json::as_f64).unwrap()
    );
    assert!(
        result
            .get("requests_per_sec")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0
    );
    let cache = result.get("cache").unwrap();
    // One bake on the first run, four hits after.
    assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(1.0));
    assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(4.0));
    assert_eq!(cache.get("occupied").and_then(Json::as_f64), Some(1.0));
    harness.shutdown();
}

/// The same program executed through both backends must occupy two
/// distinct kernel-cache entries — the backend (and, for simd, the
/// dispatched ISA level) is part of the cache key, so fused and
/// intrinsic bakes never collide across server requests — while the
/// response payloads stay byte-identical.
#[test]
fn backends_occupy_distinct_cache_entries_across_requests() {
    let harness = Harness::start(ServerConfig::default());
    let mut client = harness.client();
    let src = inline(&sample("figure1"));
    let baked = format!(r#"{{"v":1,"id":1,"cmd":"run","source":"{src}","seed":5}}"#);
    let simd =
        format!(r#"{{"v":1,"id":1,"cmd":"run","source":"{src}","seed":5,"engine":"simd"}}"#);
    let first = client.roundtrip(&baked);
    assert!(first.contains("\"verified\":true"), "{first}");
    assert_eq!(
        normalize(&client.roundtrip(&simd)),
        normalize(&first),
        "stats are computed pre-lowering, so the payloads must agree"
    );
    let stats = client.roundtrip(r#"{"v":1,"id":2,"cmd":"stats"}"#);
    let doc = json::parse(&stats).unwrap();
    let cache = doc.get("result").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(2.0), "{stats}");
    assert_eq!(cache.get("occupied").and_then(Json::as_f64), Some(2.0), "{stats}");
    // Replaying both verbs now hits both entries.
    client.roundtrip(&baked);
    client.roundtrip(&simd);
    let stats = client.roundtrip(r#"{"v":1,"id":3,"cmd":"stats"}"#);
    let doc = json::parse(&stats).unwrap();
    let cache = doc.get("result").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(2.0), "{stats}");
    assert_eq!(cache.get("occupied").and_then(Json::as_f64), Some(2.0), "{stats}");
    harness.shutdown();
}

/// A queue of depth 1 with a single worker under a burst of parallel
/// exec requests must reject some with the `busy` envelope — explicit
/// backpressure instead of unbounded buffering — while every accepted
/// request still completes correctly.
#[test]
fn full_queue_answers_busy() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let harness = Harness::start(config);
    let source = inline(&sample("runtime"));
    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let addr = harness.addr;
    let results: Vec<(u64, u64)> = (0..clients)
        .map(|k| {
            let barrier = Arc::clone(&barrier);
            let request = format!(
                r#"{{"v":1,"id":{k},"cmd":"sweep","source":"{source}","seed":{k},"ub":400,"count":8}}"#
            );
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                barrier.wait();
                let mut done = 0u64;
                let mut busy = 0u64;
                for _ in 0..3 {
                    let response = client.roundtrip(&request);
                    let doc = json::parse(&response).unwrap();
                    if doc.get("busy") == Some(&Json::Bool(true)) {
                        busy += 1;
                    } else {
                        assert!(response.contains("\"verified\":8"), "{response}");
                        done += 1;
                    }
                }
                (done, busy)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    let done: u64 = results.iter().map(|(d, _)| d).sum();
    let busy: u64 = results.iter().map(|(_, b)| b).sum();
    assert!(busy > 0, "no backpressure observed (done={done})");
    assert!(done > 0, "no request ever completed");
    let summary = harness.shutdown();
    assert_eq!(summary.busy, busy);
    harness_requests_check(summary.requests, done + busy);
}

fn harness_requests_check(total: u64, workload: u64) {
    // The shutdown request itself is also counted.
    assert_eq!(total, workload + 1);
}

/// Many concurrent clients issuing an identical mix of requests: every
/// response must be byte-identical across clients and across
/// cache-cold/cache-warm servers. This is the contract that lets the
/// kernel cache be transparent.
#[test]
fn concurrent_clients_get_byte_identical_cached_responses() {
    let harness = Harness::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let fig1 = inline(&sample("figure1"));
    let runtime = inline(&sample("runtime"));
    let requests: Vec<String> = vec![
        format!(r#"{{"v":1,"id":1,"cmd":"run","source":"{fig1}","seed":11}}"#),
        format!(r#"{{"v":1,"id":2,"cmd":"run","source":"{runtime}","seed":4,"ub":350}}"#),
        format!(r#"{{"v":1,"id":3,"cmd":"sweep","source":"{fig1}","seed":0,"count":5}}"#),
        format!(r#"{{"v":1,"id":4,"cmd":"compile","source":"{runtime}"}}"#),
    ];

    // Cache-cold reference: a dedicated server answering each request
    // exactly once.
    let reference: Vec<String> = {
        let cold = Harness::start(ServerConfig::default());
        let mut client = cold.client();
        let out = requests
            .iter()
            .map(|r| normalize(&client.roundtrip(r)))
            .collect();
        cold.shutdown();
        out
    };

    let clients = 16;
    let rounds = 3;
    let barrier = Arc::new(Barrier::new(clients));
    let addr = harness.addr;
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let requests = requests.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                barrier.wait();
                for _ in 0..rounds {
                    for (request, expected) in requests.iter().zip(&reference) {
                        let response = client.roundtrip(request);
                        assert_eq!(
                            &normalize(&response),
                            expected,
                            "cached response differs from cache-cold response"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = {
        let mut client = harness.client();
        client.roundtrip(r#"{"v":1,"id":99,"cmd":"stats"}"#)
    };
    let doc = json::parse(&stats).unwrap();
    let cache = doc.get("result").unwrap().get("cache").unwrap();
    let hits = cache.get("hits").and_then(Json::as_f64).unwrap();
    let misses = cache.get("misses").and_then(Json::as_f64).unwrap();
    // 16 clients × 3 rounds of the same kernels: all but the first
    // bakes must hit.
    assert!(
        hits > misses,
        "expected warm cache, got {hits} hits / {misses} misses"
    );
    harness.shutdown();
}

/// Pulls the envelope's `"trace":"..."` field out of a response line.
fn trace_id_of(line: &str) -> String {
    let start = line
        .find("\"trace\":\"")
        .unwrap_or_else(|| panic!("no trace id in {line}"))
        + "\"trace\":\"".len();
    let end = start + line[start..].find('"').unwrap();
    line[start..end].to_string()
}

/// Every response — success, error and control alike — echoes a trace
/// id; ids are unique across requests, and the connection component
/// distinguishes clients.
#[test]
fn every_response_echoes_a_unique_trace_id() {
    let harness = Harness::start(ServerConfig::default());
    let mut a = harness.client();
    let mut b = harness.client();
    let mut seen = std::collections::HashSet::new();
    let mut conns = std::collections::HashSet::new();
    for client in [&mut a, &mut b] {
        for request in [
            r#"{"v":1,"id":1,"cmd":"ping"}"#,
            r#"{"v":1,"id":2,"cmd":"run","source":"arrays { broken"}"#,
            r#"{"v":1,"id":3,"cmd":"stats"}"#,
            "not json at all",
        ] {
            let response = client.roundtrip(request);
            let id = trace_id_of(&response);
            let (conn, seq) = id[1..].split_once('-').unwrap_or_else(|| panic!("{id}"));
            conn.parse::<u64>().unwrap();
            seq.parse::<u64>().unwrap();
            assert!(seen.insert(id.clone()), "duplicate trace id {id}");
            conns.insert(conn.to_string());
        }
    }
    assert_eq!(conns.len(), 2, "each connection gets its own id component");
    harness.shutdown();
}

/// A failed request lands in the flight recorder: the `dump` verb's
/// ring replay carries that request's trace id, verb and error.
#[test]
fn flight_dump_captures_forced_errors() {
    let harness = Harness::start(ServerConfig::default());
    let mut client = harness.client();
    let bad = client.roundtrip(r#"{"v":1,"id":1,"cmd":"run","source":"arrays { broken"}"#);
    assert!(bad.contains("\"ok\":false"), "{bad}");
    let failed_id = trace_id_of(&bad);
    let dump = client.roundtrip(r#"{"v":1,"id":2,"cmd":"dump"}"#);
    assert!(dump.contains("\"schema\":\"simdize-flight/v1\""), "{dump}");
    assert!(dump.contains(&format!("\"trace_id\":\"{failed_id}\"")), "{dump}");
    assert!(dump.contains("\"ok\":false"), "{dump}");
    assert!(dump.contains("expected"), "error text retained: {dump}");
    // The stats verb reports the recorder's fill level.
    let stats = client.roundtrip(r#"{"v":1,"id":3,"cmd":"stats"}"#);
    let doc = json::parse(&stats).unwrap();
    let flight = doc.get("result").unwrap().get("flight").unwrap();
    assert!(flight.get("recorded").and_then(Json::as_f64).unwrap() >= 2.0);
    assert_eq!(
        flight.get("capacity").and_then(Json::as_f64),
        Some(ServerConfig::default().flight_capacity as f64)
    );
    harness.shutdown();
}

/// The ring is bounded: with a tiny capacity only the newest entries
/// survive, oldest evicted first.
#[test]
fn flight_ring_retains_only_the_newest_entries() {
    // The recorder rounds its capacity up to a stripe multiple (the
    // server uses 8 stripes), so ask for exactly one entry per stripe.
    let harness = Harness::start(ServerConfig {
        flight_capacity: 8,
        ..ServerConfig::default()
    });
    let mut client = harness.client();
    for i in 0..12 {
        client.roundtrip(&format!(r#"{{"v":1,"id":{i},"cmd":"ping"}}"#));
    }
    let dump = client.roundtrip(r#"{"v":1,"id":99,"cmd":"dump"}"#);
    let doc = json::parse(&dump).unwrap();
    let result = doc.get("result").unwrap();
    assert_eq!(result.get("capacity").and_then(Json::as_f64), Some(8.0));
    let entries = match result.get("entries").unwrap() {
        Json::Arr(a) => a,
        other => panic!("entries not an array: {other:?}"),
    };
    assert_eq!(entries.len(), 8, "{dump}");
    // Strictly increasing seq — the newest four of the ten pings.
    let seqs: Vec<f64> = entries
        .iter()
        .map(|e| e.get("seq").and_then(Json::as_f64).unwrap())
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
    harness.shutdown();
}

/// S2 regression: `verify` (like every verb) reports real wall time —
/// the response's `wall_ms` is live, and the latency histogram records
/// a nonzero observation for the request.
#[test]
fn verify_reports_real_wall_time() {
    let harness = Harness::start(ServerConfig::default());
    let mut client = harness.client();
    let verify = format!(
        r#"{{"v":1,"id":1,"cmd":"verify","source":"{}"}}"#,
        inline(&sample("figure1"))
    );
    let response = client.roundtrip(&verify);
    assert!(response.contains("\"proved\":true"), "{response}");
    let doc = json::parse(&response).unwrap();
    let wall_ms = doc
        .get("result")
        .and_then(|r| r.get("verify"))
        .and_then(|v| v.get("wall_ms"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(wall_ms > 0.0, "verify wall_ms zeroed: {response}");
    let stats = client.roundtrip(r#"{"v":1,"id":2,"cmd":"stats"}"#);
    let doc = json::parse(&stats).unwrap();
    let latency = doc.get("result").unwrap().get("latency").unwrap();
    assert!(latency.get("p50_us").and_then(Json::as_f64).unwrap() > 0.0, "{stats}");
    harness.shutdown();
}

/// The `trace` wire verb returns the versioned trace document stamped
/// with the envelope's own trace id.
#[test]
fn trace_verb_exports_the_request_scoped_timeline() {
    let harness = Harness::start(ServerConfig::default());
    let mut client = harness.client();
    let request = format!(
        r#"{{"v":1,"id":1,"cmd":"trace","source":"{}"}}"#,
        inline(&sample("figure1"))
    );
    let response = client.roundtrip(&request);
    let envelope_id = trace_id_of(&response);
    let doc = json::parse(&response).unwrap();
    let result = doc.get("result").unwrap();
    assert_eq!(
        result.get("schema").and_then(Json::as_str),
        Some("simdize-trace/v1")
    );
    assert_eq!(
        result.get("trace_id").and_then(Json::as_str),
        Some(envelope_id.as_str()),
        "envelope and document must agree: {response}"
    );
    assert_eq!(result.get("verb").and_then(Json::as_str), Some("trace"));
    let attrs = result.get("attrs").unwrap();
    assert!(attrs.get("policy").is_some(), "{response}");
    assert!(attrs.get("opd").is_some(), "{response}");
    assert!(result.get("wall_us").and_then(Json::as_f64).unwrap() > 0.0);
    harness.shutdown();
}

/// `--metrics-addr`: the side HTTP listener answers GET /metrics with
/// Prometheus text exposition and 404s everything else.
#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let config = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("metrics listener bound");
    let handle = std::thread::spawn(move || server.serve());
    let mut client = Client::connect(addr);
    client.roundtrip(r#"{"v":1,"id":1,"cmd":"ping"}"#);

    let scrape = |path: &str| -> String {
        use std::io::Read as _;
        let mut conn = TcpStream::connect(metrics_addr).unwrap();
        write!(conn, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        let mut body = String::new();
        conn.read_to_string(&mut body).unwrap();
        body
    };
    let response = scrape("/metrics");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("text/plain; version=0.0.4"), "{response}");
    assert!(response.contains("# TYPE simdize_server_requests_total counter"), "{response}");
    assert!(response.contains("simdize_server_requests_total 1"), "{response}");
    assert!(response.contains("simdize_server_flight_recorded_total"), "{response}");
    assert!(scrape("/nope").starts_with("HTTP/1.1 404"), "no 404 for unknown path");

    let resp = client.roundtrip(r#"{"v":1,"id":2,"cmd":"shutdown"}"#);
    assert!(resp.contains("\"stopping\":true"), "{resp}");
    handle.join().unwrap().unwrap();
}
