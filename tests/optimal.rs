//! Cross-checks of the exact shift-placement search: the dynamic
//! program and the independent branch-and-bound must return identical
//! minimum shift counts on every sample loop, the placed graph must
//! realize exactly the proven count, and — over a seeded matrix of
//! §5.3 synthesized loops — the optimum can never exceed any greedy
//! policy's placement.

use simdize::{
    branch_and_bound_shift_counts, optimal_shift_counts, parse_program, LoopProgram, Policy,
    ReorgGraph, Simdizer, TripSpec, VectorShape, WorkloadSpec,
};
use simdize_prng::SplitMix64;

fn repo(path: &str) -> String {
    format!("{}/{path}", env!("CARGO_MANIFEST_DIR"))
}

/// Every sample loop whose alignments are compile-time constants (the
/// optimal search, like every policy but zero-shift, refuses `@ ?`).
fn static_sample_loops() -> Vec<(String, LoopProgram)> {
    let dir = repo("loops");
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "loop"))
        .collect();
    names.sort();
    names
        .into_iter()
        .filter_map(|path| {
            let text = std::fs::read_to_string(&path).unwrap();
            let program = parse_program(&text).unwrap();
            program.all_alignments_known().then(|| {
                let name = path.file_stem().unwrap().to_string_lossy().into_owned();
                (name, program)
            })
        })
        .collect()
}

#[test]
fn dp_and_branch_and_bound_agree_on_every_sample_loop() {
    let mut covered = 0usize;
    for (name, program) in static_sample_loops() {
        // Strided loops (deinterleave) go through the gather/scatter
        // generator, not the stream reorg graph — nothing to place.
        let Ok(graph) = ReorgGraph::build(&program, VectorShape::V16) else {
            continue;
        };
        covered += 1;
        let dp: Vec<usize> = optimal_shift_counts(&graph)
            .iter()
            .map(|s| s.shifts)
            .collect();
        let lazy = graph.with_policy(Policy::Lazy).unwrap();
        let bb = branch_and_bound_shift_counts(&graph, &lazy.stats().per_stmt_shifts);
        assert_eq!(dp, bb, "{name}: DP and branch-and-bound disagree");
        // The placed graph realizes exactly the proven count.
        let placed = graph.with_policy(Policy::Optimal).unwrap();
        placed.validate().unwrap();
        assert_eq!(
            placed.shift_count(),
            dp.iter().sum::<usize>(),
            "{name}: placement does not realize the proven minimum"
        );
    }
    assert!(covered >= 3, "expected the checked-in stream sample loops");
}

#[test]
fn optimal_never_exceeds_any_greedy_policy_on_synthesized_loops() {
    // A seeded sweep across the §5.3 matrix: every greedy placement is
    // an upper bound the exact search must meet or beat, statement by
    // statement in aggregate.
    for (s, l) in [(1, 2), (1, 6), (2, 4), (3, 5)] {
        for seed in 0..8u64 {
            let spec = WorkloadSpec::new(s, l)
                .bias(0.1 * seed as f64)
                .trip(TripSpec::Known(64));
            let mut rng = SplitMix64::seed_from_u64(seed * 7919 + 13);
            let program = simdize::synthesize(&spec, &mut rng);
            let graph = ReorgGraph::build(&program, VectorShape::V16).unwrap();
            let optimal: usize = optimal_shift_counts(&graph).iter().map(|o| o.shifts).sum();
            for policy in [Policy::Zero, Policy::Eager, Policy::Lazy, Policy::Dominant] {
                let greedy = graph.with_policy(policy).unwrap().shift_count();
                assert!(
                    optimal <= greedy,
                    "S{s}*L{l} seed {seed}: optimal {optimal} > {} {greedy}",
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn optimal_scheme_verifies_end_to_end() {
    // The OPD of the full pipeline under the optimal policy is never
    // worse than under the best greedy policy (shifts are the only
    // knob the policy turns), and the simdized loop still proves
    // byte-identical to the scalar oracle.
    let program = parse_program(
        "arrays { a: i32[256] @ 0; b: i32[256] @ 0; c: i32[256] @ 0;
                  d: i32[256] @ 0; e: i32[256] @ 0; }
         for i in 0..200 { a[i+3] = (b[i+1] + c[i+1]) * d[i+2] + e[i+2]; }",
    )
    .unwrap();
    let opd_of = |policy: Policy| {
        let report = Simdizer::new()
            .policy(policy)
            .evaluate(&program, 42)
            .unwrap();
        assert!(report.verified, "{} failed verification", policy.name());
        report.opd
    };
    let optimal = opd_of(Policy::Optimal);
    let best_greedy = [Policy::Zero, Policy::Eager, Policy::Lazy, Policy::Dominant]
        .into_iter()
        .map(opd_of)
        .fold(f64::INFINITY, f64::min);
    assert!(
        optimal <= best_greedy + 1e-9,
        "optimal OPD {optimal} worse than best greedy {best_greedy}"
    );
}
