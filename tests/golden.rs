//! Golden tests: the exact generated code for representative loops.
//!
//! These freeze the code generator's output so refactors cannot
//! silently change the instruction mix the evaluation relies on. The
//! expectations were captured from differentially-verified runs; if an
//! intentional improvement changes the output, re-verify and re-run the
//! figures (EXPERIMENTS.md), then update.

use simdize::{Policy, ReuseMode, Simdizer};

fn compile(src: &str, policy: Policy) -> String {
    let p = simdize::parse_program(src).unwrap();
    Simdizer::new()
        .policy(policy)
        .reuse(ReuseMode::SoftwarePipeline)
        .unroll(false)
        .compile(&p)
        .unwrap()
        .to_string()
}

#[test]
fn figure1_zero_sp_golden() {
    // The paper's Figure 1 under zero-shift + software pipelining: left-
    // shifted load streams, a right-shifted store stream, carried
    // chains, and splice-guarded prologue and epilogue.
    let out = compile(
        "arrays { a: i32[1024] @ 0; b: i32[1024] @ 0; c: i32[1024] @ 0; }
         for i in 0..1000 { a[i+3] = b[i+1] + c[i+2]; }",
        Policy::Zero,
    );
    let expected = "\
; simdized loop: V=16 D=4 B=4 guard: ub > 12
prologue (i = 0):
  v0 = vload arr1[i-3]
  v1 = vload arr1[i+1]
  v2 = vshiftpair(v0, v1, 4)
  v3 = vload arr2[i-2]
  v4 = vload arr2[i+2]
  v5 = vshiftpair(v3, v4, 8)
  v6 = vadd(v2, v5)
  v8 = vload arr1[i+5]
  v9 = vshiftpair(v1, v8, 4)
  v11 = vload arr2[i+6]
  v12 = vshiftpair(v4, v11, 8)
  v13 = vadd(v9, v12)
  v14 = vshiftpair(v6, v13, 4)
  v15 = vload arr0[i+3]
  v16 = vsplice(v15, v14, 12)
  vstore arr0[i+3], v16
  v17 = v13
  v25 = v8
  v29 = v11
steady (i = 4; i < 997; i += 4):
  v27 = vload arr1[i+5]
  v28 = vshiftpair(v25, v27, 4)
  v31 = vload arr2[i+6]
  v32 = vshiftpair(v29, v31, 8)
  v33 = vadd(v28, v32)
  v34 = vshiftpair(v17, v33, 4)
  vstore arr0[i+3], v34
  v25 = v27
  v29 = v31
  v17 = v33
epilogue:
  v67 = vload arr1[i-3]
  v68 = vload arr1[i+1]
  v69 = vshiftpair(v67, v68, 4)
  v70 = vload arr2[i-2]
  v71 = vload arr2[i+2]
  v72 = vshiftpair(v70, v71, 8)
  v73 = vadd(v69, v72)
  v75 = vload arr1[i+5]
  v76 = vshiftpair(v68, v75, 4)
  v78 = vload arr2[i+6]
  v79 = vshiftpair(v71, v78, 8)
  v80 = vadd(v76, v79)
  v81 = vshiftpair(v73, v80, 4)
  v82 = vload arr0[i+3]
  v83 = vsplice(v81, v82, 12)
  vstore arr0[i+3], v83
";
    assert_eq!(out, expected, "generated:\n{out}");
}

#[test]
fn aligned_loop_is_shift_free_golden() {
    // A fully aligned loop compiles to the minimal load/splat/mul/store
    // body with no shifts, no splices and an empty epilogue.
    let out = compile(
        "arrays { a: i32[512] @ 0; b: i32[512] @ 0; }
         for i in 0..256 { a[i] = b[i] * 3; }",
        Policy::Lazy,
    );
    let expected = "\
; simdized loop: V=16 D=4 B=4 guard: ub > 12
prologue (i = 0):
  v0 = vload arr1[i]
  v1 = vsplat(3)
  v2 = vmul(v0, v1)
  vstore arr0[i], v2
steady (i = 4; i < 256; i += 4):
  v3 = vload arr1[i]
  v4 = vsplat(3)
  v5 = vmul(v3, v4)
  vstore arr0[i], v5
epilogue:
";
    assert_eq!(out, expected, "generated:\n{out}");
}

#[test]
fn dot_product_reduction_golden() {
    // A reduction: carried vector accumulator in the steady state, then
    // a log2(B) horizontal fold and a single-element permute merge. The
    // trip count is a multiple of B, so no residue mask appears.
    let out = compile(
        "arrays { acc: i32[4] @ 0; x: i32[256] @ 0; y: i32[256] @ 0; }
         for i in 0..200 { acc[i] += x[i] * y[i]; }",
        Policy::Lazy,
    );
    let expected = "\
; simdized loop: V=16 D=4 B=4 guard: ub > 12
prologue (i = 0):
  v0 = vload arr1[i]
  v1 = vload arr2[i]
  v2 = vmul(v0, v1)
  v3 = v2
steady (i = 4; i < 197; i += 4):
  v4 = vload arr1[i]
  v5 = vload arr2[i]
  v6 = vmul(v4, v5)
  v7 = vadd(v3, v6)
  v3 = v7
epilogue:
  v8 = vshiftpair(v3, v3, 8)
  v9 = vadd(v3, v8)
  v10 = vshiftpair(v9, v9, 4)
  v11 = vadd(v9, v10)
  v12 = vload arr0[0]
  v13 = vadd(v11, v12)
  v14 = vperm(v13, v12, [0,1,2,3,20,21,22,23,24,25,26,27,28,29,30,31])
  vstore arr0[0], v14
";
    assert_eq!(out, expected, "generated:\n{out}");
}
