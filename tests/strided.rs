//! End-to-end tests of the non-unit-stride extension (§7 future work):
//! the gather/scatter permute generator against the scalar oracle.

use simdize::{Expr, LoopBuilder, LoopProgram, ScalarType, Simdizer, VectorShape};

fn verify(p: &LoopProgram, seed: u64) -> simdize::Report {
    let r = Simdizer::new().evaluate(p, seed).unwrap_or_else(|e| {
        panic!("strided loop failed: {e}\n{p}");
    });
    assert!(r.verified, "loop diverged:\n{p}");
    r
}

#[test]
fn deinterleave_stride_two() {
    // out[i] = inter[2i] * inter[2i] + inter[2i+1] * inter[2i+1]
    // (the squared magnitude of interleaved complex data).
    let mut b = LoopBuilder::new(ScalarType::I32);
    let out = b.array("out", 512, 0);
    let inter = b.array("inter", 1040, 8);
    let re = inter.load_strided(2, 0);
    let im = inter.load_strided(2, 1);
    b.stmt(out.at(0), re.clone() * re + im.clone() * im);
    let p = b.finish(500).unwrap();
    let r = verify(&p, 1);
    assert!(r.speedup > 1.0, "speedup {}", r.speedup);
}

#[test]
fn interleave_stride_two_store() {
    // inter[2i+1] = x[i] + y[i+3]: a strided *store* merging into
    // existing interleaved data, with a misaligned stride-one input.
    let mut b = LoopBuilder::new(ScalarType::I16);
    let inter = b.array("inter", 2100, 2);
    let x = b.array("x", 1040, 0);
    let y = b.array("y", 1040, 6);
    b.stmt(inter.at_strided(2, 1), x.load(0) + y.load(3));
    let p = b.finish(1000).unwrap();
    verify(&p, 2);
}

#[test]
fn stride_four_and_residues() {
    // Every fourth element, with trip counts exercising all residues.
    for ub in [96u64, 97, 98, 99, 100] {
        let mut b = LoopBuilder::new(ScalarType::I32);
        let out = b.array("out", 128, 4);
        let src = b.array("src", 512, 12);
        b.stmt(out.at(1), src.load_strided(4, 2) * Expr::constant(3));
        let p = b.finish(ub).unwrap();
        verify(&p, ub);
    }
}

#[test]
fn mixed_strides_and_statements() {
    // Statement 1 de-interleaves, statement 2 interleaves, sharing an
    // input array at stride 1.
    let mut b = LoopBuilder::new(ScalarType::I16);
    let gains = b.array("gains", 600, 4);
    let packed = b.array("packed", 1200, 0);
    let left = b.array("left", 600, 2);
    let stereo = b.array("stereo", 1220, 6);
    b.stmt(left.at(0), packed.load_strided(2, 0) * gains.load(1));
    b.stmt(
        stereo.at_strided(2, 1),
        packed.load_strided(2, 1) + gains.load(0),
    );
    let p = b.finish(512).unwrap();
    verify(&p, 9);
}

#[test]
fn strided_with_non_natural_alignment() {
    // Byte-odd base offsets fold into the permute patterns.
    let mut b = LoopBuilder::new(ScalarType::I32);
    let out = b.array("out", 300, 3);
    let src = b.array("src", 700, 5);
    b.stmt(out.at(0), src.load_strided(2, 1) + Expr::constant(7));
    let p = b.finish(256).unwrap();
    verify(&p, 4);
}

#[test]
fn u8_stride_two_pixels() {
    // Extracting one channel of interleaved two-channel bytes: 16 lanes.
    let mut b = LoopBuilder::new(ScalarType::U8);
    let gray = b.array("gray", 1024, 0);
    let ga = b.array("ga", 2080, 1);
    b.stmt(gray.at(0), ga.load_strided(2, 0));
    let p = b.finish(1000).unwrap();
    let r = verify(&p, 5);
    assert!(r.stats.shifts > 0); // permutes are doing the packing
}

#[test]
fn strided_rejections_are_clean_errors() {
    let mut b = LoopBuilder::new(ScalarType::I32);
    let out = b.array("out", 4096, 0);
    let src = b.array("src", 8200, 0);
    b.stmt(out.at(0), src.load_strided(2, 0));
    let p = b.finish_runtime_trip().unwrap();
    let err = Simdizer::new().compile(&p).unwrap_err();
    assert!(err.to_string().contains("trip count"), "{err}");

    // The paper's core pipeline refuses strided graphs explicitly.
    let p2 = {
        let mut b = LoopBuilder::new(ScalarType::I32);
        let out = b.array("out", 64, 0);
        let src = b.array("src", 200, 0);
        b.stmt(out.at(0), src.load_strided(2, 0));
        b.finish(64).unwrap()
    };
    let err = simdize::ReorgGraph::build(&p2, VectorShape::V16).unwrap_err();
    assert!(matches!(
        err,
        simdize::BuildGraphError::NonUnitStride { stride: 2 }
    ));
}
