//! Differential tests for the compiled native engine: `simdize-engine`
//! must be byte-for-byte and stat-for-stat identical to the
//! `simdize-vm` interpreter (the reference semantics) across the full
//! configuration matrix, and its kernel lowering is pinned by a golden
//! disassembly.

use simdize::{
    run_simd, CompiledKernel, MemoryImage, Policy, ReuseMode, RunInput, SimdizeError, Simdizer,
    VectorShape,
};

const REUSES: [ReuseMode; 3] = [
    ReuseMode::None,
    ReuseMode::SoftwarePipeline,
    ReuseMode::PredictiveCommoning,
];

/// Compile-time misaligned arrays (every reference off by a different
/// amount) and runtime-aligned arrays with a runtime trip count — the
/// two alignment regimes of paper §4.1 and §4.4.
const MISALIGNED: &str = "arrays { a: i32[256] @ 12; b: i32[256] @ 4; c: i32[256] @ 8; }
                          for i in 0..200 { a[i+1] = b[i+3] + c[i+2]; }";
const RUNTIME: &str = "arrays { a: i32[256] @ ?; b: i32[256] @ ?; c: i32[256] @ ?; }
                       for i in 0..ub { a[i+1] = b[i+3] + c[i+2]; }";

#[test]
fn engine_matches_interpreter_across_policy_reuse_alignment_matrix() {
    let mut combos = 0;
    for (src, ub) in [(MISALIGNED, 200u64), (RUNTIME, 197)] {
        let program = simdize::parse_program(src).unwrap();
        for policy in Policy::ALL {
            for reuse in REUSES {
                let compiled = match Simdizer::new()
                    .policy(policy)
                    .reuse(reuse)
                    .compile(&program)
                {
                    Ok(c) => c,
                    // Some policies legitimately reject some loops
                    // (e.g. dominant-alignment needs a dominant one).
                    Err(SimdizeError::Policy(_)) => continue,
                    Err(e) => panic!("{policy}/{reuse:?}: {e}"),
                };
                for seed in [2, 11, 2004] {
                    let input = RunInput::with_ub(ub);
                    let mut interp_img =
                        MemoryImage::with_seed(&program, VectorShape::V16, seed);
                    let mut engine_img = interp_img.clone();
                    let want = run_simd(&compiled, &mut interp_img, &input).unwrap();
                    let kernel =
                        CompiledKernel::compile(&compiled, &engine_img, &input).unwrap();
                    let got = kernel.run(&mut engine_img).unwrap();
                    assert_eq!(
                        got, want,
                        "{policy}/{reuse:?} seed {seed}: stats diverged"
                    );
                    assert_eq!(
                        engine_img.first_difference(&interp_img),
                        None,
                        "{policy}/{reuse:?} seed {seed}: memory diverged"
                    );
                    // Identical stats imply identical OPD — assert the
                    // derived metric too so a future stats-shape change
                    // cannot silently decouple them.
                    let data = program.stmts().len() as u64 * ub;
                    assert_eq!(got.opd(data).to_bits(), want.opd(data).to_bits());
                    combos += 1;
                }
            }
        }
    }
    assert!(combos >= 36, "matrix too sparse: only {combos} combinations ran");
}

#[test]
fn engine_matches_interpreter_on_scalar_fallback_trips() {
    let program = simdize::parse_program(RUNTIME).unwrap();
    let compiled = Simdizer::new()
        .policy(Policy::Zero)
        .reuse(ReuseMode::SoftwarePipeline)
        .compile(&program)
        .unwrap();
    for ub in [1u64, 7, 12] {
        let input = RunInput::with_ub(ub);
        let mut interp_img = MemoryImage::with_seed(&program, VectorShape::V16, 5);
        let mut engine_img = interp_img.clone();
        let want = run_simd(&compiled, &mut interp_img, &input).unwrap();
        let kernel = CompiledKernel::compile(&compiled, &engine_img, &input).unwrap();
        assert!(kernel.is_fallback());
        let got = kernel.run(&mut engine_img).unwrap();
        assert_eq!(got, want, "ub {ub}");
        assert!(got.used_fallback);
        assert_eq!(engine_img.first_difference(&interp_img), None, "ub {ub}");
    }
}

/// Pins the lowered kernel for the paper's Figure 1 loop under the
/// zero-shift policy with software pipelining: the prologue shifts both
/// streams to offset zero, the unrolled pair body carries three
/// registers across iterations and the epilogue finishes with a
/// load–splice–store partial store. Offsets are relative to each
/// array's base, so the text is layout-stable.
#[test]
fn golden_disassembly_for_figure1_zero_sp() {
    let program = simdize::parse_program(
        "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
         for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
    )
    .unwrap();
    let compiled = Simdizer::new()
        .policy(Policy::Zero)
        .reuse(ReuseMode::SoftwarePipeline)
        .compile(&program)
        .unwrap();
    let img = MemoryImage::with_seed(&program, VectorShape::V16, 1);
    let kernel = CompiledKernel::compile(&compiled, &img, &RunInput::with_ub(100)).unwrap();
    let expected = "\
; kernel: V=16 D=4 B=4 ub=100 upper=97 regs=90
prologue (i = 0):
  v0 = load.chunk arr1[base-16]
  v1 = load.chunk arr1[base+0]
  v2 = shift(v0, v1, 4)
  v3 = load.chunk arr2[base-16]
  v4 = load.chunk arr2[base+0]
  v5 = shift(v3, v4, 8)
  v6 = add(v2, v5)
  v8 = load.chunk arr1[base+16]
  v9 = shift(v1, v8, 4)
  v11 = load.chunk arr2[base+16]
  v12 = shift(v4, v11, 8)
  v13 = add(v9, v12)
  v14 = shift(v6, v13, 4)
  v15 = load.chunk arr0[base+0]
  v16 = splice(v15, v14, 12)
  store.chunk arr0[base+0], v16
  v17 = v13
  v25 = v8
  v29 = v11
pair (i = 4, step 8, x12):
  v27 = load.chunk arr1[base+32; +32/iter]
  v28 = shift(v25, v27, 4)
  v31 = load.chunk arr2[base+32; +32/iter]
  v32 = shift(v29, v31, 8)
  v33 = add(v28, v32)
  v34 = shift(v17, v33, 4)
  store.chunk arr0[base+16; +32/iter], v34
  v84 = load.chunk arr1[base+48; +32/iter]
  v85 = shift(v27, v84, 4)
  v86 = load.chunk arr2[base+48; +32/iter]
  v87 = shift(v31, v86, 8)
  v88 = add(v85, v87)
  v89 = shift(v33, v88, 4)
  store.chunk arr0[base+32; +32/iter], v89
  v25 = v84
  v29 = v86
  v17 = v88
epilogue (i = 100):
  v67 = load.chunk arr1[base+384]
  v68 = load.chunk arr1[base+400]
  v69 = shift(v67, v68, 4)
  v70 = load.chunk arr2[base+384]
  v71 = load.chunk arr2[base+400]
  v72 = shift(v70, v71, 8)
  v73 = add(v69, v72)
  v75 = load.chunk arr1[base+416]
  v76 = shift(v68, v75, 4)
  v78 = load.chunk arr2[base+416]
  v79 = shift(v71, v78, 8)
  v80 = add(v76, v79)
  v81 = shift(v73, v80, 4)
  v82 = load.chunk arr0[base+400]
  v83 = splice(v81, v82, 12)
  store.chunk arr0[base+400], v83
";
    assert_eq!(kernel.disassembly(), expected);
}
