//! A tour of the five stream-shift placement policies — the paper's
//! four greedy §3.4 policies plus the exact `optimal` search — on the
//! loops of Figure 6, showing how each policy trades shift count
//! against generality, and what that costs at run time.
//!
//! Run with: `cargo run --example policy_tour`

use simdize::{
    parse_program, to_dot, Policy, ReorgGraph, ReuseMode, Scheme, Simdizer, VectorShape,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 6a: b[i+1] and c[i+1] are relatively aligned.
    let fig6a = parse_program(
        "arrays { a: i32[1024] @ 0; b: i32[1024] @ 0; c: i32[1024] @ 0; }
         for i in 0..1000 { a[i+3] = b[i+1] + c[i+1]; }",
    )?;
    // Figure 6b: the dominant offset (4) differs from the store's (12).
    let fig6b = parse_program(
        "arrays { a: i32[1024] @ 0; b: i32[1024] @ 0; c: i32[1024] @ 0; d: i32[1024] @ 0; }
         for i in 0..1000 { a[i+3] = b[i+1] * c[i+2] + d[i+1]; }",
    )?;

    for (name, program) in [("Figure 6a", &fig6a), ("Figure 6b", &fig6b)] {
        println!("==== {name}: {}", program.stmts()[0]);
        let graph = ReorgGraph::build(program, VectorShape::V16)?;
        println!(
            "{:<10} {:>7} {:>9} {:>9} {:>9}",
            "policy", "shifts", "opd", "bound", "speedup"
        );
        for policy in Policy::ALL {
            let placed = graph.with_policy(policy)?;
            placed.validate()?;
            let report = Simdizer::new()
                .policy(policy)
                .reuse(ReuseMode::SoftwarePipeline)
                .evaluate(program, 6)?;
            assert!(report.verified);
            println!(
                "{:<10} {:>7} {:>9.3} {:>9.3} {:>8.2}x",
                policy.name(),
                placed.shift_count(),
                report.opd,
                report.lower_bound_opd,
                report.speedup
            );
        }
        println!();
    }

    println!("The paper's §3.4 counts hold: Figure 6a needs 3/2/1/1/1 shifts");
    println!("under zero/eager/lazy/dominant/optimal, Figure 6b needs 4/3/3/2/2");
    println!("— dominant already places both figures minimally.\n");

    // Reassociation (Figure 12's OffsetReassoc) pushes lazy/dominant to
    // the analytic minimum on longer chains.
    let chain = parse_program(
        "arrays { a: i32[2048] @ 0; b: i32[2048] @ 0; c: i32[2048] @ 0;
                  d: i32[2048] @ 0; e: i32[2048] @ 0; }
         for i in 0..2000 { a[i] = b[i+1] + c[i+2] + d[i+1] + e[i+2]; }",
    )?;
    println!("==== common-offset reassociation on {}", chain.stmts()[0]);
    for reassoc in [false, true] {
        let scheme = Scheme::new(Policy::Lazy, ReuseMode::SoftwarePipeline).reassoc(reassoc);
        let report = Simdizer::new().scheme(scheme).evaluate(&chain, 6)?;
        println!(
            "{:<22} shifts/iter {:>2}, opd {:.3} (bound {:.3})",
            scheme.to_string(),
            report.stats.shifts / (report.stats.steady_iterations.max(1)),
            report.opd,
            report.lower_bound_opd
        );
    }

    // Export one graph for visual inspection.
    let dot = to_dot(&ReorgGraph::build(&fig6b, VectorShape::V16)?.with_policy(Policy::Dominant)?);
    println!("\nGraphviz of Figure 6b under dominant-shift (pipe into `dot -Tsvg`):\n{dot}");
    Ok(())
}
