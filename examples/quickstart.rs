//! Quickstart: simdize the paper's running example end to end.
//!
//! Reproduces the narrative of §1–§4 on `a[i+3] = b[i+1] + c[i+2]`
//! (Figure 1): build the data reorganization graph, place stream
//! shifts, generate SIMD code, execute it on the simulated machine,
//! verify against the scalar loop, and report operations per datum.
//!
//! Run with: `cargo run --example quickstart`

use simdize::{
    generate, lower_altivec, parse_program, run_differential, CodegenOptions, DiffConfig, Policy,
    ReorgGraph, ReuseMode, Simdizer, VectorShape,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "arrays { a: i32[1024] @ 0; b: i32[1024] @ 0; c: i32[1024] @ 0; }
                  for i in 0..1000 { a[i+3] = b[i+1] + c[i+2]; }";
    let program = parse_program(source)?;

    println!("== the loop (paper Figure 1) ==");
    println!("{program}");

    // Stream offsets: b[i+1] @ 4, c[i+2] @ 8, a[i+3] @ 12 — every
    // reference misaligned, and no amount of loop peeling can fix more
    // than one of them.
    let graph = ReorgGraph::build(&program, VectorShape::V16)?;
    println!("== unshifted data reorganization graph (invalid on real hardware) ==");
    print!("{graph}");
    println!(
        "validity: {}",
        match graph.validate() {
            Ok(()) => "valid".to_string(),
            Err(e) => format!("INVALID — {e}"),
        }
    );

    // Insert vshiftstream nodes with the zero-shift policy (Figure 4).
    let shifted = graph.with_policy(Policy::Zero)?;
    println!("\n== after zero-shift placement (paper Figure 4) ==");
    print!("{shifted}");
    shifted.validate()?;
    println!("validity: valid, {} stream shifts", shifted.shift_count());

    // Generate software-pipelined SIMD code (Figures 7, 9, 10).
    let options = CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline);
    let compiled = generate(&shifted, &options)?;
    println!("\n== generated vector code ==");
    print!("{compiled}");

    println!("== AltiVec-flavoured lowering (paper §2.2 mapping) ==");
    print!("{}", lower_altivec(&compiled));

    // Execute against a memory image and verify byte-for-byte.
    let outcome = run_differential(&compiled, &DiffConfig::with_seed(2004))?;
    println!("\n== execution on the simulated SIMD machine ==");
    println!("verified against scalar oracle: {}", outcome.verified);
    println!("dynamic counts: {}", outcome.stats);
    println!(
        "operations per datum: {:.3} (scalar: {:.3})",
        outcome.opd(),
        outcome.scalar_ideal as f64 / outcome.data_produced as f64
    );
    println!(
        "speedup: {:.2}x (peak for 4-lane i32 is 4x)",
        outcome.speedup()
    );

    // The one-call facade does all of the above, with the best policy.
    let report = Simdizer::new().evaluate(&program, 2004)?;
    println!("\n== facade (auto policy = dominant-shift, SP, unroll) ==");
    println!("{report}");
    Ok(())
}
