//! Runtime alignments and unknown loop bounds (paper §4.4).
//!
//! When array alignments are unknown until run time, only the
//! zero-shift policy applies (its shift directions are decidable at
//! compile time); when the trip count is unknown, the steady-state
//! bound becomes `ub − B + 1` and the simdized path is guarded by
//! `ub > 3B`, falling back to the scalar loop for tiny trips.
//!
//! Run with: `cargo run --example runtime_alignment`

use simdize::{
    generate, parse_program, run_differential, CodegenOptions, DiffConfig, Policy, ReorgGraph,
    ReuseMode, VectorShape,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(
        "arrays { a: i32[4096] @ ?; b: i32[4096] @ ?; c: i32[4096] @ ?; }
         for i in 0..ub { a[i+3] = b[i+1] + c[i+2]; }",
    )?;
    println!("== the loop: nothing known at compile time ==\n{program}");

    let graph = ReorgGraph::build(&program, VectorShape::V16)?;

    // Eager/lazy/dominant/optimal refuse: they need compile-time alignments.
    for policy in [Policy::Eager, Policy::Lazy, Policy::Dominant, Policy::Optimal] {
        let err = graph.with_policy(policy).unwrap_err();
        println!("{policy:>9}: {err}");
    }

    let zero = graph.with_policy(Policy::Zero)?;
    println!(
        "     zero: ok, {} stream shifts (every stream pays)\n",
        zero.shift_count()
    );

    let compiled = generate(
        &zero,
        &CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline),
    )?;
    println!(
        "upper bound expression: i < {}  (eq. 15: ub - B + 1)",
        compiled.upper_bound()
    );
    println!(
        "guard: simdized path runs only when ub > {}\n",
        compiled.guard_min_trip()
    );
    println!("{compiled}");

    // Sweep trip counts across the guard boundary and across residues
    // mod B; every single run is verified against the scalar oracle.
    println!("ub     path      opd     speedup   verified");
    println!("--------------------------------------------");
    for ub in [1, 5, 12, 13, 100, 997, 1000, 1003] {
        let outcome = run_differential(&compiled, &DiffConfig::with_seed(11).runtime_ub(ub))?;
        println!(
            "{ub:<6} {:<9} {:>6.3}  {:>6.2}x    {}",
            if outcome.stats.used_fallback {
                "scalar"
            } else {
                "simdized"
            },
            outcome.opd(),
            outcome.speedup(),
            outcome.verified
        );
    }

    // Different runtime placements of the same arrays — the same
    // compiled code handles all of them.
    println!("\nsame binary, eight random runtime alignments:");
    for seed in 0..8 {
        let outcome = run_differential(&compiled, &DiffConfig::with_seed(seed).runtime_ub(1000))?;
        assert!(outcome.verified);
        print!("  seed {seed}: {:.2}x", outcome.speedup());
    }
    println!("\nall verified.");
    Ok(())
}
