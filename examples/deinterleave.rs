//! Non-unit-stride simdization (§7 future work, implemented): channel
//! de-interleaving and interleaving through the gather/scatter permute
//! generator.
//!
//! Run with: `cargo run --example deinterleave`

use simdize::{Expr, LoopBuilder, ScalarType, Simdizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Split interleaved stereo samples (L R L R …) into channels while
    // scaling the left channel — loads at stride 2, stores at stride 1.
    let mut b = LoopBuilder::new(ScalarType::I16);
    let left = b.array("left", 1024, 0);
    let right = b.array("right", 1024, 6);
    let stereo = b.array("stereo", 2100, 2);
    let gain = b.param("gain");
    b.stmt(left.at(0), stereo.load_strided(2, 0) * Expr::param(gain));
    b.stmt(right.at(0), stereo.load_strided(2, 1));
    let split = b.finish(1000)?;

    println!("== de-interleave (stride-2 loads) ==\n{split}");
    let compiled = Simdizer::new().compile(&split)?;
    println!("{compiled}");
    let report = Simdizer::new()
        .evaluate_with(&split, &simdize::DiffConfig::with_seed(7).params(vec![3]))?;
    assert!(report.verified);
    println!(
        "verified; opd {:.3} (static model {:.3}), speedup {:.2}x vs scalar\n",
        report.opd, report.lower_bound_opd, report.speedup
    );

    // The opposite direction: interleave two planar channels into RGBA-
    // style packed data — strided *stores* merging into existing bytes.
    let mut b = LoopBuilder::new(ScalarType::U8);
    let r = b.array("r", 1024, 0);
    let g = b.array("g", 1024, 5);
    let packed_r = b.array("packed_r", 4200, 0);
    let packed_g = b.array("packed_g", 4200, 0);
    b.stmt(packed_r.at_strided(4, 0), r.load(0));
    b.stmt(packed_g.at_strided(4, 1), g.load(0));
    let interleave = b.finish(1000)?;

    println!("== interleave (stride-4 stores) ==\n{interleave}");
    let report = Simdizer::new().evaluate(&interleave, 8)?;
    assert!(report.verified);
    println!(
        "verified; opd {:.3}, speedup {:.2}x vs scalar",
        report.opd, report.speedup
    );
    println!("\n(Strided scatters load-merge-store every covered chunk, so they");
    println!("cost ~3 operations per chunk; the win over scalar code comes from");
    println!("packing {} lanes per permute.)", 16 / split.elem().size());
    Ok(())
}
