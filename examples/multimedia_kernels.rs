//! Simdizing the multimedia kernels the paper's introduction motivates:
//! a FIR filter over 16-bit samples, 8-bit alpha blending, and an
//! offset saxpy — all with misaligned streams.
//!
//! Run with: `cargo run --example multimedia_kernels`

use simdize::{
    alpha_blend, dot_product, fir_filter, offset_saxpy, rgba_to_gray, sum_abs_diff, DiffConfig,
    LoopProgram, SimdizeError, Simdizer,
};

fn evaluate(name: &str, program: &LoopProgram, params: Vec<i64>) -> Result<(), SimdizeError> {
    let simdizer = Simdizer::new();
    let policy = simdizer.policy_for(program);
    let report = simdizer.evaluate_with(
        program,
        &DiffConfig::with_seed(77).runtime_ub(1000).params(params),
    )?;
    assert!(report.verified);
    let lanes = 16 / program.elem().size();
    println!(
        "{name:<28} {:>4} lanes  policy {:<8}  opd {:>6.3}  speedup {:>5.2}x (peak {lanes}x)",
        lanes,
        policy.name(),
        report.opd,
        report.speedup
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("kernel                        lanes  policy    opd     speedup");
    println!("--------------------------------------------------------------");

    // 5-tap FIR filter on shorts: every tap reads the sample stream at
    // a different alignment.
    let (fir, coeffs) = fir_filter(2000, 5);
    let coeff_values: Vec<i64> = (0..coeffs.len() as i64).map(|t| 2 * t + 1).collect();
    evaluate("fir_filter (i16, 5 taps)", &fir, coeff_values)?;

    // Alpha blending of two u8 pixel rows with misaligned sources.
    let (blend, _) = alpha_blend(1920);
    evaluate("alpha_blend (u8, 1920px)", &blend, vec![96, 160])?;

    // Offset saxpy with one runtime-aligned input: the driver falls
    // back to the zero-shift policy automatically (§4.4).
    let (saxpy, _) = offset_saxpy(2000);
    evaluate("offset_saxpy (i32, rt align)", &saxpy, vec![3])?;

    // A dot product: the reduction extension with misaligned inputs.
    let dot = dot_product(2000);
    evaluate("dot_product (i32, reduce)", &dot, vec![])?;

    // Motion-estimation SAD: abs + reduction.
    let sad = sum_abs_diff(2000);
    evaluate("sum_abs_diff (i16, reduce)", &sad, vec![])?;

    // RGBA → gray: the strided extension on a real pixel format.
    let (gray, _) = rgba_to_gray(1920);
    evaluate("rgba_to_gray (i16, stride 4)", &gray, vec![77, 150, 29])?;

    println!("\nAll six verified byte-for-byte against the scalar loops.");
    Ok(())
}
