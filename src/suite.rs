//! Umbrella crate: re-exports the whole `simdize` workspace for tests/examples.
pub use simdize as core;
