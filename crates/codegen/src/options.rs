//! Code generation options: reuse scheme and post passes.

use std::fmt;

/// How reuse between consecutive misaligned accesses is exploited
/// (paper §5.5's `sp` / `pc` suffixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReuseMode {
    /// No reuse: every stream shift recomputes both of the registers it
    /// combines (the naive Figure 7 generator). Data of a misaligned
    /// stream is loaded twice — the paper shows this costs up to 2×.
    #[default]
    None,
    /// Software pipelining (Figure 10): generate the loop so the
    /// current iteration's "second" register is carried into the next
    /// iteration, guaranteeing each chunk of a static stream is loaded
    /// exactly once.
    SoftwarePipeline,
    /// Predictive commoning: generate naively, then let a separate
    /// optimization pass discover expressions equal to another
    /// expression of the next iteration and carry them in registers.
    /// Converges to the same code as software pipelining.
    PredictiveCommoning,
}

impl ReuseMode {
    /// Short suffix used in scheme names (`""`, `"sp"`, `"pc"`).
    pub fn suffix(self) -> &'static str {
        match self {
            ReuseMode::None => "",
            ReuseMode::SoftwarePipeline => "sp",
            ReuseMode::PredictiveCommoning => "pc",
        }
    }
}

impl fmt::Display for ReuseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReuseMode::None => f.write_str("none"),
            ReuseMode::SoftwarePipeline => f.write_str("sp"),
            ReuseMode::PredictiveCommoning => f.write_str("pc"),
        }
    }
}

/// Options controlling code generation and its post passes.
///
/// The defaults (`reuse = None`, `memnorm = on`, `unroll = on`) mirror
/// the paper's baseline configuration; evaluation code sweeps the
/// combinations explicitly.
///
/// # Example
///
/// ```
/// use simdize_codegen::{CodegenOptions, ReuseMode};
/// let opts = CodegenOptions::default()
///     .reuse(ReuseMode::PredictiveCommoning)
///     .memnorm(true)
///     .unroll(false);
/// assert_eq!(opts.reuse_mode(), ReuseMode::PredictiveCommoning);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenOptions {
    reuse: ReuseMode,
    memnorm: bool,
    unroll: bool,
    analyze: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            reuse: ReuseMode::None,
            memnorm: true,
            unroll: true,
            analyze: false,
        }
    }
}

impl CodegenOptions {
    /// Starts from the default configuration.
    pub fn new() -> CodegenOptions {
        CodegenOptions::default()
    }

    /// Sets the reuse scheme.
    pub fn reuse(mut self, reuse: ReuseMode) -> CodegenOptions {
        self.reuse = reuse;
        self
    }

    /// Enables or disables memory normalization (+ local CSE), §5.5's
    /// `MemNorm`: vector memory operands are canonicalized to their
    /// truncated chunk so that chunk-identical loads deduplicate.
    pub fn memnorm(mut self, on: bool) -> CodegenOptions {
        self.memnorm = on;
        self
    }

    /// Enables or disables the copy-removing unroll-by-2 of the steady
    /// loop (the paper's closing remark of §4.5).
    pub fn unroll(mut self, on: bool) -> CodegenOptions {
        self.unroll = on;
        self
    }

    /// Enables or disables the post-codegen static analysis gate: when
    /// on, the pipeline driver runs `simdize-analysis` over the final
    /// program and rejects it on any deny-level finding. (The flag
    /// lives here so it travels with the other generation options; the
    /// gate itself is enforced by the `simdize` facade, which owns the
    /// dependency on the analysis crate.)
    pub fn analyze(mut self, on: bool) -> CodegenOptions {
        self.analyze = on;
        self
    }

    /// The configured reuse scheme.
    pub fn reuse_mode(&self) -> ReuseMode {
        self.reuse
    }

    /// Whether memory normalization is enabled.
    pub fn memnorm_enabled(&self) -> bool {
        self.memnorm
    }

    /// Whether unroll-by-2 is enabled.
    pub fn unroll_enabled(&self) -> bool {
        self.unroll
    }

    /// Whether the post-codegen analysis gate is enabled.
    pub fn analyze_enabled(&self) -> bool {
        self.analyze
    }
}

impl fmt::Display for CodegenOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reuse={} memnorm={} unroll={} analyze={}",
            self.reuse, self.memnorm, self.unroll, self.analyze
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let o = CodegenOptions::new()
            .reuse(ReuseMode::SoftwarePipeline)
            .memnorm(false)
            .unroll(false)
            .analyze(true);
        assert_eq!(o.reuse_mode(), ReuseMode::SoftwarePipeline);
        assert!(!o.memnorm_enabled());
        assert!(!o.unroll_enabled());
        assert!(o.analyze_enabled());
        assert!(!CodegenOptions::default().analyze_enabled());
        assert_eq!(
            o.to_string(),
            "reuse=sp memnorm=false unroll=false analyze=true"
        );
    }

    #[test]
    fn suffixes() {
        assert_eq!(ReuseMode::None.suffix(), "");
        assert_eq!(ReuseMode::SoftwarePipeline.suffix(), "sp");
        assert_eq!(ReuseMode::PredictiveCommoning.suffix(), "pc");
    }
}
