//! Decision traces for SIMD code generation (the explainability
//! layer's view of §4).
//!
//! [`crate::generate_traced`] records the structural choices the code
//! generator makes — which bound formula applies, how each statement's
//! prologue and epilogue are shaped, which register-reuse scheme runs,
//! and what every post pass did — as a flat sequence of
//! [`CodegenEvent`]s. Together with the reorg placement trace this
//! lets a consumer (the `simdize-explain` crate) attribute every
//! emitted instruction to the decision that produced it.

use crate::options::ReuseMode;
use crate::sexpr::SExpr;
use crate::vir::{SimdProgram, VInst};
use std::fmt;

/// Which steady-state upper-bound formula the generator chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundFormula {
    /// eq. 13: everything known at compile time, the bound folds to a
    /// constant `ub − max(EpiSplice/D)`.
    Eq13,
    /// eq. 15: runtime alignment or trip count (or a reduction tail),
    /// the conservative `ub − (B − 1)` bound.
    Eq15,
}

impl fmt::Display for BoundFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundFormula::Eq13 => f.write_str("eq. 13"),
            BoundFormula::Eq15 => f.write_str("eq. 15"),
        }
    }
}

/// Static instruction counts per program section, counting through
/// [`VInst::Guarded`] bodies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionCounts {
    /// Instructions in the prologue.
    pub prologue: usize,
    /// Instructions in the steady-state body (unrolled pair body when
    /// present, else the single body).
    pub body: usize,
    /// Instructions in the epilogue.
    pub epilogue: usize,
}

impl SectionCounts {
    /// Counts the instructions of `program`, descending into guards.
    pub fn of(program: &SimdProgram) -> SectionCounts {
        fn count(insts: &[VInst]) -> usize {
            insts
                .iter()
                .map(|i| match i {
                    VInst::Guarded { body, .. } => count(body),
                    _ => 1,
                })
                .sum()
        }
        SectionCounts {
            prologue: count(program.prologue()),
            body: count(program.body_pair().unwrap_or_else(|| program.body())),
            epilogue: count(program.epilogue()),
        }
    }

    /// Total instructions over all sections.
    pub fn total(&self) -> usize {
        self.prologue + self.body + self.epilogue
    }
}

impl fmt::Display for SectionCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}p+{}b+{}e",
            self.prologue, self.body, self.epilogue
        )
    }
}

/// One structural decision made while generating SIMD code.
#[derive(Debug, Clone, PartialEq)]
pub enum CodegenEvent {
    /// The steady-state loop bounds were chosen (eqs. 12–16).
    BoundsChosen {
        /// `LB = B` (eq. 12, address truncation makes peeling uniform).
        lower_bound: u64,
        /// The chosen upper bound expression.
        upper_bound: SExpr,
        /// Which formula produced it.
        formula: BoundFormula,
        /// The `ub > 3B` guard threshold below which the scalar
        /// fallback runs (§4.4).
        guard_min_trip: u64,
    },
    /// A statement's prologue iteration was peeled (Figure 9).
    ProloguePeeled {
        /// Statement index.
        stmt: usize,
        /// The ProSplice point (eq. 8); `None` for reductions, which
        /// initialize an accumulator instead of storing.
        prosplice: Option<SExpr>,
        /// Whether a load–splice–store partial store was needed
        /// (ProSplice ≠ 0); a fully aligned store writes directly.
        spliced: bool,
    },
    /// The register-reuse scheme applied to the steady body.
    ReuseApplied {
        /// Which scheme ran.
        mode: ReuseMode,
        /// Loop-carried `(old, second)` rotation chains created — each
        /// becomes one `Copy` at the bottom of the steady body.
        carried_chains: usize,
    },
    /// A statement's epilogue was shaped (Figure 9, eqs. 14/16).
    EpilogueForm {
        /// Statement index.
        stmt: usize,
        /// The EpiLeftOver byte count expression.
        leftover: SExpr,
        /// The EpiSplice point (`leftover mod V`).
        episplice: SExpr,
        /// Whether the `ELO ≥ V` / `ELO > 0` guards folded at compile
        /// time (leaving straight-line partial stores) or remain as
        /// runtime `Guarded` blocks.
        compile_time: bool,
    },
    /// A reduction's epilogue was generated: masked residue fold plus a
    /// log2(B) horizontal rotate-and-combine reduction.
    ReductionEpilogue {
        /// Statement index.
        stmt: usize,
        /// Residue elements (`ub mod B`) folded with a masked permute.
        residue: usize,
        /// Horizontal fold steps (`log2(B)` rotate+combine pairs).
        fold_steps: usize,
    },
    /// A post pass ran over the program (§5.5).
    PassApplied {
        /// Pass name (`lvn`, `pc`, `dce`, `unroll`).
        pass: &'static str,
        /// Instruction counts before.
        before: SectionCounts,
        /// Instruction counts after.
        after: SectionCounts,
    },
}

impl fmt::Display for CodegenEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenEvent::BoundsChosen {
                lower_bound,
                upper_bound,
                formula,
                guard_min_trip,
            } => write!(
                f,
                "steady state runs for i in {lower_bound}..{upper_bound} step B \
                 ({formula}; scalar fallback unless ub > {guard_min_trip})"
            ),
            CodegenEvent::ProloguePeeled {
                stmt,
                prosplice,
                spliced,
            } => match prosplice {
                Some(ps) if *spliced => write!(
                    f,
                    "stmt {stmt}: prologue partial store, ProSplice = {ps} (load-splice-store)"
                ),
                Some(_) => write!(
                    f,
                    "stmt {stmt}: prologue stores a full first vector (ProSplice = 0)"
                ),
                None => write!(f, "stmt {stmt}: prologue initializes the reduction accumulator"),
            },
            CodegenEvent::ReuseApplied {
                mode,
                carried_chains,
            } => write!(
                f,
                "reuse scheme {mode:?}: {carried_chains} loop-carried register chain(s)"
            ),
            CodegenEvent::EpilogueForm {
                stmt,
                leftover,
                episplice,
                compile_time,
            } => write!(
                f,
                "stmt {stmt}: epilogue with EpiLeftOver = {leftover} bytes, EpiSplice = \
                 {episplice} ({})",
                if *compile_time {
                    "guards folded at compile time"
                } else {
                    "runtime-guarded"
                }
            ),
            CodegenEvent::ReductionEpilogue {
                stmt,
                residue,
                fold_steps,
            } => write!(
                f,
                "stmt {stmt}: reduction epilogue folds {residue} residue lane(s), then \
                 {fold_steps} horizontal rotate+combine step(s)"
            ),
            CodegenEvent::PassApplied {
                pass,
                before,
                after,
            } => write!(f, "pass {pass}: {before} \u{2192} {after} instructions"),
        }
    }
}

/// The ordered decision record of one [`crate::generate_traced`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CodegenTrace {
    /// The events, in the order the decisions were made.
    pub events: Vec<CodegenEvent>,
}

impl CodegenTrace {
    /// An empty trace.
    pub fn new() -> CodegenTrace {
        CodegenTrace::default()
    }
}
