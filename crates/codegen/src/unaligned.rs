//! Code generation for machines with hardware *misaligned* memory
//! access (SSE2-style `movdqu`) — the alternative the paper's §2
//! footnote mentions: "SSE2 supports some limited form of misaligned
//! memory accesses which incurs additional overhead."
//!
//! On such a machine no data reorganization is needed at all: every
//! stream is loaded and stored at its exact address, at a higher
//! per-access cost (see `simdize-vm`'s `UNALIGNED_MEM_COST`). Comparing
//! this generator against the alignment-handling pipeline quantifies
//! when the paper's software scheme beats hardware support — the `E9`
//! ablation bench.

use crate::error::GenCodeError;
use crate::sexpr::{SCond, SExpr};
use crate::vir::{Addr, SimdProgram, VInst, VReg};
use simdize_ir::{Expr, Invariant, TripCount};
use simdize_reorg::ReorgGraph;

/// Generates code for a machine with unaligned vector loads and stores.
///
/// The structure is much simpler than the aligned-machine generator:
/// no prologue, a steady loop from 0 to `ub − (ub mod B)` storing full
/// vectors at exact addresses, and an epilogue that splices the
/// remaining `ub mod B` elements. There are no stream shifts, so the
/// input graph's shift placement (if any) is ignored; the generator
/// works directly from the source loop.
///
/// # Errors
///
/// Currently infallible for validated loops; the `Result` mirrors
/// [`crate::generate`] for uniform call sites.
pub fn generate_unaligned(graph: &ReorgGraph) -> Result<SimdProgram, GenCodeError> {
    let program = graph.program().clone();
    let shape = graph.shape();
    let b = graph.blocking_factor() as i64;
    let d = program.elem().size() as i64;

    let ub_sexpr = match program.trip() {
        TripCount::Known(u) => SExpr::c(u as i64),
        TripCount::Runtime => SExpr::Ub,
    };
    // Steady loop stores whole vectors: i ∈ [0, ub − ub mod B).
    let residue = ub_sexpr.clone().rem(SExpr::c(b));
    let upper_bound = ub_sexpr.clone().sub(residue.clone());

    let mut next_reg = 0u32;
    let mut fresh = || {
        let r = VReg(next_reg);
        next_reg += 1;
        r
    };

    let mut body = Vec::new();
    let mut epilogue = Vec::new();
    for stmt in program.stmts() {
        let addr = Addr::new(stmt.target.array, stmt.target.offset);
        // Steady: full unaligned store of the computed vector.
        let value = gen_expr(&stmt.rhs, &mut fresh, &mut body);
        body.push(VInst::StoreU { addr, src: value });

        // Epilogue: splice the first (ub mod B)·D bytes of the new
        // value over the old contents, at the exact residual address.
        let mut partial = Vec::new();
        let new = gen_expr(&stmt.rhs, &mut fresh, &mut partial);
        let old = fresh();
        partial.push(VInst::LoadU { dst: old, addr });
        let spliced = fresh();
        partial.push(VInst::Splice {
            dst: spliced,
            a: new,
            b: old,
            point: residue.clone().mul(SExpr::c(d)),
        });
        partial.push(VInst::StoreU { addr, src: spliced });
        push_guarded(
            SCond::Gt(residue.clone(), SExpr::c(0)),
            partial,
            &mut epilogue,
        );
    }

    Ok(SimdProgram {
        program,
        shape,
        nvregs: next_reg,
        prologue: Vec::new(),
        body,
        body_pair: None,
        epilogue,
        lower_bound: 0,
        upper_bound,
        guard_min_trip: 0,
    })
}

fn gen_expr(e: &Expr, fresh: &mut impl FnMut() -> VReg, out: &mut Vec<VInst>) -> VReg {
    match e {
        Expr::Load(r) => {
            let dst = fresh();
            out.push(VInst::LoadU {
                dst,
                addr: Addr::new(r.array, r.offset),
            });
            dst
        }
        Expr::Splat(Invariant::Const(value)) => {
            let dst = fresh();
            out.push(VInst::SplatConst { dst, value: *value });
            dst
        }
        Expr::Splat(Invariant::Param(param)) => {
            let dst = fresh();
            out.push(VInst::SplatParam { dst, param: *param });
            dst
        }
        Expr::Binary(op, a, b) => {
            let a = gen_expr(a, fresh, out);
            let b = gen_expr(b, fresh, out);
            let dst = fresh();
            out.push(VInst::Bin { dst, op: *op, a, b });
            dst
        }
        Expr::Unary(op, a) => {
            let a = gen_expr(a, fresh, out);
            let dst = fresh();
            out.push(VInst::Un { dst, op: *op, a });
            dst
        }
    }
}

fn push_guarded(cond: SCond, body: Vec<VInst>, out: &mut Vec<VInst>) {
    match cond.as_const() {
        Some(true) => out.extend(body),
        Some(false) => {}
        None => out.push(VInst::Guarded { cond, body }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::{parse_program, VectorShape};

    #[test]
    fn structure_is_shift_free() {
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
             for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        let prog = generate_unaligned(&g).unwrap();
        assert!(prog.prologue().is_empty());
        assert_eq!(prog.lower_bound(), 0);
        assert_eq!(prog.upper_bound().as_const(), Some(100));
        assert!(!prog
            .body()
            .iter()
            .any(|i| matches!(i, VInst::ShiftPair { .. } | VInst::LoadA { .. })));
        // 100 is a multiple of B = 4: no epilogue.
        assert!(prog.epilogue().is_empty());
    }

    #[test]
    fn residue_emits_partial_store() {
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
             for i in 0..102 { a[i] = b[i+1]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        let prog = generate_unaligned(&g).unwrap();
        assert_eq!(prog.upper_bound().as_const(), Some(100));
        assert!(prog
            .epilogue()
            .iter()
            .any(|i| matches!(i, VInst::Splice { .. })));
    }

    #[test]
    fn runtime_trip_guards_epilogue() {
        let p = parse_program(
            "arrays { a: i32[4096] @ ?; b: i32[4096] @ ?; }
             for i in 0..ub { a[i] = b[i+1]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        let prog = generate_unaligned(&g).unwrap();
        assert!(prog.upper_bound().is_runtime());
        assert!(prog
            .epilogue()
            .iter()
            .any(|i| matches!(i, VInst::Guarded { .. })));
    }
}
