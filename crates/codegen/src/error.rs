//! Code generation errors.

use crate::strided::GenStridedError;
use simdize_reorg::ValidateGraphError;
use std::error::Error;
use std::fmt;

/// Failure to generate SIMD code from a data reorganization graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenCodeError {
    /// The input graph violates constraint (C.2) or (C.3); apply a
    /// shift-placement policy first.
    InvalidGraph(ValidateGraphError),
    /// The strided extension generator could not handle the loop.
    Strided(GenStridedError),
    /// Reduction statements need a compile-time trip count (the
    /// residue mask is a compile-time byte pattern).
    ReductionNeedsKnownTrip,
    /// A reduction's accumulator element must have a compile-time
    /// alignment (the scalar merge pattern is compile time).
    ReductionNeedsKnownAlignment,
}

impl fmt::Display for GenCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenCodeError::InvalidGraph(e) => {
                write!(f, "cannot generate code from an invalid graph: {e}")
            }
            GenCodeError::Strided(e) => write!(f, "strided generation failed: {e}"),
            GenCodeError::ReductionNeedsKnownTrip => {
                f.write_str("reductions need a compile-time trip count")
            }
            GenCodeError::ReductionNeedsKnownAlignment => {
                f.write_str("a reduction target needs a compile-time alignment")
            }
        }
    }
}

impl Error for GenCodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GenCodeError::InvalidGraph(e) => Some(e),
            GenCodeError::Strided(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateGraphError> for GenCodeError {
    fn from(e: ValidateGraphError) -> Self {
        GenCodeError::InvalidGraph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::{parse_program, VectorShape};
    use simdize_reorg::ReorgGraph;

    #[test]
    fn wraps_validation_errors_with_source() {
        let p = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 4; }
             for i in 0..32 { a[i] = b[i]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        let inner = g.validate().unwrap_err();
        let e = GenCodeError::from(inner);
        assert!(e.to_string().contains("cannot generate"));
        assert!(e.source().is_some());
    }
}
