//! Code generation for loops with non-unit-stride references — the
//! first item on the paper's §7 future-work list ("alignment handling
//! of loops with non-unit stride accesses").
//!
//! Strided streams are not byte-contiguous, so the stream-shift
//! framework of §3 does not apply. This generator uses a different,
//! uniform strategy built on the general `vperm` byte permute
//! ([`VInst::Perm`], AltiVec `vec_perm`):
//!
//! * **gather (loads)**: per simdized iteration, load the aligned
//!   chunks covering the `B` wanted elements (a window of about
//!   `stride · V` bytes) and *pack* them into lane order with an
//!   accumulating permute per used chunk — misalignment, including
//!   non-natural byte offsets, folds into the compile-time patterns;
//! * **scatter (stores)**: per covered chunk, load–merge–store with a
//!   permute that deposits exactly this iteration's lanes and keeps
//!   every other byte, which makes boundary handling automatic (no
//!   prologue or peeling needed);
//! * computation happens on packed registers at lane offset 0, so the
//!   §3 validity constraints hold trivially.
//!
//! The price of uniformity: no cross-iteration reuse (each window is
//! reloaded) and one permute per used chunk — the strided ablation
//! bench quantifies this against the scalar loop. Stride-one references
//! inside a strided loop go through the same path, so mixed-stride
//! loops (de-interleaving, interleaved stores) work naturally.

use crate::error::GenCodeError;
use crate::sexpr::SExpr;
use crate::vir::{Addr, SimdProgram, VInst, VReg};
use simdize_ir::{AlignKind, ArrayRef, Expr, Invariant, LoopProgram, VectorShape};
use std::error::Error;
use std::fmt;

/// The largest supported stride. Larger strides would only need wider
/// windows, but the guard padding of the simulated memory image covers
/// reads this far past a stream and no farther.
pub const MAX_STRIDE: u32 = 4;

/// Failure to generate strided code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenStridedError {
    /// A reference's stride exceeds [`MAX_STRIDE`].
    UnsupportedStride {
        /// The offending stride.
        stride: u32,
    },
    /// Pack/scatter patterns are compile-time byte selections, so every
    /// base alignment must be known at compile time.
    RuntimeAlignment,
    /// The residue epilogue is specialized per `ub mod B`, so the trip
    /// count must be known at compile time.
    RuntimeTripCount,
    /// One element does not fit the vector register, or `B < 2`.
    Shape(simdize_reorg::BuildGraphError),
}

impl fmt::Display for GenStridedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenStridedError::UnsupportedStride { stride } => {
                write!(
                    f,
                    "stride {stride} exceeds the supported maximum {MAX_STRIDE}"
                )
            }
            GenStridedError::RuntimeAlignment => f.write_str(
                "strided generation needs compile-time alignments (permute patterns \
                 are compile-time byte selections)",
            ),
            GenStridedError::RuntimeTripCount => f.write_str(
                "strided generation needs a compile-time trip count for the residue epilogue",
            ),
            GenStridedError::Shape(e) => write!(f, "{e}"),
        }
    }
}

impl Error for GenStridedError {}

/// Generates a [`SimdProgram`] for a loop that may contain strided
/// references, using the gather/scatter permute strategy described in
/// the module docs.
///
/// # Errors
///
/// See [`GenStridedError`]; notably runtime alignments and runtime trip
/// counts are not supported by this extension (use the scalar loop).
pub fn generate_strided(
    program: &LoopProgram,
    shape: VectorShape,
) -> Result<SimdProgram, GenCodeError> {
    match try_generate(program, shape) {
        Ok(p) => Ok(p),
        Err(e) => Err(GenCodeError::Strided(e)),
    }
}

fn try_generate(program: &LoopProgram, shape: VectorShape) -> Result<SimdProgram, GenStridedError> {
    let d = program.elem().size() as i64;
    let v = shape.bytes() as i64;
    if d > v || v / d < 2 {
        return Err(GenStridedError::Shape(
            simdize_reorg::ReorgGraph::build(program, shape)
                .err()
                .unwrap_or(simdize_reorg::BuildGraphError::NoParallelism {
                    elem: program.elem(),
                    shape,
                }),
        ));
    }
    for r in program.all_refs() {
        if r.stride > MAX_STRIDE || r.stride == 0 {
            return Err(GenStridedError::UnsupportedStride { stride: r.stride });
        }
    }
    if !program.all_alignments_known() {
        return Err(GenStridedError::RuntimeAlignment);
    }
    let Some(ub) = program.trip().known() else {
        return Err(GenStridedError::RuntimeTripCount);
    };

    let b = (v / d) as u64; // blocking factor
    let steady_ub = ub - ub % b;
    let residue = (ub % b) as usize;

    let mut g = Gen {
        program,
        shape,
        d: d as usize,
        v: v as usize,
        b: b as usize,
        next: 0,
    };

    let mut body = Vec::new();
    for stmt in program.stmts() {
        let value = g.gen_expr(&stmt.rhs, g.b, &mut body);
        g.scatter(stmt.target, value, g.b, &mut body);
    }

    let mut epilogue = Vec::new();
    if residue > 0 {
        for stmt in program.stmts() {
            let value = g.gen_expr(&stmt.rhs, residue, &mut epilogue);
            g.scatter(stmt.target, value, residue, &mut epilogue);
        }
    }

    let mut compiled = SimdProgram {
        program: program.clone(),
        shape,
        nvregs: g.next,
        prologue: Vec::new(),
        body,
        body_pair: None,
        epilogue,
        lower_bound: 0,
        upper_bound: SExpr::c(steady_ub as i64),
        guard_min_trip: 0,
    };
    // Duplicate gathers (the same strided reference used twice) and
    // their pack networks deduplicate like any other value.
    crate::passes::lvn::run(&mut compiled, true);
    crate::passes::debug_verify(&compiled, "strided lvn");
    crate::passes::dce::run(&mut compiled);
    crate::passes::debug_verify(&compiled, "strided dce");
    Ok(compiled)
}

struct Gen<'p> {
    program: &'p LoopProgram,
    shape: VectorShape,
    d: usize,
    v: usize,
    b: usize,
    next: u32,
}

impl Gen<'_> {
    fn fresh(&mut self) -> VReg {
        let r = VReg(self.next);
        self.next += 1;
        r
    }

    /// The window misalignment of `r` at steady iterations: the byte
    /// offset of element `stride·i + offset` within its aligned chunk,
    /// constant because `stride · i · D` is a multiple of `V` when `i`
    /// is a multiple of `B`.
    fn alpha(&self, r: ArrayRef) -> usize {
        let beta = match self.program.array(r.array).align() {
            AlignKind::Known(beta) => (beta % self.shape.bytes()) as i64,
            AlignKind::Runtime => unreachable!("checked by try_generate"),
        };
        (beta + r.offset * self.d as i64).rem_euclid(self.v as i64) as usize
    }

    /// The source position of output byte `lane·D + u` of a packed
    /// register: `(window chunk, byte within chunk)`.
    fn source(&self, alpha: usize, r: ArrayRef, lane: usize, u: usize) -> (usize, usize) {
        let g = alpha + lane * r.stride as usize * self.d + u;
        (g / self.v, g % self.v)
    }

    /// Loads the used window chunks of `r` and packs the first `limit`
    /// elements into lanes `0..limit`; bytes past `limit · D` are
    /// unspecified.
    fn gather(&mut self, r: ArrayRef, limit: usize, out: &mut Vec<VInst>) -> VReg {
        let alpha = self.alpha(r);
        let mut used: Vec<usize> = Vec::new();
        for t in 0..limit {
            for u in 0..self.d {
                let (c, _) = self.source(alpha, r, t, u);
                if !used.contains(&c) {
                    used.push(c);
                }
            }
        }
        used.sort_unstable();

        // Chunk j sits j·V bytes (= j·B elements) past the window start.
        let bfac = self.b;
        let chunk_addr =
            move |j: usize| Addr::strided(r.array, r.stride as i64, r.offset + (j * bfac) as i64);

        // Fast path: one chunk, already in lane order.
        if used == [0] && alpha == 0 && r.stride == 1 {
            let dst = self.fresh();
            out.push(VInst::LoadA {
                dst,
                addr: chunk_addr(0),
            });
            return dst;
        }

        let mut acc: Option<VReg> = None;
        for &j in &used {
            let chunk = self.fresh();
            out.push(VInst::LoadA {
                dst: chunk,
                addr: chunk_addr(j),
            });
            let prev = acc.unwrap_or(chunk);
            let mut pattern = Vec::with_capacity(self.v);
            for p in 0..self.v {
                let (t, u) = (p / self.d, p % self.d);
                let sel = if t < limit {
                    let (c, off) = self.source(alpha, r, t, u);
                    if c == j {
                        (self.v + off) as u8 // from this chunk
                    } else {
                        p as u8 // keep what acc already placed
                    }
                } else {
                    p as u8
                };
                pattern.push(sel);
            }
            let dst = self.fresh();
            out.push(VInst::Perm {
                dst,
                a: prev,
                b: chunk,
                pattern,
            });
            acc = Some(dst);
        }
        acc.expect("limit > 0 implies at least one used chunk")
    }

    /// Packs the value of `e` for lanes `0..limit`.
    fn gen_expr(&mut self, e: &Expr, limit: usize, out: &mut Vec<VInst>) -> VReg {
        match e {
            Expr::Load(r) => self.gather(*r, limit, out),
            Expr::Splat(Invariant::Const(value)) => {
                let dst = self.fresh();
                out.push(VInst::SplatConst { dst, value: *value });
                dst
            }
            Expr::Splat(Invariant::Param(param)) => {
                let dst = self.fresh();
                out.push(VInst::SplatParam { dst, param: *param });
                dst
            }
            Expr::Binary(op, x, y) => {
                let x = self.gen_expr(x, limit, out);
                let y = self.gen_expr(y, limit, out);
                let dst = self.fresh();
                out.push(VInst::Bin {
                    dst,
                    op: *op,
                    a: x,
                    b: y,
                });
                dst
            }
            Expr::Unary(op, x) => {
                let x = self.gen_expr(x, limit, out);
                let dst = self.fresh();
                out.push(VInst::Un { dst, op: *op, a: x });
                dst
            }
        }
    }

    /// Scatters lanes `0..limit` of `value` through the strided store
    /// `target`, merging with the existing contents of every covered
    /// chunk (load–permute–store). Boundary and residue cases need no
    /// special handling because only this iteration's lanes are ever
    /// written.
    fn scatter(&mut self, target: ArrayRef, value: VReg, limit: usize, out: &mut Vec<VInst>) {
        let alpha = self.alpha(target);
        let mut used: Vec<usize> = Vec::new();
        for t in 0..limit {
            for u in 0..self.d {
                let (c, _) = self.source(alpha, target, t, u);
                if !used.contains(&c) {
                    used.push(c);
                }
            }
        }
        used.sort_unstable();

        for &j in &used {
            let addr = Addr::strided(
                target.array,
                target.stride as i64,
                target.offset + (j * self.b) as i64,
            );
            let mut pattern: Vec<u8> = (0..self.v).map(|p| (self.v + p) as u8).collect();
            let mut full = true;
            for t in 0..limit {
                for u in 0..self.d {
                    let (c, off) = self.source(alpha, target, t, u);
                    if c == j {
                        pattern[off] = (t * self.d + u) as u8;
                    }
                }
            }
            for &sel in &pattern {
                if sel as usize >= self.v {
                    full = false;
                }
            }
            if full && target.stride == 1 && alpha == 0 {
                // Whole chunk rewritten in order: plain store.
                out.push(VInst::StoreA { addr, src: value });
                continue;
            }
            let old = self.fresh();
            out.push(VInst::LoadA { dst: old, addr });
            let merged = self.fresh();
            out.push(VInst::Perm {
                dst: merged,
                a: value,
                b: old,
                pattern,
            });
            out.push(VInst::StoreA { addr, src: merged });
        }
    }
}

/// The static per-datum cost of the strided generator's steady body —
/// the cost *model* reported as the bound for strided loops (the §5.3
/// analytic bound only covers the stream framework).
pub fn strided_model_opd(program: &LoopProgram, shape: VectorShape) -> Option<f64> {
    let compiled = generate_strided(program, shape).ok()?;
    let (_, body, _) = compiled.static_counts();
    let b = shape.blocking_factor(program.elem()) as f64;
    Some(body as f64 / (b * program.stmts().len() as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::{LoopBuilder, ScalarType};

    fn deinterleave() -> LoopProgram {
        // out[i] = inter[2i] + inter[2i+1]  — classic de-interleave.
        let mut bld = LoopBuilder::new(ScalarType::I32);
        let out = bld.array("out", 256, 0);
        let inter = bld.array("inter", 520, 4);
        bld.stmt(
            out.at(0),
            inter.load_strided(2, 0) + inter.load_strided(2, 1),
        );
        bld.finish(256).unwrap()
    }

    #[test]
    fn generates_pack_networks() {
        let p = deinterleave();
        let compiled = generate_strided(&p, VectorShape::V16).unwrap();
        assert!(compiled.prologue().is_empty());
        assert_eq!(compiled.upper_bound().as_const(), Some(256));
        assert!(compiled
            .body()
            .iter()
            .any(|i| matches!(i, VInst::Perm { .. })));
        assert!(strided_model_opd(&p, VectorShape::V16).unwrap() > 0.0);
    }

    #[test]
    fn rejects_unsupported_inputs() {
        let mut bld = LoopBuilder::new(ScalarType::I32);
        let out = bld.array("out", 64, 0);
        let src = bld.array("x", 1024, 0);
        bld.stmt(out.at(0), src.load_strided(8, 0));
        let p = bld.finish(64).unwrap();
        assert!(matches!(
            try_generate(&p, VectorShape::V16),
            Err(GenStridedError::UnsupportedStride { stride: 8 })
        ));

        let mut bld = LoopBuilder::new(ScalarType::I32);
        let out = bld.array("out", 64, 0);
        let src = bld.array_runtime_align("x", 256);
        bld.stmt(out.at(0), src.load_strided(2, 0));
        let p = bld.finish(64).unwrap();
        assert!(matches!(
            try_generate(&p, VectorShape::V16),
            Err(GenStridedError::RuntimeAlignment)
        ));

        let mut bld = LoopBuilder::new(ScalarType::I32);
        let out = bld.array("out", 4096, 0);
        let src = bld.array("x", 8192, 0);
        bld.stmt(out.at(0), src.load_strided(2, 0));
        let p = bld.finish_runtime_trip().unwrap();
        assert!(matches!(
            try_generate(&p, VectorShape::V16),
            Err(GenStridedError::RuntimeTripCount)
        ));
    }
}
