//! The vector target IR (VIR): the output language of code generation.

use crate::sexpr::{SCond, SExpr};
use simdize_ir::{ArrayId, BinOp, LoopProgram, ParamId, ScalarType, UnOp, VectorShape};
use std::fmt;

/// A virtual vector register. The generator allocates an unbounded
/// supply; the simulator maps each to one `V`-byte register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub(crate) u32);

impl VReg {
    /// Index of the register in the program's register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A strided address, affine in the steady-state induction variable
/// `i`: the byte address is `base(array) + (scale · i + elem) · D`.
///
/// The paper's pipeline only emits `scale == 1` addresses; the strided
/// extension (`simdize-stride`) uses larger scales. Aligned vector
/// memory instructions *truncate* this address to the enclosing
/// `V`-byte boundary when executing, exactly like AltiVec loads/stores
/// (paper §1); the truncation is what makes the uniform `LB = B` lower
/// bound of §4.3 correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// The accessed array.
    pub array: ArrayId,
    /// Constant element offset added to the scaled induction variable.
    pub elem: i64,
    /// The induction-variable multiplier (1 for stride-one code).
    pub scale: i64,
}

impl Addr {
    /// Creates the stride-one address `array[i + elem]`.
    pub fn new(array: ArrayId, elem: i64) -> Addr {
        Addr {
            array,
            elem,
            scale: 1,
        }
    }

    /// Creates the strided address `array[scale·i + elem]`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn strided(array: ArrayId, scale: i64, elem: i64) -> Addr {
        assert!(scale > 0, "address scale must be positive");
        Addr { array, elem, scale }
    }

    /// Creates the loop-invariant address `array[elem]` (scale 0) —
    /// used by reductions to access their fixed accumulator element.
    pub fn invariant(array: ArrayId, elem: i64) -> Addr {
        Addr {
            array,
            elem,
            scale: 0,
        }
    }

    /// The address with `i` substituted by `i + delta` (the paper's
    /// `Substitute(n, i → i ± B)`): the element offset advances by
    /// `scale · delta`.
    pub fn shifted(self, delta: i64) -> Addr {
        Addr {
            array: self.array,
            elem: self.elem + self.scale * delta,
            scale: self.scale,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}[{}]", self.array, self.elem);
        }
        let i = if self.scale == 1 {
            "i".to_string()
        } else {
            format!("{}*i", self.scale)
        };
        match self.elem {
            0 => write!(f, "{}[{i}]", self.array),
            e if e > 0 => write!(f, "{}[{i}+{e}]", self.array),
            e => write!(f, "{}[{i}{e}]", self.array),
        }
    }
}

/// One VIR instruction.
///
/// Every variant maps directly to a generic SIMD operation of paper
/// §2.2 (see [`crate::lower_altivec`] for the AltiVec lowering):
/// `LoadA`/`StoreA` are the truncating aligned memory operations,
/// `ShiftPair` is `vshiftpair` (a byte `vec_perm`), `Splice` is
/// `vsplice` (`vec_sel`), and the splats and lane ops are native.
///
/// `Copy` instructions at the end of a steady-state body are, by
/// convention, the loop-carried register rotations introduced by
/// software pipelining or predictive commoning (Figure 10 line 19).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VInst {
    /// `dst = vload(addr)` — loads the `V`-byte chunk enclosing `addr`.
    LoadA {
        /// Destination register.
        dst: VReg,
        /// The (to-be-truncated) address.
        addr: Addr,
    },
    /// `vstore(addr, src)` — stores to the chunk enclosing `addr`.
    StoreA {
        /// The (to-be-truncated) address.
        addr: Addr,
        /// The stored register.
        src: VReg,
    },
    /// `dst = vloadu(addr)` — a hardware *misaligned* load of `V` bytes
    /// at the exact address (SSE2 `movdqu`-style; see
    /// [`crate::generate_unaligned`]). Costs extra on real machines.
    LoadU {
        /// Destination register.
        dst: VReg,
        /// The exact byte address (not truncated).
        addr: Addr,
    },
    /// `vstoreu(addr, src)` — a hardware misaligned store at the exact
    /// address.
    StoreU {
        /// The exact byte address (not truncated).
        addr: Addr,
        /// The stored register.
        src: VReg,
    },
    /// `dst = vshiftpair(a, b, amt)` — bytes `amt .. amt+V` of the
    /// double-length vector `a ∥ b`; `amt ∈ [0, V]`, possibly runtime
    /// (`V` selects `b` whole — the runtime right-shift identity case).
    ShiftPair {
        /// Destination register.
        dst: VReg,
        /// First (earlier) input vector.
        a: VReg,
        /// Second (later) input vector.
        b: VReg,
        /// Loop-invariant shift amount `(from − to) mod V`.
        amt: SExpr,
    },
    /// `dst = vsplice(a, b, point)` — the first `point` bytes of `a`
    /// followed by the last `V − point` bytes of `b`; `point ∈ [0, V]`.
    Splice {
        /// Destination register.
        dst: VReg,
        /// Vector supplying the leading bytes.
        a: VReg,
        /// Vector supplying the trailing bytes.
        b: VReg,
        /// Loop-invariant splice point.
        point: SExpr,
    },
    /// `dst = vperm(a, b, pattern)` — the general AltiVec `vec_perm`:
    /// result byte `t` is byte `pattern[t]` of the double-length vector
    /// `a ∥ b` (entries in `0..2V`). Subsumes `vshiftpair`; used by the
    /// strided extension's pack/scatter networks.
    Perm {
        /// Destination register.
        dst: VReg,
        /// First input vector (bytes `0..V`).
        a: VReg,
        /// Second input vector (bytes `V..2V`).
        b: VReg,
        /// The byte-selection pattern, `V` entries in `0..2V`.
        pattern: Vec<u8>,
    },
    /// `dst = vsplat(const)` — replicate a constant into every lane.
    SplatConst {
        /// Destination register.
        dst: VReg,
        /// The replicated value (wrapped to the element type).
        value: i64,
    },
    /// `dst = vsplat(param)` — replicate a runtime scalar parameter.
    SplatParam {
        /// Destination register.
        dst: VReg,
        /// The replicated parameter.
        param: ParamId,
    },
    /// `dst = vop(a, b)` — lane-wise binary operation.
    Bin {
        /// Destination register.
        dst: VReg,
        /// The lane operation.
        op: BinOp,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `dst = vop(a)` — lane-wise unary operation.
    Un {
        /// Destination register.
        dst: VReg,
        /// The lane operation.
        op: UnOp,
        /// The operand.
        a: VReg,
    },
    /// `dst = src` — register move (loop-carried rotation).
    Copy {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
    },
    /// Instructions executed only when a loop-invariant condition holds
    /// (epilogue leftovers, eqs. 14/16).
    Guarded {
        /// The guard condition.
        cond: SCond,
        /// The guarded instruction sequence.
        body: Vec<VInst>,
    },
}

impl VInst {
    /// The register this instruction defines, if any (guarded blocks
    /// define none at top level).
    pub fn def(&self) -> Option<VReg> {
        match self {
            VInst::LoadA { dst, .. }
            | VInst::LoadU { dst, .. }
            | VInst::ShiftPair { dst, .. }
            | VInst::Perm { dst, .. }
            | VInst::Splice { dst, .. }
            | VInst::SplatConst { dst, .. }
            | VInst::SplatParam { dst, .. }
            | VInst::Bin { dst, .. }
            | VInst::Un { dst, .. }
            | VInst::Copy { dst, .. } => Some(*dst),
            VInst::StoreA { .. } | VInst::StoreU { .. } | VInst::Guarded { .. } => None,
        }
    }

    /// Calls `f` on every register this instruction reads (recursing
    /// into guarded blocks).
    pub fn visit_uses(&self, f: &mut impl FnMut(VReg)) {
        match self {
            VInst::LoadA { .. }
            | VInst::LoadU { .. }
            | VInst::SplatConst { .. }
            | VInst::SplatParam { .. } => {}
            VInst::StoreA { src, .. } | VInst::StoreU { src, .. } => f(*src),
            VInst::ShiftPair { a, b, .. }
            | VInst::Splice { a, b, .. }
            | VInst::Perm { a, b, .. } => {
                f(*a);
                f(*b);
            }
            VInst::Bin { a, b, .. } => {
                f(*a);
                f(*b);
            }
            VInst::Un { a, .. } => f(*a),
            VInst::Copy { src, .. } => f(*src),
            VInst::Guarded { body, .. } => {
                for inst in body {
                    inst.visit_uses(f);
                }
            }
        }
    }
}

impl fmt::Display for VInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VInst::LoadA { dst, addr } => write!(f, "{dst} = vload {addr}"),
            VInst::StoreA { addr, src } => write!(f, "vstore {addr}, {src}"),
            VInst::LoadU { dst, addr } => write!(f, "{dst} = vloadu {addr}"),
            VInst::StoreU { addr, src } => write!(f, "vstoreu {addr}, {src}"),
            VInst::ShiftPair { dst, a, b, amt } => {
                write!(f, "{dst} = vshiftpair({a}, {b}, {amt})")
            }
            VInst::Splice { dst, a, b, point } => {
                write!(f, "{dst} = vsplice({a}, {b}, {point})")
            }
            VInst::Perm { dst, a, b, pattern } => {
                let pat: Vec<String> = pattern.iter().map(|x| x.to_string()).collect();
                write!(f, "{dst} = vperm({a}, {b}, [{}])", pat.join(","))
            }
            VInst::SplatConst { dst, value } => write!(f, "{dst} = vsplat({value})"),
            VInst::SplatParam { dst, param } => write!(f, "{dst} = vsplat({param})"),
            VInst::Bin { dst, op, a, b } => {
                write!(f, "{dst} = v{}({a}, {b})", format!("{op:?}").to_lowercase())
            }
            VInst::Un { dst, op, a } => {
                write!(f, "{dst} = v{}({a})", format!("{op:?}").to_lowercase())
            }
            VInst::Copy { dst, src } => write!(f, "{dst} = {src}"),
            VInst::Guarded { cond, body } => {
                writeln!(f, "if {cond} {{")?;
                for inst in body {
                    writeln!(f, "    {inst}")?;
                }
                write!(f, "  }}")
            }
        }
    }
}

/// A complete simdized loop in VIR: prologue, steady-state body,
/// optional unrolled body pair, epilogue, bounds and guard.
///
/// Execution model (implemented by `simdize-vm`):
///
/// ```text
/// if ub <= guard_min_trip { run the original scalar loop } else {
///     i = 0;  run prologue;
///     i = LB (= B);
///     if body_pair: while i + B < UB { run body_pair; i += 2B }
///     while i < UB { run body; i += B }
///     run epilogue (i now at the first un-executed steady value)
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimdProgram {
    pub(crate) program: LoopProgram,
    pub(crate) shape: VectorShape,
    pub(crate) nvregs: u32,
    pub(crate) prologue: Vec<VInst>,
    pub(crate) body: Vec<VInst>,
    pub(crate) body_pair: Option<Vec<VInst>>,
    pub(crate) epilogue: Vec<VInst>,
    pub(crate) lower_bound: u64,
    pub(crate) upper_bound: SExpr,
    pub(crate) guard_min_trip: u64,
}

impl SimdProgram {
    /// The source loop this program simdizes (also the scalar fallback
    /// semantics).
    pub fn source(&self) -> &LoopProgram {
        &self.program
    }

    /// The target vector shape.
    pub fn shape(&self) -> VectorShape {
        self.shape
    }

    /// The loop's element type.
    pub fn elem(&self) -> ScalarType {
        self.program.elem()
    }

    /// The blocking factor `B` (also the steady-state step).
    pub fn block(&self) -> u32 {
        self.shape.blocking_factor(self.program.elem())
    }

    /// Number of virtual vector registers used.
    pub fn vreg_count(&self) -> u32 {
        self.nvregs
    }

    /// Prologue instructions, executed once with `i = 0`.
    pub fn prologue(&self) -> &[VInst] {
        &self.prologue
    }

    /// Steady-state body, executed with `i = LB, LB+B, …` while
    /// `i < UB`.
    pub fn body(&self) -> &[VInst] {
        &self.body
    }

    /// The unrolled two-iteration body, if the unroll-by-2 pass ran.
    /// Executed while `i + B < UB`, advancing `i` by `2B`.
    pub fn body_pair(&self) -> Option<&[VInst]> {
        self.body_pair.as_deref()
    }

    /// Epilogue instructions, executed once with `i` at the first
    /// steady value not executed.
    pub fn epilogue(&self) -> &[VInst] {
        &self.epilogue
    }

    /// The steady-state lower bound `LB = B` (eq. 12).
    pub fn lower_bound(&self) -> u64 {
        self.lower_bound
    }

    /// The steady-state upper bound `UB` (eq. 13 or 15).
    pub fn upper_bound(&self) -> &SExpr {
        &self.upper_bound
    }

    /// Trip counts of `guard_min_trip` or less run the scalar fallback
    /// (§4.4: the simdization is valid when `ub > 3B`).
    pub fn guard_min_trip(&self) -> u64 {
        self.guard_min_trip
    }

    /// Mutable access to the prologue — for testing tools that corrupt
    /// or patch generated programs (mutation testing, fault injection).
    pub fn prologue_mut(&mut self) -> &mut Vec<VInst> {
        &mut self.prologue
    }

    /// Mutable access to the steady-state body (see
    /// [`SimdProgram::prologue_mut`]).
    pub fn body_mut(&mut self) -> &mut Vec<VInst> {
        &mut self.body
    }

    /// Mutable access to the unrolled body pair, if present (see
    /// [`SimdProgram::prologue_mut`]).
    pub fn body_pair_mut(&mut self) -> Option<&mut Vec<VInst>> {
        self.body_pair.as_mut()
    }

    /// Mutable access to the epilogue (see
    /// [`SimdProgram::prologue_mut`]).
    pub fn epilogue_mut(&mut self) -> &mut Vec<VInst> {
        &mut self.epilogue
    }

    /// Allocates a fresh virtual register (for injected instructions).
    pub fn alloc_vreg(&mut self) -> VReg {
        let r = VReg(self.nvregs);
        self.nvregs += 1;
        r
    }

    /// Total static instruction count (including inside guards), per
    /// section: `(prologue, body, epilogue)`.
    pub fn static_counts(&self) -> (usize, usize, usize) {
        fn count(insts: &[VInst]) -> usize {
            insts
                .iter()
                .map(|i| match i {
                    VInst::Guarded { body, .. } => count(body),
                    _ => 1,
                })
                .sum()
        }
        (
            count(&self.prologue),
            count(&self.body),
            count(&self.epilogue),
        )
    }
}

impl fmt::Display for SimdProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "; simdized loop: V={} D={} B={} guard: ub > {}",
            self.shape.bytes(),
            self.elem().size(),
            self.block(),
            self.guard_min_trip
        )?;
        writeln!(f, "prologue (i = 0):")?;
        for inst in &self.prologue {
            writeln!(f, "  {inst}")?;
        }
        if let Some(pair) = &self.body_pair {
            writeln!(
                f,
                "steady ×2 (i = {}; i + {} < {}; i += {}):",
                self.lower_bound,
                self.block(),
                self.upper_bound,
                2 * self.block()
            )?;
            for inst in pair {
                writeln!(f, "  {inst}")?;
            }
            writeln!(
                f,
                "steady leftover (while i < {}; i += {}):",
                self.upper_bound,
                self.block()
            )?;
        } else {
            writeln!(
                f,
                "steady (i = {}; i < {}; i += {}):",
                self.lower_bound,
                self.upper_bound,
                self.block()
            )?;
        }
        for inst in &self.body {
            writeln!(f, "  {inst}")?;
        }
        writeln!(f, "epilogue:")?;
        for inst in &self.epilogue {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_shift_and_display() {
        let a = Addr::new(ArrayId::from_index(1), 3);
        assert_eq!(a.shifted(4).elem, 7);
        assert_eq!(a.shifted(-4).elem, -1);
        assert_eq!(a.to_string(), "arr1[i+3]");
        assert_eq!(a.shifted(-4).to_string(), "arr1[i-1]");
        assert_eq!(Addr::new(ArrayId::from_index(0), 0).to_string(), "arr0[i]");
    }

    #[test]
    fn inst_def_and_uses() {
        let i = VInst::ShiftPair {
            dst: VReg(2),
            a: VReg(0),
            b: VReg(1),
            amt: SExpr::c(4),
        };
        assert_eq!(i.def(), Some(VReg(2)));
        let mut uses = Vec::new();
        i.visit_uses(&mut |r| uses.push(r));
        assert_eq!(uses, vec![VReg(0), VReg(1)]);

        let g = VInst::Guarded {
            cond: SCond::Gt(SExpr::Ub, SExpr::c(0)),
            body: vec![VInst::StoreA {
                addr: Addr::new(ArrayId::from_index(0), 0),
                src: VReg(7),
            }],
        };
        assert_eq!(g.def(), None);
        let mut uses = Vec::new();
        g.visit_uses(&mut |r| uses.push(r));
        assert_eq!(uses, vec![VReg(7)]);
    }

    #[test]
    fn inst_display() {
        assert_eq!(
            VInst::LoadA {
                dst: VReg(0),
                addr: Addr::new(ArrayId::from_index(2), 1)
            }
            .to_string(),
            "v0 = vload arr2[i+1]"
        );
        assert_eq!(
            VInst::Bin {
                dst: VReg(3),
                op: BinOp::Add,
                a: VReg(1),
                b: VReg(2)
            }
            .to_string(),
            "v3 = vadd(v1, v2)"
        );
        assert_eq!(
            VInst::Copy {
                dst: VReg(1),
                src: VReg(0)
            }
            .to_string(),
            "v1 = v0"
        );
    }
}
