//! Static analyses over generated programs.
//!
//! The paper observes that the dominant-shift policy "introduces more
//! redundancy and may generate codes that are more difficult to
//! optimize" — visible in its larger compiler-overhead bar. Register
//! pressure is the concrete mechanism: AltiVec has 32 vector registers,
//! and bodies whose maximum number of simultaneously-live values
//! exceeds that spill. [`max_live_vregs`] measures it.

use crate::vir::{SimdProgram, VInst, VReg};
use std::collections::HashSet;

/// The maximum number of simultaneously live virtual vector registers
/// in the steady-state body (the unrolled pair when present, since
/// that is what actually executes).
///
/// Loop-carried registers (the destinations of the bottom-of-body
/// `Copy` rotations, read at the top of the next iteration) are live
/// across the back edge and therefore live throughout.
pub fn max_live_vregs(program: &SimdProgram) -> usize {
    let body: &[VInst] = program.body_pair().unwrap_or(program.body());
    // Live-in of the body equals its own live-out (steady loop): the
    // registers read before being defined within the body.
    let mut defined: HashSet<VReg> = HashSet::new();
    let mut live_in: HashSet<VReg> = HashSet::new();
    for inst in body {
        inst.visit_uses(&mut |r| {
            if !defined.contains(&r) {
                live_in.insert(r);
            }
        });
        if let Some(d) = inst.def() {
            defined.insert(d);
        }
    }

    // Backward scan with live-out = live-in (the back edge).
    let mut live: HashSet<VReg> = live_in.clone();
    let mut max = live.len();
    for inst in body.iter().rev() {
        if let Some(d) = inst.def() {
            live.remove(&d);
        }
        inst.visit_uses(&mut |r| {
            live.insert(r);
        });
        max = max.max(live.len());
    }
    max
}

/// The number of vector registers on the modeled machine (AltiVec/VMX
/// and most 128-bit ISAs provide 32).
pub const MACHINE_VREGS: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{CodegenOptions, ReuseMode};
    use simdize_ir::{parse_program, VectorShape};
    use simdize_reorg::{Policy, ReorgGraph};

    fn pressure(src: &str, policy: Policy, reuse: ReuseMode) -> usize {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(policy)
            .unwrap();
        let prog = crate::generate::generate(&g, &CodegenOptions::default().reuse(reuse)).unwrap();
        max_live_vregs(&prog)
    }

    const FIG1: &str = "arrays { a: i32[256] @ 0; b: i32[256] @ 0; c: i32[256] @ 0; }
                        for i in 0..200 { a[i+3] = b[i+1] + c[i+2]; }";

    #[test]
    fn sp_keeps_carried_registers_live() {
        // Three carried chains under zero-shift: pressure must be at
        // least the carried count plus working values, but well under
        // the machine limit for this small loop.
        let p = pressure(FIG1, Policy::Zero, ReuseMode::SoftwarePipeline);
        assert!(p >= 3, "carried registers not counted: {p}");
        assert!(
            p <= MACHINE_VREGS,
            "tiny loop cannot exceed the machine: {p}"
        );
    }

    #[test]
    fn naive_bodies_need_fewer_live_but_more_work() {
        // The naive generator has no loop-carried values: pressure can
        // be lower even though it executes many more instructions.
        let naive = pressure(FIG1, Policy::Zero, ReuseMode::None);
        let sp = pressure(FIG1, Policy::Zero, ReuseMode::SoftwarePipeline);
        assert!(naive >= 2);
        assert!(sp >= 2);
    }

    #[test]
    fn large_loops_grow_pressure() {
        let small = pressure(FIG1, Policy::Lazy, ReuseMode::SoftwarePipeline);
        let big_src = "arrays { a: i32[256] @ 0; b: i32[256] @ 0; c: i32[256] @ 0;
                                d: i32[256] @ 0; e: i32[256] @ 0; f: i32[256] @ 0;
                                g: i32[256] @ 0; h: i32[256] @ 0; }
                       for i in 0..200 {
                           a[i+3] = b[i+1] + c[i+2] + d[i+3] + e[i+1] + f[i+2] + g[i+1] + h[i+2];
                       }";
        let big = pressure(big_src, Policy::Lazy, ReuseMode::SoftwarePipeline);
        assert!(big > small, "big {big} <= small {small}");
    }
}
