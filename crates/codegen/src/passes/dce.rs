//! Dead code elimination over the whole VIR program.
//!
//! An instruction is live when it has a side effect (store, guarded
//! block with live contents) or defines a register transitively used by
//! a live instruction — in any section, since prologue definitions (the
//! carried-register initializers) are consumed by the steady body.

use crate::vir::{SimdProgram, VInst, VReg};
use std::collections::HashSet;

pub(crate) fn run(program: &mut SimdProgram) {
    // Fixpoint: removing an instruction can kill the uses that kept
    // another alive.
    loop {
        let mut used: HashSet<VReg> = HashSet::new();
        for section in [&program.prologue, &program.body, &program.epilogue] {
            collect_uses(section, &mut used);
        }
        let before = count(&program.prologue) + count(&program.body) + count(&program.epilogue);
        for section in [
            &mut program.prologue,
            &mut program.body,
            &mut program.epilogue,
        ] {
            sweep(section, &used);
        }
        let after = count(&program.prologue) + count(&program.body) + count(&program.epilogue);
        if after == before {
            break;
        }
    }
}

fn collect_uses(insts: &[VInst], used: &mut HashSet<VReg>) {
    for inst in insts {
        inst.visit_uses(&mut |r| {
            used.insert(r);
        });
    }
}

fn sweep(insts: &mut Vec<VInst>, used: &HashSet<VReg>) {
    insts.retain_mut(|inst| match inst {
        VInst::StoreA { .. } | VInst::StoreU { .. } => true,
        VInst::Guarded { body, .. } => {
            sweep(body, used);
            !body.is_empty()
        }
        other => match other.def() {
            Some(dst) => used.contains(&dst),
            None => true,
        },
    });
}

fn count(insts: &[VInst]) -> usize {
    insts
        .iter()
        .map(|i| match i {
            VInst::Guarded { body, .. } => 1 + count(body),
            _ => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sexpr::SExpr;
    use crate::vir::Addr;
    use simdize_ir::{parse_program, ArrayId, VectorShape};
    use simdize_reorg::{Policy, ReorgGraph};

    #[test]
    fn removes_unused_chains_keeps_stores() {
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
             for i in 0..64 { a[i] = b[i]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Zero)
            .unwrap();
        let mut prog =
            crate::generate::generate(&g, &crate::options::CodegenOptions::default().unroll(false))
                .unwrap();

        // Inject garbage: a load whose result is never used, feeding
        // another dead op.
        let dead1 = VReg(prog.nvregs);
        let dead2 = VReg(prog.nvregs + 1);
        prog.nvregs += 2;
        prog.body.insert(
            0,
            VInst::LoadA {
                dst: dead1,
                addr: Addr::new(ArrayId::from_index(1), 7),
            },
        );
        prog.body.insert(
            1,
            VInst::ShiftPair {
                dst: dead2,
                a: dead1,
                b: dead1,
                amt: SExpr::c(4),
            },
        );
        let with_garbage = prog.body.len();
        run(&mut prog);
        assert_eq!(prog.body.len(), with_garbage - 2);
        assert!(prog.body.iter().any(|i| matches!(i, VInst::StoreA { .. })));
    }

    #[test]
    fn keeps_prologue_defs_used_by_body() {
        let p = parse_program(
            "arrays { a: i32[512] @ 0; b: i32[512] @ 0; c: i32[512] @ 0; }
             for i in 0..256 { a[i+3] = b[i+1] + c[i+2]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Zero)
            .unwrap();
        let opts = crate::options::CodegenOptions::default()
            .reuse(crate::options::ReuseMode::SoftwarePipeline)
            .unroll(false);
        let prog = crate::generate::generate(&g, &opts).unwrap();
        // The SP initializer copies in the prologue must survive DCE
        // (their dsts are read by the body before being re-written).
        let copies = prog
            .prologue()
            .iter()
            .filter(|i| matches!(i, VInst::Copy { .. }))
            .count();
        assert_eq!(copies, 3);
    }
}
