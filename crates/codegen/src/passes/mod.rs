//! Post-generation optimization passes over VIR programs.

pub(crate) mod dce;
pub(crate) mod lvn;
mod pc;
mod unroll;

use crate::options::{CodegenOptions, ReuseMode};
use crate::trace::{CodegenEvent, CodegenTrace, SectionCounts};
use crate::vir::SimdProgram;

/// Runs the configured pass pipeline in order:
///
/// 1. local value numbering (with chunk-normalized load keys when
///    MemNorm is enabled);
/// 2. predictive commoning when [`ReuseMode::PredictiveCommoning`] is
///    selected, followed by another LVN round to clean up the inserted
///    prologue initializers;
/// 3. dead code elimination;
/// 4. copy-removing unroll-by-2 when enabled and the steady body carries
///    registers.
///
/// Each pass appends a [`CodegenEvent::PassApplied`] with before/after
/// instruction counts to `trace`.
pub(crate) fn run_pipeline_traced(
    program: &mut SimdProgram,
    options: &CodegenOptions,
    trace: &mut CodegenTrace,
) {
    let mut traced = |program: &mut SimdProgram, pass, f: &dyn Fn(&mut SimdProgram)| {
        let before = SectionCounts::of(program);
        f(program);
        debug_verify(program, pass);
        trace.events.push(CodegenEvent::PassApplied {
            pass,
            before,
            after: SectionCounts::of(program),
        });
    };
    let memnorm = options.memnorm_enabled();
    traced(program, "lvn", &|p| lvn::run(p, memnorm));
    if options.reuse_mode() == ReuseMode::PredictiveCommoning {
        traced(program, "pc", &pc::run);
        traced(program, "post-pc lvn", &|p| lvn::run(p, memnorm));
    }
    traced(program, "dce", &dce::run);
    if options.unroll_enabled() {
        traced(program, "unroll", &unroll::run);
    }
}

/// Re-verifies the program after a pass in debug builds, the way a
/// production compiler runs its IR verifier between passes: a pass that
/// breaks the structural discipline panics here, naming itself, instead
/// of corrupting execution downstream.
pub(crate) fn debug_verify(program: &SimdProgram, pass: &str) {
    if cfg!(debug_assertions) {
        if let Err(e) = crate::verify::verify_program(program) {
            panic!("pass `{pass}` broke program well-formedness: {e}");
        }
    }
}
