//! Post-generation optimization passes over VIR programs.

pub(crate) mod dce;
pub(crate) mod lvn;
mod pc;
mod unroll;

use crate::options::{CodegenOptions, ReuseMode};
use crate::vir::SimdProgram;

/// Runs the configured pass pipeline in order:
///
/// 1. local value numbering (with chunk-normalized load keys when
///    MemNorm is enabled);
/// 2. predictive commoning when [`ReuseMode::PredictiveCommoning`] is
///    selected, followed by another LVN round to clean up the inserted
///    prologue initializers;
/// 3. dead code elimination;
/// 4. copy-removing unroll-by-2 when enabled and the steady body carries
///    registers.
pub(crate) fn run_pipeline(program: &mut SimdProgram, options: &CodegenOptions) {
    lvn::run(program, options.memnorm_enabled());
    debug_verify(program, "lvn");
    if options.reuse_mode() == ReuseMode::PredictiveCommoning {
        pc::run(program);
        debug_verify(program, "pc");
        lvn::run(program, options.memnorm_enabled());
        debug_verify(program, "post-pc lvn");
    }
    dce::run(program);
    debug_verify(program, "dce");
    if options.unroll_enabled() {
        unroll::run(program);
        debug_verify(program, "unroll");
    }
}

/// Re-verifies the program after a pass in debug builds, the way a
/// production compiler runs its IR verifier between passes: a pass that
/// breaks the structural discipline panics here, naming itself, instead
/// of corrupting execution downstream.
pub(crate) fn debug_verify(program: &SimdProgram, pass: &str) {
    if cfg!(debug_assertions) {
        if let Err(e) = crate::verify::verify_program(program) {
            panic!("pass `{pass}` broke program well-formedness: {e}");
        }
    }
}
