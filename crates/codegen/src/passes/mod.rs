//! Post-generation optimization passes over VIR programs.

pub(crate) mod dce;
pub(crate) mod lvn;
mod pc;
mod unroll;

use crate::options::{CodegenOptions, ReuseMode};
use crate::vir::SimdProgram;

/// Runs the configured pass pipeline in order:
///
/// 1. local value numbering (with chunk-normalized load keys when
///    MemNorm is enabled);
/// 2. predictive commoning when [`ReuseMode::PredictiveCommoning`] is
///    selected, followed by another LVN round to clean up the inserted
///    prologue initializers;
/// 3. dead code elimination;
/// 4. copy-removing unroll-by-2 when enabled and the steady body carries
///    registers.
pub(crate) fn run_pipeline(program: &mut SimdProgram, options: &CodegenOptions) {
    lvn::run(program, options.memnorm_enabled());
    if options.reuse_mode() == ReuseMode::PredictiveCommoning {
        pc::run(program);
        lvn::run(program, options.memnorm_enabled());
    }
    dce::run(program);
    if options.unroll_enabled() {
        unroll::run(program);
    }
}
