//! Predictive commoning (the paper's `PC` code-generation option,
//! crediting O'Brien's TPO optimization).
//!
//! The naive Figure 7 generator materializes, for every stream shift,
//! both the *current* and the *next/previous* register of a stream in
//! the same iteration. Predictive commoning discovers that one body
//! expression equals another body expression of the *next* iteration —
//! `e₂(i) = e₁(i + B)` — and carries `e₂`'s value across iterations in a
//! register instead of recomputing `e₁`:
//!
//! * prologue: `carried = e₁` evaluated at the first steady iteration;
//! * body: uses of `e₁` read `carried`; only `e₂` is computed;
//! * bottom of loop: `carried = e₂`.
//!
//! On the output of this crate's generator the transformation converges
//! to exactly the software-pipelined code of Figure 10, which is how the
//! paper's evaluation can compare the two as alternatives.

use crate::vir::{SimdProgram, VInst, VReg};
use std::collections::HashMap;

pub(crate) fn run(program: &mut SimdProgram) {
    let b = program.block() as i64;

    // Map each body-defined register to its defining instruction.
    let defs: HashMap<VReg, VInst> = program
        .body
        .iter()
        .filter_map(|i| i.def().map(|d| (d, i.clone())))
        .collect();

    // Signatures at substitution 0 and +B for every defined register.
    let mut sig0: HashMap<String, VReg> = HashMap::new();
    let mut candidates: Vec<(VReg, String, usize)> = Vec::new();
    for &reg in defs.keys() {
        if let Some((s0, size, has_load)) = signature(reg, 0, &defs) {
            if has_load {
                sig0.entry(s0).or_insert(reg);
            }
            if let Some((sb, _, has_load_b)) = signature(reg, b, &defs) {
                if has_load_b {
                    candidates.push((reg, sb, size));
                }
            }
        }
    }

    // Deterministic order: largest trees first, then register number.
    // Every pair is taken — pairs living inside trees that die anyway
    // produce carried registers with no remaining uses, which the DCE
    // pass removes along with their rotations and initializers.
    candidates.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)));

    let mut chosen: Vec<(VReg, VReg)> = Vec::new(); // (e1, e2): e2(i) == e1(i+B)
    for (e1, sig_b, _) in candidates {
        let Some(&e2) = sig0.get(&sig_b) else {
            continue;
        };
        if e2 != e1 {
            chosen.push((e1, e2));
        }
    }

    if chosen.is_empty() {
        return;
    }

    // Apply: carried register per pair; uses of e1 → carried.
    let mut rename: HashMap<VReg, VReg> = HashMap::new();
    let mut inits: Vec<VInst> = Vec::new();
    let mut copies: Vec<(VReg, VReg)> = Vec::new();
    for &(e1, e2) in &chosen {
        let carried = VReg(program.nvregs);
        program.nvregs += 1;
        // Prologue initializer: e1 evaluated at i = LB (the prologue
        // runs at i = 0, LB = B), i.e. e1's tree shifted by +B — which
        // is e2's tree shifted by 0 evaluated at the prologue... we
        // simply clone e1's tree with addresses shifted by +B.
        let init_val = emit_shifted_tree(e1, b, &defs, program, &mut inits);
        inits.push(VInst::Copy {
            dst: carried,
            src: init_val,
        });
        rename.insert(e1, carried);
        copies.push((carried, e2));
    }
    program.prologue.extend(inits);

    // Rewrite uses in the body (defs of e1 trees become dead; DCE
    // removes them next).
    for inst in &mut program.body {
        rewrite_uses(inst, &rename);
    }

    // Bottom-of-loop rotations. A copy source may itself be a carried
    // register (shift chains: e2 of one pair is e1 of another, renamed
    // to its carried register), in which case that copy must read the
    // register *before* the rotation overwrites it. Order the copies
    // topologically: emit a copy once no remaining copy still needs to
    // read its destination. The dependency graph is acyclic — a cycle
    // would require sig(e, +kB) == sig(e) for some k > 0, impossible
    // for trees containing loads.
    let mut remaining: Vec<(VReg, VReg)> = copies
        .iter()
        .map(|&(c, s)| (c, *rename.get(&s).unwrap_or(&s)))
        .collect();
    while !remaining.is_empty() {
        let idx = remaining
            .iter()
            .position(|&(c, _)| !remaining.iter().any(|&(c2, s2)| c2 != c && s2 == c))
            .expect("carried-copy dependencies are acyclic");
        let (carried, src) = remaining.remove(idx);
        program.body.push(VInst::Copy { dst: carried, src });
    }
}

/// Canonical signature of `reg`'s value with loads shifted by `delta`
/// elements. Returns `(signature, node count, contains a load)`, or
/// `None` when the tree reads a register not defined in the body (a
/// live-in, which cannot be shifted).
fn signature(reg: VReg, delta: i64, defs: &HashMap<VReg, VInst>) -> Option<(String, usize, bool)> {
    let inst = defs.get(&reg)?;
    match inst {
        VInst::LoadA { addr, .. } => {
            let sh = addr.shifted(delta);
            Some((
                format!("ld({},{},{})", sh.array.index(), sh.elem, sh.scale),
                1,
                true,
            ))
        }
        VInst::SplatConst { value, .. } => Some((format!("sc({value})"), 1, false)),
        VInst::SplatParam { param, .. } => Some((format!("sp({param})"), 1, false)),
        VInst::Bin { op, a, b, .. } => {
            let (sa, na, la) = signature(*a, delta, defs)?;
            let (sb, nb, lb) = signature(*b, delta, defs)?;
            Some((format!("b({op:?},{sa},{sb})"), 1 + na + nb, la || lb))
        }
        VInst::Un { op, a, .. } => {
            let (sa, na, la) = signature(*a, delta, defs)?;
            Some((format!("u({op:?},{sa})"), 1 + na, la))
        }
        VInst::ShiftPair { a, b, amt, .. } => {
            let (sa, na, la) = signature(*a, delta, defs)?;
            let (sb, nb, lb) = signature(*b, delta, defs)?;
            Some((format!("pair({sa},{sb},{amt})"), 1 + na + nb, la || lb))
        }
        VInst::Splice { a, b, point, .. } => {
            let (sa, na, la) = signature(*a, delta, defs)?;
            let (sb, nb, lb) = signature(*b, delta, defs)?;
            Some((format!("splice({sa},{sb},{point})"), 1 + na + nb, la || lb))
        }
        VInst::Perm { a, b, pattern, .. } => {
            let (sa, na, la) = signature(*a, delta, defs)?;
            let (sb, nb, lb) = signature(*b, delta, defs)?;
            Some((
                format!("perm({sa},{sb},{pattern:?})"),
                1 + na + nb,
                la || lb,
            ))
        }
        VInst::LoadU { addr, .. } => {
            let sh = addr.shifted(delta);
            Some((
                format!("ldu({},{},{})", sh.array.index(), sh.elem, sh.scale),
                1,
                true,
            ))
        }
        VInst::Copy { .. }
        | VInst::StoreA { .. }
        | VInst::StoreU { .. }
        | VInst::Guarded { .. } => None,
    }
}

/// Emits a copy of `reg`'s defining tree with load addresses shifted by
/// `delta` elements; returns the result register.
fn emit_shifted_tree(
    reg: VReg,
    delta: i64,
    defs: &HashMap<VReg, VInst>,
    program: &mut SimdProgram,
    out: &mut Vec<VInst>,
) -> VReg {
    let inst = defs
        .get(&reg)
        .expect("tree regs are body-defined (checked by signature)")
        .clone();
    let mut fresh = || {
        let r = VReg(program.nvregs);
        program.nvregs += 1;
        r
    };
    match inst {
        VInst::LoadA { addr, .. } => {
            let dst = fresh();
            out.push(VInst::LoadA {
                dst,
                addr: addr.shifted(delta),
            });
            dst
        }
        VInst::SplatConst { value, .. } => {
            let dst = fresh();
            out.push(VInst::SplatConst { dst, value });
            dst
        }
        VInst::SplatParam { param, .. } => {
            let dst = fresh();
            out.push(VInst::SplatParam { dst, param });
            dst
        }
        VInst::Bin { op, a, b, .. } => {
            let a = emit_shifted_tree(a, delta, defs, program, out);
            let b = emit_shifted_tree(b, delta, defs, program, out);
            let dst = VReg(program.nvregs);
            program.nvregs += 1;
            out.push(VInst::Bin { dst, op, a, b });
            dst
        }
        VInst::Un { op, a, .. } => {
            let a = emit_shifted_tree(a, delta, defs, program, out);
            let dst = VReg(program.nvregs);
            program.nvregs += 1;
            out.push(VInst::Un { dst, op, a });
            dst
        }
        VInst::ShiftPair { a, b, amt, .. } => {
            let a = emit_shifted_tree(a, delta, defs, program, out);
            let b = emit_shifted_tree(b, delta, defs, program, out);
            let dst = VReg(program.nvregs);
            program.nvregs += 1;
            out.push(VInst::ShiftPair { dst, a, b, amt });
            dst
        }
        VInst::Splice { a, b, point, .. } => {
            let a = emit_shifted_tree(a, delta, defs, program, out);
            let b = emit_shifted_tree(b, delta, defs, program, out);
            let dst = VReg(program.nvregs);
            program.nvregs += 1;
            out.push(VInst::Splice { dst, a, b, point });
            dst
        }
        VInst::LoadU { addr, .. } => {
            let dst = fresh();
            out.push(VInst::LoadU {
                dst,
                addr: addr.shifted(delta),
            });
            dst
        }
        VInst::Perm { a, b, pattern, .. } => {
            let a = emit_shifted_tree(a, delta, defs, program, out);
            let b = emit_shifted_tree(b, delta, defs, program, out);
            let dst = VReg(program.nvregs);
            program.nvregs += 1;
            out.push(VInst::Perm { dst, a, b, pattern });
            dst
        }
        VInst::Copy { .. }
        | VInst::StoreA { .. }
        | VInst::StoreU { .. }
        | VInst::Guarded { .. } => {
            unreachable!("filtered by signature")
        }
    }
}

fn rewrite_uses(inst: &mut VInst, rename: &HashMap<VReg, VReg>) {
    let res = |r: &mut VReg| {
        if let Some(&n) = rename.get(r) {
            *r = n;
        }
    };
    match inst {
        VInst::LoadA { .. }
        | VInst::LoadU { .. }
        | VInst::SplatConst { .. }
        | VInst::SplatParam { .. } => {}
        VInst::StoreA { src, .. } | VInst::StoreU { src, .. } => res(src),
        VInst::ShiftPair { a, b, .. } | VInst::Splice { a, b, .. } | VInst::Perm { a, b, .. } => {
            res(a);
            res(b);
        }
        VInst::Bin { a, b, .. } => {
            res(a);
            res(b);
        }
        VInst::Un { a, .. } => res(a),
        VInst::Copy { src, .. } => res(src),
        VInst::Guarded { body, .. } => {
            for i in body {
                rewrite_uses(i, rename);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::options::{CodegenOptions, ReuseMode};
    use crate::vir::VInst;
    use simdize_ir::{parse_program, VectorShape};
    use simdize_reorg::{Policy, ReorgGraph};

    fn counts(src: &str, reuse: ReuseMode) -> (usize, usize) {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Zero)
            .unwrap();
        let prog =
            crate::generate::generate(&g, &CodegenOptions::default().reuse(reuse).unroll(false))
                .unwrap();
        let loads = prog
            .body()
            .iter()
            .filter(|i| matches!(i, VInst::LoadA { .. }))
            .count();
        let copies = prog
            .body()
            .iter()
            .filter(|i| matches!(i, VInst::Copy { .. }))
            .count();
        (loads, copies)
    }

    const FIG1: &str = "arrays { a: i32[256] @ 0; b: i32[256] @ 0; c: i32[256] @ 0; }
                        for i in 0..200 { a[i+3] = b[i+1] + c[i+2]; }";

    #[test]
    fn pc_matches_software_pipelining() {
        let (pc_loads, pc_copies) = counts(FIG1, ReuseMode::PredictiveCommoning);
        let (sp_loads, sp_copies) = counts(FIG1, ReuseMode::SoftwarePipeline);
        assert_eq!(pc_loads, sp_loads, "PC should reach SP's load count");
        assert_eq!(pc_copies, sp_copies);
        let (naive_loads, _) = counts(FIG1, ReuseMode::None);
        assert!(pc_loads < naive_loads);
    }

    #[test]
    fn pc_guarantees_single_load_per_stream() {
        let (loads, _) = counts(FIG1, ReuseMode::PredictiveCommoning);
        assert_eq!(loads, 2); // one per input stream
    }
}
