//! Local value numbering with optional memory normalization (§5.5
//! "MemNorm").
//!
//! Each straight-line section (prologue, body, epilogue, and every
//! guarded block) is scanned top-down; instructions computing a value
//! already available in a register are dropped and their uses renamed.
//!
//! Load keys come in two precisions:
//!
//! * **syntactic** (MemNorm off): two loads deduplicate only when they
//!   name the same `array[i + k]`;
//! * **chunk-normalized** (MemNorm on): the address is normalized to its
//!   truncated `V`-aligned location first, so any two loads that provably
//!   hit the same 16-byte chunk deduplicate — the paper's footnote 3
//!   ("loading a[i] and a[i+1] anywhere in the loop counts as one when
//!   both map to the same 16-byte aligned location"). Chunk equality is
//!   only provable for arrays with compile-time base alignments; runtime
//!   arrays fall back to syntactic keys.

use crate::sexpr::SExpr;
use crate::vir::{SimdProgram, VInst, VReg};
use simdize_ir::{AlignKind, BinOp, LoopProgram, ParamId, UnOp, VectorShape};
use std::collections::HashMap;

pub(crate) fn run(program: &mut SimdProgram, memnorm: bool) {
    let source = program.source().clone();
    let shape = program.shape();
    let ctx = Ctx {
        source,
        shape,
        memnorm,
    };
    for section in [
        &mut program.prologue,
        &mut program.body,
        &mut program.epilogue,
    ] {
        let mut table = Table::default();
        number(section, &mut table, &ctx);
    }
}

struct Ctx {
    source: LoopProgram,
    shape: VectorShape,
    memnorm: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    LoadSyntactic(u32, i64, i64),
    LoadChunk(u32, i64),
    SplatConst(i64),
    SplatParam(ParamId),
    Shift(VReg, VReg, SExpr),
    Perm(VReg, VReg, Vec<u8>),
    Splice(VReg, VReg, SExpr),
    Bin(BinOp, VReg, VReg),
    Un(UnOp, VReg),
}

#[derive(Default, Clone)]
struct Table {
    values: HashMap<Key, VReg>,
    rename: HashMap<VReg, VReg>,
}

impl Table {
    fn resolve(&self, r: VReg) -> VReg {
        *self.rename.get(&r).unwrap_or(&r)
    }
}

fn number(insts: &mut Vec<VInst>, table: &mut Table, ctx: &Ctx) {
    let mut out: Vec<VInst> = Vec::with_capacity(insts.len());
    for mut inst in insts.drain(..) {
        rewrite_uses(&mut inst, table);
        match &mut inst {
            VInst::Guarded { body, .. } => {
                // Values computed outside remain visible inside; values
                // defined inside must not leak out, so number a clone.
                let mut inner = table.clone();
                number(body, &mut inner, ctx);
                out.push(inst);
            }
            VInst::StoreA { addr, .. } | VInst::StoreU { addr, .. } => {
                // A store invalidates remembered loads of its array
                // (conservative: the whole array, aligned and
                // unaligned keys alike).
                let arr = addr.array.index() as u32;
                table.values.retain(|k, _| {
                    !matches!(k, Key::LoadSyntactic(a, _, _) | Key::LoadChunk(a, _)
                              if *a & 0x7FFF_FFFF == arr)
                });
                out.push(inst);
            }
            _ => match key_of(&inst, ctx) {
                Some(key) => {
                    let dst = inst.def().expect("keyed instructions define");
                    if let Some(&rep) = table.values.get(&key) {
                        table.rename.insert(dst, rep);
                        // drop the duplicate instruction
                    } else {
                        table.values.insert(key, dst);
                        out.push(inst);
                    }
                }
                None => out.push(inst),
            },
        }
    }
    *insts = out;
}

fn rewrite_uses(inst: &mut VInst, table: &Table) {
    match inst {
        VInst::LoadA { .. }
        | VInst::LoadU { .. }
        | VInst::SplatConst { .. }
        | VInst::SplatParam { .. } => {}
        VInst::StoreA { src, .. } | VInst::StoreU { src, .. } => *src = table.resolve(*src),
        VInst::ShiftPair { a, b, .. } | VInst::Splice { a, b, .. } | VInst::Perm { a, b, .. } => {
            *a = table.resolve(*a);
            *b = table.resolve(*b);
        }
        VInst::Bin { a, b, .. } => {
            *a = table.resolve(*a);
            *b = table.resolve(*b);
        }
        VInst::Un { a, .. } => *a = table.resolve(*a),
        VInst::Copy { src, .. } => *src = table.resolve(*src),
        VInst::Guarded { body, .. } => {
            for i in body {
                rewrite_uses(i, table);
            }
        }
    }
}

fn key_of(inst: &VInst, ctx: &Ctx) -> Option<Key> {
    match inst {
        VInst::LoadA { addr, .. } => {
            let arr = addr.array.index() as u32;
            if ctx.memnorm && addr.scale == 1 {
                let decl = ctx.source.array(addr.array);
                if let AlignKind::Known(beta) = decl.align() {
                    let beta = (beta % ctx.shape.bytes()) as i64;
                    let d = ctx.source.elem().size() as i64;
                    let chunk = (beta + addr.elem * d).div_euclid(ctx.shape.bytes() as i64);
                    return Some(Key::LoadChunk(arr, chunk));
                }
            }
            Some(Key::LoadSyntactic(arr, addr.elem, addr.scale))
        }
        VInst::SplatConst { value, .. } => Some(Key::SplatConst(*value)),
        VInst::SplatParam { param, .. } => Some(Key::SplatParam(*param)),
        VInst::ShiftPair { a, b, amt, .. } => Some(Key::Shift(*a, *b, amt.clone())),
        VInst::Perm { a, b, pattern, .. } => Some(Key::Perm(*a, *b, pattern.clone())),
        VInst::Splice { a, b, point, .. } => Some(Key::Splice(*a, *b, point.clone())),
        VInst::Bin { op, a, b, .. } => {
            let (a, b) = if op.is_reassociable() && b < a {
                (*b, *a)
            } else {
                (*a, *b)
            };
            Some(Key::Bin(*op, a, b))
        }
        VInst::Un { op, a, .. } => Some(Key::Un(*op, *a)),
        // Unaligned accesses are CSE'd syntactically only.
        VInst::LoadU { addr, .. } => Some(Key::LoadSyntactic(
            addr.array.index() as u32 | 0x8000_0000,
            addr.elem,
            addr.scale,
        )),
        VInst::Copy { .. }
        | VInst::StoreA { .. }
        | VInst::StoreU { .. }
        | VInst::Guarded { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use crate::options::CodegenOptions;
    use crate::vir::VInst;
    use simdize_ir::{parse_program, VectorShape};
    use simdize_reorg::{Policy, ReorgGraph};

    fn body_loads(src: &str, memnorm: bool) -> usize {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Lazy)
            .unwrap();
        let prog = crate::generate::generate(
            &g,
            &CodegenOptions::default().memnorm(memnorm).unroll(false),
        )
        .unwrap();
        prog.body()
            .iter()
            .filter(|i| matches!(i, VInst::LoadA { .. }))
            .count()
    }

    #[test]
    fn chunk_normalization_merges_same_chunk_loads() {
        // b[i] and b[i+1] share a 16-byte chunk in 3 of 4 steady
        // iterations? No — per iteration, both truncate to the same
        // chunk always (elems 0 and 1, offsets 0 and 4 bytes, same
        // 16-byte window for β=0 ⇒ chunks 0 and 0).
        let src = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
                   for i in 0..64 { a[i] = b[i] + b[i+1]; }";
        assert!(body_loads(src, true) < body_loads(src, false));
    }

    #[test]
    fn syntactic_duplicates_always_merge() {
        let src = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
                   for i in 0..64 { a[i] = b[i+1] + b[i+1]; }";
        // The two identical loads merge even without memnorm.
        assert_eq!(body_loads(src, false), body_loads(src, true));
    }
}
