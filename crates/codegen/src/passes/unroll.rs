//! Copy-removing unroll-by-2 of the steady-state loop (paper §4.5,
//! closing remark: "the copy operation can be easily removed by
//! unrolling the loop twice and forward propagating the copy").
//!
//! The unrolled body executes two steady iterations; in the first half
//! the loop-carried copies are forward-propagated away (reads of a
//! carried register in the second half go straight to the first half's
//! value), so only the second half's rotations remain. A leftover
//! single-iteration loop (the original body) handles odd trip counts.

use crate::vir::{SimdProgram, VInst, VReg};
use std::collections::HashMap;

pub(crate) fn run(program: &mut SimdProgram) {
    let copies: Vec<(VReg, VReg)> = program
        .body
        .iter()
        .filter_map(|i| match i {
            VInst::Copy { dst, src } => Some((*dst, *src)),
            _ => None,
        })
        .collect();
    if copies.is_empty() {
        return; // nothing to win
    }
    let carried: Vec<VReg> = copies.iter().map(|&(c, _)| c).collect();

    // Chains (a copy reading another carried register) need the
    // sequential-copy semantics preserved; keep the copies in that case.
    let has_chain = copies.iter().any(|&(_, src)| carried.contains(&src));

    let core: Vec<VInst> = program
        .body
        .iter()
        .filter(|i| !matches!(i, VInst::Copy { .. }))
        .cloned()
        .collect();

    // The value each carried register holds at the end of half 1.
    let end_value: HashMap<VReg, VReg> = copies.iter().cloned().collect();

    let b = program.block() as i64;
    let mut pair: Vec<VInst> = core.clone();
    if has_chain {
        for &(dst, src) in &copies {
            pair.push(VInst::Copy { dst, src });
        }
    }

    // Second half: addresses advance by B; every defined register is
    // renamed; reads of carried registers take half 1's value directly
    // (forward-propagated copies) unless chains forced real copies.
    let mut rename: HashMap<VReg, VReg> = HashMap::new();
    let mut half2: Vec<VInst> = Vec::new();
    for inst in &core {
        let mut inst = inst.clone();
        // Rewrite uses first (pre-rename state).
        remap_uses(&mut inst, |r| {
            if let Some(&n) = rename.get(&r) {
                n
            } else if !has_chain {
                *end_value.get(&r).unwrap_or(&r)
            } else {
                r
            }
        });
        shift_addrs(&mut inst, b);
        if let Some(dst) = inst.def() {
            let fresh = VReg(program.nvregs);
            program.nvregs += 1;
            rename.insert(dst, fresh);
            set_def(&mut inst, fresh);
        }
        half2.push(inst);
    }
    // Second half's rotations close the loop for the next pair.
    for &(dst, src) in &copies {
        let src = *rename.get(&src).unwrap_or(&src);
        half2.push(VInst::Copy { dst, src });
    }

    pair.extend(half2);
    program.body_pair = Some(pair);
}

fn remap_uses(inst: &mut VInst, f: impl Fn(VReg) -> VReg + Copy) {
    match inst {
        VInst::LoadA { .. }
        | VInst::LoadU { .. }
        | VInst::SplatConst { .. }
        | VInst::SplatParam { .. } => {}
        VInst::StoreA { src, .. } | VInst::StoreU { src, .. } => *src = f(*src),
        VInst::ShiftPair { a, b, .. } | VInst::Splice { a, b, .. } | VInst::Perm { a, b, .. } => {
            *a = f(*a);
            *b = f(*b);
        }
        VInst::Bin { a, b, .. } => {
            *a = f(*a);
            *b = f(*b);
        }
        VInst::Un { a, .. } => *a = f(*a),
        VInst::Copy { src, .. } => *src = f(*src),
        VInst::Guarded { body, .. } => {
            for i in body {
                remap_uses(i, f);
            }
        }
    }
}

fn shift_addrs(inst: &mut VInst, delta: i64) {
    match inst {
        VInst::LoadA { addr, .. }
        | VInst::StoreA { addr, .. }
        | VInst::LoadU { addr, .. }
        | VInst::StoreU { addr, .. } => *addr = addr.shifted(delta),
        VInst::Guarded { body, .. } => {
            for i in body {
                shift_addrs(i, delta);
            }
        }
        _ => {}
    }
}

fn set_def(inst: &mut VInst, new: VReg) {
    match inst {
        VInst::LoadA { dst, .. }
        | VInst::LoadU { dst, .. }
        | VInst::ShiftPair { dst, .. }
        | VInst::Perm { dst, .. }
        | VInst::Splice { dst, .. }
        | VInst::SplatConst { dst, .. }
        | VInst::SplatParam { dst, .. }
        | VInst::Bin { dst, .. }
        | VInst::Un { dst, .. }
        | VInst::Copy { dst, .. } => *dst = new,
        VInst::StoreA { .. } | VInst::StoreU { .. } | VInst::Guarded { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use crate::options::{CodegenOptions, ReuseMode};
    use crate::vir::VInst;
    use simdize_ir::{parse_program, VectorShape};
    use simdize_reorg::{Policy, ReorgGraph};

    const FIG1: &str = "arrays { a: i32[256] @ 0; b: i32[256] @ 0; c: i32[256] @ 0; }
                        for i in 0..200 { a[i+3] = b[i+1] + c[i+2]; }";

    fn gen(reuse: ReuseMode, unroll: bool) -> crate::vir::SimdProgram {
        let p = parse_program(FIG1).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Zero)
            .unwrap();
        crate::generate::generate(&g, &CodegenOptions::default().reuse(reuse).unroll(unroll))
            .unwrap()
    }

    #[test]
    fn unroll_halves_copy_overhead() {
        let p = gen(ReuseMode::SoftwarePipeline, true);
        let pair = p.body_pair().expect("unrolled");
        let pair_copies = pair
            .iter()
            .filter(|i| matches!(i, VInst::Copy { .. }))
            .count();
        let body_copies = p
            .body()
            .iter()
            .filter(|i| matches!(i, VInst::Copy { .. }))
            .count();
        // Two iterations' worth of work, one iteration's worth of copies.
        assert_eq!(pair_copies, body_copies);
        let pair_stores = pair
            .iter()
            .filter(|i| matches!(i, VInst::StoreA { .. }))
            .count();
        assert_eq!(pair_stores, 2);
    }

    #[test]
    fn no_copies_no_unroll() {
        let p = gen(ReuseMode::None, true);
        assert!(p.body_pair().is_none());
    }
}
