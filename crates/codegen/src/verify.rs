//! A static well-formedness verifier for generated programs.
//!
//! Production compilers ship an IR verifier that runs after every pass;
//! this is ours. It checks the structural discipline the interpreter
//! relies on, so generator or pass bugs surface as typed errors instead
//! of execution faults or silent corruption:
//!
//! * every register is read only after it is defined — except the
//!   loop-carried registers, which may be read at the top of the steady
//!   body before their bottom-of-body rotation, provided the prologue
//!   initialized them;
//! * compile-time `vshiftpair` amounts lie in `[0, V]` and `vsplice`
//!   points in `[0, V]`;
//! * `vperm` patterns have exactly `V` entries, each below `2V`;
//! * every memory operand names an array of the source program, with a
//!   meaningful scale: never negative, and `scale == 0` (a
//!   loop-invariant address) only for reduction accumulators in the
//!   epilogue;
//! * the unrolled body pair, when present, obeys the same rules *and*
//!   performs every loop-carried register rotation the primary body
//!   performs — otherwise the second unrolled iteration and the
//!   epilogue would read stale chunks.

use crate::vir::{SimdProgram, VInst, VReg};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A structural defect found by [`verify_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyProgramError {
    /// A register is read before any definition reaches it.
    UseBeforeDef {
        /// Which section the use is in.
        section: &'static str,
        /// The offending register.
        reg: VReg,
    },
    /// A compile-time shift amount outside `[0, V]`.
    ShiftAmountOutOfRange {
        /// The evaluated amount.
        amount: i64,
    },
    /// A compile-time splice point outside `[0, V]`.
    SplicePointOutOfRange {
        /// The evaluated point.
        point: i64,
    },
    /// A permute pattern with the wrong length or an out-of-range entry.
    BadPermPattern {
        /// The pattern length found.
        len: usize,
        /// The first out-of-range entry, if any.
        bad_entry: Option<u8>,
    },
    /// A memory operand names an array outside the program's table.
    UnknownArray {
        /// The dangling array index.
        index: usize,
    },
    /// A memory operand with a meaningless scale: negative, or zero
    /// outside a reduction accumulator access in the epilogue.
    BadAddrScale {
        /// Which section the operand is in.
        section: &'static str,
        /// The offending scale.
        scale: i64,
    },
    /// The unrolled body pair fails to redefine a loop-carried register
    /// that the primary body rotates.
    PairMissingRotation {
        /// The carried register the pair leaves stale.
        reg: VReg,
    },
}

impl fmt::Display for VerifyProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyProgramError::UseBeforeDef { section, reg } => {
                write!(
                    f,
                    "register {reg} is read before definition in the {section}"
                )
            }
            VerifyProgramError::ShiftAmountOutOfRange { amount } => {
                write!(f, "compile-time vshiftpair amount {amount} outside [0, V]")
            }
            VerifyProgramError::SplicePointOutOfRange { point } => {
                write!(f, "compile-time vsplice point {point} outside [0, V]")
            }
            VerifyProgramError::BadPermPattern { len, bad_entry } => match bad_entry {
                Some(e) => write!(f, "vperm pattern entry {e} selects past both sources"),
                None => write!(f, "vperm pattern has {len} entries instead of V"),
            },
            VerifyProgramError::UnknownArray { index } => {
                write!(f, "memory operand names undeclared array index {index}")
            }
            VerifyProgramError::BadAddrScale { section, scale } => {
                write!(
                    f,
                    "memory operand scale {scale} is meaningless in the {section} \
                     (scale 0 is reserved for reduction accumulators in the epilogue)"
                )
            }
            VerifyProgramError::PairMissingRotation { reg } => {
                write!(
                    f,
                    "unrolled body pair never redefines loop-carried register {reg} \
                     rotated by the primary body"
                )
            }
        }
    }
}

impl Error for VerifyProgramError {}

/// Immutable per-program facts threaded through the section checks.
struct Ctx {
    v: i64,
    arrays: usize,
    /// Arrays accumulated by reduction statements — the only legal
    /// targets of loop-invariant (`scale == 0`) addresses.
    reduction_targets: HashSet<usize>,
}

/// Checks the structural discipline of a generated program.
///
/// # Errors
///
/// Returns the first defect found; see [`VerifyProgramError`].
pub fn verify_program(program: &SimdProgram) -> Result<(), VerifyProgramError> {
    let ctx = Ctx {
        v: program.shape().bytes() as i64,
        arrays: program.source().arrays().len(),
        reduction_targets: program
            .source()
            .stmts()
            .iter()
            .filter(|s| s.reduction.is_some())
            .map(|s| s.target.array.index())
            .collect(),
    };

    // Definitions available at the top of each section.
    let mut prologue_defs: HashSet<VReg> = HashSet::new();
    check_section(
        "prologue",
        program.prologue(),
        &HashSet::new(),
        &mut prologue_defs,
        &ctx,
    )?;

    // The steady body may read prologue definitions; carried registers
    // are exactly the prologue-defined registers rewritten by body
    // copies, so the prologue-def set covers them.
    let mut body_defs = prologue_defs.clone();
    check_section("body", program.body(), &prologue_defs, &mut body_defs, &ctx)?;

    if let Some(pair) = program.body_pair() {
        let mut pair_defs = prologue_defs.clone();
        check_section("body pair", pair, &prologue_defs, &mut pair_defs, &ctx)?;

        // Every loop-carried rotation the primary body performs (its
        // `Copy` rewrites of prologue-initialized registers) must also
        // be performed by the pair: the pair stands for two steady
        // iterations, and the leftover body/epilogue read the carried
        // registers after it runs. Only the pair's *own* top-level
        // definitions count — the registers being rotated are
        // prologue-defined, so the live-in set would mask the check.
        let pair_own: HashSet<VReg> = pair.iter().filter_map(|i| i.def()).collect();
        for inst in program.body() {
            if let VInst::Copy { dst, .. } = inst {
                if !pair_own.contains(dst) {
                    return Err(VerifyProgramError::PairMissingRotation { reg: *dst });
                }
            }
        }
    }

    let mut epi_defs = body_defs.clone();
    check_section("epilogue", program.epilogue(), &body_defs, &mut epi_defs, &ctx)?;
    Ok(())
}

fn check_section(
    section: &'static str,
    insts: &[VInst],
    live_in: &HashSet<VReg>,
    defs: &mut HashSet<VReg>,
    ctx: &Ctx,
) -> Result<(), VerifyProgramError> {
    for inst in insts {
        check_inst(section, inst, live_in, defs, ctx)?;
    }
    Ok(())
}

fn check_inst(
    section: &'static str,
    inst: &VInst,
    live_in: &HashSet<VReg>,
    defs: &mut HashSet<VReg>,
    ctx: &Ctx,
) -> Result<(), VerifyProgramError> {
    // Guarded blocks are checked recursively (their own definitions
    // stay local, mirroring the LVN scoping); the flat use-scan below
    // must not see inside them, since `visit_uses` recurses.
    if let VInst::Guarded { body, .. } = inst {
        let mut inner = defs.clone();
        for i in body {
            check_inst(section, i, live_in, &mut inner, ctx)?;
        }
        return Ok(());
    }

    // Uses first (an instruction may not read its own definition).
    let mut bad_use: Option<VReg> = None;
    inst.visit_uses(&mut |r| {
        if bad_use.is_none() && !defs.contains(&r) && !live_in.contains(&r) {
            bad_use = Some(r);
        }
    });
    if let Some(reg) = bad_use {
        return Err(VerifyProgramError::UseBeforeDef { section, reg });
    }

    match inst {
        VInst::LoadA { addr, .. }
        | VInst::StoreA { addr, .. }
        | VInst::LoadU { addr, .. }
        | VInst::StoreU { addr, .. } => {
            if addr.array.index() >= ctx.arrays {
                return Err(VerifyProgramError::UnknownArray {
                    index: addr.array.index(),
                });
            }
            let invariant_ok =
                section == "epilogue" && ctx.reduction_targets.contains(&addr.array.index());
            if addr.scale < 0 || (addr.scale == 0 && !invariant_ok) {
                return Err(VerifyProgramError::BadAddrScale {
                    section,
                    scale: addr.scale,
                });
            }
        }
        VInst::ShiftPair { amt, .. } => {
            if let Some(a) = amt.as_const() {
                if !(0..=ctx.v).contains(&a) {
                    return Err(VerifyProgramError::ShiftAmountOutOfRange { amount: a });
                }
            }
        }
        VInst::Splice { point, .. } => {
            if let Some(p) = point.as_const() {
                if !(0..=ctx.v).contains(&p) {
                    return Err(VerifyProgramError::SplicePointOutOfRange { point: p });
                }
            }
        }
        VInst::Perm { pattern, .. } => {
            if pattern.len() != ctx.v as usize {
                return Err(VerifyProgramError::BadPermPattern {
                    len: pattern.len(),
                    bad_entry: None,
                });
            }
            if let Some(&bad) = pattern.iter().find(|&&e| (e as i64) >= 2 * ctx.v) {
                return Err(VerifyProgramError::BadPermPattern {
                    len: pattern.len(),
                    bad_entry: Some(bad),
                });
            }
        }
        _ => {}
    }

    if let Some(d) = inst.def() {
        defs.insert(d);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{CodegenOptions, ReuseMode};
    use crate::sexpr::SExpr;
    use crate::vir::Addr;
    use simdize_ir::{parse_program, ArrayId, VectorShape};
    use simdize_reorg::{Policy, ReorgGraph};

    fn compiled(src: &str, reuse: ReuseMode, unroll: bool) -> SimdProgram {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Zero)
            .unwrap();
        crate::generate::generate(&g, &CodegenOptions::default().reuse(reuse).unroll(unroll))
            .unwrap()
    }

    const SRC: &str = "arrays { a: i32[256] @ 0; b: i32[256] @ 0; c: i32[256] @ 0; }
                       for i in 0..200 { a[i+3] = b[i+1] + c[i+2]; }";

    #[test]
    fn generated_programs_verify() {
        for reuse in [
            ReuseMode::None,
            ReuseMode::SoftwarePipeline,
            ReuseMode::PredictiveCommoning,
        ] {
            for unroll in [false, true] {
                verify_program(&compiled(SRC, reuse, unroll))
                    .unwrap_or_else(|e| panic!("{reuse:?}/unroll={unroll}: {e}"));
            }
        }
    }

    #[test]
    fn strided_and_unaligned_programs_verify() {
        let p = parse_program(
            "arrays { out: i32[128] @ 0; inter: i32[300] @ 4; }
             for i in 0..100 { out[i] = inter[2*i] + inter[2*i+1]; }",
        )
        .unwrap();
        verify_program(&crate::strided::generate_strided(&p, VectorShape::V16).unwrap()).unwrap();

        let p2 = parse_program(SRC).unwrap();
        let g = ReorgGraph::build(&p2, VectorShape::V16).unwrap();
        verify_program(&crate::unaligned::generate_unaligned(&g).unwrap()).unwrap();
    }

    #[test]
    fn reduction_programs_verify() {
        // Reductions are the one place a loop-invariant (scale 0)
        // accumulator address is legal — in the epilogue.
        let prog = compiled(
            "arrays { acc: i32[256] @ 0; x: i32[256] @ 4; }
             for i in 0..200 { acc[i] += x[i] * x[i]; }",
            ReuseMode::SoftwarePipeline,
            true,
        );
        assert!(prog
            .epilogue
            .iter()
            .any(|i| matches!(i, VInst::LoadA { addr, .. } if addr.scale == 0)));
        verify_program(&prog).unwrap();
    }

    #[test]
    fn catches_use_before_def() {
        let mut prog = compiled(SRC, ReuseMode::None, false);
        let ghost = VReg(prog.nvregs);
        prog.nvregs += 1;
        prog.body.insert(
            0,
            VInst::StoreA {
                addr: Addr::new(ArrayId::from_index(0), 0),
                src: ghost,
            },
        );
        assert!(matches!(
            verify_program(&prog),
            Err(VerifyProgramError::UseBeforeDef {
                section: "body",
                ..
            })
        ));
    }

    #[test]
    fn catches_invariant_addr_outside_reduction_epilogue() {
        // A scale-0 load in the steady body is meaningless: the chunk
        // never advances with `i`.
        let mut prog = compiled(SRC, ReuseMode::None, false);
        let dst = VReg(prog.nvregs);
        prog.nvregs += 1;
        prog.body.insert(
            0,
            VInst::LoadA {
                dst,
                addr: Addr::invariant(ArrayId::from_index(1), 0),
            },
        );
        assert!(matches!(
            verify_program(&prog),
            Err(VerifyProgramError::BadAddrScale {
                section: "body",
                scale: 0,
            })
        ));

        // Even in the epilogue it is only legal for reduction targets.
        let mut prog = compiled(SRC, ReuseMode::None, false);
        let dst = VReg(prog.nvregs);
        prog.nvregs += 1;
        prog.epilogue.push(VInst::LoadA {
            dst,
            addr: Addr::invariant(ArrayId::from_index(1), 0),
        });
        assert!(matches!(
            verify_program(&prog),
            Err(VerifyProgramError::BadAddrScale {
                section: "epilogue",
                scale: 0,
            })
        ));
    }

    #[test]
    fn catches_pair_missing_rotation() {
        let mut prog = compiled(SRC, ReuseMode::SoftwarePipeline, true);
        assert!(prog.body_pair.is_some(), "unroll should produce a pair");
        verify_program(&prog).unwrap();
        // Drop the pair's loop-carried rotations: the second unrolled
        // iteration would then read stale chunks.
        prog.body_pair
            .as_mut()
            .unwrap()
            .retain(|i| !matches!(i, VInst::Copy { .. }));
        assert!(matches!(
            verify_program(&prog),
            Err(VerifyProgramError::PairMissingRotation { .. })
        ));
    }

    #[test]
    fn catches_bad_perm_and_ranges() {
        let mut prog = compiled(SRC, ReuseMode::None, false);
        let dst = VReg(prog.nvregs);
        prog.nvregs += 1;
        let some_def = prog.body.iter().find_map(|i| i.def()).unwrap();
        prog.body.push(VInst::Perm {
            dst,
            a: some_def,
            b: some_def,
            pattern: vec![40; 16],
        });
        assert!(matches!(
            verify_program(&prog),
            Err(VerifyProgramError::BadPermPattern {
                bad_entry: Some(40),
                ..
            })
        ));

        let mut prog = compiled(SRC, ReuseMode::None, false);
        let dst = VReg(prog.nvregs);
        prog.nvregs += 1;
        let some_def = prog.body.iter().find_map(|i| i.def()).unwrap();
        prog.body.push(VInst::ShiftPair {
            dst,
            a: some_def,
            b: some_def,
            amt: SExpr::c(99),
        });
        assert!(matches!(
            verify_program(&prog),
            Err(VerifyProgramError::ShiftAmountOutOfRange { amount: 99 })
        ));
    }
}
