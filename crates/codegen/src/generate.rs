//! The SIMD code generator (paper §4).

use crate::error::GenCodeError;
use crate::options::{CodegenOptions, ReuseMode};
use crate::passes;
use crate::sexpr::{SCond, SExpr};
use crate::trace::{BoundFormula, CodegenEvent, CodegenTrace};
use crate::vir::{Addr, SimdProgram, VInst, VReg};
use simdize_ir::{AlignKind, ArrayRef, BinOp, Invariant, ScalarType, TripCount};
use simdize_reorg::{NodeId, Offset, RNode, ReorgGraph, ShiftDir, VOpKind};
use std::collections::HashMap;

/// Generates a [`SimdProgram`] from a valid data reorganization graph.
///
/// The generator implements the paper's Figure 7 (expressions and stream
/// shifts), Figure 9 (prologue / steady state / epilogue with partial
/// stores), the multi-statement bound formulas (eqs. 12–14), the runtime
/// alignment and unknown-bound handling of §4.4 (eqs. 15–16 and the
/// `ub > 3B` guard), and — when [`ReuseMode::SoftwarePipeline`] is
/// selected — the software-pipelined scheme of Figure 10. Post passes
/// run according to `options` (memory normalization + CSE, predictive
/// commoning, dead code elimination, copy-removing unroll-by-2).
///
/// # Errors
///
/// Returns [`GenCodeError::InvalidGraph`] when the graph violates
/// constraint (C.2) or (C.3); apply a [`simdize_reorg::Policy`] first.
pub fn generate(graph: &ReorgGraph, options: &CodegenOptions) -> Result<SimdProgram, GenCodeError> {
    let mut trace = CodegenTrace::new();
    generate_traced(graph, options, &mut trace)
}

/// Like [`generate`], but records every structural decision — bound
/// formula, prologue/epilogue shapes, reuse scheme, post-pass effects —
/// into `trace`.
///
/// # Errors
///
/// Same as [`generate`]; on error the trace may hold the events emitted
/// before the failure.
pub fn generate_traced(
    graph: &ReorgGraph,
    options: &CodegenOptions,
    trace: &mut CodegenTrace,
) -> Result<SimdProgram, GenCodeError> {
    graph.validate()?;
    let mut generator = Generator::new(graph, options);
    let mut program = generator.run()?;
    trace.events.append(&mut generator.trace.events);
    passes::run_pipeline_traced(&mut program, options, trace);
    Ok(program)
}

/// Internal code generation mode: the paper's `GenSimdExpr` (standard)
/// versus `GenSimdExprSP` (software pipelined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Std,
    Sp,
}

struct Generator<'g> {
    graph: &'g ReorgGraph,
    options: CodegenOptions,
    next_reg: u32,
    prologue: Vec<VInst>,
    body: Vec<VInst>,
    epilogue: Vec<VInst>,
    /// Loop-carried rotations `(old, second)` appended at the bottom of
    /// the steady body (Figure 10 line 19).
    carried: Vec<(VReg, VReg)>,
    /// Software-pipelining memo: result register per (shift node, i
    /// substitution), so one carried chain serves all uses.
    sp_memo: HashMap<(NodeId, i64), VReg>,
    /// Blocking factor in elements.
    b: i64,
    /// Vector length in bytes.
    v: i64,
    /// Element size in bytes.
    d: i64,
    /// Structural decisions made while generating.
    trace: CodegenTrace,
}

impl<'g> Generator<'g> {
    fn new(graph: &'g ReorgGraph, options: &CodegenOptions) -> Generator<'g> {
        Generator {
            graph,
            options: *options,
            next_reg: 0,
            prologue: Vec::new(),
            body: Vec::new(),
            epilogue: Vec::new(),
            carried: Vec::new(),
            sp_memo: HashMap::new(),
            b: graph.blocking_factor() as i64,
            v: graph.shape().bytes() as i64,
            d: graph.program().elem().size() as i64,
            trace: CodegenTrace::new(),
        }
    }

    fn fresh(&mut self) -> VReg {
        let r = VReg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn run(&mut self) -> Result<SimdProgram, GenCodeError> {
        let program = self.graph.program().clone();
        let guard_min_trip = (3 * self.b) as u64;

        // Per-statement stores (or reduction accumulators) and their
        // ProSplice expressions (eq. 8; reductions have none).
        let stmts: Vec<(ArrayRef, NodeId, Option<BinOp>)> = self
            .graph
            .roots()
            .iter()
            .zip(program.stmts())
            .map(|(&root, stmt)| match self.graph.node(root) {
                RNode::Store { r, src } => (*r, *src, stmt.reduction),
                other => unreachable!("root is not a store: {other:?}"),
            })
            .collect();
        let has_reduction = stmts.iter().any(|&(_, _, red)| red.is_some());
        if has_reduction {
            if program.trip().known().is_none() {
                return Err(GenCodeError::ReductionNeedsKnownTrip);
            }
            for &(r, _, red) in &stmts {
                if red.is_some() && !program.array(r.array).align().is_known() {
                    return Err(GenCodeError::ReductionNeedsKnownAlignment);
                }
            }
        }
        let prosplices: Vec<Option<SExpr>> = stmts
            .iter()
            .map(|&(r, _, red)| {
                if red.is_some() {
                    None
                } else {
                    Some(self.offset_expr(Offset::of_ref(r, &program, self.graph.shape())))
                }
            })
            .collect();

        // Steady-state upper bound: eq. 13 when everything is known at
        // compile time, eq. 15 otherwise. Loops containing reductions
        // always use the eq. 15 bound so that the reduction tail is
        // exactly `ub mod B` elements.
        let ub_sexpr = match program.trip() {
            TripCount::Known(u) => SExpr::c(u as i64),
            TripCount::Runtime => SExpr::Ub,
        };
        let compile_time = program.all_alignments_known() && ub_sexpr.as_const().is_some();
        let use_eq15 = !compile_time || has_reduction;
        let upper_bound = if !use_eq15 {
            let ub = ub_sexpr.as_const().expect("checked");
            let max_e = prosplices
                .iter()
                .flatten()
                .map(|ps| {
                    let ps = ps.as_const().expect("compile-time prosplice");
                    let episplice = (ps + ub * self.d).rem_euclid(self.v);
                    episplice.div_euclid(self.d)
                })
                .max()
                .unwrap_or(0);
            SExpr::c(ub - max_e)
        } else {
            ub_sexpr.clone().sub(SExpr::c(self.b - 1))
        };
        self.trace.events.push(CodegenEvent::BoundsChosen {
            lower_bound: self.b as u64,
            upper_bound: upper_bound.clone(),
            formula: if use_eq15 {
                BoundFormula::Eq15
            } else {
                BoundFormula::Eq13
            },
            guard_min_trip,
        });

        // Loop-carried accumulator registers, one per reduction.
        let mut accs: Vec<Option<VReg>> = vec![None; stmts.len()];

        // Prologue (Figure 9, GenSimdStmt-Prologue), executed at i = 0.
        // Reductions initialize their accumulator with the first block
        // E(0) here instead of a partial store.
        for (idx, &(store, src, reduction)) in stmts.iter().enumerate() {
            self.trace.events.push(CodegenEvent::ProloguePeeled {
                stmt: idx,
                prosplice: prosplices[idx].clone(),
                spliced: prosplices[idx]
                    .as_ref()
                    .is_some_and(|ps| ps.as_const() != Some(0)),
            });
            if reduction.is_some() {
                let mut insts = Vec::new();
                let first = self.gen_expr(src, 0, &mut insts, Mode::Std);
                let acc = self.fresh();
                insts.push(VInst::Copy {
                    dst: acc,
                    src: first,
                });
                accs[idx] = Some(acc);
                self.prologue.extend(insts);
                continue;
            }
            let addr = Addr::new(store.array, store.offset);
            let mut insts = Vec::new();
            let new = self.gen_expr(src, 0, &mut insts, Mode::Std);
            let ps = prosplices[idx].clone().expect("stores have splice points");
            if ps.as_const() == Some(0) {
                insts.push(VInst::StoreA { addr, src: new });
            } else {
                let old = self.fresh();
                insts.push(VInst::LoadA { dst: old, addr });
                let spliced = self.fresh();
                insts.push(VInst::Splice {
                    dst: spliced,
                    a: old,
                    b: new,
                    point: ps,
                });
                insts.push(VInst::StoreA { addr, src: spliced });
            }
            self.prologue.extend(insts);
        }

        // Steady-state body (GenSimdStmt-Steady), plus carried copies.
        let body_mode = match self.options.reuse_mode() {
            ReuseMode::SoftwarePipeline => Mode::Sp,
            _ => Mode::Std,
        };
        let mut body = Vec::new();
        for (idx, &(store, src, reduction)) in stmts.iter().enumerate() {
            let new = self.gen_expr(src, 0, &mut body, body_mode);
            match reduction {
                Some(op) => {
                    let acc = accs[idx].expect("initialized in prologue");
                    let newacc = self.fresh();
                    body.push(VInst::Bin {
                        dst: newacc,
                        op,
                        a: acc,
                        b: new,
                    });
                    self.carried.push((acc, newacc));
                }
                None => body.push(VInst::StoreA {
                    addr: Addr::new(store.array, store.offset),
                    src: new,
                }),
            }
        }
        for &(old, second) in &self.carried.clone() {
            body.push(VInst::Copy {
                dst: old,
                src: second,
            });
        }
        self.body = body;
        self.trace.events.push(CodegenEvent::ReuseApplied {
            mode: self.options.reuse_mode(),
            carried_chains: self.carried.len(),
        });

        // Epilogue (Figure 9, GenSimdStmt-Epilogue; eqs. 14/16),
        // executed with i at the first un-executed steady value.
        for (idx, &(store, src, reduction)) in stmts.iter().enumerate() {
            if let Some(op) = reduction {
                let acc = accs[idx].expect("initialized in prologue");
                let ub = ub_sexpr.as_const().expect("reductions have known trips");
                let residue = (ub % self.b) as usize;
                self.trace.events.push(CodegenEvent::ReductionEpilogue {
                    stmt: idx,
                    residue,
                    fold_steps: (self.b as u64).ilog2() as usize,
                });
                self.gen_reduction_epilogue(store, src, op, acc, residue, &program);
                continue;
            }
            let ps = prosplices[idx].clone().expect("stores have splice points");
            let elo = if !use_eq15 {
                let ub = ub_sexpr.as_const().expect("checked");
                let ubound = upper_bound.as_const().expect("checked");
                let steady_chunks = ceil_div(ubound, self.b);
                SExpr::c(ub * self.d + ps.as_const().expect("checked") - steady_chunks * self.v)
            } else {
                // eq. 16: EpiLeftOver = ProSplice + (ub mod B) · D.
                ps.clone()
                    .add(ub_sexpr.clone().rem(SExpr::c(self.b)).mul(SExpr::c(self.d)))
            };
            let episplice = elo.clone().rem(SExpr::c(self.v));
            self.trace.events.push(CodegenEvent::EpilogueForm {
                stmt: idx,
                leftover: elo.clone(),
                episplice: episplice.clone(),
                compile_time: elo.as_const().is_some(),
            });
            let addr = Addr::new(store.array, store.offset);

            // Full vector store when a whole chunk is left (ELO >= V),
            // followed by a partial store at i+B for the remainder.
            let mut full_block = Vec::new();
            {
                let new = self.gen_expr(src, 0, &mut full_block, Mode::Std);
                full_block.push(VInst::StoreA { addr, src: new });
                let mut partial_hi = Vec::new();
                self.gen_partial_store(src, addr, self.b, episplice.clone(), &mut partial_hi);
                push_guarded(
                    SCond::Gt(elo.clone(), SExpr::c(self.v)),
                    partial_hi,
                    &mut full_block,
                );
            }
            push_guarded(
                SCond::Ge(elo.clone(), SExpr::c(self.v)),
                full_block,
                &mut self.epilogue,
            );

            // Otherwise a single partial store at i (when anything is
            // left at all).
            let mut partial_lo = Vec::new();
            self.gen_partial_store(src, addr, 0, episplice.clone(), &mut partial_lo);
            let mut lo_block = Vec::new();
            push_guarded(
                SCond::Gt(elo.clone(), SExpr::c(0)),
                partial_lo,
                &mut lo_block,
            );
            push_guarded(
                SCond::Lt(elo.clone(), SExpr::c(self.v)),
                lo_block,
                &mut self.epilogue,
            );
        }

        Ok(SimdProgram {
            program,
            shape: self.graph.shape(),
            nvregs: self.next_reg,
            prologue: std::mem::take(&mut self.prologue),
            body: std::mem::take(&mut self.body),
            body_pair: None,
            epilogue: std::mem::take(&mut self.epilogue),
            lower_bound: self.b as u64,
            upper_bound,
            guard_min_trip,
        })
    }

    /// Finishes a reduction: fold the residue block (masked to the
    /// `residue` valid lanes), reduce the accumulator horizontally with
    /// log2(B) rotate-and-combine steps, and merge the scalar total into
    /// the accumulator element with a final permute.
    fn gen_reduction_epilogue(
        &mut self,
        target: ArrayRef,
        src: NodeId,
        op: BinOp,
        acc: VReg,
        residue: usize,
        program: &simdize_ir::LoopProgram,
    ) {
        let d = self.d as usize;
        let v = self.v as usize;
        let ident_value = reduction_identity(op, program.elem());

        let mut insts = Vec::new();
        let mut current = acc;
        if residue > 0 {
            let value = self.gen_expr(src, 0, &mut insts, Mode::Std);
            let ident = self.fresh();
            insts.push(VInst::SplatConst {
                dst: ident,
                value: ident_value,
            });
            let pattern: Vec<u8> = (0..v)
                .map(|p| {
                    if p / d < residue {
                        p as u8
                    } else {
                        (v + p) as u8
                    }
                })
                .collect();
            let masked = self.fresh();
            insts.push(VInst::Perm {
                dst: masked,
                a: value,
                b: ident,
                pattern,
            });
            let folded = self.fresh();
            insts.push(VInst::Bin {
                dst: folded,
                op,
                a: current,
                b: masked,
            });
            current = folded;
        }

        // Horizontal fold: rotate by B/2, B/4, … lanes and combine.
        let mut step = (self.b / 2) as usize;
        while step >= 1 {
            let rotated = self.fresh();
            insts.push(VInst::ShiftPair {
                dst: rotated,
                a: current,
                b: current,
                amt: SExpr::c((step * d) as i64),
            });
            let combined = self.fresh();
            insts.push(VInst::Bin {
                dst: combined,
                op,
                a: current,
                b: rotated,
            });
            current = combined;
            step /= 2;
        }

        // Merge `old op total` into the accumulator element only.
        let beta = match program.array(target.array).align() {
            AlignKind::Known(beta) => (beta % self.graph.shape().bytes()) as i64,
            AlignKind::Runtime => unreachable!("checked in run()"),
        };
        let pos = (beta + target.offset * self.d).rem_euclid(self.v) as usize;
        let addr = Addr::invariant(target.array, target.offset);
        let old = self.fresh();
        insts.push(VInst::LoadA { dst: old, addr });
        let combined = self.fresh();
        insts.push(VInst::Bin {
            dst: combined,
            op,
            a: current,
            b: old,
        });
        // After the horizontal fold every lane of `current` holds the
        // total, so lane `pos / D` of `combined` is exactly
        // `total op old[pos / D]` — select it in place.
        let pattern: Vec<u8> = (0..v)
            .map(|p| {
                if p >= pos && p < pos + d {
                    p as u8
                } else {
                    (v + p) as u8
                }
            })
            .collect();
        let merged = self.fresh();
        insts.push(VInst::Perm {
            dst: merged,
            a: combined,
            b: old,
            pattern,
        });
        insts.push(VInst::StoreA { addr, src: merged });
        self.epilogue.extend(insts);
    }

    /// Figure 9's epilogue partial store: load–splice–store at
    /// `i + delta`, keeping the first `point` bytes of the new value.
    fn gen_partial_store(
        &mut self,
        src: NodeId,
        addr: Addr,
        delta: i64,
        point: SExpr,
        out: &mut Vec<VInst>,
    ) {
        let new = self.gen_expr(src, delta, out, Mode::Std);
        let old = self.fresh();
        out.push(VInst::LoadA {
            dst: old,
            addr: addr.shifted(delta),
        });
        let spliced = self.fresh();
        out.push(VInst::Splice {
            dst: spliced,
            a: new,
            b: old,
            point,
        });
        out.push(VInst::StoreA {
            addr: addr.shifted(delta),
            src: spliced,
        });
    }

    /// Figure 7 `GenSimdExpr` / Figure 10 `GenSimdExprSP`. `delta` is the
    /// accumulated `Substitute(n, i → i + delta)` in elements.
    fn gen_expr(&mut self, node: NodeId, delta: i64, out: &mut Vec<VInst>, mode: Mode) -> VReg {
        match self.graph.node(node).clone() {
            RNode::Load { r } => {
                let dst = self.fresh();
                out.push(VInst::LoadA {
                    dst,
                    addr: Addr::new(r.array, r.offset + delta),
                });
                dst
            }
            RNode::Splat { inv } => {
                let dst = self.fresh();
                out.push(match inv {
                    Invariant::Const(value) => VInst::SplatConst { dst, value },
                    Invariant::Param(param) => VInst::SplatParam { dst, param },
                });
                dst
            }
            RNode::Op { kind, srcs } => {
                let regs: Vec<VReg> = srcs
                    .iter()
                    .map(|&s| self.gen_expr(s, delta, out, mode))
                    .collect();
                let dst = self.fresh();
                out.push(match kind {
                    VOpKind::Bin(op) => VInst::Bin {
                        dst,
                        op,
                        a: regs[0],
                        b: regs[1],
                    },
                    VOpKind::Un(op) => VInst::Un {
                        dst,
                        op,
                        a: regs[0],
                    },
                });
                dst
            }
            RNode::ShiftStream { src, to } => {
                let from = self.graph.offset_of(src);
                let dir = from.shift_dir(to).expect("graph validated");
                match dir {
                    ShiftDir::None => self.gen_expr(src, delta, out, mode),
                    ShiftDir::Left | ShiftDir::Right if mode == Mode::Sp => {
                        self.gen_shift_sp(node, src, from, to, dir, delta, out)
                    }
                    ShiftDir::Left => {
                        // Combine current and next registers of the stream.
                        let curr = self.gen_expr(src, delta, out, mode);
                        let next = self.gen_expr(src, delta + self.b, out, mode);
                        let dst = self.fresh();
                        out.push(VInst::ShiftPair {
                            dst,
                            a: curr,
                            b: next,
                            amt: self.amount_expr(from, to),
                        });
                        dst
                    }
                    ShiftDir::Right => {
                        // Combine previous and current registers.
                        let prev = self.gen_expr(src, delta - self.b, out, mode);
                        let curr = self.gen_expr(src, delta, out, mode);
                        let dst = self.fresh();
                        out.push(VInst::ShiftPair {
                            dst,
                            a: prev,
                            b: curr,
                            amt: self.amount_expr(from, to),
                        });
                        dst
                    }
                }
            }
            RNode::Store { .. } => unreachable!("stores are handled per statement"),
        }
    }

    /// Figure 10 `GenSimdShiftStreamSP`: carry the previous iteration's
    /// "second" register in `old` so each stream chunk is loaded once.
    #[allow(clippy::too_many_arguments)]
    fn gen_shift_sp(
        &mut self,
        node: NodeId,
        src: NodeId,
        from: Offset,
        to: Offset,
        dir: ShiftDir,
        delta: i64,
        out: &mut Vec<VInst>,
    ) -> VReg {
        if let Some(&r) = self.sp_memo.get(&(node, delta)) {
            return r;
        }
        let (first_delta, second_delta) = match dir {
            ShiftDir::Left => (delta, delta + self.b),
            ShiftDir::Right => (delta - self.b, delta),
            ShiftDir::None => unreachable!("handled by caller"),
        };

        // Prologue: old = first, computed by the standard generator and
        // evaluated at the first steady iteration (i = LB = B, while the
        // prologue itself runs at i = 0).
        let old = self.fresh();
        let mut init = Vec::new();
        let first = self.gen_expr(src, first_delta + self.b, &mut init, Mode::Std);
        init.push(VInst::Copy {
            dst: old,
            src: first,
        });
        self.prologue.extend(init);

        // Body: compute only second; combine with the carried old.
        let second = self.gen_expr(src, second_delta, out, Mode::Sp);
        let dst = self.fresh();
        out.push(VInst::ShiftPair {
            dst,
            a: old,
            b: second,
            amt: self.amount_expr(from, to),
        });
        self.carried.push((old, second));
        self.sp_memo.insert((node, delta), dst);
        dst
    }

    /// The `(from − to) mod V` shift amount as a loop-invariant scalar
    /// expression.
    fn amount_expr(&self, from: Offset, to: Offset) -> SExpr {
        match (from, to) {
            (Offset::Byte(f), Offset::Byte(t)) => {
                SExpr::c(((f as i64) + self.v - (t as i64)).rem_euclid(self.v))
            }
            // Runtime load shift to 0: amount is the runtime alignment.
            (Offset::Runtime { array, disp }, Offset::Byte(0)) => SExpr::AlignOf {
                array,
                disp: disp as i64,
            },
            // Runtime store shift from 0: V − align, in [1, V]. The
            // amount V (runtime alignment 0) selects the current
            // register whole; reducing mod V would wrongly select the
            // previous register when the alignment happens to be 0.
            (Offset::Byte(0), Offset::Runtime { array, disp }) => {
                SExpr::c(self.v).sub(SExpr::AlignOf {
                    array,
                    disp: disp as i64,
                })
            }
            (f, t) => unreachable!("undecidable shift {f} -> {t} survived validation"),
        }
    }

    /// A stream offset as a loop-invariant scalar expression.
    fn offset_expr(&self, offset: Offset) -> SExpr {
        match offset {
            Offset::Byte(b) => SExpr::c(b as i64),
            Offset::Runtime { array, disp } => SExpr::AlignOf {
                array,
                disp: disp as i64,
            },
            Offset::Any => unreachable!("store offsets are never ⊥"),
        }
    }
}

/// Appends `body` under `cond`, folding compile-time conditions.
fn push_guarded(cond: SCond, body: Vec<VInst>, out: &mut Vec<VInst>) {
    if body.is_empty() {
        return;
    }
    match cond.as_const() {
        Some(true) => out.extend(body),
        Some(false) => {}
        None => out.push(VInst::Guarded { cond, body }),
    }
}

/// The identity element of a reduction operation for lanes of `elem`.
fn reduction_identity(op: BinOp, elem: ScalarType) -> i64 {
    match op {
        BinOp::Add | BinOp::Or | BinOp::Xor => 0,
        BinOp::Mul => 1,
        BinOp::And => -1,
        BinOp::Min => {
            if elem.is_signed() {
                // The signed maximum bit pattern (wraps correctly for
                // 64-bit lanes too).
                (1i64 << (elem.bits() - 1)).wrapping_sub(1)
            } else {
                -1 // all ones: the unsigned maximum after wrapping
            }
        }
        BinOp::Max => {
            if elem.is_signed() {
                // The signed minimum bit pattern; the lane constructor
                // masks to the element width.
                1i64 << (elem.bits() - 1)
            } else {
                0
            }
        }
        BinOp::Sub => unreachable!("rejected by loop validation"),
    }
}

fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::{parse_program, VectorShape};
    use simdize_reorg::Policy;

    fn gen(src: &str, policy: Policy, options: CodegenOptions) -> SimdProgram {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(policy)
            .unwrap();
        generate(&g, &options).unwrap()
    }

    const FIG1: &str = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
                        for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }";

    #[test]
    fn bounds_match_paper_example() {
        // a[i+3]: ProSplice = 12, EpiSplice = (12 + 400) mod 16 = 12,
        // UB = 100 - 12/4 = 97, LB = B = 4.
        let opts = CodegenOptions::default().memnorm(false).unroll(false);
        let p = gen(FIG1, Policy::Zero, opts);
        assert_eq!(p.lower_bound(), 4);
        assert_eq!(p.upper_bound().as_const(), Some(97));
        assert_eq!(p.guard_min_trip(), 12);
        assert_eq!(p.block(), 4);
    }

    #[test]
    fn rejects_invalid_graph() {
        let p = parse_program(FIG1).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap(); // no policy
        assert!(matches!(
            generate(&g, &CodegenOptions::default()),
            Err(GenCodeError::InvalidGraph(_))
        ));
    }

    #[test]
    fn prologue_splices_unless_aligned() {
        let opts = CodegenOptions::default().unroll(false);
        let p = gen(FIG1, Policy::Zero, opts);
        // store misaligned (ProSplice = 12): prologue has load+splice+store.
        assert!(p
            .prologue()
            .iter()
            .any(|i| matches!(i, VInst::Splice { .. })));
        let aligned = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
                       for i in 0..100 { a[i] = b[i+1]; }";
        let p = gen(aligned, Policy::Zero, opts);
        // aligned store: prologue stores the full new vector directly.
        assert!(!p
            .prologue()
            .iter()
            .any(|i| matches!(i, VInst::Splice { .. })));
    }

    #[test]
    fn epilogue_folds_compile_time_guards() {
        let opts = CodegenOptions::default().unroll(false);
        let p = gen(FIG1, Policy::Zero, opts);
        // Compile-time: no Guarded instructions survive.
        assert!(!p
            .epilogue()
            .iter()
            .any(|i| matches!(i, VInst::Guarded { .. })));
        // EpiLeftOver = 400 + 12 - 25*16 = 12 < 16: single partial store.
        let stores = p
            .epilogue()
            .iter()
            .filter(|i| matches!(i, VInst::StoreA { .. }))
            .count();
        assert_eq!(stores, 1);
    }

    #[test]
    fn runtime_ub_keeps_guards() {
        let src = "arrays { a: i32[4096] @ 0; b: i32[4096] @ 0; c: i32[4096] @ 0; }
                   for i in 0..ub { a[i+3] = b[i+1] + c[i+2]; }";
        let opts = CodegenOptions::default().unroll(false);
        let p = gen(src, Policy::Zero, opts);
        assert!(p.upper_bound().is_runtime());
        assert!(p
            .epilogue()
            .iter()
            .any(|i| matches!(i, VInst::Guarded { .. })));
    }

    #[test]
    fn software_pipeline_emits_carried_copies() {
        let opts = CodegenOptions::default()
            .reuse(ReuseMode::SoftwarePipeline)
            .unroll(false);
        let p = gen(FIG1, Policy::Zero, opts);
        let copies = p
            .body()
            .iter()
            .filter(|i| matches!(i, VInst::Copy { .. }))
            .count();
        // Three shifts (zero policy) → three carried chains.
        assert_eq!(copies, 3);
        // The body loads each of b and c exactly once (never-load-twice).
        let loads = p
            .body()
            .iter()
            .filter(|i| matches!(i, VInst::LoadA { .. }))
            .count();
        assert_eq!(loads, 2);
    }

    #[test]
    fn naive_body_loads_twice() {
        let opts = CodegenOptions::default().memnorm(false).unroll(false);
        let p = gen(FIG1, Policy::Zero, opts);
        // Without reuse, the store shift recomputes the whole expression
        // at i−B and the load shifts duplicate each stream (curr+next):
        // per input stream the body touches chunks {i−B, i, i+B} → 3
        // loads each after local CSE, versus 1 each with SP/PC.
        let loads = p
            .body()
            .iter()
            .filter(|i| matches!(i, VInst::LoadA { .. }))
            .count();
        assert_eq!(loads, 6);
    }

    #[test]
    fn runtime_alignment_amounts() {
        let src = "arrays { a: i32[4096] @ ?; b: i32[4096] @ ?; }
                   for i in 0..100 { a[i] = b[i+1]; }";
        let opts = CodegenOptions::default().unroll(false);
        let p = gen(src, Policy::Zero, opts);
        // Load shift amount is a raw AlignOf; store shift is (V−align)
        // mod V. The body holds the load shift at i−B and i (feeding the
        // store shift's prev/curr) plus the store shift itself: 3.
        let amts: Vec<&SExpr> = p
            .body()
            .iter()
            .filter_map(|i| match i {
                VInst::ShiftPair { amt, .. } => Some(amt),
                _ => None,
            })
            .collect();
        assert_eq!(amts.len(), 3);
        assert!(amts.iter().all(|a| a.is_runtime()));
    }

    #[test]
    fn ceil_div_matches_math() {
        assert_eq!(ceil_div(97, 4), 25);
        assert_eq!(ceil_div(96, 4), 24);
        assert_eq!(ceil_div(1, 4), 1);
        assert_eq!(ceil_div(0, 4), 0);
    }
}
