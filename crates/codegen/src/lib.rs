//! SIMD code generation from data reorganization graphs.
//!
//! This crate implements §4 of Eichenberger, Wu and O'Brien (PLDI 2004):
//! it lowers a valid [`simdize_reorg::ReorgGraph`] to a [`SimdProgram`] in
//! a small *vector target IR* (VIR) whose instructions correspond one to
//! one to the generic SIMD operations of paper §2.2 — truncating aligned
//! `vload`/`vstore`, `vshiftpair` (AltiVec `vec_perm`), `vsplice`
//! (AltiVec `vec_sel`), `vsplat` and lane-wise arithmetic.
//!
//! The generator reproduces the paper's algorithms:
//!
//! * **Figure 7** — `GenSimdExpr`/`GenSimdShiftStream`: expressions and
//!   stream shifts, combining the current register with the next
//!   (left shift) or previous (right shift) register of a stream;
//! * **Figure 9** — prologue / steady-state / epilogue statement
//!   generation with partial stores implemented load–splice–store;
//! * **eqs. 12–14** — multi-statement loop bounds exploiting address
//!   truncation (`LB = B`);
//! * **§4.4 / eqs. 15–16** — runtime alignments and unknown loop bounds,
//!   with the `ub > 3B` guard and a scalar fallback;
//! * **Figure 10** — software-pipelined generation that keeps the
//!   previous iteration's register in a loop-carried virtual register so
//!   that no chunk of a static stream is ever loaded twice.
//!
//! Post passes ([`CodegenOptions`]) add the paper's §5.5 code-generation
//! optimizations: memory normalization with local CSE (`MemNorm`),
//! predictive commoning (`PC`), and copy-removing unroll-by-2.
//!
//! # Example
//!
//! ```
//! use simdize_ir::{parse_program, VectorShape};
//! use simdize_reorg::{Policy, ReorgGraph};
//! use simdize_codegen::{generate, CodegenOptions, ReuseMode};
//!
//! let p = parse_program(
//!     "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
//!      for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
//! )?;
//! let graph = ReorgGraph::build(&p, VectorShape::V16)?.with_policy(Policy::Zero)?;
//! let options = CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline);
//! let program = generate(&graph, &options)?;
//! assert_eq!(program.block(), 4); // four i32 lanes per 16-byte register
//! println!("{program}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod error;
mod generate;
mod lower;
mod options;
mod passes;
mod sexpr;
mod strided;
mod trace;
mod unaligned;
mod verify;
mod vir;

pub use analysis::{max_live_vregs, MACHINE_VREGS};
pub use error::GenCodeError;
pub use generate::{generate, generate_traced};
pub use lower::lower_altivec;
pub use options::{CodegenOptions, ReuseMode};
pub use sexpr::{SCond, SExpr, ScalarEnv};
pub use strided::{generate_strided, strided_model_opd, GenStridedError, MAX_STRIDE};
pub use trace::{BoundFormula, CodegenEvent, CodegenTrace, SectionCounts};
pub use unaligned::generate_unaligned;
pub use verify::{verify_program, VerifyProgramError};
pub use vir::{Addr, SimdProgram, VInst, VReg};
