//! Loop-invariant scalar expressions used by the generated code for
//! runtime alignments, splice points and loop bounds.

use simdize_ir::{ArrayId, VectorShape};
use std::fmt;

/// A loop-invariant scalar integer expression, evaluated once per loop
/// invocation.
///
/// These expressions encode everything the paper computes about a loop
/// at run time: alignments (`addr & (V−1)`, §3.3), splice points
/// (eqs. 8–9), epilogue leftovers (eqs. 14/16) and the steady-state upper
/// bound (eqs. 13/15). The builder methods fold constants eagerly, so
/// when all alignments and the trip count are known at compile time
/// every such expression is already a [`SExpr::Const`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SExpr {
    /// An integer constant.
    Const(i64),
    /// The loop trip count `ub` (a runtime input when the trip count is
    /// unknown at compile time).
    Ub,
    /// The byte alignment `(base(array) + disp) & (V − 1)` of an address
    /// `disp` bytes past the array base.
    AlignOf {
        /// The array whose base address is inspected.
        array: ArrayId,
        /// Byte displacement added before masking.
        disp: i64,
    },
    /// Sum of two expressions.
    Add(Box<SExpr>, Box<SExpr>),
    /// Difference of two expressions.
    Sub(Box<SExpr>, Box<SExpr>),
    /// Product of two expressions.
    Mul(Box<SExpr>, Box<SExpr>),
    /// Floor division (divisor is a positive constant in generated code).
    Div(Box<SExpr>, Box<SExpr>),
    /// Euclidean remainder (divisor is a positive constant in generated
    /// code).
    Mod(Box<SExpr>, Box<SExpr>),
}

#[allow(clippy::should_implement_trait)] // builder-style names fold constants
impl SExpr {
    /// Shorthand for a constant.
    pub fn c(v: i64) -> SExpr {
        SExpr::Const(v)
    }

    /// `self + rhs`, folding constants.
    pub fn add(self, rhs: SExpr) -> SExpr {
        match (self, rhs) {
            (SExpr::Const(a), SExpr::Const(b)) => SExpr::Const(a + b),
            (SExpr::Const(0), e) | (e, SExpr::Const(0)) => e,
            (a, b) => SExpr::Add(Box::new(a), Box::new(b)),
        }
    }

    /// `self - rhs`, folding constants.
    pub fn sub(self, rhs: SExpr) -> SExpr {
        match (self, rhs) {
            (SExpr::Const(a), SExpr::Const(b)) => SExpr::Const(a - b),
            (e, SExpr::Const(0)) => e,
            (a, b) => SExpr::Sub(Box::new(a), Box::new(b)),
        }
    }

    /// `self * rhs`, folding constants.
    pub fn mul(self, rhs: SExpr) -> SExpr {
        match (self, rhs) {
            (SExpr::Const(a), SExpr::Const(b)) => SExpr::Const(a * b),
            (SExpr::Const(1), e) | (e, SExpr::Const(1)) => e,
            (a, b) => SExpr::Mul(Box::new(a), Box::new(b)),
        }
    }

    /// Floor division `self / rhs`, folding constants.
    pub fn div(self, rhs: SExpr) -> SExpr {
        match (self, rhs) {
            (SExpr::Const(a), SExpr::Const(b)) if b != 0 => SExpr::Const(a.div_euclid(b)),
            (e, SExpr::Const(1)) => e,
            (a, b) => SExpr::Div(Box::new(a), Box::new(b)),
        }
    }

    /// Euclidean remainder `self mod rhs`, folding constants.
    pub fn rem(self, rhs: SExpr) -> SExpr {
        match (self, rhs) {
            (SExpr::Const(a), SExpr::Const(b)) if b != 0 => SExpr::Const(a.rem_euclid(b)),
            (a, b) => SExpr::Mod(Box::new(a), Box::new(b)),
        }
    }

    /// The constant value, if the expression folded to one.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            SExpr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether evaluation requires runtime information (a base address
    /// or the runtime trip count) — the paper's `Runtime(c)` predicate.
    pub fn is_runtime(&self) -> bool {
        match self {
            SExpr::Const(_) => false,
            SExpr::Ub | SExpr::AlignOf { .. } => true,
            SExpr::Add(a, b)
            | SExpr::Sub(a, b)
            | SExpr::Mul(a, b)
            | SExpr::Div(a, b)
            | SExpr::Mod(a, b) => a.is_runtime() || b.is_runtime(),
        }
    }

    /// Constant-folds the expression given an environment that can
    /// resolve `Ub` and `AlignOf` (e.g. once the memory image is known).
    pub fn eval(&self, env: &dyn ScalarEnv) -> i64 {
        match self {
            SExpr::Const(v) => *v,
            SExpr::Ub => env.ub(),
            SExpr::AlignOf { array, disp } => {
                let addr = env.base_of(*array) as i64 + disp;
                addr & (env.shape().mask() as i64)
            }
            SExpr::Add(a, b) => a.eval(env) + b.eval(env),
            SExpr::Sub(a, b) => a.eval(env) - b.eval(env),
            SExpr::Mul(a, b) => a.eval(env) * b.eval(env),
            SExpr::Div(a, b) => a.eval(env).div_euclid(b.eval(env)),
            SExpr::Mod(a, b) => a.eval(env).rem_euclid(b.eval(env)),
        }
    }
}

impl fmt::Display for SExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SExpr::Const(v) => write!(f, "{v}"),
            SExpr::Ub => f.write_str("ub"),
            SExpr::AlignOf { array, disp } => write!(f, "align({array}+{disp})"),
            SExpr::Add(a, b) => write!(f, "({a} + {b})"),
            SExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            SExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            SExpr::Div(a, b) => write!(f, "({a} / {b})"),
            SExpr::Mod(a, b) => write!(f, "({a} mod {b})"),
        }
    }
}

/// A loop-invariant comparison guarding epilogue code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SCond {
    /// `lhs >= rhs`.
    Ge(SExpr, SExpr),
    /// `lhs > rhs`.
    Gt(SExpr, SExpr),
    /// `lhs < rhs`.
    Lt(SExpr, SExpr),
}

impl SCond {
    /// Evaluates the condition in `env`.
    pub fn eval(&self, env: &dyn ScalarEnv) -> bool {
        match self {
            SCond::Ge(a, b) => a.eval(env) >= b.eval(env),
            SCond::Gt(a, b) => a.eval(env) > b.eval(env),
            SCond::Lt(a, b) => a.eval(env) < b.eval(env),
        }
    }

    /// The compile-time truth value, if both sides are constants.
    pub fn as_const(&self) -> Option<bool> {
        match self {
            SCond::Ge(a, b) => Some(a.as_const()? >= b.as_const()?),
            SCond::Gt(a, b) => Some(a.as_const()? > b.as_const()?),
            SCond::Lt(a, b) => Some(a.as_const()? < b.as_const()?),
        }
    }
}

impl fmt::Display for SCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SCond::Ge(a, b) => write!(f, "{a} >= {b}"),
            SCond::Gt(a, b) => write!(f, "{a} > {b}"),
            SCond::Lt(a, b) => write!(f, "{a} < {b}"),
        }
    }
}

/// The runtime environment that resolves the leaves of an [`SExpr`]:
/// the loop trip count and array base addresses (the memory image of
/// `simdize-vm` implements this).
pub trait ScalarEnv {
    /// The loop trip count.
    fn ub(&self) -> i64;
    /// The byte address of `array`'s first element in the memory image.
    fn base_of(&self, array: ArrayId) -> u64;
    /// The vector register shape (for alignment masks).
    fn shape(&self) -> VectorShape;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Env;
    impl ScalarEnv for Env {
        fn ub(&self) -> i64 {
            100
        }
        fn base_of(&self, array: ArrayId) -> u64 {
            0x1000 + 4 * array.index() as u64
        }
        fn shape(&self) -> VectorShape {
            VectorShape::V16
        }
    }

    #[test]
    fn constant_folding_in_builders() {
        let e = SExpr::c(3).add(SExpr::c(4)).mul(SExpr::c(2));
        assert_eq!(e.as_const(), Some(14));
        assert!(!e.is_runtime());
        let e = SExpr::Ub.sub(SExpr::c(0));
        assert_eq!(e, SExpr::Ub);
        assert!(e.is_runtime());
    }

    #[test]
    fn eval_align_of() {
        let a1 = SExpr::AlignOf {
            array: ArrayId::from_index(1),
            disp: 8,
        };
        // base = 0x1004, +8 = 0x100C → align 12.
        assert_eq!(a1.eval(&Env), 12);
    }

    #[test]
    fn eval_compound() {
        // (ub mod 4) * 4 + 12 = 12 for ub = 100.
        let e = SExpr::Ub
            .rem(SExpr::c(4))
            .mul(SExpr::c(4))
            .add(SExpr::c(12));
        assert_eq!(e.eval(&Env), 12);
    }

    #[test]
    fn div_is_floor() {
        assert_eq!(SExpr::c(-7).div(SExpr::c(4)).as_const(), Some(-2));
        assert_eq!(SExpr::c(-7).rem(SExpr::c(4)).as_const(), Some(1));
    }

    #[test]
    fn conditions() {
        assert_eq!(SCond::Ge(SExpr::c(4), SExpr::c(4)).as_const(), Some(true));
        assert_eq!(SCond::Gt(SExpr::c(4), SExpr::c(4)).as_const(), Some(false));
        assert_eq!(SCond::Lt(SExpr::Ub, SExpr::c(4)).as_const(), None);
        assert!(!SCond::Lt(SExpr::Ub, SExpr::c(4)).eval(&Env));
        assert!(SCond::Gt(SExpr::Ub, SExpr::c(12)).eval(&Env));
    }

    #[test]
    fn display_forms() {
        let e = SExpr::Ub.rem(SExpr::c(4));
        assert_eq!(e.to_string(), "(ub mod 4)");
        assert_eq!(SCond::Ge(e, SExpr::c(1)).to_string(), "(ub mod 4) >= 1");
    }
}
