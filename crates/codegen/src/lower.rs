//! Lowering VIR to AltiVec-style mnemonics (paper §2.2's mapping of the
//! generic data reorganization operations onto a concrete ISA).
//!
//! This is a pretty-printing lowering for inspection and documentation:
//! the simulator executes VIR directly. The mapping follows §2.2:
//!
//! | VIR | AltiVec |
//! |---|---|
//! | `vload`/`vstore` | `lvx` / `stvx` (truncating) |
//! | `vshiftpair` | `vperm` with a `lvsl`-style permute vector |
//! | `vsplice` | `vsel` with a comparison-generated mask |
//! | `vsplat` | `vspltw`/`vspltish` or `lvx`+`vperm` of a scalar |
//! | lane ops | `vadduwm`, `vsubuwm`, `vminsw`, … |

use crate::vir::{SimdProgram, VInst};
use simdize_ir::{BinOp, ScalarType, UnOp};

/// Renders a section-by-section AltiVec-flavoured assembly listing of
/// `program`.
///
/// # Example
///
/// ```
/// # use simdize_ir::{parse_program, VectorShape};
/// # use simdize_reorg::{Policy, ReorgGraph};
/// # use simdize_codegen::{generate, lower_altivec, CodegenOptions};
/// # let p = parse_program(
/// #    "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
/// #     for i in 0..100 { a[i+1] = b[i+2]; }").unwrap();
/// # let g = ReorgGraph::build(&p, VectorShape::V16).unwrap()
/// #     .with_policy(Policy::Zero).unwrap();
/// let program = generate(&g, &CodegenOptions::default())?;
/// let asm = lower_altivec(&program);
/// assert!(asm.contains("lvx"));
/// assert!(asm.contains("vperm"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lower_altivec(program: &SimdProgram) -> String {
    let elem = program.elem();
    let mut out = String::new();
    out.push_str("# AltiVec lowering (illustrative)\n");
    out.push_str("# prologue:\n");
    lower_section(program.prologue(), elem, &mut out);
    out.push_str("# steady loop body:\n");
    lower_section(program.body(), elem, &mut out);
    out.push_str("# epilogue:\n");
    lower_section(program.epilogue(), elem, &mut out);
    out
}

fn lower_section(insts: &[VInst], elem: ScalarType, out: &mut String) {
    for inst in insts {
        lower_inst(inst, elem, out, 1);
    }
}

fn lower_inst(inst: &VInst, elem: ScalarType, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth);
    match inst {
        VInst::LoadA { dst, addr } => {
            out.push_str(&format!("{pad}lvx     {dst}, {addr}\n"));
        }
        VInst::StoreA { addr, src } => {
            out.push_str(&format!("{pad}stvx    {src}, {addr}\n"));
        }
        VInst::LoadU { dst, addr } => {
            out.push_str(&format!(
                "{pad}lvxu*   {dst}, {addr}   # unaligned (no AltiVec equivalent)\n"
            ));
        }
        VInst::StoreU { addr, src } => {
            out.push_str(&format!(
                "{pad}stvxu*  {src}, {addr}   # unaligned (no AltiVec equivalent)\n"
            ));
        }
        VInst::ShiftPair { dst, a, b, amt } => {
            out.push_str(&format!(
                "{pad}vperm   {dst}, {a}, {b}, pv[{amt}]   # vshiftpair\n"
            ));
        }
        VInst::Perm { dst, a, b, .. } => {
            out.push_str(&format!(
                "{pad}vperm   {dst}, {a}, {b}, pv   # general permute\n"
            ));
        }
        VInst::Splice { dst, a, b, point } => {
            out.push_str(&format!(
                "{pad}vsel    {dst}, {b}, {a}, mask[{point}]   # vsplice\n"
            ));
        }
        VInst::SplatConst { dst, value } => {
            out.push_str(&format!("{pad}{} {dst}, {value}\n", splat_mnemonic(elem)));
        }
        VInst::SplatParam { dst, param } => {
            out.push_str(&format!("{pad}{} {dst}, {param}\n", splat_mnemonic(elem)));
        }
        VInst::Bin { dst, op, a, b } => {
            out.push_str(&format!(
                "{pad}{} {dst}, {a}, {b}\n",
                bin_mnemonic(*op, elem)
            ));
        }
        VInst::Un { dst, op, a } => {
            let m = match op {
                UnOp::Neg => "vsubuwm(0,…)",
                UnOp::Not => "vnor   ",
                UnOp::Abs => "vabs   ",
            };
            out.push_str(&format!("{pad}{m} {dst}, {a}\n"));
        }
        VInst::Copy { dst, src } => {
            out.push_str(&format!("{pad}vor     {dst}, {src}, {src}   # move\n"));
        }
        VInst::Guarded { cond, body } => {
            out.push_str(&format!("{pad}# if {cond}:\n"));
            for i in body {
                lower_inst(i, elem, out, depth + 1);
            }
        }
    }
}

fn splat_mnemonic(elem: ScalarType) -> &'static str {
    match elem.size() {
        1 => "vspltisb",
        2 => "vspltish",
        _ => "vspltisw",
    }
}

fn bin_mnemonic(op: BinOp, elem: ScalarType) -> String {
    let (w, s) = match elem.size() {
        1 => ("b", elem.is_signed()),
        2 => ("h", elem.is_signed()),
        _ => ("w", elem.is_signed()),
    };
    match op {
        BinOp::Add => format!("vaddu{w}m"),
        BinOp::Sub => format!("vsubu{w}m"),
        BinOp::Mul => format!("vmulu{w}m"),
        BinOp::Min => format!("vmin{}{w} ", if s { "s" } else { "u" }),
        BinOp::Max => format!("vmax{}{w} ", if s { "s" } else { "u" }),
        BinOp::And => "vand   ".to_string(),
        BinOp::Or => "vor    ".to_string(),
        BinOp::Xor => "vxor   ".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CodegenOptions;
    use simdize_ir::{parse_program, VectorShape};
    use simdize_reorg::{Policy, ReorgGraph};

    #[test]
    fn listing_covers_all_sections() {
        let p = parse_program(
            "arrays { a: i16[256] @ 0; b: i16[256] @ 0; c: i16[256] @ 0; }
             for i in 0..200 { a[i+3] = min(b[i+1], c[i+2]) * 3; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Lazy)
            .unwrap();
        let prog = crate::generate::generate(&g, &CodegenOptions::default()).unwrap();
        let asm = lower_altivec(&prog);
        assert!(asm.contains("lvx"));
        assert!(asm.contains("stvx"));
        assert!(asm.contains("vminsh"));
        assert!(asm.contains("vspltish"));
        assert!(asm.contains("# prologue"));
        assert!(asm.contains("# epilogue"));
    }
}
