//! Runtime telemetry for the simdize stack: a span profiler, a metrics
//! registry, request-scoped tracing, a flight recorder, and a
//! bench-history regression tracker.
//!
//! The crate is built around one invariant: **when telemetry is off
//! (the default), instrumentation costs a single relaxed atomic load
//! per call site** — no clock reads, no allocation, no locks. The
//! engine and compiler are instrumented unconditionally; the flag
//! decides whether any of it does work.
//!
//! # Sessions
//!
//! Process-wide collection is scoped by a [`Session`], obtained from
//! [`session`]:
//!
//! ```
//! use simdize_telemetry as telemetry;
//!
//! let mut session = telemetry::session();
//! {
//!     let _phase = telemetry::span("parse");
//!     telemetry::counter("demo.events").inc();
//! }
//! let report = session.finish();
//! assert_eq!(report.spans[0].name, "parse");
//! assert_eq!(report.metrics.counters["demo.events"], 1);
//! ```
//!
//! A session enables the global flag, resets every registered metric
//! and discards stale spans on entry; [`Session::finish`] disables the
//! flag and drains everything collected into a [`TelemetryReport`],
//! renderable as text or as versioned JSON ([`TELEMETRY_SCHEMA`]).
//! Sessions serialize on a global lock — the collector is process-wide
//! state, so concurrent sessions would observe each other.
//!
//! # Request scopes
//!
//! A server handling many concurrent requests cannot use sessions: it
//! needs one span tree *per request*, collected simultaneously. That is
//! what [`begin_request`] provides — a [`RequestScope`] installs a
//! thread-local [`TraceContext`] so spans completed on that thread (and
//! on worker threads that [`adopt_context`]) go to the request's
//! private buffer instead of the global collector, together with
//! string attributes recorded via [`tag`]. Any number of request
//! scopes can be live at once; collection is globally enabled while at
//! least one is. [`RequestScope::finish`] yields a [`RequestTrace`],
//! renderable as `simdize-trace/v1` JSON or a Chrome trace-event
//! timeline.
//!
//! # Layers
//!
//! - [`span`] / [`SpanNode`] — hierarchical wall-clock phase profiling
//!   with per-path call counts and exact p50/p95/max.
//! - [`counter`] / [`gauge`] / [`histogram`] — named metrics for hot
//!   paths (cache hits, worker imbalance), snapshot-sorted, zeroes
//!   omitted; exportable in Prometheus text format via
//!   [`render_prometheus`].
//! - [`trace`] — request-scoped span/attribute collection, trace ids,
//!   and the `simdize-trace/v1` + Chrome trace-event encoders.
//! - [`flight`] — a fixed-capacity lock-striped ring buffer of recent
//!   request summaries for postmortem dumps.
//! - [`history`] — append-only bench run records and a noise-aware
//!   regression diff (`simdize bench diff`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod hist;
pub mod history;
pub mod json;
mod metrics;
mod prom;
mod report;
mod span;
pub mod trace;

pub use flight::{FlightEntry, FlightRecorder, FLIGHT_SCHEMA};
pub use hist::Histogram;
pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, Counter, Gauge, HistogramHandle,
    HistogramSummary, MetricsSnapshot,
};
pub use prom::render_prometheus;
pub use report::{TelemetryReport, TELEMETRY_SCHEMA};
pub use span::{build_tree, drain_spans, span, SpanGuard, SpanNode, SpanRecord};
pub use trace::{
    adopt_context, begin_request, current_context, tag, ContextGuard, RequestScope, RequestTrace,
    TraceContext, TraceId, TRACE_SCHEMA,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether anything is currently collecting (a [`Session`] or at least
/// one [`RequestScope`]). One relaxed atomic load — this is the
/// disabled path's entire cost.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Who is collecting. `ENABLED` is the derived fast flag; transitions
/// go through this mutex so a session ending cannot race a request
/// scope beginning into a lost-update on the flag.
struct CollectState {
    session: bool,
    scopes: usize,
}

static STATE: Mutex<CollectState> = Mutex::new(CollectState {
    session: false,
    scopes: 0,
});

fn set_session_collecting(on: bool) {
    let mut st = STATE.lock().unwrap_or_else(|e| e.into_inner());
    st.session = on;
    ENABLED.store(st.session || st.scopes > 0, Ordering::Relaxed);
}

pub(crate) fn scope_begin() {
    let mut st = STATE.lock().unwrap_or_else(|e| e.into_inner());
    st.scopes += 1;
    ENABLED.store(true, Ordering::Relaxed);
}

pub(crate) fn scope_end() {
    let mut st = STATE.lock().unwrap_or_else(|e| e.into_inner());
    st.scopes = st.scopes.saturating_sub(1);
    ENABLED.store(st.session || st.scopes > 0, Ordering::Relaxed);
}

fn session_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Serializes unit tests that assert on the *global* enabled flag (or
/// rely on "no session ⇒ disabled") against tests that open request
/// scopes — otherwise a concurrently live scope flips the flag under
/// them.
#[cfg(test)]
pub(crate) fn flag_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// An active collection scope. Dropping it (or calling
/// [`Session::finish`]) disables collection.
pub struct Session {
    guard: Option<MutexGuard<'static, ()>>,
}

/// Starts a telemetry session: resets all metrics, discards stale
/// spans, and enables collection. Blocks until any other session in
/// the process has finished. Request scopes are unaffected (their
/// spans bypass the global collector), but note the metrics registry
/// is process-wide: a concurrent request scope keeps the registry hot
/// while the session resets and snapshots it.
pub fn session() -> Session {
    let guard = session_lock().lock().unwrap_or_else(|e| e.into_inner());
    let _ = span::drain_spans();
    metrics::reset_metrics();
    set_session_collecting(true);
    Session { guard: Some(guard) }
}

impl Session {
    /// Stops collection and returns everything the session recorded.
    /// Calling it twice returns an empty report the second time.
    pub fn finish(&mut self) -> TelemetryReport {
        set_session_collecting(false);
        let report = TelemetryReport {
            spans: span::build_tree(&span::drain_spans()),
            metrics: metrics::metrics_snapshot(),
        };
        self.guard = None;
        report
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.guard.is_some() {
            set_session_collecting(false);
            let _ = span::drain_spans();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_scopes_collection() {
        let _flags = flag_guard();
        assert!(!enabled());
        let mut s = session();
        assert!(enabled());
        {
            let _g = span("lib_test.phase");
        }
        let report = s.finish();
        assert!(!enabled());
        assert!(report.spans.iter().any(|n| n.name == "lib_test.phase"));
        // finish() twice: second report is empty, not a panic.
        let again = s.finish();
        assert!(again.spans.is_empty());
    }

    #[test]
    fn dropped_session_disables_collection() {
        let _flags = flag_guard();
        {
            let _s = session();
            assert!(enabled());
            let _g = span("lib_test.dropped");
        }
        assert!(!enabled());
        // The dropped session's spans must not leak into the next one.
        let mut s = session();
        let report = s.finish();
        assert!(report.spans.iter().all(|n| n.name != "lib_test.dropped"));
    }

    #[test]
    fn scope_and_session_flags_compose() {
        let _flags = flag_guard();
        // A request scope keeps collection on after a session ends,
        // and vice versa — the flag is the OR of both populations.
        let scope = begin_request(TraceId::next(0), "flags");
        assert!(enabled());
        {
            let mut s = session();
            assert!(enabled());
            let _ = s.finish();
            // Session over, scope still live: must remain enabled.
            assert!(enabled());
        }
        let _ = scope.finish(None);
        assert!(!enabled());
    }
}
