//! Runtime telemetry for the simdize stack: a span profiler, a metrics
//! registry, and a bench-history regression tracker.
//!
//! The crate is built around one invariant: **when telemetry is off
//! (the default), instrumentation costs a single relaxed atomic load
//! per call site** — no clock reads, no allocation, no locks. The
//! engine and compiler are instrumented unconditionally; the flag
//! decides whether any of it does work.
//!
//! # Sessions
//!
//! Collection is scoped by a [`Session`], obtained from [`session`]:
//!
//! ```
//! use simdize_telemetry as telemetry;
//!
//! let mut session = telemetry::session();
//! {
//!     let _phase = telemetry::span("parse");
//!     telemetry::counter("demo.events").inc();
//! }
//! let report = session.finish();
//! assert_eq!(report.spans[0].name, "parse");
//! assert_eq!(report.metrics.counters["demo.events"], 1);
//! ```
//!
//! A session enables the global flag, resets every registered metric
//! and discards stale spans on entry; [`Session::finish`] disables the
//! flag and drains everything collected into a [`TelemetryReport`],
//! renderable as text or as versioned JSON ([`TELEMETRY_SCHEMA`]).
//! Sessions serialize on a global lock — the collector is process-wide
//! state, so concurrent sessions would observe each other.
//!
//! # Layers
//!
//! - [`span`] / [`SpanNode`] — hierarchical wall-clock phase profiling
//!   with per-path call counts and exact p50/p95/max.
//! - [`counter`] / [`gauge`] / [`histogram`] — named metrics for hot
//!   paths (cache hits, worker imbalance), snapshot-sorted, zeroes
//!   omitted.
//! - [`history`] — append-only bench run records and a noise-aware
//!   regression diff (`simdize bench diff`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod history;
pub mod json;
mod metrics;
mod report;
mod span;

pub use hist::Histogram;
pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, Counter, Gauge, HistogramHandle,
    HistogramSummary, MetricsSnapshot,
};
pub use report::{TelemetryReport, TELEMETRY_SCHEMA};
pub use span::{build_tree, drain_spans, span, SpanGuard, SpanNode, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether a telemetry session is currently collecting. One relaxed
/// atomic load — this is the disabled path's entire cost.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn session_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// An active collection scope. Dropping it (or calling
/// [`Session::finish`]) disables collection.
pub struct Session {
    guard: Option<MutexGuard<'static, ()>>,
}

/// Starts a telemetry session: resets all metrics, discards stale
/// spans, and enables collection. Blocks until any other session in
/// the process has finished.
pub fn session() -> Session {
    let guard = session_lock().lock().unwrap_or_else(|e| e.into_inner());
    let _ = span::drain_spans();
    metrics::reset_metrics();
    ENABLED.store(true, Ordering::Relaxed);
    Session { guard: Some(guard) }
}

impl Session {
    /// Stops collection and returns everything the session recorded.
    /// Calling it twice returns an empty report the second time.
    pub fn finish(&mut self) -> TelemetryReport {
        ENABLED.store(false, Ordering::Relaxed);
        let report = TelemetryReport {
            spans: span::build_tree(&span::drain_spans()),
            metrics: metrics::metrics_snapshot(),
        };
        self.guard = None;
        report
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.guard.is_some() {
            ENABLED.store(false, Ordering::Relaxed);
            let _ = span::drain_spans();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_scopes_collection() {
        assert!(!enabled());
        let mut s = session();
        assert!(enabled());
        {
            let _g = span("lib_test.phase");
        }
        let report = s.finish();
        assert!(!enabled());
        assert!(report.spans.iter().any(|n| n.name == "lib_test.phase"));
        // finish() twice: second report is empty, not a panic.
        let again = s.finish();
        assert!(again.spans.is_empty());
    }

    #[test]
    fn dropped_session_disables_collection() {
        {
            let _s = session();
            assert!(enabled());
            let _g = span("lib_test.dropped");
        }
        assert!(!enabled());
        // The dropped session's spans must not leak into the next one.
        let mut s = session();
        let report = s.finish();
        assert!(report.spans.iter().all(|n| n.name != "lib_test.dropped"));
    }
}
