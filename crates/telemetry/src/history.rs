//! The bench-history tracker: append-only, schema-versioned perf
//! records plus a noise-aware diff, so the repository keeps a
//! *trajectory* of engine performance instead of a single overwritten
//! snapshot.
//!
//! An entry wraps one `simdize-bench-engine/v1` document with run
//! metadata — when it was recorded, which commit, and a coarse host
//! fingerprint — under the `simdize-bench-history/v1` schema:
//!
//! ```json
//! {
//!   "schema": "simdize-bench-history/v1",
//!   "recorded_at_unix_ms": 1754000000000,
//!   "git_sha": "0af516a…",
//!   "host": { "os": "linux", "arch": "x86_64", "threads": 8 },
//!   "bench": { …the BENCH_engine.json document… }
//! }
//! ```
//!
//! [`diff`] compares the flattened metric sets of two entries (either
//! schema — a bare bench document diffs fine) and flags regressions
//! past a relative threshold. Thresholds are per-metric-kind because
//! the noise floors differ: dimensionless ratios (speedups, cache
//! gain) are stable across runs, raw wall-clock numbers (`*_ns`,
//! `*_ms`, `*_per_sec`) wobble with machine load, so the latter get
//! double the allowance.

use crate::json::{escape, parse, Json, JsonError};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Schema identifier of one history entry.
pub const HISTORY_SCHEMA: &str = "simdize-bench-history/v1";

/// A coarse host fingerprint: enough to tell entries from different
/// machines apart, nothing personally identifying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFingerprint {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available parallelism at record time.
    pub threads: usize,
}

impl HostFingerprint {
    /// The current machine's fingerprint.
    pub fn gather() -> HostFingerprint {
        HostFingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// Run metadata attached to one history entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryMeta {
    /// Milliseconds since the Unix epoch.
    pub recorded_at_unix_ms: u64,
    /// `git rev-parse HEAD` at record time, or `"unknown"`.
    pub git_sha: String,
    /// The recording machine.
    pub host: HostFingerprint,
}

impl HistoryMeta {
    /// Metadata for a record made right now on this machine, resolving
    /// the git SHA from `repo_dir` (best effort — `"unknown"` if git
    /// is unavailable or the directory is not a repository).
    pub fn now(repo_dir: &Path) -> HistoryMeta {
        let recorded_at_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis().min(u64::MAX as u128) as u64);
        let git_sha = std::process::Command::new("git")
            .args(["rev-parse", "HEAD"])
            .current_dir(repo_dir)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        HistoryMeta {
            recorded_at_unix_ms,
            git_sha,
            host: HostFingerprint::gather(),
        }
    }

    /// The entry's filename: zero-padded timestamp first so plain
    /// lexicographic listing is chronological, then the short SHA.
    pub fn file_name(&self) -> String {
        let sha7: String = self.git_sha.chars().take(7).collect();
        format!("{:013}-{sha7}.json", self.recorded_at_unix_ms)
    }
}

/// Wraps a `simdize-bench-engine/v1` document in a history entry.
///
/// `bench_json` must be a complete JSON document; it is embedded
/// verbatim (indented for readability) under the `"bench"` key.
pub fn wrap_entry(meta: &HistoryMeta, bench_json: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{HISTORY_SCHEMA}\",");
    let _ = writeln!(
        out,
        "  \"recorded_at_unix_ms\": {},",
        meta.recorded_at_unix_ms
    );
    let _ = writeln!(out, "  \"git_sha\": \"{}\",", escape(&meta.git_sha));
    let _ = writeln!(
        out,
        "  \"host\": {{ \"os\": \"{}\", \"arch\": \"{}\", \"threads\": {} }},",
        escape(&meta.host.os),
        escape(&meta.host.arch),
        meta.host.threads
    );
    let _ = write!(out, "  \"bench\": ");
    // Re-indent the embedded document two spaces so the entry stays
    // readable; content is untouched.
    for (i, line) in bench_json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
    out.push_str("\n}\n");
    out
}

/// Appends one entry to `dir` (created if missing) and returns the
/// written path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_entry(
    dir: &Path,
    meta: &HistoryMeta,
    bench_json: &str,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut path = dir.join(meta.file_name());
    // Same-millisecond collisions (tests): disambiguate, never clobber.
    let mut k = 1;
    while path.exists() {
        path = dir.join(format!(
            "{:013}-{}-{k}.json",
            meta.recorded_at_unix_ms,
            meta.git_sha.chars().take(7).collect::<String>()
        ));
        k += 1;
    }
    std::fs::write(&path, wrap_entry(meta, bench_json))?;
    Ok(path)
}

/// All `.json` entries in `dir`, sorted oldest-first by filename
/// (which is timestamp-prefixed). Missing directory reads as empty.
pub fn list_entries(dir: &Path) -> Vec<PathBuf> {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut entries: Vec<PathBuf> = rd
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    entries
}

/// How one metric moved between two entries.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Flattened metric name, e.g. `kernel.fig1.speedup_vs_interp`.
    pub metric: String,
    /// Value in the older entry.
    pub old: f64,
    /// Value in the newer entry.
    pub new: f64,
    /// `new / old` oriented so that > 1 is better (time-like metrics
    /// are inverted).
    pub gain: f64,
    /// Allowed relative loss for this metric.
    pub threshold: f64,
    /// Whether the loss exceeded the threshold.
    pub regressed: bool,
}

/// The outcome of comparing two entries.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Every metric present in both entries, in old-document order.
    pub rows: Vec<DiffRow>,
    /// Metrics present in only one entry (schema drift, new kernels).
    pub unmatched: Vec<String>,
    /// Number of regressed rows.
    pub regressions: usize,
}

impl DiffReport {
    /// Renders the comparison as an aligned table with a verdict line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>12} {:>12} {:>8}  verdict",
            "metric", "old", "new", "gain"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<44} {:>12.4} {:>12.4} {:>7.3}x  {}",
                row.metric,
                row.old,
                row.new,
                row.gain,
                if row.regressed {
                    "REGRESSED"
                } else {
                    "ok"
                }
            );
        }
        for name in &self.unmatched {
            let _ = writeln!(out, "{name:<44} (present in only one entry)");
        }
        let _ = writeln!(
            out,
            "{} metric(s) compared, {} regression(s)",
            self.rows.len(),
            self.regressions
        );
        out
    }
}

/// Whether larger values of this metric are better; `None` means the
/// metric is informational and excluded from the diff.
fn orientation(metric: &str) -> Option<bool> {
    let name = metric.rsplit('.').next().unwrap_or(metric);
    if name.ends_with("_per_sec")
        || name.ends_with("_hit_rate")
        || name.starts_with("speedup")
        || name == "fused_vs_unfused"
        || name == "native_vs_fused"
        || name == "cache_speedup"
        || name == "shared_vs_slot"
    {
        return Some(true);
    }
    if name.ends_with("_ns") || name.ends_with("_us") || name.ends_with("_ms") {
        return Some(false);
    }
    None
}

/// Whether this metric is a raw wall-clock quantity (noisier than a
/// dimensionless ratio) and gets double the regression allowance.
fn is_timing(metric: &str) -> bool {
    let name = metric.rsplit('.').next().unwrap_or(metric);
    name.ends_with("_ns")
        || name.ends_with("_us")
        || name.ends_with("_ms")
        || name.ends_with("_per_sec")
}

/// Flattens the comparable metrics of an entry (either schema) to
/// `(name, value)` pairs in document order.
pub fn extract_metrics(doc: &Json) -> Vec<(String, f64)> {
    // History entries nest the bench document under "bench".
    let bench = doc.get("bench").unwrap_or(doc);
    let mut out = Vec::new();
    let mut from_rows = |key: &str, prefix: &str| {
        let Some(rows) = bench.get(key).and_then(Json::as_arr) else {
            return;
        };
        for row in rows {
            let Some(name) = row.get("name").and_then(Json::as_str) else {
                continue;
            };
            if let Json::Obj(members) = row {
                for (field, value) in members {
                    let metric = format!("{prefix}.{name}.{field}");
                    if orientation(&metric).is_none() {
                        continue;
                    }
                    if let Some(v) = value.as_f64() {
                        out.push((metric, v));
                    }
                }
            }
        }
    };
    from_rows("kernels", "kernel");
    from_rows("sweeps", "sweep");
    from_rows("server", "server");
    out
}

/// Compares two parsed entries. `threshold` is the allowed relative
/// loss for ratio metrics (e.g. `0.25` = a metric may lose up to 25%
/// before it counts as a regression); wall-clock metrics get
/// `2 × threshold`. Gains never regress.
pub fn diff(old: &Json, new: &Json, threshold: f64) -> DiffReport {
    let old_metrics = extract_metrics(old);
    let new_metrics = extract_metrics(new);
    let mut rows = Vec::new();
    let mut unmatched: Vec<String> = Vec::new();
    for (name, old_v) in &old_metrics {
        let Some((_, new_v)) = new_metrics.iter().find(|(n, _)| n == name) else {
            unmatched.push(name.clone());
            continue;
        };
        let higher_better = orientation(name).expect("extract_metrics filters oriented metrics");
        let allowed = if is_timing(name) {
            (2.0 * threshold).min(0.95)
        } else {
            threshold
        };
        // Equal values are never a regression — in particular 0 → 0
        // (a metric that is legitimately zero on both sides, like the
        // slot-cache hit rate on a mixed-program sweep) must not be
        // flagged via the NaN of 0/0.
        let gain = if old_v == new_v {
            1.0
        } else if higher_better {
            new_v / old_v
        } else {
            old_v / new_v
        };
        rows.push(DiffRow {
            metric: name.clone(),
            old: *old_v,
            new: *new_v,
            gain,
            threshold: allowed,
            regressed: gain.is_nan() || gain < 1.0 - allowed,
        });
    }
    for (name, _) in &new_metrics {
        if !old_metrics.iter().any(|(n, _)| n == name) {
            unmatched.push(name.clone());
        }
    }
    let regressions = rows.iter().filter(|r| r.regressed).count();
    DiffReport {
        rows,
        unmatched,
        regressions,
    }
}

/// The bench document's own schema (e.g. `simdize-bench-engine/v1`),
/// whether `doc` is a bare bench document or a history wrapper. The
/// history now interleaves engine and server entries, so default
/// baseline selection must pair entries by this, not by recency alone.
pub fn entry_schema(doc: &Json) -> Option<&str> {
    let bench = doc.get("bench").unwrap_or(doc);
    bench.get("schema").and_then(Json::as_str)
}

/// Parses an entry file (either schema).
///
/// # Errors
///
/// I/O errors are stringified; JSON errors pass through as
/// [`JsonError`] text.
pub fn load_entry(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&text).map_err(|e: JsonError| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(fig1_speedup: f64, fig1_ops: f64, cached_ms: f64) -> String {
        format!(
            r#"{{
  "schema": "simdize-bench-engine/v1",
  "mode": "quick",
  "kernels": [
    {{ "name": "fig1", "trip": 100000, "speedup_vs_interp": {fig1_speedup},
      "fused_vs_unfused": 1.64, "fused_ops_per_sec": {fig1_ops}, "fused_ns": 1000000 }}
  ],
  "sweeps": [
    {{ "name": "known-align", "seeds": 64, "cached_ms": {cached_ms},
      "cache_speedup": 1.3, "cached_jobs_per_sec": 5000 }}
  ]
}}"#
        )
    }

    #[test]
    fn entry_wraps_and_parses() {
        let meta = HistoryMeta {
            recorded_at_unix_ms: 1_754_000_000_000,
            git_sha: "abcdef0123456789".into(),
            host: HostFingerprint {
                os: "linux".into(),
                arch: "x86_64".into(),
                threads: 8,
            },
        };
        let entry = wrap_entry(&meta, &bench_doc(20.0, 3.0e8, 100.0));
        let doc = parse(&entry).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(HISTORY_SCHEMA));
        assert_eq!(
            doc.get("recorded_at_unix_ms").unwrap().as_f64(),
            Some(1.754e12)
        );
        assert_eq!(
            doc.get("host").unwrap().get("threads").unwrap().as_f64(),
            Some(8.0)
        );
        assert_eq!(
            doc.get("bench").unwrap().get("mode").unwrap().as_str(),
            Some("quick")
        );
        assert_eq!(meta.file_name(), "1754000000000-abcdef0.json");
    }

    #[test]
    fn metrics_flatten_with_orientation() {
        let doc = parse(&bench_doc(20.0, 3.0e8, 100.0)).unwrap();
        let metrics = extract_metrics(&doc);
        let names: Vec<&str> = metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"kernel.fig1.speedup_vs_interp"));
        assert!(names.contains(&"kernel.fig1.fused_ops_per_sec"));
        assert!(names.contains(&"sweep.known-align.cache_speedup"));
        assert!(names.contains(&"kernel.fig1.fused_ns"));
        // Non-oriented fields (trip, seeds) are excluded.
        assert!(!names.iter().any(|n| n.ends_with(".trip")));
        assert!(!names.iter().any(|n| n.ends_with(".seeds")));
    }

    #[test]
    fn diff_flags_only_regressions_past_threshold() {
        let old = parse(&bench_doc(20.0, 3.0e8, 100.0)).unwrap();
        // Speedup drops 50% (regression at 25%); ops/sec drops 10%
        // (within 2×25% timing allowance); cached_ms *improves*.
        let new = parse(&bench_doc(10.0, 2.7e8, 80.0)).unwrap();
        let report = diff(&old, &new, 0.25);
        let by_name = |n: &str| {
            report
                .rows
                .iter()
                .find(|r| r.metric == n)
                .unwrap_or_else(|| panic!("missing row {n}"))
        };
        assert!(by_name("kernel.fig1.speedup_vs_interp").regressed);
        assert!(!by_name("kernel.fig1.fused_ops_per_sec").regressed);
        let ms = by_name("sweep.known-align.cached_ms");
        assert!(!ms.regressed);
        assert!(ms.gain > 1.0, "lower cached_ms must read as a gain");
        assert_eq!(report.regressions, 1);
        assert!(report.render_text().contains("REGRESSED"));
    }

    #[test]
    fn native_columns_participate_in_regression_gating() {
        // The intrinsics-backend columns emitted by the engine bench:
        // `native_vs_fused` is higher-is-better and must gate like a
        // speedup; `native_ns` is a timing and gets the 2× allowance.
        let doc = |vs_fused: f64, ns: f64| {
            parse(&format!(
                r#"{{ "schema": "simdize-bench-engine/v1",
                     "kernels": [ {{ "name": "fig1",
                       "native_vs_fused": {vs_fused},
                       "native_ops_per_sec": 2.0e8,
                       "native_ns": {ns} }} ] }}"#
            ))
            .unwrap()
        };
        let old = doc(2.0, 1000.0);
        // Ratio halves (regression at 25%); timing worsens 10% (inside
        // the 2×25% allowance).
        let new = doc(1.0, 1100.0);
        let report = diff(&old, &new, 0.25);
        let by_name = |n: &str| {
            report
                .rows
                .iter()
                .find(|r| r.metric == n)
                .unwrap_or_else(|| panic!("missing row {n}"))
        };
        assert!(by_name("kernel.fig1.native_vs_fused").regressed);
        assert!(!by_name("kernel.fig1.native_ns").regressed);
        assert!(!by_name("kernel.fig1.native_ops_per_sec").regressed);
        assert_eq!(report.regressions, 1);
    }

    #[test]
    fn identical_entries_never_regress() {
        let doc = parse(&bench_doc(20.0, 3.0e8, 100.0)).unwrap();
        let report = diff(&doc, &doc, 0.05);
        assert_eq!(report.regressions, 0);
        assert!(report.unmatched.is_empty());
        assert!(!report.rows.is_empty());
    }

    #[test]
    fn zero_on_both_sides_is_not_a_regression() {
        // A metric that is legitimately zero in baseline and fresh run
        // (e.g. the slot cache's hit rate on a mixed-program sweep)
        // must read as gain 1.0, not the NaN of 0/0.
        let doc = parse(
            r#"{ "schema": "simdize-bench-server/v1",
                 "server": [ { "name": "mixed", "cache_hit_rate": 0.0 } ] }"#,
        )
        .unwrap();
        let report = diff(&doc, &doc, 0.25);
        assert_eq!(report.regressions, 0);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].gain, 1.0);
    }

    #[test]
    fn history_entries_diff_through_the_bench_wrapper() {
        let meta = HistoryMeta {
            recorded_at_unix_ms: 1,
            git_sha: "x".into(),
            host: HostFingerprint::gather(),
        };
        let old = parse(&wrap_entry(&meta, &bench_doc(20.0, 3.0e8, 100.0))).unwrap();
        let new = parse(&bench_doc(19.0, 3.0e8, 100.0)).unwrap();
        // History entry vs bare bench document: both flatten.
        let report = diff(&old, &new, 0.25);
        assert_eq!(report.regressions, 0);
        assert!(!report.rows.is_empty());
    }

    #[test]
    fn append_and_list_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "simdize-history-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = HistoryMeta {
            recorded_at_unix_ms: 42,
            git_sha: "deadbeef".into(),
            host: HostFingerprint::gather(),
        };
        let p1 = append_entry(&dir, &meta, &bench_doc(20.0, 3.0e8, 100.0)).unwrap();
        let p2 = append_entry(&dir, &meta, &bench_doc(21.0, 3.0e8, 100.0)).unwrap();
        assert_ne!(p1, p2, "same-timestamp entries must not clobber");
        let listed = list_entries(&dir);
        assert_eq!(listed.len(), 2);
        assert!(listed.contains(&p1) && listed.contains(&p2));
        let loaded = load_entry(&p2).unwrap();
        assert_eq!(
            loaded.get("schema").unwrap().as_str(),
            Some(HISTORY_SCHEMA)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
