//! A minimal JSON reader for the bench-history tracker.
//!
//! The workspace is offline by policy (no serde), but `simdize bench
//! diff` has to read back the JSON documents the bench harness writes.
//! This is a straightforward recursive-descent parser over the JSON
//! grammar — objects, arrays, strings (with the standard escapes),
//! numbers (including scientific notation), booleans and null — that
//! keeps object keys in document order.

use std::fmt;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (all JSON numbers are read as `f64`).
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing content is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, at: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.at != bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.at,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.at += 4;
                            // Surrogates would need pairing; the bench
                            // schemas never emit them, so reject.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("unsupported \\u surrogate"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().expect("peeked nonempty");
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("3.466e8").unwrap(), Json::Num(346_600_000.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".to_string())
        );
        let doc = parse(r#"{"k": [1, {"x": false}], "s": "µs"}"#).unwrap();
        assert_eq!(doc.get("s").unwrap().as_str(), Some("µs"));
        let arr = doc.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("x"), Some(&Json::Bool(false)));
    }

    #[test]
    fn keys_keep_document_order() {
        let doc = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        match doc {
            Json::Obj(members) => {
                assert_eq!(members[0].0, "z");
                assert_eq!(members[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn roundtrips_a_real_bench_document() {
        let doc = r#"{
  "schema": "simdize-bench-engine/v1",
  "mode": "quick",
  "kernels": [
    { "name": "fig1", "fused_ops_per_sec": 3.466e8, "speedup_vs_interp": 20.71 }
  ],
  "sweeps": []
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("simdize-bench-engine/v1")
        );
        let kernels = v.get("kernels").unwrap().as_arr().unwrap();
        assert_eq!(
            kernels[0].get("fused_ops_per_sec").unwrap().as_f64(),
            Some(346_600_000.0)
        );
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
