//! A log-linear histogram for nonnegative integer samples.
//!
//! The bucket layout is the classic HDR shape: values below
//! `LINEAR_CUTOFF` (16) get exact one-per-value buckets, and every
//! power of two above it is split into `SUB_BUCKETS` (16) linear
//! sub-buckets, so the relative quantile error is bounded by `1 / SUB_BUCKETS`
//! (6.25%) at any magnitude while the whole structure stays a flat
//! array of counters — no allocation per sample, no sample retention.
//! Exact `min`/`max`/`sum`/`count` are tracked on the side so the tails
//! are reported precisely even though interior quantiles are bucketed.

/// Values below this get exact single-value buckets.
const LINEAR_CUTOFF: u64 = 16;
/// Linear sub-buckets per power-of-two range above the cutoff.
const SUB_BUCKETS: u64 = 16;
/// Total bucket count: 16 exact + 16 per power of two from 2^4 to 2^63.
const BUCKETS: usize = (LINEAR_CUTOFF + (64 - 4) * SUB_BUCKETS) as usize;

/// A fixed-memory log-linear histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("sum", &self.sum)
            .finish_non_exhaustive()
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    // `v >= 16`, so the leading one sits at bit position >= 4.
    let msb = 63 - v.leading_zeros() as u64;
    let sub = (v >> (msb - 4)) - SUB_BUCKETS; // top 4 bits below the leading one
    (LINEAR_CUTOFF + (msb - 4) * SUB_BUCKETS + sub) as usize
}

/// Lowest value that lands in bucket `idx` (the bucket representative
/// reported by quantiles — a deliberate under-estimate, never above the
/// true quantile's bucket).
fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR_CUTOFF {
        return idx;
    }
    let msb = (idx - LINEAR_CUTOFF) / SUB_BUCKETS + 4;
    let sub = (idx - LINEAR_CUTOFF) % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << (msb - 4)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest rank over the bucket
    /// counts, reported as the floor of the bucket the rank falls in —
    /// within `1/16` relative error of the exact order statistic. The
    /// extreme quantiles are exact: `q = 0` returns [`Histogram::min`]
    /// and `q = 1` returns [`Histogram::max`]. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Clamp to the exact extremes: the lowest and highest
                // occupied buckets can only contain min/max-side mass.
                return bucket_floor(idx).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets every counter to the empty state.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = None;
        for v in (0..2000u64).chain([1 << 20, 1 << 40, u64::MAX / 2, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "v={v} idx={idx}");
            assert!(bucket_floor(idx) <= v, "floor above value for {v}");
            if let Some((pv, pi)) = prev {
                assert!(idx >= pi, "index not monotone at {pv}->{v}");
            }
            prev = Some((v, idx));
        }
        // Bucket floors invert their own index.
        for idx in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(idx)), idx, "idx {idx}");
        }
    }

    #[test]
    fn exact_below_cutoff() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 3, 7, 9] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.9), 9);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 9);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 25);
    }

    #[test]
    fn uniform_distribution_percentiles_within_bound() {
        // 1..=10_000 uniformly: exact p50 = 5000, p95 = 9500.
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5) as f64;
        let p95 = h.quantile(0.95) as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 1.0 / 16.0, "p50 {p50}");
        assert!((p95 - 9500.0).abs() / 9500.0 < 1.0 / 16.0, "p95 {p95}");
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.mean(), 5000.5);
    }

    #[test]
    fn skewed_distribution_percentiles() {
        // 99 small samples and one huge outlier: p50 stays small, max
        // is exact.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(100);
        }
        h.observe(1_000_000_000);
        let p50 = h.quantile(0.5);
        assert!((96..=104).contains(&p50), "p50 {p50}");
        assert_eq!(h.max(), 1_000_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000_000);
        // p99 by nearest rank over 100 samples is the 99th sample
        // (still 100); only the very last rank reaches the outlier.
        assert!(h.quantile(0.99) <= 104);
    }

    #[test]
    fn constant_distribution_is_tight() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.observe(123_456);
        }
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            let got = h.quantile(q) as f64;
            assert!(
                (got - 123_456.0).abs() / 123_456.0 <= 1.0 / 16.0,
                "q={q} got {got}"
            );
        }
        // The extremes are exact even though the interior is bucketed.
        assert_eq!(h.quantile(0.0), 123_456);
        assert_eq!(h.quantile(1.0), 123_456);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=500u64 {
            a.observe(v);
        }
        for v in 501..=1000u64 {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1000);
        let p50 = a.quantile(0.5) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 1.0 / 16.0, "p50 {p50}");
        a.reset();
        assert_eq!(a.count(), 0);
        assert_eq!(a.quantile(0.5), 0);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 0);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
