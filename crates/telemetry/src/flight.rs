//! The flight recorder: a fixed-capacity, lock-striped ring buffer of
//! recent request summaries for postmortem capture.
//!
//! The server records one [`FlightEntry`] per handled request — trace
//! id, verb, latency, the pipeline attributes the request tagged, and
//! the error if it failed. The recorder keeps only the last
//! `capacity` entries, so its memory is bounded at roughly
//! `capacity × sizeof(entry)` regardless of uptime (error strings are
//! truncated on record for the same reason). Writes go to one of
//! `stripes` independent mutexes chosen round-robin by the global
//! sequence number, so concurrent request threads rarely contend;
//! [`dump`](FlightRecorder::dump) merges the stripes back into
//! admission order. The dump is rendered as versioned JSON
//! ([`FLIGHT_SCHEMA`]) on server error responses, on SIGINT drain, and
//! for the `dump` wire verb.

use crate::json::escape;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The versioned schema identifier of a rendered flight dump.
pub const FLIGHT_SCHEMA: &str = "simdize-flight/v1";

/// Error strings longer than this are truncated on record so one
/// pathological request cannot inflate the recorder's memory bound.
const MAX_ERROR_LEN: usize = 256;

/// One request's postmortem summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Admission order (assigned by the recorder; later = newer).
    pub seq: u64,
    /// The request's wire trace id (`c<conn>-<seq>`).
    pub trace_id: String,
    /// The verb that ran.
    pub verb: String,
    /// Wall-clock microseconds the request took.
    pub latency_us: u64,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Pipeline attributes the request tagged (policy, isa, …).
    pub attrs: BTreeMap<String, String>,
    /// The error message when `ok` is false (truncated to 256 chars).
    pub error: Option<String>,
}

/// A fixed-capacity lock-striped ring buffer of [`FlightEntry`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Vec<Mutex<VecDeque<FlightEntry>>>,
    seq: AtomicU64,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` entries across
    /// `stripes` independently-locked segments (both clamped to ≥ 1).
    /// Capacity is rounded up to a multiple of the stripe count so
    /// round-robin admission keeps exactly the newest entries.
    pub fn new(capacity: usize, stripes: usize) -> FlightRecorder {
        let stripes = stripes.max(1);
        let capacity = capacity.max(1);
        let per_stripe = capacity.div_ceil(stripes);
        FlightRecorder {
            stripes: (0..stripes)
                .map(|_| Mutex::new(VecDeque::with_capacity(per_stripe)))
                .collect(),
            seq: AtomicU64::new(0),
            capacity: per_stripe * stripes,
        }
    }

    /// The number of entries the recorder retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many requests have been recorded over the recorder's
    /// lifetime (not how many are currently retained).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Admits one entry, evicting the oldest entry of its stripe when
    /// full. The entry's `seq` is assigned here; the caller's value is
    /// ignored. Sequence numbers stripe round-robin, so across stripes
    /// the recorder retains exactly the newest `capacity` admissions.
    pub fn record(&self, mut entry: FlightEntry) {
        entry.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if let Some(err) = &mut entry.error {
            if err.len() > MAX_ERROR_LEN {
                let mut cut = MAX_ERROR_LEN;
                while !err.is_char_boundary(cut) {
                    cut -= 1;
                }
                err.truncate(cut);
                err.push('…');
            }
        }
        let per_stripe = self.capacity / self.stripes.len();
        let stripe = (entry.seq as usize) % self.stripes.len();
        let mut q = self.stripes[stripe]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while q.len() >= per_stripe {
            q.pop_front();
        }
        q.push_back(entry);
    }

    /// Every retained entry, oldest first.
    pub fn dump(&self) -> Vec<FlightEntry> {
        let mut entries: Vec<FlightEntry> = Vec::new();
        for stripe in &self.stripes {
            let q = stripe.lock().unwrap_or_else(|e| e.into_inner());
            entries.extend(q.iter().cloned());
        }
        entries.sort_by_key(|e| e.seq);
        entries
    }

    /// The versioned JSON rendering ([`FLIGHT_SCHEMA`]) of the dump.
    /// With `normalize_timings`, latencies are written as 0 so the
    /// document is byte-stable across runs.
    pub fn render_json(&self, normalize_timings: bool) -> String {
        let entries = self.dump();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{}\",\"capacity\":{},\"recorded\":{},\"entries\":[",
            FLIGHT_SCHEMA,
            self.capacity,
            self.recorded()
        );
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"trace_id\":\"{}\",\"verb\":\"{}\",\"latency_us\":{},\"ok\":{},",
                e.seq,
                escape(&e.trace_id),
                escape(&e.verb),
                if normalize_timings { 0 } else { e.latency_us },
                e.ok
            );
            out.push_str("\"attrs\":{");
            for (k, (key, value)) in e.attrs.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", escape(key), escape(value));
            }
            out.push_str("},");
            match &e.error {
                Some(err) => {
                    let _ = write!(out, "\"error\":\"{}\"}}", escape(err));
                }
                None => out.push_str("\"error\":null}"),
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn entry(trace: &str, verb: &str, ok: bool) -> FlightEntry {
        FlightEntry {
            seq: 0,
            trace_id: trace.to_string(),
            verb: verb.to_string(),
            latency_us: 42,
            ok,
            attrs: BTreeMap::new(),
            error: if ok { None } else { Some("bad".to_string()) },
        }
    }

    #[test]
    fn retains_exactly_the_newest_capacity_entries() {
        let rec = FlightRecorder::new(8, 4);
        for i in 0..30 {
            rec.record(entry(&format!("c1-{i}"), "run", true));
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 8);
        let seqs: Vec<u64> = dump.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (22..30).collect::<Vec<u64>>());
        assert_eq!(rec.recorded(), 30);
    }

    #[test]
    fn capacity_rounds_up_to_stripe_multiple() {
        let rec = FlightRecorder::new(10, 4);
        assert_eq!(rec.capacity(), 12);
        let tiny = FlightRecorder::new(0, 0);
        assert_eq!(tiny.capacity(), 1);
        tiny.record(entry("c1-1", "ping", true));
        tiny.record(entry("c1-2", "ping", true));
        assert_eq!(tiny.dump().len(), 1);
        assert_eq!(tiny.dump()[0].trace_id, "c1-2");
    }

    #[test]
    fn concurrent_recording_loses_nothing_within_capacity() {
        let rec = FlightRecorder::new(512, 8);
        std::thread::scope(|s| {
            for t in 0..8 {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..64 {
                        rec.record(entry(&format!("c{t}-{i}"), "run", true));
                    }
                });
            }
        });
        let dump = rec.dump();
        assert_eq!(dump.len(), 512);
        // Admission order is strictly increasing and gap-free.
        for (i, e) in dump.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn rendered_json_is_versioned_and_carries_errors() {
        let rec = FlightRecorder::new(4, 2);
        let mut e = entry("c7-9", "verify", false);
        e.attrs.insert("policy".to_string(), "lazy".to_string());
        rec.record(e);
        let doc = json::parse(&rec.render_json(false)).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(FLIGHT_SCHEMA));
        assert_eq!(doc.get("capacity").unwrap().as_f64(), Some(4.0));
        let entries = doc.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("trace_id").unwrap().as_str(), Some("c7-9"));
        assert_eq!(entries[0].get("error").unwrap().as_str(), Some("bad"));
        assert_eq!(
            entries[0].get("attrs").unwrap().get("policy").unwrap().as_str(),
            Some("lazy")
        );
        // Normalized form zeroes the latency.
        let doc = json::parse(&rec.render_json(true)).unwrap();
        let entries = doc.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries[0].get("latency_us").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn long_errors_are_truncated_on_record() {
        let rec = FlightRecorder::new(2, 1);
        let mut e = entry("c1-1", "run", false);
        e.error = Some("x".repeat(10_000));
        rec.record(e);
        let got = rec.dump()[0].error.clone().unwrap();
        assert!(got.chars().count() <= 257, "error not truncated: {}", got.len());
        assert!(got.ends_with('…'));
    }
}
