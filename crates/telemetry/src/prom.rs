//! Prometheus text exposition of a [`MetricsSnapshot`].
//!
//! Hand-rolled (the workspace is offline by policy): counters and
//! gauges render as their native types, histograms as Prometheus
//! summaries (`quantile` labels plus `_sum`/`_count` series). Metric
//! names are the registry's dotted names with every character outside
//! `[a-zA-Z0-9_]` replaced by `_` and a `simdize_` prefix, so
//! `sweep.kernel_cache.hit` scrapes as
//! `simdize_sweep_kernel_cache_hit`.

use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("simdize_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders `snap` in the Prometheus text exposition format
/// (`text/plain; version=0.0.4`).
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {}", h.p50);
        let _ = writeln!(out, "{n}{{quantile=\"0.95\"}} {}", h.p95);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSummary;

    #[test]
    fn renders_all_metric_kinds_with_sanitized_names() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("sweep.kernel_cache.hit".into(), 15);
        snap.gauges.insert("sweep.workers".into(), 2);
        snap.histograms.insert(
            "server.latency-us".into(),
            HistogramSummary {
                count: 4,
                min: 1,
                max: 9,
                sum: 20,
                p50: 4,
                p95: 9,
            },
        );
        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE simdize_sweep_kernel_cache_hit counter"));
        assert!(text.contains("simdize_sweep_kernel_cache_hit 15\n"));
        assert!(text.contains("# TYPE simdize_sweep_workers gauge"));
        assert!(text.contains("simdize_sweep_workers 2\n"));
        assert!(text.contains("# TYPE simdize_server_latency_us summary"));
        assert!(text.contains("simdize_server_latency_us{quantile=\"0.5\"} 4"));
        assert!(text.contains("simdize_server_latency_us_sum 20"));
        assert!(text.contains("simdize_server_latency_us_count 4"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_prometheus(&MetricsSnapshot::default()), "");
    }
}
