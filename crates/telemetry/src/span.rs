//! The span profiler: monotonic-clock scopes with thread-local
//! buffers, drained into a hierarchical phase tree.
//!
//! Instrumented code calls [`span`] at the top of a scope and holds the
//! returned guard; nesting is tracked per thread with a name stack, so
//! a span's identity is its *path* (`"bake/fuse/rewrite"`), not just
//! its name. Completed spans accumulate in a thread-local buffer that
//! is flushed whenever the thread's span stack empties — one mutex
//! acquisition per top-level span, none per nested span. The flush
//! destination depends on what is collecting: a thread running under a
//! request scope (see [`crate::trace`]) delivers into that request's
//! private buffer; otherwise records land in the process-wide collector
//! that [`crate::Session`] drains. When telemetry is disabled (the
//! default), [`span`] is a single relaxed atomic load and returns an
//! inert guard: no clock read, no TLS access, no allocation.
//!
//! Every record also carries a start offset against a process-scoped
//! epoch and a small per-thread id, which is what lets a request trace
//! be exported as a Chrome trace-event timeline (`ts`/`dur` per event,
//! one track per thread) and not just an aggregated tree.

use crate::enabled;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span: its slash-joined path, when it started
/// (process-epoch offset), how long it ran, and which thread ran it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Slash-joined ancestry, e.g. `"bake/fuse/rewrite"`.
    pub path: String,
    /// Wall-clock nanoseconds the span was open.
    pub ns: u64,
    /// Nanoseconds from the process telemetry epoch to the span's
    /// open. Request scopes rebase this to the scope's own start.
    pub start_ns: u64,
    /// Small dense id of the recording thread (first-use order), for
    /// per-track timeline export. Not an OS thread id.
    pub tid: u64,
}

static COLLECTOR: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// The process-scoped instant all span start offsets are measured
/// from (first telemetry use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process telemetry epoch.
pub(crate) fn epoch_ns_now() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD: RefCell<ThreadSpans> = const {
        RefCell::new(ThreadSpans { stack: Vec::new(), buf: Vec::new(), tid: 0 })
    };
}

struct ThreadSpans {
    stack: Vec<&'static str>,
    buf: Vec<SpanRecord>,
    tid: u64,
}

impl ThreadSpans {
    fn tid(&mut self) -> u64 {
        if self.tid == 0 {
            self.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        }
        self.tid
    }
}

/// Routes one flushed batch: to the thread's active request context
/// if there is one, else to the global collector.
fn flush(records: Vec<SpanRecord>) {
    if records.is_empty() {
        return;
    }
    if let Some(records) = crate::trace::sink_spans(records) {
        COLLECTOR
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend(records);
    }
}

/// An open profiling scope; records its duration on drop.
///
/// Close spans in the order they were opened (ordinary lexical scoping
/// does this automatically) — the path of a span is derived from the
/// thread's stack at the moment it closes.
#[must_use = "a span measures the scope that holds it"]
pub struct SpanGuard {
    start: Option<Instant>,
    start_ns: u64,
}

/// Opens a span named `name` under the thread's current span path.
/// Near-zero cost when telemetry is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            start: None,
            start_ns: 0,
        };
    }
    THREAD.with(|t| t.borrow_mut().stack.push(name));
    let start_ns = epoch_ns_now();
    SpanGuard {
        start: Some(Instant::now()),
        start_ns,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        THREAD.with(|t| {
            let mut t = t.borrow_mut();
            let path = t.stack.join("/");
            t.stack.pop();
            let tid = t.tid();
            t.buf.push(SpanRecord {
                path,
                ns,
                start_ns: self.start_ns,
                tid,
            });
            if t.stack.is_empty() {
                let drained: Vec<SpanRecord> = t.buf.drain(..).collect();
                drop(t);
                flush(drained);
            }
        });
    }
}

/// Removes and returns every span in the global collector (from every
/// thread that has flushed; the calling thread's buffer is flushed
/// first so its completed spans are never stranded). Spans captured by
/// request scopes never pass through here.
pub fn drain_spans() -> Vec<SpanRecord> {
    THREAD.with(|t| {
        let mut t = t.borrow_mut();
        if !t.buf.is_empty() {
            let drained: Vec<SpanRecord> = t.buf.drain(..).collect();
            drop(t);
            flush(drained);
        }
    });
    std::mem::take(&mut *COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()))
}

/// One node of the aggregated span tree: all completions of one path,
/// with exact order statistics over the recorded durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span's name (the last path component).
    pub name: String,
    /// How many times this span completed.
    pub count: u64,
    /// Total nanoseconds across all completions.
    pub total_ns: u64,
    /// Median duration.
    pub p50_ns: u64,
    /// 95th-percentile duration (nearest rank).
    pub p95_ns: u64,
    /// Longest single completion.
    pub max_ns: u64,
    /// Child spans, in first-completion order.
    pub children: Vec<SpanNode>,
}

struct Building {
    name: String,
    samples: Vec<u64>,
    children: Vec<Building>,
}

fn child_of<'a>(nodes: &'a mut Vec<Building>, name: &str) -> &'a mut Building {
    if let Some(idx) = nodes.iter().position(|n| n.name == name) {
        return &mut nodes[idx];
    }
    nodes.push(Building {
        name: name.to_string(),
        samples: Vec::new(),
        children: Vec::new(),
    });
    nodes.last_mut().expect("just pushed")
}

fn finish(mut b: Building) -> SpanNode {
    b.samples.sort_unstable();
    let rank = |q: f64| -> u64 {
        if b.samples.is_empty() {
            return 0;
        }
        let r = ((q * b.samples.len() as f64).ceil() as usize).clamp(1, b.samples.len());
        b.samples[r - 1]
    };
    SpanNode {
        count: b.samples.len() as u64,
        total_ns: b.samples.iter().sum(),
        p50_ns: rank(0.5),
        p95_ns: rank(0.95),
        max_ns: b.samples.last().copied().unwrap_or(0),
        name: b.name,
        children: b.children.into_iter().map(finish).collect(),
    }
}

/// Aggregates drained records into a hierarchical phase tree. Nodes
/// keep first-completion order, so on a single profiling thread the
/// tree reads in pipeline order. A parent that never completed a span
/// of its own (only interior path component) reports zero counts.
pub fn build_tree(records: &[SpanRecord]) -> Vec<SpanNode> {
    let mut roots: Vec<Building> = Vec::new();
    for rec in records {
        let mut level = &mut roots;
        let parts: Vec<&str> = rec.path.split('/').collect();
        for (k, part) in parts.iter().enumerate() {
            let next = child_of(level, part);
            if k + 1 == parts.len() {
                next.samples.push(rec.ns);
            }
            level = &mut next.children;
        }
    }
    roots.into_iter().map(finish).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session;

    #[test]
    fn nested_spans_build_a_tree() {
        let mut s = session();
        {
            let _a = span("outer");
            for _ in 0..3 {
                let _b = span("inner");
                std::hint::black_box(1 + 1);
            }
        }
        {
            let _c = span("second");
        }
        let report = s.finish();
        let names: Vec<&str> = report.spans.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, ["outer", "second"]);
        let outer = &report.spans[0];
        assert_eq!(outer.count, 1);
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(outer.children[0].count, 3);
        assert!(outer.total_ns >= outer.children[0].total_ns);
        assert!(outer.children[0].p50_ns <= outer.children[0].p95_ns);
        assert!(outer.children[0].p95_ns <= outer.children[0].max_ns);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _flags = crate::flag_guard();
        // No session: telemetry is off, the guard must be inert.
        {
            let _g = span("ghost");
        }
        let mut s = session();
        let report = s.finish();
        assert!(
            report.spans.iter().all(|n| n.name != "ghost"),
            "disabled span leaked into the collector"
        );
    }

    #[test]
    fn cross_thread_spans_merge_by_path() {
        let mut s = session();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _g = span("worker");
                    let _h = span("step");
                });
            }
        });
        let report = s.finish();
        let worker = report
            .spans
            .iter()
            .find(|n| n.name == "worker")
            .expect("worker spans collected");
        assert_eq!(worker.count, 4);
        assert_eq!(worker.children.len(), 1);
        assert_eq!(worker.children[0].count, 4);
    }

    #[test]
    fn records_carry_timeline_fields() {
        let _s = session();
        {
            let _a = span("timeline");
            std::hint::black_box(1 + 1);
        }
        let records = drain_spans();
        let rec = records
            .iter()
            .find(|r| r.path == "timeline")
            .expect("timeline span recorded");
        assert!(rec.tid > 0, "thread id assigned");
        // A nested span starts at or after its parent.
        let _b = span("outer2");
        let inner_start = {
            let _c = span("inner2");
            std::hint::black_box(0);
            epoch_ns_now()
        };
        drop(_b);
        let records = drain_spans();
        let outer = records.iter().find(|r| r.path == "outer2").unwrap();
        assert!(outer.start_ns <= inner_start);
    }
}
