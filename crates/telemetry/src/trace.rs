//! Request-scoped trace collection: per-request span trees, pipeline
//! attributes, deterministic trace ids, and the `simdize-trace/v1` +
//! Chrome trace-event encoders.
//!
//! A [`Session`](crate::Session) collects process-wide; a server
//! handling concurrent requests needs one collection *per request*.
//! [`begin_request`] opens a [`RequestScope`]: it installs a
//! thread-local [`TraceContext`] so every span completed on the thread
//! is delivered to the request's private buffer, bumps the global
//! enabled flag (so instrumentation fires without a session), and
//! records wall time. Pipeline code annotates the trace with [`tag`]
//! (policy, dispatched ISA, cache hits, …) — a no-op on threads with no
//! active context. Worker threads doing work on behalf of the request
//! call [`adopt_context`] with a handle obtained from
//! [`current_context`] on the requesting thread, so a multi-threaded
//! sweep still lands all its spans in the right request.
//!
//! [`RequestScope::finish`] returns the [`RequestTrace`]: the raw
//! timeline events (start offset, duration, thread track), the
//! aggregated span tree, the attribute map and the error, renderable
//! as versioned JSON ([`TRACE_SCHEMA`]) or as the Chrome trace-event
//! format that `chrome://tracing` and Perfetto load directly.

use crate::json::escape;
use crate::report::render_span_json;
use crate::span::{build_tree, SpanNode, SpanRecord};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The versioned schema identifier of a rendered [`RequestTrace`].
pub const TRACE_SCHEMA: &str = "simdize-trace/v1";

/// A request's identity on the wire: the connection that carried it
/// plus a process-scoped sequence number, rendered `c<conn>-<seq>`.
/// Deterministic — no randomness, no clock — so a single-connection
/// exchange against a fresh server always sees the same ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId {
    /// Id of the connection (or 0 for CLI-local traces).
    pub conn: u64,
    /// Process-scoped request sequence number (from [`TraceId::next`]).
    pub seq: u64,
}

static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

impl TraceId {
    /// The next trace id for connection `conn`: the process-scoped
    /// request counter ticks once per call.
    pub fn next(conn: u64) -> TraceId {
        TraceId {
            conn,
            seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        }
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}-{}", self.conn, self.seq)
    }
}

struct CtxInner {
    spans: Mutex<Vec<SpanRecord>>,
    attrs: Mutex<BTreeMap<String, String>>,
    start_ns: u64,
}

/// A cloneable handle to one request's collection buffers. Obtain with
/// [`current_context`] on the requesting thread, install on a worker
/// thread with [`adopt_context`].
#[derive(Clone)]
pub struct TraceContext {
    inner: Arc<CtxInner>,
}

thread_local! {
    static CURRENT: RefCell<Option<TraceContext>> = const { RefCell::new(None) };
}

/// Offers one flushed span batch to the thread's active context.
/// Returns the batch back when there is none (the caller sends it to
/// the global collector instead).
pub(crate) fn sink_spans(records: Vec<SpanRecord>) -> Option<Vec<SpanRecord>> {
    CURRENT.with(|c| match &*c.borrow() {
        Some(ctx) => {
            ctx.inner
                .spans
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(records);
            None
        }
        None => Some(records),
    })
}

/// Records a request attribute (`policy`, `isa`, `cache.hits`, …) on
/// the thread's active trace context. Last write per key wins. A no-op
/// when telemetry is disabled or the thread has no active context, so
/// pipeline code tags unconditionally.
pub fn tag(key: &str, value: impl fmt::Display) {
    if !crate::enabled() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(ctx) = &*c.borrow() {
            ctx.inner
                .attrs
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(key.to_string(), value.to_string());
        }
    });
}

/// The thread's active trace context, if a request scope is live on
/// it (or was adopted). Clone-cheap handle for handing to workers.
pub fn current_context() -> Option<TraceContext> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Restores the previously-installed context on drop (see
/// [`adopt_context`]).
#[must_use = "dropping the guard immediately un-adopts the context"]
pub struct ContextGuard {
    prev: Option<TraceContext>,
    restore: bool,
}

/// Installs `ctx` as the calling thread's active context until the
/// returned guard drops. Worker threads call this so their spans and
/// tags are credited to the request that spawned them.
pub fn adopt_context(ctx: TraceContext) -> ContextGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx));
    ContextGuard {
        prev,
        restore: true,
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.restore {
            let prev = self.prev.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// An in-flight request collection, returned by [`begin_request`].
/// Call [`finish`](RequestScope::finish) to obtain the
/// [`RequestTrace`]; dropping the scope without finishing discards the
/// collection but still restores the thread and the global flag.
pub struct RequestScope {
    ctx: TraceContext,
    prev: Option<TraceContext>,
    trace_id: String,
    verb: String,
    started: Instant,
    active: bool,
}

/// Opens a request scope for `id` on the calling thread: enables
/// collection globally (if it was not already), installs a fresh
/// [`TraceContext`] thread-locally, and starts the request clock.
/// Scopes may nest — the inner scope shadows the outer until finished.
pub fn begin_request(id: TraceId, verb: &str) -> RequestScope {
    crate::scope_begin();
    let ctx = TraceContext {
        inner: Arc::new(CtxInner {
            spans: Mutex::new(Vec::new()),
            attrs: Mutex::new(BTreeMap::new()),
            start_ns: crate::span::epoch_ns_now(),
        }),
    };
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx.clone()));
    RequestScope {
        ctx,
        prev,
        trace_id: id.to_string(),
        verb: verb.to_string(),
        started: Instant::now(),
        active: true,
    }
}

impl RequestScope {
    fn deactivate(&mut self) {
        if !self.active {
            return;
        }
        self.active = false;
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
        crate::scope_end();
    }

    /// Ends collection and returns everything the request recorded.
    /// Span start offsets are rebased to the scope's begin, so the
    /// first event of the request starts near 0.
    pub fn finish(mut self, error: Option<String>) -> RequestTrace {
        self.deactivate();
        let wall_us = self.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let base = self.ctx.inner.start_ns;
        let mut events = std::mem::take(
            &mut *self
                .ctx
                .inner
                .spans
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for ev in &mut events {
            ev.start_ns = ev.start_ns.saturating_sub(base);
        }
        let attrs = std::mem::take(
            &mut *self
                .ctx
                .inner
                .attrs
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        RequestTrace {
            trace_id: std::mem::take(&mut self.trace_id),
            verb: std::mem::take(&mut self.verb),
            wall_us,
            attrs,
            spans: build_tree(&events),
            events,
            error,
        }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        self.deactivate();
    }
}

/// Everything one request-scoped collection produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// The request's wire identity (`c<conn>-<seq>`).
    pub trace_id: String,
    /// The verb that ran (`run`, `sweep`, `trace`, …).
    pub verb: String,
    /// Wall-clock microseconds from scope begin to finish.
    pub wall_us: u64,
    /// Pipeline attributes recorded via [`tag`], sorted by key.
    pub attrs: BTreeMap<String, String>,
    /// The aggregated span tree (same node shape as a session report).
    pub spans: Vec<SpanNode>,
    /// The raw timeline: every completed span with its start offset
    /// (ns from scope begin), duration and thread track.
    pub events: Vec<SpanRecord>,
    /// The error message, when the request failed.
    pub error: Option<String>,
}

impl RequestTrace {
    /// The versioned JSON rendering ([`TRACE_SCHEMA`]). With
    /// `normalize_timings`, every wall-clock field (and the run-order
    /// dependent `trace_id` / thread tracks) is written as a fixed
    /// value so the document is byte-stable across runs — golden tests
    /// pin the normalized form; verbs, attributes, counts and tree
    /// shape stay exact.
    pub fn render_json(&self, normalize_timings: bool) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"");
        out.push_str(TRACE_SCHEMA);
        let _ = write!(
            out,
            "\",\"trace_id\":\"{}\",\"verb\":\"{}\",\"wall_us\":{},",
            if normalize_timings {
                "c0-0".to_string()
            } else {
                escape(&self.trace_id)
            },
            escape(&self.verb),
            if normalize_timings { 0 } else { self.wall_us },
        );
        match &self.error {
            Some(e) => {
                let _ = write!(out, "\"error\":\"{}\",", escape(e));
            }
            None => out.push_str("\"error\":null,"),
        }
        out.push_str("\"attrs\":{");
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
        }
        out.push_str("},\"spans\":[");
        for (i, node) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_span_json(&mut out, node, normalize_timings);
        }
        out.push_str("],\"events\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let z = |v: u64| if normalize_timings { 0 } else { v };
            let _ = write!(
                out,
                "{{\"path\":\"{}\",\"tid\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                escape(&ev.path),
                z(ev.tid),
                z(ev.start_ns),
                z(ev.ns)
            );
        }
        out.push_str("]}");
        out
    }

    /// The Chrome trace-event rendering: one complete (`"ph":"X"`)
    /// event per recorded span with microsecond `ts`/`dur` relative to
    /// the request start, one track per recording thread, plus a root
    /// event spanning the whole request that carries the trace id and
    /// attributes. Load the output in `chrome://tracing` or Perfetto.
    pub fn render_chrome(&self) -> String {
        let us = |ns: u64| format!("{:.3}", ns as f64 / 1000.0);
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
             \"args\":{\"name\":\"simdize\"}}",
        );
        let _ = write!(
            out,
            ",{{\"name\":\"request:{}\",\"cat\":\"request\",\"ph\":\"X\",\
             \"ts\":0,\"dur\":{},\"pid\":1,\"tid\":0,\"args\":{{\"trace_id\":\"{}\"",
            escape(&self.verb),
            self.wall_us,
            escape(&self.trace_id),
        );
        for (k, v) in &self.attrs {
            let _ = write!(out, ",\"{}\":\"{}\"", escape(k), escape(v));
        }
        out.push_str("}}");
        for ev in &self.events {
            let name = ev.path.rsplit('/').next().unwrap_or(&ev.path);
            let _ = write!(
                out,
                ",{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\
                 \"dur\":{},\"pid\":1,\"tid\":{}}}",
                escape(name),
                escape(&ev.path),
                us(ev.start_ns),
                us(ev.ns),
                ev.tid
            );
        }
        out.push_str("]}");
        out
    }

    /// A human-readable rendering: the id/verb/latency header, the
    /// attribute list, and the indented span tree.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {}  verb={}  wall {:.3} ms{}",
            self.trace_id,
            self.verb,
            self.wall_us as f64 / 1000.0,
            match &self.error {
                Some(e) => format!("  ERROR: {e}"),
                None => String::new(),
            }
        );
        let _ = writeln!(out, "== attributes ==");
        if self.attrs.is_empty() {
            let _ = writeln!(out, "(none tagged)");
        }
        for (k, v) in &self.attrs {
            let _ = writeln!(out, "{k:<24} {v}");
        }
        let _ = writeln!(out, "== spans ==");
        if self.spans.is_empty() {
            let _ = writeln!(out, "(none recorded)");
        }
        for node in &self.spans {
            crate::report::render_span_text(&mut out, node, 0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, span};

    #[test]
    fn trace_ids_are_sequential_and_render_conn() {
        let a = TraceId::next(3);
        let b = TraceId::next(3);
        assert_eq!(a.conn, 3);
        assert!(b.seq > a.seq);
        assert_eq!(a.to_string(), format!("c3-{}", a.seq));
    }

    #[test]
    fn request_scope_collects_spans_tags_and_error() {
        let _flags = crate::flag_guard();
        let scope = begin_request(TraceId::next(1), "run");
        assert!(crate::enabled());
        {
            let _outer = span("req_outer");
            let _inner = span("req_inner");
            tag("policy", "lazy");
            tag("cache.hits", 7);
        }
        let trace = scope.finish(Some("boom".to_string()));
        assert!(!crate::enabled());
        assert_eq!(trace.verb, "run");
        assert_eq!(trace.error.as_deref(), Some("boom"));
        assert_eq!(trace.attrs["policy"], "lazy");
        assert_eq!(trace.attrs["cache.hits"], "7");
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "req_outer");
        assert_eq!(trace.spans[0].children[0].name, "req_inner");
        assert_eq!(trace.events.len(), 2);
        // The events never reached the global collector.
        assert!(span::drain_spans()
            .iter()
            .all(|r| !r.path.starts_with("req_")));
    }

    #[test]
    fn adopted_context_credits_worker_spans() {
        let _flags = crate::flag_guard();
        let scope = begin_request(TraceId::next(2), "sweep");
        let ctx = current_context().expect("scope installs a context");
        std::thread::scope(|s| {
            for _ in 0..3 {
                let ctx = ctx.clone();
                s.spawn(move || {
                    let _adopt = adopt_context(ctx);
                    let _g = span("adopted_job");
                    tag("worker", "yes");
                });
            }
        });
        let trace = scope.finish(None);
        let job = trace
            .spans
            .iter()
            .find(|n| n.name == "adopted_job")
            .expect("worker spans in request tree");
        assert_eq!(job.count, 3);
        assert_eq!(trace.attrs["worker"], "yes");
        // Three distinct worker tracks.
        let tids: std::collections::BTreeSet<u64> =
            trace.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 3);
    }

    #[test]
    fn nested_scopes_shadow_and_restore() {
        let _flags = crate::flag_guard();
        let outer = begin_request(TraceId::next(4), "outer");
        {
            let _a = span("outer_side");
        }
        let inner = begin_request(TraceId::next(4), "inner");
        {
            let _b = span("inner_only");
        }
        let inner = inner.finish(None);
        {
            let _c = span("outer_side");
        }
        let outer = outer.finish(None);
        assert_eq!(inner.spans.len(), 1);
        assert_eq!(inner.spans[0].name, "inner_only");
        assert_eq!(outer.spans.len(), 1);
        assert_eq!(outer.spans[0].name, "outer_side");
        assert_eq!(outer.spans[0].count, 2);
    }

    #[test]
    fn rendered_json_is_versioned_and_normalizes() {
        let _flags = crate::flag_guard();
        let scope = begin_request(TraceId::next(5), "trace");
        {
            let _a = span("phase_a");
            tag("opd", "2.250");
        }
        let trace = scope.finish(None);
        let doc = json::parse(&trace.render_json(false)).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(TRACE_SCHEMA));
        assert_eq!(doc.get("verb").unwrap().as_str(), Some("trace"));
        assert_eq!(
            doc.get("attrs").unwrap().get("opd").unwrap().as_str(),
            Some("2.250")
        );
        let norm = trace.render_json(true);
        let doc = json::parse(&norm).unwrap();
        assert_eq!(doc.get("trace_id").unwrap().as_str(), Some("c0-0"));
        assert_eq!(doc.get("wall_us").unwrap().as_f64(), Some(0.0));
        let ev = &doc.get("events").unwrap().as_arr().unwrap()[0];
        assert_eq!(ev.get("start_ns").unwrap().as_f64(), Some(0.0));
        assert_eq!(ev.get("dur_ns").unwrap().as_f64(), Some(0.0));
        // Normalizing twice is stable.
        assert_eq!(norm, trace.render_json(true));
    }

    #[test]
    fn chrome_rendering_is_loadable_json_with_one_event_per_span() {
        let _flags = crate::flag_guard();
        let scope = begin_request(TraceId::next(6), "run");
        {
            let _a = span("chrome_outer");
            let _b = span("chrome_inner");
        }
        let trace = scope.finish(None);
        let doc = json::parse(&trace.render_chrome()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // metadata + request root + 2 spans
        assert_eq!(events.len(), 4);
        let root = events
            .iter()
            .find(|e| e.get("name").and_then(json::Json::as_str) == Some("request:run"))
            .unwrap();
        assert_eq!(
            root.get("dur").and_then(json::Json::as_f64),
            Some(trace.wall_us as f64)
        );
        let inner = events
            .iter()
            .find(|e| e.get("name").and_then(json::Json::as_str) == Some("chrome_inner"))
            .unwrap();
        assert_eq!(
            inner.get("cat").and_then(json::Json::as_str),
            Some("chrome_outer/chrome_inner")
        );
        assert_eq!(inner.get("ph").and_then(json::Json::as_str), Some("X"));
    }

    #[test]
    fn dropping_a_scope_discards_cleanly() {
        let _flags = crate::flag_guard();
        {
            let _scope = begin_request(TraceId::next(7), "dropped");
            let _a = span("discarded");
        }
        assert!(!crate::enabled());
        assert!(current_context().is_none());
        // Nothing leaked to the global collector.
        assert!(span::drain_spans()
            .iter()
            .all(|r| r.path != "discarded"));
    }

    #[test]
    fn text_rendering_lists_header_attrs_and_tree() {
        let _flags = crate::flag_guard();
        let scope = begin_request(TraceId::next(8), "run");
        {
            let _a = span("text_phase");
            tag("policy", "zero");
        }
        let trace = scope.finish(None);
        let text = trace.render_text();
        assert!(text.contains("verb=run"));
        assert!(text.contains("policy"));
        assert!(text.contains("text_phase"));
    }
}
