//! Rendering a drained telemetry session as text or versioned JSON
//! (`simdize-telemetry/v1`).

use crate::json::escape;
use crate::metrics::MetricsSnapshot;
use crate::span::SpanNode;
use std::fmt::Write as _;

/// The versioned schema identifier of the JSON rendering.
pub const TELEMETRY_SCHEMA: &str = "simdize-telemetry/v1";

/// Everything one telemetry session collected: the hierarchical span
/// tree and the touched metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Root spans in first-completion order.
    pub spans: Vec<SpanNode>,
    /// Counters, gauges and histogram summaries.
    pub metrics: MetricsSnapshot,
}

fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

pub(crate) fn render_span_text(out: &mut String, node: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth);
    let _ = writeln!(
        out,
        "{indent}{:<w$} {:>12}  x{:<6} p50 {:>10}  p95 {:>10}  max {:>10}",
        node.name,
        format_ns(node.total_ns),
        node.count,
        format_ns(node.p50_ns),
        format_ns(node.p95_ns),
        format_ns(node.max_ns),
        w = 24usize.saturating_sub(2 * depth),
    );
    for child in &node.children {
        render_span_text(out, child, depth + 1);
    }
}

impl TelemetryReport {
    /// A human-readable rendering: the indented span tree, then the
    /// metrics sorted by name.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== spans ==");
        if self.spans.is_empty() {
            let _ = writeln!(out, "(none recorded)");
        }
        for node in &self.spans {
            render_span_text(&mut out, node, 0);
        }
        let _ = writeln!(out, "== metrics ==");
        let m = &self.metrics;
        if m.counters.is_empty() && m.gauges.is_empty() && m.histograms.is_empty() {
            let _ = writeln!(out, "(none touched)");
        }
        for (name, v) in &m.counters {
            let _ = writeln!(out, "{name:<36} {v}");
        }
        for (name, v) in &m.gauges {
            let _ = writeln!(out, "{name:<36} {v} (gauge)");
        }
        for (name, h) in &m.histograms {
            let _ = writeln!(
                out,
                "{name:<36} n={} min={} p50={} p95={} max={}",
                h.count, h.min, h.p50, h.p95, h.max
            );
        }
        out
    }

    /// The versioned JSON rendering ([`TELEMETRY_SCHEMA`]). With
    /// `normalize_timings`, every nanosecond field is written as 0 so
    /// the document is byte-stable across runs — counts, names, tree
    /// shape and metric values are deterministic on a fixed workload;
    /// wall-clock durations are not. Golden tests pin the normalized
    /// form.
    pub fn render_json(&self, normalize_timings: bool) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"");
        out.push_str(TELEMETRY_SCHEMA);
        out.push_str("\",\"spans\":[");
        for (i, node) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_span_json(&mut out, node, normalize_timings);
        }
        out.push_str("],\"counters\":{");
        for (i, (name, v)) in self.metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.metrics.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.metrics.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"min\":{},\"max\":{},\"sum\":{},\"p50\":{},\"p95\":{}}}",
                escape(name),
                h.count,
                h.min,
                h.max,
                h.sum,
                h.p50,
                h.p95
            );
        }
        out.push_str("}}");
        out
    }
}

pub(crate) fn render_span_json(out: &mut String, node: &SpanNode, normalize: bool) {
    let ns = |v: u64| if normalize { 0 } else { v };
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{},\"children\":[",
        escape(&node.name),
        node.count,
        ns(node.total_ns),
        ns(node.p50_ns),
        ns(node.p95_ns),
        ns(node.max_ns)
    );
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_span_json(out, child, normalize);
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::metrics::HistogramSummary;

    fn sample_report() -> TelemetryReport {
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("sweep.kernel_cache.hit".into(), 15);
        metrics.gauges.insert("sweep.workers".into(), 1);
        metrics.histograms.insert(
            "sweep.worker.jobs".into(),
            HistogramSummary {
                count: 1,
                min: 16,
                max: 16,
                sum: 16,
                p50: 16,
                p95: 16,
            },
        );
        TelemetryReport {
            spans: vec![SpanNode {
                name: "bake".into(),
                count: 2,
                total_ns: 1000,
                p50_ns: 400,
                p95_ns: 600,
                max_ns: 600,
                children: vec![SpanNode {
                    name: "fuse".into(),
                    count: 2,
                    total_ns: 300,
                    p50_ns: 100,
                    p95_ns: 200,
                    max_ns: 200,
                    children: Vec::new(),
                }],
            }],
            metrics,
        }
    }

    #[test]
    fn json_is_parseable_and_versioned() {
        let report = sample_report();
        let doc = json::parse(&report.render_json(false)).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(TELEMETRY_SCHEMA));
        let spans = doc.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("bake"));
        assert_eq!(spans[0].get("total_ns").unwrap().as_f64(), Some(1000.0));
        let hit = doc
            .get("counters")
            .unwrap()
            .get("sweep.kernel_cache.hit")
            .unwrap();
        assert_eq!(hit.as_f64(), Some(15.0));
    }

    #[test]
    fn normalized_json_zeroes_timings_only() {
        let report = sample_report();
        let doc = json::parse(&report.render_json(true)).unwrap();
        let spans = doc.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans[0].get("total_ns").unwrap().as_f64(), Some(0.0));
        assert_eq!(spans[0].get("count").unwrap().as_f64(), Some(2.0));
        let jobs = doc
            .get("histograms")
            .unwrap()
            .get("sweep.worker.jobs")
            .unwrap();
        assert_eq!(jobs.get("p50").unwrap().as_f64(), Some(16.0));
    }

    #[test]
    fn text_rendering_lists_tree_and_metrics() {
        let text = sample_report().render_text();
        assert!(text.contains("== spans =="));
        assert!(text.contains("bake"));
        assert!(text.contains("  fuse"));
        assert!(text.contains("sweep.kernel_cache.hit"));
        assert!(text.contains("p95"));
        let empty = TelemetryReport::default().render_text();
        assert!(empty.contains("(none recorded)"));
        assert!(empty.contains("(none touched)"));
    }
}
