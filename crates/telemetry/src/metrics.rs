//! The metrics registry: named counters, gauges and histograms behind
//! a near-zero-cost disabled path.
//!
//! Handles are cheap `Arc` clones that instrumented code fetches once
//! (per worker, per phase) and then updates lock-free; every update
//! first checks the global enabled flag with one relaxed atomic load,
//! so a disabled build path costs a predictable branch and nothing
//! else. Names are dotted lowercase (`sweep.kernel_cache.hit`); the
//! snapshot reports them sorted, and omits metrics still at zero so a
//! session only exports what it actually touched.

use crate::enabled;
use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` when telemetry is enabled.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 when telemetry is enabled.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v` when telemetry is enabled.
    pub fn set(&self, v: u64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A handle to a shared [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one sample when telemetry is enabled.
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .observe(v);
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<Mutex<Histogram>>>,
}

fn registry() -> &'static Mutex<RegistryInner> {
    static REGISTRY: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(RegistryInner::default()))
}

/// The counter registered under `name` (created on first use).
pub fn counter(name: &str) -> Counter {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    Counter(Arc::clone(
        reg.counters.entry(name.to_string()).or_default(),
    ))
}

/// The gauge registered under `name` (created on first use).
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    Gauge(Arc::clone(reg.gauges.entry(name.to_string()).or_default()))
}

/// The histogram registered under `name` (created on first use).
pub fn histogram(name: &str) -> HistogramHandle {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    HistogramHandle(Arc::clone(
        reg.histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(Histogram::new()))),
    ))
}

/// Zeroes every registered metric in place (handles stay valid — a
/// worker that cached a [`Counter`] before the reset keeps counting
/// into the same slot).
pub fn reset_metrics() {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for c in reg.counters.values() {
        c.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.values() {
        g.store(0, Ordering::Relaxed);
    }
    for h in reg.histograms.values() {
        h.lock().unwrap_or_else(|e| e.into_inner()).reset();
    }
}

/// The summarized state of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Median (log-linear bucketed, ≤ 6.25% relative error).
    pub p50: u64,
    /// 95th percentile (same error bound).
    pub p95: u64,
}

/// A point-in-time copy of every touched metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counters with a nonzero value.
    pub counters: BTreeMap<String, u64>,
    /// Gauges with a nonzero value.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms with at least one sample.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Snapshots every registered metric, omitting untouched (zero /
/// empty) entries.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut snap = MetricsSnapshot::default();
    for (name, c) in &reg.counters {
        let v = c.load(Ordering::Relaxed);
        if v != 0 {
            snap.counters.insert(name.clone(), v);
        }
    }
    for (name, g) in &reg.gauges {
        let v = g.load(Ordering::Relaxed);
        if v != 0 {
            snap.gauges.insert(name.clone(), v);
        }
    }
    for (name, h) in &reg.histograms {
        let h = h.lock().unwrap_or_else(|e| e.into_inner());
        if h.count() != 0 {
            snap.histograms.insert(
                name.clone(),
                HistogramSummary {
                    count: h.count(),
                    min: h.min(),
                    max: h.max(),
                    sum: h.sum(),
                    p50: h.quantile(0.5),
                    p95: h.quantile(0.95),
                },
            );
        }
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let mut s = session();
        counter("test.hits").add(3);
        counter("test.hits").inc();
        gauge("test.workers").set(4);
        let h = histogram("test.jobs");
        for v in [10u64, 20, 30] {
            h.observe(v);
        }
        let report = s.finish();
        assert_eq!(report.metrics.counters["test.hits"], 4);
        assert_eq!(report.metrics.gauges["test.workers"], 4);
        let jobs = &report.metrics.histograms["test.jobs"];
        assert_eq!(jobs.count, 3);
        assert_eq!(jobs.min, 10);
        assert_eq!(jobs.max, 30);
        assert_eq!(jobs.sum, 60);
    }

    #[test]
    fn disabled_updates_are_dropped_and_zeroes_omitted() {
        let _flags = crate::flag_guard();
        // Outside a session: enabled() is false, nothing records.
        counter("test.ghost").add(100);
        gauge("test.ghost_gauge").set(9);
        histogram("test.ghost_hist").observe(5);
        let mut s = session();
        let report = s.finish();
        assert!(!report.metrics.counters.contains_key("test.ghost"));
        assert!(!report.metrics.gauges.contains_key("test.ghost_gauge"));
        assert!(!report.metrics.histograms.contains_key("test.ghost_hist"));
    }

    #[test]
    fn sessions_reset_previous_values() {
        {
            let mut s = session();
            counter("test.reset_me").add(7);
            let r = s.finish();
            assert_eq!(r.metrics.counters["test.reset_me"], 7);
        }
        let mut s = session();
        let report = s.finish();
        assert!(
            !report.metrics.counters.contains_key("test.reset_me"),
            "stale counter survived session reset"
        );
    }

    #[test]
    fn handles_survive_reset() {
        let mut s = session();
        let c = counter("test.handle");
        c.add(1);
        reset_metrics();
        c.add(2);
        let report = s.finish();
        assert_eq!(report.metrics.counters["test.handle"], 2);
    }
}
