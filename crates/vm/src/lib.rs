//! A simulated SIMD machine for executing and evaluating simdized loops.
//!
//! The paper evaluates its compilation scheme on a cycle-accurate
//! simulator of a PowerPC-with-VMX machine, reporting the
//! micro-architecture-independent **operations per datum** (OPD) metric —
//! a dynamic instruction count divided by the number of data elements
//! produced. This crate provides the equivalent substrate:
//!
//! * [`MemoryImage`] — a byte-addressable memory that places every array
//!   at a base address with its declared misalignment (choosing concrete
//!   misalignments for runtime-aligned arrays), surrounded by guard
//!   padding so shifted streams may read one or two chunks past either
//!   end, exactly like page-safe AltiVec code;
//! * [`run_scalar`] — the scalar reference executor, used both as the
//!   correctness oracle and as the `ub ≤ 3B` fallback path;
//! * [`run_simd`] — an interpreter for [`simdize_codegen::SimdProgram`]s
//!   with AltiVec-style truncating vector loads and stores, which counts
//!   every executed instruction by class ([`RunStats`]);
//! * [`run_differential`] — the end-to-end harness: run the scalar
//!   oracle and the simdized program on identical memory images and
//!   compare every byte (§5.4's verification).
//!
//! # Cost model
//!
//! OPD is a count, not a cycle estimate. Counted per execution:
//! every VIR vector instruction costs 1; each steady-state iteration
//! adds [`LOOP_OVERHEAD_PER_ITERATION`] (index update + fused
//! compare-and-branch, assuming index-register addressing folded into
//! the memory instructions, as on PowerPC with update forms); one loop
//! invocation adds [`CALL_OVERHEAD`]; and each *distinct* runtime scalar
//! expression (alignment masks, permute vectors, runtime bounds) adds
//! [`RUNTIME_SETUP_PER_EXPR`] once, since such values are loop invariant
//! and hoisted. The scalar baseline counts loads, lane operations and
//! stores only — the paper's "idealistic scalar instruction count".
//!
//! # Example
//!
//! ```
//! use simdize_ir::{parse_program, VectorShape};
//! use simdize_reorg::{Policy, ReorgGraph};
//! use simdize_codegen::{generate, CodegenOptions, ReuseMode};
//! use simdize_vm::{run_differential, DiffConfig};
//!
//! let p = parse_program(
//!     "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
//!      for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
//! )?;
//! let g = ReorgGraph::build(&p, VectorShape::V16)?.with_policy(Policy::Zero)?;
//! let prog = generate(&g, &CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline))?;
//! let outcome = run_differential(&prog, &DiffConfig::with_seed(42))?;
//! assert!(outcome.verified);
//! assert!(outcome.stats.opd(outcome.data_produced) < 12.0 / 4.0 + 2.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod error;
mod exec;
mod interp;
mod memory;
mod scalar;
mod stats;

pub use diff::{run_differential, DiffConfig, DiffOutcome};
pub use error::{ExecError, VerifyError};
pub use exec::{Executor, Interpreter};
pub use interp::{run_simd, run_simd_traced, runtime_expr_count, RunInput};
pub use memory::MemoryImage;
pub use scalar::{run_scalar, scalar_ideal_ops};
pub use stats::{
    RunStats, CALL_OVERHEAD, LOOP_OVERHEAD_PER_ITERATION, RUNTIME_SETUP_PER_EXPR,
    UNALIGNED_MEM_COST,
};
