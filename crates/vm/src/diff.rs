//! Differential verification: the simdized program versus the scalar
//! oracle on identical memory images (§5.4's coverage methodology).

use crate::error::VerifyError;
use crate::interp::{run_simd, RunInput};
use crate::memory::MemoryImage;
use crate::scalar::run_scalar;
use crate::stats::RunStats;
use simdize_codegen::SimdProgram;
use simdize_ir::TripCount;

/// Configuration of one differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffConfig {
    /// Seed for array placement (runtime misalignments) and contents.
    pub seed: u64,
    /// Trip count for loops whose trip count is a runtime value; loops
    /// with compile-time trip counts use their own. Defaults to 1000.
    pub runtime_ub: u64,
    /// Values for the loop's scalar parameters.
    pub params: Vec<i64>,
}

impl DiffConfig {
    /// A configuration with the given seed and defaults elsewhere.
    pub fn with_seed(seed: u64) -> DiffConfig {
        DiffConfig {
            seed,
            runtime_ub: 1000,
            params: Vec::new(),
        }
    }

    /// Sets the runtime trip count.
    pub fn runtime_ub(mut self, ub: u64) -> DiffConfig {
        self.runtime_ub = ub;
        self
    }

    /// Sets the parameter values.
    pub fn params(mut self, params: Vec<i64>) -> DiffConfig {
        self.params = params;
        self
    }
}

/// The result of a successful differential run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOutcome {
    /// Always true on `Ok` — kept for readable assertions.
    pub verified: bool,
    /// Dynamic instruction counts of the simdized execution.
    pub stats: RunStats,
    /// Data elements produced (`statements × trip count`).
    pub data_produced: u64,
    /// The idealistic scalar instruction count for the same work — the
    /// speedup baseline.
    pub scalar_ideal: u64,
}

impl DiffOutcome {
    /// The paper's speedup factor: scalar instructions over simdized
    /// instructions.
    pub fn speedup(&self) -> f64 {
        self.scalar_ideal as f64 / self.stats.total() as f64
    }

    /// The simdized execution's operations per datum.
    pub fn opd(&self) -> f64 {
        self.stats.opd(self.data_produced)
    }
}

/// Runs `program` and the scalar oracle on identical images and
/// compares every byte of memory (guard padding included).
///
/// # Errors
///
/// * [`VerifyError::Exec`] if either execution faults;
/// * [`VerifyError::MemoryMismatch`] if the images diverge — the
///   simdized code computed something wrong.
pub fn run_differential(
    program: &SimdProgram,
    config: &DiffConfig,
) -> Result<DiffOutcome, VerifyError> {
    let source = program.source();
    let ub = match source.trip() {
        TripCount::Known(u) => u,
        TripCount::Runtime => config.runtime_ub,
    };

    let mut simd_img = MemoryImage::with_seed(source, program.shape(), config.seed);
    let mut oracle_img = simd_img.clone();

    let scalar_ideal = run_scalar(source, &mut oracle_img, ub, &config.params)?;
    let stats = run_simd(
        program,
        &mut simd_img,
        &RunInput {
            ub,
            params: config.params.clone(),
        },
    )?;

    match simd_img.first_difference(&oracle_img) {
        None => Ok(DiffOutcome {
            verified: true,
            stats,
            data_produced: source.stmts().len() as u64 * ub,
            scalar_ideal,
        }),
        Some(first_diff) => Err(VerifyError::MemoryMismatch { first_diff }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_codegen::{generate, CodegenOptions, ReuseMode};
    use simdize_ir::{parse_program, VectorShape};
    use simdize_reorg::{Policy, ReorgGraph};

    fn compile(src: &str, policy: Policy, opts: CodegenOptions) -> SimdProgram {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(policy)
            .unwrap();
        generate(&g, &opts).unwrap()
    }

    #[test]
    fn multi_statement_mixed_alignments_verify() {
        let src = "arrays { a: i32[256] @ 12; b: i32[256] @ 4; c: i32[256] @ 8;
                            x: i32[256] @ 0; y: i32[256] @ 4; }
                   for i in 0..200 { a[i+1] = b[i+2] + c[i]; x[i+3] = y[i+1] * 7; }";
        for policy in Policy::ALL {
            for reuse in [
                ReuseMode::None,
                ReuseMode::SoftwarePipeline,
                ReuseMode::PredictiveCommoning,
            ] {
                let prog = compile(src, policy, CodegenOptions::default().reuse(reuse));
                let out = run_differential(&prog, &DiffConfig::with_seed(17)).unwrap();
                assert!(out.verified, "{policy}/{reuse:?}");
                assert!(out.speedup() > 1.0, "{policy}/{reuse:?} too slow");
            }
        }
    }

    #[test]
    fn runtime_everything_verifies_across_seeds() {
        let src = "arrays { a: i16[2048] @ ?; b: i16[2048] @ ?; c: i16[2048] @ ?; }
                   for i in 0..ub { a[i+3] = b[i+5] + c[i+2]; }";
        let prog = compile(
            src,
            Policy::Zero,
            CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline),
        );
        for seed in 0..24 {
            for ub in [997, 1000, 1003, 1024] {
                let out =
                    run_differential(&prog, &DiffConfig::with_seed(seed).runtime_ub(ub)).unwrap();
                assert!(out.verified, "seed {seed} ub {ub}");
            }
        }
    }

    #[test]
    fn tiny_trips_take_the_guard() {
        let src = "arrays { a: i32[64] @ 4; b: i32[64] @ 8; }
                   for i in 0..ub { a[i] = b[i+1]; }";
        let prog = compile(src, Policy::Zero, CodegenOptions::default());
        for ub in 1..=13 {
            let out = run_differential(&prog, &DiffConfig::with_seed(1).runtime_ub(ub)).unwrap();
            assert_eq!(out.stats.used_fallback, ub <= 12, "ub = {ub}");
        }
    }

    #[test]
    fn params_flow_through() {
        let src = "arrays { a: i32[256] @ 4; b: i32[256] @ 8; }
                   params { k; }
                   for i in 0..200 { a[i+1] = b[i+2] * k; }";
        let prog = compile(src, Policy::Lazy, CodegenOptions::default());
        let out = run_differential(&prog, &DiffConfig::with_seed(3).params(vec![-5])).unwrap();
        assert!(out.verified);
    }

    #[test]
    fn epilogue_two_store_case_verifies() {
        // ProSplice = 12 and ub ≡ 3 (mod 4) drives EpiLeftOver = 24 > V:
        // the epilogue needs a full store followed by a partial one.
        let src = "arrays { a: i32[256] @ 0; b: i32[256] @ 0; }
                   for i in 0..103 { a[i+3] = b[i+1]; }";
        let prog = compile(src, Policy::Zero, CodegenOptions::default());
        let out = run_differential(&prog, &DiffConfig::with_seed(8)).unwrap();
        assert!(out.verified);
    }
}
