//! The VIR interpreter: executes a simdized program against a memory
//! image with AltiVec-style truncating vector memory operations, and
//! counts every instruction by class.

use crate::error::ExecError;
use crate::memory::MemoryImage;
use crate::scalar::run_scalar;
use crate::stats::{RunStats, CALL_OVERHEAD, LOOP_OVERHEAD_PER_ITERATION, RUNTIME_SETUP_PER_EXPR};
use simdize_codegen::{SExpr, ScalarEnv, SimdProgram, VInst};
use simdize_ir::{ArrayId, Value, VectorShape};
use std::collections::HashSet;

/// Runtime inputs of one loop invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunInput {
    /// The trip count (ignored in favour of the compile-time value when
    /// the loop has one — they must agree for verification).
    pub ub: u64,
    /// Values for the loop's scalar parameters, in declaration order.
    pub params: Vec<i64>,
}

impl RunInput {
    /// An input running `ub` iterations with no parameters.
    pub fn with_ub(ub: u64) -> RunInput {
        RunInput {
            ub,
            params: Vec::new(),
        }
    }
}

struct Env<'a> {
    ub: i64,
    image: &'a MemoryImage,
}

impl ScalarEnv for Env<'_> {
    fn ub(&self) -> i64 {
        self.ub
    }
    fn base_of(&self, array: ArrayId) -> u64 {
        self.image.base_of(array)
    }
    fn shape(&self) -> VectorShape {
        self.image.shape()
    }
}

/// Executes `program` on `image` and returns the dynamic instruction
/// counts.
///
/// Follows the execution model documented on [`SimdProgram`]: trip
/// counts at or below the `ub > 3B` guard run the original scalar loop
/// (counted into [`RunStats::scalar_fallback`]); otherwise prologue,
/// steady state (unrolled pair first when present) and epilogue run in
/// order.
///
/// # Errors
///
/// Propagates any [`ExecError`] — all of which indicate a bug in code
/// generation, never a legal program behaviour.
pub fn run_simd(
    program: &SimdProgram,
    image: &mut MemoryImage,
    input: &RunInput,
) -> Result<RunStats, ExecError> {
    let source = program.source();
    if input.params.len() < source.params().len() {
        return Err(ExecError::MissingParam {
            index: input.params.len(),
        });
    }
    if let Some(declared) = source.trip().known() {
        if input.ub != declared {
            return Err(ExecError::TripMismatch {
                declared,
                supplied: input.ub,
            });
        }
    }
    let ub = source.trip().known().unwrap_or(input.ub);
    let mut stats = RunStats {
        invocation_overhead: CALL_OVERHEAD,
        ..RunStats::default()
    };

    if ub <= program.guard_min_trip() {
        // §4.4 guard: run the original scalar loop.
        let ideal = run_scalar(source, image, ub, &input.params)?;
        stats.used_fallback = true;
        stats.scalar_fallback = ideal + ub * LOOP_OVERHEAD_PER_ITERATION;
        return Ok(stats);
    }

    stats.invocation_overhead += RUNTIME_SETUP_PER_EXPR * runtime_expr_count(program) as u64;

    let mut machine = Machine {
        regs: vec![None; program.vreg_count() as usize + 64],
        image,
        elem_size: source.elem().size() as i64,
        v: program.shape().bytes() as usize,
        ub: ub as i64,
        params: &input.params,
    };

    let b = program.block() as i64;
    let upper = {
        let env = Env {
            ub: ub as i64,
            image: machine.image,
        };
        program.upper_bound().eval(&env)
    };

    // Prologue at i = 0.
    machine.exec_all(program.prologue(), 0, &mut stats)?;

    // Steady state.
    let mut i: i64 = program.lower_bound() as i64;
    if let Some(pair) = program.body_pair() {
        while i + b < upper {
            machine.exec_all(pair, i, &mut stats)?;
            i += 2 * b;
            stats.steady_iterations += 2;
            stats.loop_overhead += LOOP_OVERHEAD_PER_ITERATION;
        }
    }
    while i < upper {
        machine.exec_all(program.body(), i, &mut stats)?;
        i += b;
        stats.steady_iterations += 1;
        stats.loop_overhead += LOOP_OVERHEAD_PER_ITERATION;
    }

    // Epilogue at the first un-executed steady value.
    machine.exec_all(program.epilogue(), i, &mut stats)?;
    Ok(stats)
}

/// Counts the distinct runtime scalar expressions a program needs to
/// materialize per invocation (alignment masks, permute vectors, the
/// runtime upper bound).
///
/// Public so alternative executors (the compiled engine) charge exactly
/// the same [`RUNTIME_SETUP_PER_EXPR`] invocation overhead as the
/// interpreter.
pub fn runtime_expr_count(program: &SimdProgram) -> usize {
    let mut seen: HashSet<SExpr> = HashSet::new();
    let mut scan = |insts: &[VInst]| {
        collect_runtime(insts, &mut seen);
    };
    scan(program.prologue());
    scan(program.body());
    if let Some(pair) = program.body_pair() {
        scan(pair);
    }
    scan(program.epilogue());
    if program.upper_bound().is_runtime() {
        seen.insert(program.upper_bound().clone());
    }
    seen.len()
}

fn collect_runtime(insts: &[VInst], seen: &mut HashSet<SExpr>) {
    for inst in insts {
        match inst {
            VInst::ShiftPair { amt, .. } if amt.is_runtime() => {
                seen.insert(amt.clone());
            }
            VInst::Splice { point, .. } if point.is_runtime() => {
                seen.insert(point.clone());
            }
            VInst::Guarded { body, .. } => collect_runtime(body, seen),
            _ => {}
        }
    }
}

struct Machine<'a> {
    regs: Vec<Option<Vec<u8>>>,
    image: &'a mut MemoryImage,
    elem_size: i64,
    v: usize,
    ub: i64,
    params: &'a [i64],
}

impl Machine<'_> {
    fn exec_all(&mut self, insts: &[VInst], i: i64, stats: &mut RunStats) -> Result<(), ExecError> {
        for inst in insts {
            self.exec(inst, i, stats)?;
        }
        Ok(())
    }

    fn read(&self, r: simdize_codegen::VReg) -> Result<&Vec<u8>, ExecError> {
        self.regs[r.index()]
            .as_ref()
            .ok_or(ExecError::UninitializedRegister { index: r.index() })
    }

    fn eval(&self, e: &SExpr) -> i64 {
        let env = Env {
            ub: self.ub,
            image: self.image,
        };
        e.eval(&env)
    }

    fn exec(&mut self, inst: &VInst, i: i64, stats: &mut RunStats) -> Result<(), ExecError> {
        match inst {
            VInst::LoadA { dst, addr } => {
                let byte = self.image.base_of(addr.array) as i64
                    + (addr.scale * i + addr.elem) * self.elem_size;
                let chunk = self.image.load_chunk(addr.array, byte)?;
                self.regs[dst.index()] = Some(chunk);
                stats.loads += 1;
            }
            VInst::StoreA { addr, src } => {
                let byte = self.image.base_of(addr.array) as i64
                    + (addr.scale * i + addr.elem) * self.elem_size;
                let data = self.read(*src)?.clone();
                self.image.store_chunk(addr.array, byte, &data)?;
                stats.stores += 1;
            }
            VInst::LoadU { dst, addr } => {
                let byte = self.image.base_of(addr.array) as i64
                    + (addr.scale * i + addr.elem) * self.elem_size;
                let chunk = self.image.load_exact(addr.array, byte)?;
                self.regs[dst.index()] = Some(chunk);
                stats.unaligned_mem += 1;
            }
            VInst::StoreU { addr, src } => {
                let byte = self.image.base_of(addr.array) as i64
                    + (addr.scale * i + addr.elem) * self.elem_size;
                let data = self.read(*src)?.clone();
                self.image.store_exact(addr.array, byte, &data)?;
                stats.unaligned_mem += 1;
            }
            VInst::ShiftPair { dst, a, b, amt } => {
                // Amounts live in [0, V]: V selects the second register
                // whole (the runtime right-shift identity case).
                let amount = self.eval(amt);
                if !(0..=self.v as i64).contains(&amount) {
                    return Err(ExecError::BadShiftAmount { amount });
                }
                let mut pair = self.read(*a)?.clone();
                pair.extend_from_slice(self.read(*b)?);
                let out = pair[amount as usize..amount as usize + self.v].to_vec();
                self.regs[dst.index()] = Some(out);
                stats.shifts += 1;
            }
            VInst::Perm { dst, a, b, pattern } => {
                let mut pair = self.read(*a)?.clone();
                pair.extend_from_slice(self.read(*b)?);
                let mut out = Vec::with_capacity(self.v);
                for &sel in pattern {
                    let sel = sel as usize;
                    if sel >= 2 * self.v {
                        return Err(ExecError::BadShiftAmount { amount: sel as i64 });
                    }
                    out.push(pair[sel]);
                }
                if out.len() != self.v {
                    return Err(ExecError::BadShiftAmount {
                        amount: out.len() as i64,
                    });
                }
                self.regs[dst.index()] = Some(out);
                stats.shifts += 1; // permutes count as reorganization ops
            }
            VInst::Splice { dst, a, b, point } => {
                let p = self.eval(point);
                if !(0..=self.v as i64).contains(&p) {
                    return Err(ExecError::BadSplicePoint { point: p });
                }
                let p = p as usize;
                let mut out = self.read(*a)?[..p].to_vec();
                out.extend_from_slice(&self.read(*b)?[p..]);
                self.regs[dst.index()] = Some(out);
                stats.splices += 1;
            }
            VInst::SplatConst { dst, value } => {
                self.regs[dst.index()] = Some(self.splat(*value));
                stats.splats += 1;
            }
            VInst::SplatParam { dst, param } => {
                let value = *self
                    .params
                    .get(param.index())
                    .ok_or(ExecError::MissingParam {
                        index: param.index(),
                    })?;
                self.regs[dst.index()] = Some(self.splat(value));
                stats.splats += 1;
            }
            VInst::Bin { dst, op, a, b } => {
                let elem = self.image.elem();
                let d = self.elem_size as usize;
                let av = self.read(*a)?.clone();
                let bv = self.read(*b)?;
                let mut out = Vec::with_capacity(self.v);
                for lane in 0..self.v / d {
                    let x = Value::from_le_bytes(elem, &av[lane * d..]);
                    let y = Value::from_le_bytes(elem, &bv[lane * d..]);
                    out.extend_from_slice(&op.apply(x, y).to_le_bytes());
                }
                self.regs[dst.index()] = Some(out);
                stats.ops += 1;
            }
            VInst::Un { dst, op, a } => {
                let elem = self.image.elem();
                let d = self.elem_size as usize;
                let av = self.read(*a)?.clone();
                let mut out = Vec::with_capacity(self.v);
                for lane in 0..self.v / d {
                    let x = Value::from_le_bytes(elem, &av[lane * d..]);
                    out.extend_from_slice(&op.apply(x).to_le_bytes());
                }
                self.regs[dst.index()] = Some(out);
                stats.ops += 1;
            }
            VInst::Copy { dst, src } => {
                let v = self.read(*src)?.clone();
                self.regs[dst.index()] = Some(v);
                stats.copies += 1;
            }
            VInst::Guarded { cond, body } => {
                let env = Env {
                    ub: self.ub,
                    image: self.image,
                };
                if cond.eval(&env) {
                    self.exec_all(body, i, stats)?;
                }
            }
        }
        Ok(())
    }

    fn splat(&self, value: i64) -> Vec<u8> {
        let elem = self.image.elem();
        let d = self.elem_size as usize;
        let bytes = Value::from_i64(elem, value).to_le_bytes();
        let mut out = Vec::with_capacity(self.v);
        for _ in 0..self.v / d {
            out.extend_from_slice(&bytes);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_codegen::{generate, CodegenOptions, ReuseMode};
    use simdize_ir::parse_program;
    use simdize_reorg::{Policy, ReorgGraph};

    fn compile(src: &str, policy: Policy, reuse: ReuseMode) -> SimdProgram {
        let p = parse_program(src).unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(policy)
            .unwrap();
        generate(&g, &CodegenOptions::default().reuse(reuse)).unwrap()
    }

    const FIG1: &str = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
                        for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }";

    #[test]
    fn simd_matches_scalar_on_paper_example() {
        for policy in Policy::ALL {
            for reuse in [
                ReuseMode::None,
                ReuseMode::SoftwarePipeline,
                ReuseMode::PredictiveCommoning,
            ] {
                let prog = compile(FIG1, policy, reuse);
                let source = prog.source().clone();
                let mut simd_img = MemoryImage::with_seed(&source, VectorShape::V16, 99);
                let mut oracle_img = simd_img.clone();
                run_scalar(&source, &mut oracle_img, 100, &[]).unwrap();
                run_simd(&prog, &mut simd_img, &RunInput::with_ub(100)).unwrap();
                assert_eq!(
                    simd_img.first_difference(&oracle_img),
                    None,
                    "{policy}/{reuse:?} diverged"
                );
            }
        }
    }

    #[test]
    fn mismatched_ub_is_rejected() {
        // The docs promise the compile-time trip count wins, but a
        // caller who disagrees is comparing against the wrong oracle —
        // that must be a loud error, not a silent pick.
        let prog = compile(FIG1, Policy::Zero, ReuseMode::None);
        let source = prog.source().clone();
        let mut img = MemoryImage::with_seed(&source, VectorShape::V16, 1);
        let err = run_simd(&prog, &mut img, &RunInput::with_ub(99)).unwrap_err();
        assert_eq!(
            err,
            ExecError::TripMismatch {
                declared: 100,
                supplied: 99
            }
        );
        // The agreeing value still runs.
        run_simd(&prog, &mut img, &RunInput::with_ub(100)).unwrap();
    }

    #[test]
    fn guard_takes_scalar_fallback() {
        let src = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
                   for i in 0..ub { a[i] = b[i+1]; }";
        let prog = compile(src, Policy::Zero, ReuseMode::None);
        let source = prog.source().clone();
        let mut img = MemoryImage::with_seed(&source, VectorShape::V16, 3);
        let stats = run_simd(&prog, &mut img, &RunInput::with_ub(10)).unwrap();
        assert!(stats.used_fallback);
        assert!(stats.scalar_fallback > 0);
        // And the memory is still correct.
        let mut oracle = MemoryImage::with_seed(&source, VectorShape::V16, 3);
        run_scalar(&source, &mut oracle, 10, &[]).unwrap();
        assert_eq!(img.first_difference(&oracle), None);
    }

    #[test]
    fn stats_count_instruction_classes() {
        let prog = compile(FIG1, Policy::Zero, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        let mut img = MemoryImage::with_seed(&source, VectorShape::V16, 5);
        let stats = run_simd(&prog, &mut img, &RunInput::with_ub(100)).unwrap();
        assert!(stats.loads > 0);
        assert!(stats.stores > 0);
        assert!(stats.shifts > 0);
        assert!(stats.steady_iterations > 0);
        assert_eq!(stats.invocation_overhead, CALL_OVERHEAD); // no runtime exprs
        assert!(!stats.used_fallback);
    }

    #[test]
    fn runtime_alignment_charges_setup() {
        let src = "arrays { a: i32[256] @ ?; b: i32[256] @ ?; }
                   for i in 0..200 { a[i] = b[i+1]; }";
        let prog = compile(src, Policy::Zero, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        let mut img = MemoryImage::with_seed(&source, VectorShape::V16, 5);
        let stats = run_simd(&prog, &mut img, &RunInput::with_ub(200)).unwrap();
        assert!(stats.invocation_overhead > CALL_OVERHEAD);
    }

    #[test]
    fn never_loads_a_chunk_twice_with_sp() {
        // SP guarantee: per steady iteration, exactly one load per
        // input stream → loads ≈ chunks touched once each.
        let prog = compile(FIG1, Policy::Zero, ReuseMode::SoftwarePipeline);
        let source = prog.source().clone();
        let mut img = MemoryImage::with_seed(&source, VectorShape::V16, 5);
        let stats = run_simd(&prog, &mut img, &RunInput::with_ub(100)).unwrap();
        // Streams b[1..101] and c[2..102] each span ceil(404/16)+1 ≤ 27
        // chunks; plus prologue/epilogue boundary work (re-loads at the
        // edges and store-side splice loads are expected).
        assert!(
            stats.loads <= 2 * 27 + 12,
            "loads = {} exceeds never-load-twice budget",
            stats.loads
        );
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::stats::UNALIGNED_MEM_COST;
    use simdize_codegen::{generate_strided, generate_unaligned, CodegenOptions};
    use simdize_ir::{parse_program, LoopBuilder, ScalarType};
    use simdize_reorg::ReorgGraph;

    #[test]
    fn unaligned_accesses_cost_double() {
        let p = parse_program(
            "arrays { a: i32[256] @ 4; b: i32[256] @ 8; }
             for i in 0..200 { a[i] = b[i+1]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        let prog = generate_unaligned(&g).unwrap();
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 2);
        let stats = run_simd(&prog, &mut img, &RunInput::with_ub(200)).unwrap();
        assert_eq!(stats.loads, 0);
        assert_eq!(stats.stores, 0);
        assert!(stats.unaligned_mem > 0);
        // Every unaligned access contributes UNALIGNED_MEM_COST.
        let recomputed = stats.unaligned_mem * UNALIGNED_MEM_COST
            + stats.ops
            + stats.splices
            + stats.splats
            + stats.loop_overhead
            + stats.invocation_overhead;
        assert_eq!(stats.total(), recomputed);
    }

    #[test]
    fn perm_executes_byte_exact() {
        // A stride-2 gather exercises Perm; check one element directly.
        let mut b = LoopBuilder::new(ScalarType::I32);
        let out = b.array("out", 64, 0);
        let inter = b.array("inter", 200, 4);
        b.stmt(out.at(0), inter.load_strided(2, 1));
        let p = b.finish(64).unwrap();
        let prog = generate_strided(&p, VectorShape::V16).unwrap();
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 9);
        let expected: Vec<i64> = (0..64u64)
            .map(|i| {
                img.get(simdize_ir::ArrayId::from_index(1), 2 * i + 1)
                    .unwrap()
                    .as_i64()
            })
            .collect();
        let stats = run_simd(&prog, &mut img, &RunInput::with_ub(64)).unwrap();
        assert!(stats.shifts > 0, "perms counted as reorganization ops");
        for (i, want) in expected.iter().enumerate() {
            let got = img
                .get(simdize_ir::ArrayId::from_index(0), i as u64)
                .unwrap()
                .as_i64();
            assert_eq!(got, *want, "element {i}");
        }
    }

    #[test]
    fn fallback_stats_render() {
        let p = parse_program(
            "arrays { a: i32[64] @ 4; b: i32[64] @ 8; }
             for i in 0..ub { a[i] = b[i+1]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        let g = g.with_policy(simdize_reorg::Policy::Zero).unwrap();
        let prog = simdize_codegen::generate(&g, &CodegenOptions::default()).unwrap();
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 2);
        let stats = run_simd(&prog, &mut img, &RunInput::with_ub(5)).unwrap();
        assert!(stats.used_fallback);
        assert!(stats.to_string().contains("fallback"));
    }
}

/// Executes `program` like [`run_simd`] while recording a human-readable
/// trace of the first `limit` executed instructions (after guard
/// resolution), annotated with the current induction value — the
/// debugging view of what the simulated machine actually did.
///
/// # Errors
///
/// Same as [`run_simd`].
pub fn run_simd_traced(
    program: &SimdProgram,
    image: &mut MemoryImage,
    input: &RunInput,
    limit: usize,
) -> Result<(RunStats, Vec<String>), ExecError> {
    // Re-run sections manually, mirroring run_simd but logging.
    let source = program.source();
    let ub = source.trip().known().unwrap_or(input.ub);
    let mut trace = Vec::new();
    if ub <= program.guard_min_trip() {
        trace.push(format!("guard: ub = {ub} <= {} -> scalar fallback", program.guard_min_trip()));
        let stats = run_simd(program, image, input)?;
        return Ok((stats, trace));
    }

    // Log statically; execution happens through the normal path so the
    // two can never diverge.
    fn log_section(trace: &mut Vec<String>, limit: usize, name: &str, insts: &[VInst], i: i64) {
        for inst in insts {
            if trace.len() >= limit {
                return;
            }
            match inst {
                VInst::Guarded { cond, .. } => {
                    trace.push(format!("[i={i}] if {cond} {{ … }}"));
                }
                _ => trace.push(format!("[i={i}] {name}: {inst}")),
            }
        }
    }
    let b = program.block() as i64;
    log_section(&mut trace, limit, "pro", program.prologue(), 0);
    let env_upper = {
        let env = Env {
            ub: ub as i64,
            image,
        };
        program.upper_bound().eval(&env)
    };
    let mut i = program.lower_bound() as i64;
    while i < env_upper && trace.len() < limit {
        log_section(&mut trace, limit, "body", program.body(), i);
        i += b;
    }
    let mut i_epi = program.lower_bound() as i64;
    while i_epi < env_upper {
        i_epi += b;
    }
    log_section(&mut trace, limit, "epi", program.epilogue(), i_epi);
    let stats = run_simd(program, image, input)?;
    Ok((stats, trace))
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use simdize_codegen::{generate, CodegenOptions};
    use simdize_ir::parse_program;
    use simdize_reorg::{Policy, ReorgGraph};

    #[test]
    fn trace_records_sections_in_order() {
        let p = parse_program(
            "arrays { a: i32[256] @ 0; b: i32[256] @ 0; }
             for i in 0..100 { a[i+3] = b[i+1]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Zero)
            .unwrap();
        let prog = generate(&g, &CodegenOptions::default()).unwrap();
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 1);
        let (stats, trace) =
            run_simd_traced(&prog, &mut img, &RunInput::with_ub(100), 40).unwrap();
        assert!(!stats.used_fallback);
        assert!(trace.len() <= 40);
        assert!(trace[0].starts_with("[i=0] pro:"));
        assert!(trace.iter().any(|l| l.contains("body:")));
        // And the run still verifies.
        let mut oracle = MemoryImage::with_seed(&p, VectorShape::V16, 1);
        crate::scalar::run_scalar(&p, &mut oracle, 100, &[]).unwrap();
        assert_eq!(img.first_difference(&oracle), None);
    }

    #[test]
    fn trace_reports_fallback() {
        let p = parse_program(
            "arrays { a: i32[64] @ 4; b: i32[64] @ 8; }
             for i in 0..ub { a[i] = b[i+1]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Zero)
            .unwrap();
        let prog = generate(&g, &CodegenOptions::default()).unwrap();
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 1);
        let (stats, trace) = run_simd_traced(&prog, &mut img, &RunInput::with_ub(4), 10).unwrap();
        assert!(stats.used_fallback);
        assert!(trace[0].contains("scalar fallback"));
    }
}
