//! The scalar reference executor (correctness oracle and `ub ≤ 3B`
//! fallback path) and the idealistic scalar instruction count.

use crate::error::ExecError;
use crate::memory::MemoryImage;
use simdize_ir::{Expr, Invariant, LoopProgram, Value};

/// Executes `program` element by element, exactly as the original
/// scalar loop would, for `ub` iterations.
///
/// Returns the number of *ideal* scalar instructions executed: one per
/// load, lane operation and store — the paper's "idealistic scalar
/// instruction count" used as the speedup baseline (loop overhead and
/// address computation excluded).
///
/// # Errors
///
/// Returns [`ExecError::ElementOutOfBounds`] when `ub` drives a
/// reference outside its array, or [`ExecError::MissingParam`] when
/// `params` is shorter than the loop's parameter table.
pub fn run_scalar(
    program: &LoopProgram,
    image: &mut MemoryImage,
    ub: u64,
    params: &[i64],
) -> Result<u64, ExecError> {
    if params.len() < program.params().len() {
        return Err(ExecError::MissingParam {
            index: params.len(),
        });
    }
    for i in 0..ub {
        for stmt in program.stmts() {
            let value = eval(&stmt.rhs, i, program, image, params)?;
            match stmt.reduction {
                Some(op) => {
                    let idx = stmt.target.offset as u64;
                    let acc = image.get(stmt.target.array, idx)?;
                    image.set(stmt.target.array, idx, op.apply(acc, value))?;
                }
                None => {
                    image.set(stmt.target.array, stmt.target.index_at(i), value)?;
                }
            }
        }
    }
    Ok(scalar_ideal_ops(program, ub))
}

fn eval(
    e: &Expr,
    i: u64,
    program: &LoopProgram,
    image: &MemoryImage,
    params: &[i64],
) -> Result<Value, ExecError> {
    Ok(match e {
        Expr::Load(r) => image.get(r.array, r.index_at(i))?,
        Expr::Splat(Invariant::Const(c)) => Value::from_i64(program.elem(), *c),
        Expr::Splat(Invariant::Param(p)) => Value::from_i64(program.elem(), params[p.index()]),
        Expr::Binary(op, a, b) => op.apply(
            eval(a, i, program, image, params)?,
            eval(b, i, program, image, params)?,
        ),
        Expr::Unary(op, a) => op.apply(eval(a, i, program, image, params)?),
    })
}

/// The paper's idealistic scalar instruction count for `ub` iterations:
/// per statement, one instruction per load, per lane operation and for
/// the store. For a statement with `l` loads combined by `l − 1` adds
/// this is `2l` per datum — e.g. 12 OPD for the 6-load single-statement
/// benchmark (the `SEQ` bar of Figure 11).
pub fn scalar_ideal_ops(program: &LoopProgram, ub: u64) -> u64 {
    let per_iter: u64 = program
        .stmts()
        .iter()
        .map(|s| (s.rhs.loads().len() + s.rhs.op_count() + 1) as u64)
        .sum();
    per_iter * ub
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::{parse_program, ArrayId, VectorShape};

    #[test]
    fn executes_the_paper_example() {
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
             for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
        )
        .unwrap();
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 11);
        let ops = run_scalar(&p, &mut img, 100, &[]).unwrap();
        assert_eq!(ops, 400); // (2 loads + 1 add + 1 store) × 100
    }

    #[test]
    fn results_match_hand_computation() {
        let p = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 0; c: i32[64] @ 0; }
             for i in 0..32 { a[i] = b[i+1] * 2 + c[i]; }",
        )
        .unwrap();
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 5);
        let (a, b, c) = (
            ArrayId::from_index(0),
            ArrayId::from_index(1),
            ArrayId::from_index(2),
        );
        let expect: Vec<i64> = (0..32)
            .map(|i| {
                let bv = img.get(b, i + 1).unwrap().as_i64();
                let cv = img.get(c, i).unwrap().as_i64();
                (bv.wrapping_mul(2)).wrapping_add(cv) as i32 as i64
            })
            .collect();
        run_scalar(&p, &mut img, 32, &[]).unwrap();
        for i in 0..32u64 {
            assert_eq!(img.get(a, i).unwrap().as_i64(), expect[i as usize]);
        }
    }

    #[test]
    fn params_are_respected() {
        let p = parse_program(
            "arrays { a: i16[32] @ 0; b: i16[32] @ 0; }
             params { gain; }
             for i in 0..16 { a[i] = b[i] * gain; }",
        )
        .unwrap();
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 5);
        let b0 = img.get(ArrayId::from_index(1), 0).unwrap().as_i64();
        run_scalar(&p, &mut img, 16, &[3]).unwrap();
        assert_eq!(
            img.get(ArrayId::from_index(0), 0).unwrap().as_i64(),
            (b0.wrapping_mul(3)) as i16 as i64
        );
        let mut img2 = MemoryImage::with_seed(&p, VectorShape::V16, 5);
        assert!(matches!(
            run_scalar(&p, &mut img2, 16, &[]),
            Err(ExecError::MissingParam { .. })
        ));
    }

    #[test]
    fn trip_beyond_array_faults() {
        let p = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 0; }
             for i in 0..ub { a[i] = b[i+1]; }",
        )
        .unwrap();
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 5);
        assert!(run_scalar(&p, &mut img, 63, &[]).is_ok());
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 5);
        assert!(run_scalar(&p, &mut img, 64, &[]).is_err());
    }

    #[test]
    fn ideal_count_matches_seq_bar() {
        // 1 statement × 6 loads: 6 + 5 + 1 = 12 per datum.
        let p = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 0; c: i32[64] @ 0; d: i32[64] @ 0;
                      e: i32[64] @ 0; f: i32[64] @ 0; g: i32[64] @ 0; }
             for i in 0..32 { a[i] = b[i] + c[i] + d[i] + e[i] + f[i] + g[i+1]; }",
        )
        .unwrap();
        assert_eq!(scalar_ideal_ops(&p, 32), 12 * 32);
    }
}
