//! The [`Executor`] abstraction: anything that can run a
//! [`SimdProgram`] against a [`MemoryImage`] and report [`RunStats`].
//!
//! Two implementations exist: the tree-walking [`Interpreter`] in this
//! crate (the reference semantics and the oracle for everything else)
//! and the pre-lowered compiled engine in `simdize-engine`. Both must
//! produce byte-identical memory images and identical stats for the
//! same `(program, image, input)` — the engine's differential tests
//! enforce exactly that.

use crate::error::ExecError;
use crate::interp::{run_simd, RunInput};
use crate::memory::MemoryImage;
use crate::stats::RunStats;
use simdize_codegen::SimdProgram;

/// A strategy for executing simdized programs.
pub trait Executor {
    /// Executes `program` against `image`, mutating it in place, and
    /// returns the dynamic instruction counts.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on machine faults (always a codegen
    /// bug), on inconsistent inputs, or when the executor does not
    /// support the program ([`ExecError::Unsupported`]).
    fn execute(
        &self,
        program: &SimdProgram,
        image: &mut MemoryImage,
        input: &RunInput,
    ) -> Result<RunStats, ExecError>;

    /// A short name for reports and CLI flags (`"interp"`, `"native"`).
    fn name(&self) -> &'static str;
}

/// The reference executor: delegates to [`run_simd`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Interpreter;

impl Executor for Interpreter {
    fn execute(
        &self,
        program: &SimdProgram,
        image: &mut MemoryImage,
        input: &RunInput,
    ) -> Result<RunStats, ExecError> {
        run_simd(program, image, input)
    }

    fn name(&self) -> &'static str {
        "interp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_codegen::{generate, CodegenOptions};
    use simdize_ir::{parse_program, VectorShape};
    use simdize_reorg::{Policy, ReorgGraph};

    #[test]
    fn interpreter_executor_matches_run_simd() {
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 4; }
             for i in 0..100 { a[i] = b[i+1]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Zero)
            .unwrap();
        let prog = generate(&g, &CodegenOptions::default()).unwrap();
        let mut img1 = MemoryImage::with_seed(&p, VectorShape::V16, 7);
        let mut img2 = img1.clone();
        let input = RunInput::with_ub(100);
        let direct = run_simd(&prog, &mut img1, &input).unwrap();
        let via_trait = Interpreter.execute(&prog, &mut img2, &input).unwrap();
        assert_eq!(direct, via_trait);
        assert_eq!(img1.first_difference(&img2), None);
        assert_eq!(Interpreter.name(), "interp");
    }
}
