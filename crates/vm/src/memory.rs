//! The byte-addressable memory image with controlled array placement.

use crate::error::ExecError;
use simdize_ir::{AlignKind, ArrayId, LoopProgram, ScalarType, Value, VectorShape};
use simdize_prng::SplitMix64;

/// Guard padding, in multiples of the vector length, kept on both sides
/// of every array. Shifted streams legitimately *read* up to two chunks
/// past either end of a stream (the paper's figures exclude these
/// boundary chunks); partial stores may *rewrite* guard bytes with their
/// own previous contents. Four chunks is comfortably past every case the
/// generator can produce.
const GUARD_CHUNKS: u64 = 4;

/// A memory image holding every array of a loop at a base address with
/// the declared (or chosen) misalignment, plus guard padding.
///
/// The image is the single source of truth for runtime alignments: it
/// implements [`simdize_codegen` scalar environments](simdize_codegen::SExpr)
/// by exposing [`MemoryImage::base_of`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryImage {
    bytes: Vec<u8>,
    bases: Vec<u64>,
    lens: Vec<u64>,
    elem: ScalarType,
    shape: VectorShape,
}

impl MemoryImage {
    /// Builds an image for `program`, choosing the misalignment of each
    /// runtime-aligned array pseudo-randomly from `seed` (always a
    /// multiple of the element size, preserving natural alignment) and
    /// filling every array with pseudo-random element values.
    pub fn with_seed(program: &LoopProgram, shape: VectorShape, seed: u64) -> MemoryImage {
        let offsets = seeded_offsets(program, shape, seed);
        let mut image = MemoryImage::with_offsets(program, shape, &offsets);
        image.fill_random(seed ^ 0x9E37_79B9_7F4A_7C15);
        image
    }

    /// Re-initializes this image in place to exactly what
    /// [`MemoryImage::with_seed`]`(program, shape, seed)` would build,
    /// reusing the existing byte allocation. Sweep workers call this
    /// once per job instead of allocating a fresh image.
    pub fn reseed(&mut self, program: &LoopProgram, shape: VectorShape, seed: u64) {
        let offsets = seeded_offsets(program, shape, seed);
        let (bases, lens, total) = layout(program, shape, &offsets);
        self.bases = bases;
        self.lens = lens;
        self.elem = program.elem();
        self.shape = shape;
        self.bytes.clear();
        self.bytes.resize(total, 0);
        self.fill_random(seed ^ 0x9E37_79B9_7F4A_7C15);
    }

    /// Makes this image an exact copy of `src`, reusing the existing
    /// byte allocation. Equivalent to `*self = src.clone()` without the
    /// fresh allocation — sweep workers use it to rebuild the oracle
    /// image from the engine image once per job.
    pub fn copy_from(&mut self, src: &MemoryImage) {
        self.bytes.clear();
        self.bytes.extend_from_slice(&src.bytes);
        self.bases.clear();
        self.bases.extend_from_slice(&src.bases);
        self.lens.clear();
        self.lens.extend_from_slice(&src.lens);
        self.elem = src.elem;
        self.shape = src.shape;
    }

    /// Builds an image with explicit per-array misalignments (entries
    /// for arrays with compile-time alignments are ignored in favour of
    /// their declarations). Contents start zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is shorter than the array table, or if an
    /// offset used for a runtime array is not naturally aligned.
    pub fn with_offsets(program: &LoopProgram, shape: VectorShape, offsets: &[u32]) -> MemoryImage {
        let (bases, lens, total) = layout(program, shape, offsets);
        MemoryImage {
            bytes: vec![0; total],
            bases,
            lens,
            elem: program.elem(),
            shape,
        }
    }

    /// Fills every array element with pseudo-random values (guard bytes
    /// stay untouched, so differential comparisons cover them too).
    pub fn fill_random(&mut self, seed: u64) {
        let mut rng = SplitMix64::seed_from_u64(seed | 1);
        let d = self.elem.size();
        for a in 0..self.bases.len() {
            for idx in 0..self.lens[a] {
                let v = Value::from_i64(self.elem, rng.next_u64() as i64);
                let at = (self.bases[a] + idx * d as u64) as usize;
                self.bytes[at..at + d].copy_from_slice(&v.to_le_bytes());
            }
        }
    }

    /// The byte address of `array`'s first element.
    ///
    /// # Panics
    ///
    /// Panics if `array` does not belong to the image's program.
    pub fn base_of(&self, array: ArrayId) -> u64 {
        self.bases[array.index()]
    }

    /// The vector shape the image was laid out for.
    pub fn shape(&self) -> VectorShape {
        self.shape
    }

    /// The element type of every array.
    pub fn elem(&self) -> ScalarType {
        self.elem
    }

    /// Reads element `idx` of `array`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::ElementOutOfBounds`] when `idx` is past the
    /// array's length.
    pub fn get(&self, array: ArrayId, idx: u64) -> Result<Value, ExecError> {
        self.check_elem(array, idx)?;
        let d = self.elem.size();
        let at = (self.bases[array.index()] + idx * d as u64) as usize;
        Ok(Value::from_le_bytes(self.elem, &self.bytes[at..at + d]))
    }

    /// Writes element `idx` of `array`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::ElementOutOfBounds`] when `idx` is past the
    /// array's length.
    pub fn set(&mut self, array: ArrayId, idx: u64, value: Value) -> Result<(), ExecError> {
        self.check_elem(array, idx)?;
        let d = self.elem.size();
        let at = (self.bases[array.index()] + idx * d as u64) as usize;
        self.bytes[at..at + d].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn check_elem(&self, array: ArrayId, idx: u64) -> Result<(), ExecError> {
        if idx >= self.lens[array.index()] {
            return Err(ExecError::ElementOutOfBounds {
                array,
                index: idx,
                len: self.lens[array.index()],
            });
        }
        Ok(())
    }

    /// Reads the `V`-byte chunk enclosing `addr` (truncating, like
    /// AltiVec `lvx`).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::ChunkOutOfBounds`] when the chunk leaves
    /// `array`'s guarded region — this catches generator bugs; correct
    /// programs never trip it.
    pub fn load_chunk(&self, array: ArrayId, addr: i64) -> Result<Vec<u8>, ExecError> {
        let at = self.check_chunk(array, addr)?;
        Ok(self.bytes[at..at + self.shape.bytes() as usize].to_vec())
    }

    /// Writes the `V`-byte chunk enclosing `addr` (truncating, like
    /// AltiVec `stvx`).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::ChunkOutOfBounds`] when the chunk leaves
    /// `array`'s guarded region.
    pub fn store_chunk(&mut self, array: ArrayId, addr: i64, data: &[u8]) -> Result<(), ExecError> {
        let at = self.check_chunk(array, addr)?;
        self.bytes[at..at + self.shape.bytes() as usize].copy_from_slice(data);
        Ok(())
    }

    /// Reads `V` bytes at the *exact* address `addr` (a hardware
    /// misaligned load, SSE2 `movdqu`-style).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::ChunkOutOfBounds`] when the access leaves
    /// `array`'s guarded region.
    pub fn load_exact(&self, array: ArrayId, addr: i64) -> Result<Vec<u8>, ExecError> {
        let at = self.check_exact(array, addr)?;
        Ok(self.bytes[at..at + self.shape.bytes() as usize].to_vec())
    }

    /// Writes `V` bytes at the *exact* address `addr` (a hardware
    /// misaligned store).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::ChunkOutOfBounds`] when the access leaves
    /// `array`'s guarded region.
    pub fn store_exact(&mut self, array: ArrayId, addr: i64, data: &[u8]) -> Result<(), ExecError> {
        let at = self.check_exact(array, addr)?;
        self.bytes[at..at + self.shape.bytes() as usize].copy_from_slice(data);
        Ok(())
    }

    fn check_exact(&self, array: ArrayId, addr: i64) -> Result<usize, ExecError> {
        let v = self.shape.bytes() as i64;
        let base = self.bases[array.index()] as i64;
        let len = (self.lens[array.index()] * self.elem.size() as u64) as i64;
        let guard = (GUARD_CHUNKS as i64) * v;
        if addr < base - guard || addr + v > base + len + guard || addr < 0 {
            return Err(ExecError::ChunkOutOfBounds {
                array,
                addr,
                base: base as u64,
                byte_len: len as u64,
            });
        }
        Ok(addr as usize)
    }

    fn check_chunk(&self, array: ArrayId, addr: i64) -> Result<usize, ExecError> {
        let v = self.shape.bytes() as i64;
        let base = self.bases[array.index()] as i64;
        let len = (self.lens[array.index()] * self.elem.size() as u64) as i64;
        let guard = (GUARD_CHUNKS as i64) * v;
        let chunk = addr & !(v - 1);
        if chunk < base - guard || chunk + v > base + len + guard || chunk < 0 {
            return Err(ExecError::ChunkOutOfBounds {
                array,
                addr,
                base: base as u64,
                byte_len: len as u64,
            });
        }
        Ok(chunk as usize)
    }

    /// The raw image bytes (for whole-image differential comparison).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the raw image bytes, for executors that have
    /// validated their accesses up front (the compiled engine).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// The guarded byte range `[lo, hi)` of `array`: every `V`-byte
    /// chunk access the truncating load/store instructions accept
    /// satisfies `lo ≤ chunk` and `chunk + V ≤ hi`. Lets a compiler
    /// validate a whole access stream once instead of per access.
    pub fn guarded_range(&self, array: ArrayId) -> (i64, i64) {
        let v = self.shape.bytes() as i64;
        let base = self.bases[array.index()] as i64;
        let len = (self.lens[array.index()] * self.elem.size() as u64) as i64;
        let guard = (GUARD_CHUNKS as i64) * v;
        ((base - guard).max(0), base + len + guard)
    }

    /// First byte position at which two images differ, if any.
    pub fn first_difference(&self, other: &MemoryImage) -> Option<usize> {
        self.bytes
            .iter()
            .zip(other.bytes.iter())
            .position(|(a, b)| a != b)
            .or_else(|| {
                if self.bytes.len() != other.bytes.len() {
                    Some(self.bytes.len().min(other.bytes.len()))
                } else {
                    None
                }
            })
    }
}

/// The per-array misalignments `with_seed` derives from `seed`: declared
/// offsets pass through, runtime arrays draw a naturally aligned lane
/// offset from the seed's stream.
fn seeded_offsets(program: &LoopProgram, shape: VectorShape, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::seed_from_u64(seed.wrapping_mul(2).wrapping_add(1));
    let d = program.elem().size() as u64;
    let lanes = (shape.bytes() as u64) / d;
    program
        .arrays()
        .iter()
        .map(|a| match a.align() {
            AlignKind::Known(off) => off % shape.bytes(),
            AlignKind::Runtime => ((rng.next_u64() % lanes) * d) as u32,
        })
        .collect()
}

/// Array placement for one set of misalignments: `(bases, lens, total bytes)`.
fn layout(program: &LoopProgram, shape: VectorShape, offsets: &[u32]) -> (Vec<u64>, Vec<u64>, usize) {
    let v = shape.bytes() as u64;
    let guard = GUARD_CHUNKS * v;
    let d = program.elem().size() as u64;
    let mut bases = Vec::new();
    let mut lens = Vec::new();
    let mut cursor = v; // never place anything at address 0
    for (idx, a) in program.arrays().iter().enumerate() {
        let off = match a.align() {
            AlignKind::Known(o) => (o % shape.bytes()) as u64,
            AlignKind::Runtime => {
                let o = offsets[idx] as u64 % v;
                assert!(
                    o.is_multiple_of(d),
                    "runtime misalignment must be naturally aligned"
                );
                o
            }
        };
        cursor += guard;
        cursor = cursor.div_ceil(v) * v; // align up to V
        let base = cursor + off;
        bases.push(base);
        lens.push(a.len());
        cursor = base + a.byte_len() + guard;
    }
    (bases, lens, (cursor + v) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::{parse_program, Expr, LoopBuilder};

    fn program() -> LoopProgram {
        parse_program(
            "arrays { a: i32[64] @ 12; b: i32[64] @ 4; c: i32[64] @ ?; }
             for i in 0..32 { a[i] = b[i] + c[i]; }",
        )
        .unwrap()
    }

    #[test]
    fn bases_respect_declared_misalignment() {
        let p = program();
        let img = MemoryImage::with_seed(&p, VectorShape::V16, 7);
        assert_eq!(img.base_of(ArrayId::from_index(0)) % 16, 12);
        assert_eq!(img.base_of(ArrayId::from_index(1)) % 16, 4);
        // runtime array: naturally aligned for i32
        assert_eq!(img.base_of(ArrayId::from_index(2)) % 4, 0);
    }

    #[test]
    fn runtime_offsets_vary_with_seed() {
        let p = program();
        let offs: Vec<u64> = (0..16)
            .map(|s| {
                MemoryImage::with_seed(&p, VectorShape::V16, s).base_of(ArrayId::from_index(2)) % 16
            })
            .collect();
        assert!(offs.iter().any(|&o| o != offs[0]));
    }

    #[test]
    fn element_roundtrip_and_bounds() {
        let p = program();
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 1);
        let a = ArrayId::from_index(0);
        img.set(a, 5, Value::from_i64(img.elem(), -77)).unwrap();
        assert_eq!(img.get(a, 5).unwrap().as_i64(), -77);
        assert!(matches!(
            img.get(a, 64),
            Err(ExecError::ElementOutOfBounds { .. })
        ));
    }

    #[test]
    fn chunk_ops_truncate() {
        let p = program();
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 1);
        let b = ArrayId::from_index(1);
        let base = img.base_of(b) as i64;
        // Loads from base, base+1, base+14 all return the same chunk.
        let c0 = img.load_chunk(b, base).unwrap();
        assert_eq!(img.load_chunk(b, base + 1).unwrap(), c0);
        assert_eq!(img.load_chunk(b, base + 11).unwrap(), c0);
        // A store at a misaligned address writes the truncated chunk.
        let data = vec![0xAB; 16];
        img.store_chunk(b, base + 3, &data).unwrap();
        assert_eq!(img.load_chunk(b, base).unwrap(), data);
    }

    #[test]
    fn chunk_guard_limits() {
        let p = program();
        let img = MemoryImage::with_seed(&p, VectorShape::V16, 1);
        let b = ArrayId::from_index(1);
        let base = img.base_of(b) as i64;
        // Within guard: fine. Far before the array: error.
        assert!(img.load_chunk(b, base - 16).is_ok());
        assert!(img.load_chunk(b, base - 64 * 16).is_err());
        assert!(img.load_chunk(b, base + 64 * 4 + 63 * 16).is_err());
    }

    #[test]
    fn differential_helper_spots_changes() {
        let p = program();
        let img1 = MemoryImage::with_seed(&p, VectorShape::V16, 3);
        let mut img2 = img1.clone();
        assert_eq!(img1.first_difference(&img2), None);
        img2.set(ArrayId::from_index(0), 0, Value::from_i64(img2.elem(), 1))
            .unwrap();
        assert!(img1.first_difference(&img2).is_some());
    }

    #[test]
    fn fill_random_is_deterministic() {
        let p = program();
        let mut a = MemoryImage::with_offsets(&p, VectorShape::V16, &[0, 0, 8]);
        let mut b = MemoryImage::with_offsets(&p, VectorShape::V16, &[0, 0, 8]);
        a.fill_random(9);
        b.fill_random(9);
        assert_eq!(a, b);
        b.fill_random(10);
        assert_ne!(a, b);
    }

    #[test]
    fn reseed_matches_with_seed() {
        let p = program();
        // Start from a different seed so bases, lengths and contents all
        // have to change, then reseed in place.
        let mut img = MemoryImage::with_seed(&p, VectorShape::V16, 2);
        for seed in [0u64, 7, 13, 14] {
            img.reseed(&p, VectorShape::V16, seed);
            assert_eq!(img, MemoryImage::with_seed(&p, VectorShape::V16, seed));
        }
    }

    #[test]
    fn copy_from_matches_clone() {
        let p = program();
        let src = MemoryImage::with_seed(&p, VectorShape::V16, 9);
        let mut dst = MemoryImage::with_seed(&p, VectorShape::V16, 2);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn i8_arrays_place_at_any_offset() {
        let mut bld = LoopBuilder::new(simdize_ir::ScalarType::U8);
        let a = bld.array("a", 64, 3);
        let c = bld.array_runtime_align("c", 64);
        bld.stmt(a.at(0), Expr::load(c.at(1)));
        let p = bld.finish(32).unwrap();
        let img = MemoryImage::with_seed(&p, VectorShape::V16, 5);
        assert_eq!(img.base_of(a.id()) % 16, 3);
    }
}
