//! Execution and verification errors.

use simdize_ir::ArrayId;
use std::error::Error;
use std::fmt;

/// A fault raised while executing code on the simulated machine.
///
/// Correct generated programs never raise these; they exist to turn
/// generator bugs into loud test failures instead of silent corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A scalar element access past the end of an array.
    ElementOutOfBounds {
        /// The accessed array.
        array: ArrayId,
        /// The accessed element index.
        index: u64,
        /// The array length.
        len: u64,
    },
    /// A vector chunk access outside an array's guarded region.
    ChunkOutOfBounds {
        /// The accessed array.
        array: ArrayId,
        /// The requested (untruncated) byte address.
        addr: i64,
        /// The array's base byte address.
        base: u64,
        /// The array's length in bytes.
        byte_len: u64,
    },
    /// A `vshiftpair` amount outside `[0, V]`.
    BadShiftAmount {
        /// The evaluated amount.
        amount: i64,
    },
    /// A `vsplice` point outside `[0, V]`.
    BadSplicePoint {
        /// The evaluated point.
        point: i64,
    },
    /// A read of a virtual register that was never written.
    UninitializedRegister {
        /// The register index.
        index: usize,
    },
    /// The run was given fewer parameter values than the loop declares.
    MissingParam {
        /// The parameter index.
        index: usize,
    },
    /// A runtime trip count that drives some reference out of bounds.
    TripTooLarge {
        /// The offending trip count.
        ub: u64,
        /// The offending array.
        array: ArrayId,
    },
    /// The caller supplied a runtime trip count that contradicts the
    /// loop's compile-time one. The compile-time value always wins, so a
    /// disagreement means the caller is verifying against the wrong
    /// scalar run — fail loudly instead.
    TripMismatch {
        /// The loop's compile-time trip count.
        declared: u64,
        /// The trip count the caller supplied.
        supplied: u64,
    },
    /// The program uses a feature this executor does not implement
    /// (e.g. a vector shape the compiled engine has no kernels for).
    Unsupported {
        /// What was unsupported.
        what: &'static str,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ElementOutOfBounds { array, index, len } => {
                write!(f, "element {index} of {array} is out of bounds (len {len})")
            }
            ExecError::ChunkOutOfBounds {
                array,
                addr,
                base,
                byte_len,
            } => write!(
                f,
                "vector access at address {addr} leaves the guarded region of {array} \
                 (base {base}, {byte_len} bytes)"
            ),
            ExecError::BadShiftAmount { amount } => {
                write!(f, "vshiftpair amount {amount} is outside [0, V]")
            }
            ExecError::BadSplicePoint { point } => {
                write!(f, "vsplice point {point} is outside [0, V]")
            }
            ExecError::UninitializedRegister { index } => {
                write!(f, "read of uninitialized vector register v{index}")
            }
            ExecError::MissingParam { index } => {
                write!(f, "no value supplied for loop parameter p{index}")
            }
            ExecError::TripTooLarge { ub, array } => {
                write!(
                    f,
                    "trip count {ub} drives a reference to {array} out of bounds"
                )
            }
            ExecError::TripMismatch { declared, supplied } => {
                write!(
                    f,
                    "supplied trip count {supplied} contradicts the compile-time \
                     trip count {declared}"
                )
            }
            ExecError::Unsupported { what } => {
                write!(f, "unsupported by this executor: {what}")
            }
        }
    }
}

impl Error for ExecError {}

/// A differential verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// One of the two executions faulted.
    Exec(ExecError),
    /// The simdized run produced different memory than the scalar
    /// oracle.
    MemoryMismatch {
        /// First differing byte position in the image.
        first_diff: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Exec(e) => write!(f, "execution fault: {e}"),
            VerifyError::MemoryMismatch { first_diff } => write!(
                f,
                "simdized execution diverges from the scalar oracle at byte {first_diff}"
            ),
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for VerifyError {
    fn from(e: ExecError) -> Self {
        VerifyError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ExecError::BadShiftAmount { amount: 17 };
        assert!(e.to_string().contains("17"));
        let v = VerifyError::from(e);
        assert!(v.source().is_some());
        let m = VerifyError::MemoryMismatch { first_diff: 99 };
        assert!(m.to_string().contains("99"));
    }
}
