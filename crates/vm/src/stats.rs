//! Dynamic instruction counting and the operations-per-datum metric.

use std::fmt;
use std::ops::AddAssign;

/// Cost charged per steady-state iteration for loop control: one
/// counted-loop branch (PowerPC `bdnz` decrements and branches in one
/// instruction). Addressing is assumed to be index-register based and
/// folded into the memory instructions (update forms), matching the
/// tight overheads the paper's production compiler achieves.
pub const LOOP_OVERHEAD_PER_ITERATION: u64 = 1;

/// Cost charged once per loop invocation: function call plus return
/// (the paper's measurements include a single call and return).
pub const CALL_OVERHEAD: u64 = 2;

/// Cost of one hardware *misaligned* vector load or store (the
/// `generate_unaligned` target). Real implementations pay roughly twice
/// an aligned access when the address straddles a boundary (the paper's
/// footnote on SSE2: "incurs additional overhead").
pub const UNALIGNED_MEM_COST: u64 = 2;

/// Cost charged once per *distinct* runtime scalar expression in the
/// program (computing an alignment with `and`, materializing a permute
/// vector or select mask from it). These values are loop invariant and
/// hoisted, so they cost a constant per invocation.
pub const RUNTIME_SETUP_PER_EXPR: u64 = 2;

/// Dynamic instruction counts of one program execution, by class.
///
/// The sum [`RunStats::total`] divided by the number of data elements
/// produced is the paper's OPD metric ([`RunStats::opd`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Aligned vector loads executed.
    pub loads: u64,
    /// Aligned vector stores executed.
    pub stores: u64,
    /// `vshiftpair` (permute) operations executed.
    pub shifts: u64,
    /// `vsplice` (select) operations executed.
    pub splices: u64,
    /// `vsplat` operations executed.
    pub splats: u64,
    /// Lane-wise arithmetic operations executed.
    pub ops: u64,
    /// Register copies executed (loop-carried rotations).
    pub copies: u64,
    /// Loop-control overhead (index updates and branches).
    pub loop_overhead: u64,
    /// Call/return and runtime-setup overhead.
    pub invocation_overhead: u64,
    /// Hardware-misaligned vector loads and stores executed (each
    /// costs [`UNALIGNED_MEM_COST`] in [`RunStats::total`]).
    pub unaligned_mem: u64,
    /// Scalar instructions executed by the `ub ≤ 3B` fallback path
    /// (zero when the simdized path ran).
    pub scalar_fallback: u64,
    /// Steady-state iterations executed (single-body equivalents).
    pub steady_iterations: u64,
    /// Whether the scalar fallback path was taken.
    pub used_fallback: bool,
}

impl RunStats {
    /// Total dynamic cost in instructions.
    pub fn total(&self) -> u64 {
        self.loads
            + self.stores
            + self.shifts
            + self.splices
            + self.splats
            + self.ops
            + self.copies
            + self.loop_overhead
            + self.invocation_overhead
            + self.unaligned_mem * UNALIGNED_MEM_COST
            + self.scalar_fallback
    }

    /// Only the vector data reorganization operations (`vshiftpair` +
    /// `vsplice`) — the middle component of the paper's Figure 11 bars.
    pub fn reorg_ops(&self) -> u64 {
        self.shifts + self.splices
    }

    /// Operations per datum: total cost divided by the number of data
    /// elements the loop produced (`statements × trip count`).
    ///
    /// # Panics
    ///
    /// Panics if `data_produced` is zero.
    pub fn opd(&self, data_produced: u64) -> f64 {
        assert!(data_produced > 0, "opd of an empty run");
        self.total() as f64 / data_produced as f64
    }
}

impl AddAssign for RunStats {
    fn add_assign(&mut self, rhs: RunStats) {
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.shifts += rhs.shifts;
        self.splices += rhs.splices;
        self.splats += rhs.splats;
        self.ops += rhs.ops;
        self.copies += rhs.copies;
        self.unaligned_mem += rhs.unaligned_mem;
        self.loop_overhead += rhs.loop_overhead;
        self.invocation_overhead += rhs.invocation_overhead;
        self.scalar_fallback += rhs.scalar_fallback;
        self.steady_iterations += rhs.steady_iterations;
        self.used_fallback |= rhs.used_fallback;
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} total ({} ld, {} st, {} shift, {} splice, {} splat, {} op, {} copy, \
             {} loop, {} invoke{})",
            self.total(),
            self.loads,
            self.stores,
            self.shifts,
            self.splices,
            self.splats,
            self.ops,
            self.copies,
            self.loop_overhead,
            self.invocation_overhead,
            if self.used_fallback { ", fallback" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_opd() {
        let s = RunStats {
            loads: 10,
            stores: 5,
            shifts: 3,
            ops: 12,
            loop_overhead: 8,
            ..RunStats::default()
        };
        assert_eq!(s.total(), 38);
        assert!((s.opd(19) - 2.0).abs() < 1e-12);
        assert_eq!(s.reorg_ops(), 3);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = RunStats {
            loads: 1,
            used_fallback: false,
            ..RunStats::default()
        };
        a += RunStats {
            loads: 2,
            used_fallback: true,
            ..RunStats::default()
        };
        assert_eq!(a.loads, 3);
        assert!(a.used_fallback);
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn opd_rejects_zero_data() {
        RunStats::default().opd(0);
    }
}
