//! The §5.3 synthesized-loop generator.

use simdize_ir::{ArrayHandle, BinOp, Expr, LoopBuilder, LoopProgram, ScalarType, TripCount};
use simdize_prng::SplitMix64;

/// How the generated loop's trip count is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripSpec {
    /// A fixed compile-time trip count.
    Known(u64),
    /// A compile-time trip count drawn uniformly from the inclusive
    /// range (the paper uses `[997, 1000]`).
    KnownInRange(u64, u64),
    /// A trip count only known at run time.
    Runtime,
}

/// Parameters of one synthesized loop benchmark (paper §5.3).
///
/// Defaults mirror the paper's headline configuration: integer
/// elements, trip count drawn from `[997, 1000]`, bias and reuse 30%,
/// compile-time alignments.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of statements `s`.
    pub statements: usize,
    /// Number of load references per statement `l`.
    pub loads_per_stmt: usize,
    /// Trip count selection `n`.
    pub trip: TripSpec,
    /// Alignment bias `b ∈ [0, 1]`: the probability that a reference's
    /// alignment equals the loop's randomly pre-selected biased
    /// alignment.
    pub bias: f64,
    /// Array reuse `r ∈ [0, 1]` across statements: the probability that
    /// a load reuses an array already loaded by an earlier statement.
    pub reuse: f64,
    /// Element type of every reference.
    pub elem: ScalarType,
    /// Declare array alignments as unknown-until-runtime instead of
    /// compile-time constants (§4.4 evaluation).
    pub runtime_align: bool,
    /// Strides to draw load references from (uniformly). `[1]` keeps the
    /// paper's stride-one precondition; adding 2 or 4 exercises the
    /// strided extension (which needs compile-time alignments and trip
    /// counts).
    pub strides: Vec<u32>,
}

impl WorkloadSpec {
    /// A spec with `statements × loads_per_stmt` shape and the paper's
    /// defaults elsewhere.
    pub fn new(statements: usize, loads_per_stmt: usize) -> WorkloadSpec {
        WorkloadSpec {
            statements,
            loads_per_stmt,
            trip: TripSpec::KnownInRange(997, 1000),
            bias: 0.3,
            reuse: 0.3,
            elem: ScalarType::I32,
            runtime_align: false,
            strides: vec![1],
        }
    }

    /// Sets the alignment bias `b`.
    pub fn bias(mut self, bias: f64) -> WorkloadSpec {
        self.bias = bias;
        self
    }

    /// Sets the reuse ratio `r`.
    pub fn reuse(mut self, reuse: f64) -> WorkloadSpec {
        self.reuse = reuse;
        self
    }

    /// Sets the element type.
    pub fn elem(mut self, elem: ScalarType) -> WorkloadSpec {
        self.elem = elem;
        self
    }

    /// Sets the trip count selection.
    pub fn trip(mut self, trip: TripSpec) -> WorkloadSpec {
        self.trip = trip;
        self
    }

    /// Declares alignments as runtime-only.
    pub fn runtime_align(mut self, on: bool) -> WorkloadSpec {
        self.runtime_align = on;
        self
    }

    /// Sets the stride pool for load references.
    ///
    /// # Panics
    ///
    /// Panics if `strides` is empty or contains 0.
    pub fn strides(mut self, strides: Vec<u32>) -> WorkloadSpec {
        assert!(!strides.is_empty() && strides.iter().all(|&s| s > 0));
        self.strides = strides;
        self
    }

    /// The scheme name used in reports, e.g. `S4*L8`.
    pub fn name(&self) -> String {
        format!("S{}*L{}", self.statements, self.loads_per_stmt)
    }
}

/// Synthesizes one loop from `spec` using `rng` (paper §5.3):
///
/// * every statement sums its `l` loads with `add` ("since all
///   arithmetic operations are essentially the same for alignment
///   handling, we use add as the sole arithmetic operation");
/// * each reference's alignment is random with probability `bias` of
///   equalling one pre-selected alignment;
/// * loads within one statement access distinct arrays; with
///   probability `reuse` a load reuses an array from an earlier
///   statement;
/// * every statement stores to its own array (never loaded).
///
/// # Panics
///
/// Panics if `spec.loads_per_stmt` is 0 or `spec.statements` is 0.
pub fn synthesize(spec: &WorkloadSpec, rng: &mut SplitMix64) -> LoopProgram {
    assert!(spec.statements > 0 && spec.loads_per_stmt > 0);
    let mut builder = LoopBuilder::new(spec.elem);

    let trip = match spec.trip {
        TripSpec::Known(n) => TripCount::Known(n),
        TripSpec::KnownInRange(lo, hi) => TripCount::Known(rng.range_inclusive(lo, hi)),
        TripSpec::Runtime => TripCount::Runtime,
    };
    // Arrays must accommodate the largest trip count plus the largest
    // reference offset (up to 2B−1 elements).
    let max_trip = match spec.trip {
        TripSpec::Known(n) => n,
        TripSpec::KnownInRange(_, hi) => hi,
        TripSpec::Runtime => 4096,
    };
    let d = spec.elem.size() as u64;
    let lanes = 16 / d; // alignments quantized to the V16 lane grid
    let max_stride = *spec.strides.iter().max().expect("non-empty") as u64;
    let len = max_stride * max_trip + 2 * lanes + 8;

    let biased_alignment = rng.range_u64(0, lanes);
    let pick_alignment = |rng: &mut SplitMix64| -> u64 {
        if rng.chance(spec.bias) {
            biased_alignment
        } else {
            rng.range_u64(0, lanes)
        }
    };

    // (handle, history) of arrays loaded by earlier statements,
    // available for reuse.
    let mut reusable: Vec<ArrayHandle> = Vec::new();
    let mut stmts: Vec<(simdize_ir::ArrayRef, Expr)> = Vec::new();

    for s in 0..spec.statements {
        let mut used_here: Vec<ArrayHandle> = Vec::new();
        let mut operands: Vec<Expr> = Vec::new();
        for l in 0..spec.loads_per_stmt {
            let reuse_pool: Vec<ArrayHandle> = reusable
                .iter()
                .copied()
                .filter(|h| !used_here.contains(h))
                .collect();
            let handle = if !reuse_pool.is_empty() && rng.chance(spec.reuse) {
                reuse_pool[rng.index(reuse_pool.len())]
            } else {
                let name = format!("in_{s}_{l}");
                if spec.runtime_align {
                    builder.array_runtime_align(name, len)
                } else {
                    builder.array(name, len, 0)
                }
            };
            used_here.push(handle);
            // The element offset realizes the chosen alignment
            // (alignment · D bytes past a 16-byte boundary), with an
            // extra whole-vector displacement for chunk variety.
            let k = pick_alignment(rng) + lanes * rng.range_u64(0, 2);
            let stride = spec.strides[rng.index(spec.strides.len())];
            operands.push(handle.load_strided(stride, k as i64));
        }
        let rhs = operands
            .into_iter()
            .reduce(|a, b| Expr::binary(BinOp::Add, a, b))
            .expect("at least one load");

        let store_name = format!("out_{s}");
        let store = if spec.runtime_align {
            builder.array_runtime_align(store_name, len)
        } else {
            builder.array(store_name, len, 0)
        };
        let store_k = pick_alignment(rng);
        stmts.push((store.at(store_k as i64), rhs));
        reusable.extend(used_here);
    }

    for (target, rhs) in stmts {
        builder.stmt(target, rhs);
    }
    builder
        .finish_trip(trip)
        .expect("synthesized loops satisfy the preconditions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::VectorShape;

    #[test]
    fn shape_matches_spec() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let p = synthesize(&WorkloadSpec::new(4, 8), &mut rng);
        assert_eq!(p.stmts().len(), 4);
        for s in p.stmts() {
            assert_eq!(s.rhs.loads().len(), 8);
            assert_eq!(s.rhs.op_count(), 7);
        }
        p.validate().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = WorkloadSpec::new(2, 4);
        let a = synthesize(&spec, &mut SplitMix64::seed_from_u64(42));
        let b = synthesize(&spec, &mut SplitMix64::seed_from_u64(42));
        let c = synthesize(&spec, &mut SplitMix64::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bias_one_aligns_everything_together() {
        let spec = WorkloadSpec::new(2, 4).bias(1.0).reuse(0.0);
        let p = synthesize(&spec, &mut SplitMix64::seed_from_u64(9));
        let g = simdize_reorg::ReorgGraph::build(&p, VectorShape::V16).unwrap();
        for s in 0..p.stmts().len() {
            assert_eq!(simdize_reorg::distinct_alignments(&g, s), 1);
        }
    }

    #[test]
    fn reuse_one_shares_arrays_across_statements() {
        let spec = WorkloadSpec::new(4, 4).reuse(1.0);
        let p = synthesize(&spec, &mut SplitMix64::seed_from_u64(5));
        // Statement 0 creates 4 arrays; later statements reuse them, so
        // total arrays = 4 loads + 4 stores = 8.
        assert_eq!(p.arrays().len(), 8);
        let none = synthesize(
            &WorkloadSpec::new(4, 4).reuse(0.0),
            &mut SplitMix64::seed_from_u64(5),
        );
        assert_eq!(none.arrays().len(), 20);
    }

    #[test]
    fn trip_range_and_runtime() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let p = synthesize(
            &WorkloadSpec::new(1, 2).trip(TripSpec::KnownInRange(997, 1000)),
            &mut rng,
        );
        let n = p.trip().known().unwrap();
        assert!((997..=1000).contains(&n));
        let q = synthesize(&WorkloadSpec::new(1, 2).trip(TripSpec::Runtime), &mut rng);
        assert_eq!(q.trip(), simdize_ir::TripCount::Runtime);
    }

    #[test]
    fn runtime_align_marks_arrays() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let p = synthesize(&WorkloadSpec::new(1, 3).runtime_align(true), &mut rng);
        assert!(!p.all_alignments_known());
    }

    #[test]
    fn short_elements_use_eight_lane_grid() {
        let mut rng = SplitMix64::seed_from_u64(8);
        let spec = WorkloadSpec::new(1, 6).elem(ScalarType::I16);
        let p = synthesize(&spec, &mut rng);
        assert_eq!(p.elem(), ScalarType::I16);
        p.validate().unwrap();
    }

    #[test]
    fn names() {
        assert_eq!(WorkloadSpec::new(4, 8).name(), "S4*L8");
    }
}
