//! Realistic multimedia kernels — the workloads the paper's
//! introduction motivates (image processing, signal filtering) — as
//! ready-made loop programs for the examples and integration tests.

use simdize_ir::{
    AlignKind, ArrayDecl, BinOp, Expr, LoopBuilder, LoopProgram, ParamId, ScalarType, UnOp,
};

/// A `taps`-tap FIR filter over 16-bit samples with misaligned input:
/// `out[i] = Σⱼ coeffⱼ · x[i + j]` where the coefficients are runtime
/// scalar parameters.
///
/// Every tap after the first reads the sample stream at a different
/// alignment, which is exactly the access pattern alignment handling
/// exists for.
///
/// Returns the program together with the coefficient parameter ids (in
/// tap order).
///
/// # Panics
///
/// Panics if `taps` is 0 or `n` is 0.
pub fn fir_filter(n: u64, taps: usize) -> (LoopProgram, Vec<ParamId>) {
    assert!(taps > 0 && n > 0);
    let mut b = LoopBuilder::new(ScalarType::I16);
    let out = b.array("out", n + taps as u64 + 16, 0);
    let x = b.array("x", n + taps as u64 + 16, 2); // misaligned input
    let coeffs: Vec<ParamId> = (0..taps).map(|t| b.param(format!("c{t}"))).collect();
    let rhs = coeffs
        .iter()
        .enumerate()
        .map(|(j, &c)| x.load(j as i64) * Expr::param(c))
        .reduce(|a, e| a + e)
        .expect("at least one tap");
    b.stmt(out.at(0), rhs);
    let p = b.finish(n).expect("FIR kernel is simdizable");
    (p, coeffs)
}

/// Integer alpha blending of two 8-bit pixel rows with misaligned
/// sources: `out[i] = src[i+1]·α + dst[i+3]·(256−α)` (truncated to 8
/// bits, as packed multiply-low hardware does).
///
/// Returns the program and the `α` parameter id.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn alpha_blend(n: u64) -> (LoopProgram, ParamId) {
    assert!(n > 0);
    let mut b = LoopBuilder::new(ScalarType::U8);
    let out = b.array("out", n + 32, 0);
    let src = b.array("src", n + 32, 1);
    let dst = b.array("dst", n + 32, 3);
    let alpha = b.param("alpha");
    let inv = b.param("inv_alpha");
    let rhs = src.load(1) * Expr::param(alpha) + dst.load(3) * Expr::param(inv);
    b.stmt(out.at(0), rhs);
    let p = b.finish(n).expect("blend kernel is simdizable");
    (p, alpha)
}

/// A saxpy-style update with offset streams and an array whose
/// alignment is only known at run time:
/// `out[i+1] = x[i+2]·a + y[i]`.
///
/// Returns the program and the scale parameter id.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn offset_saxpy(n: u64) -> (LoopProgram, ParamId) {
    assert!(n > 0);
    let mut b = LoopBuilder::new(ScalarType::I32);
    let out = b.array("out", n + 16, 4);
    let x = b.declare(ArrayDecl::new(
        "x",
        ScalarType::I32,
        n + 16,
        AlignKind::Runtime,
    ));
    let y = b.array("y", n + 16, 8);
    let a = b.param("a");
    b.stmt(out.at(1), x.load(2) * Expr::param(a) + y.load(0));
    let p = b.finish(n).expect("saxpy kernel is simdizable");
    (p, a)
}

/// A dot product with misaligned inputs:
/// `acc[0] += x[i+1] · y[i+2]` — the reduction extension's flagship
/// kernel (§7: scalar accesses in non-address computation).
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn dot_product(n: u64) -> LoopProgram {
    assert!(n > 0);
    let mut b = LoopBuilder::new(ScalarType::I32);
    let acc = b.array("acc", 4, 4);
    let x = b.array("x", n + 16, 4);
    let y = b.array("y", n + 16, 8);
    b.reduce(acc.at(0), BinOp::Add, x.load(1) * y.load(2));
    b.finish(n).expect("dot product is simdizable")
}

/// Sum of absolute differences between two misaligned sample windows —
/// the motion-estimation kernel of video encoders, combining the `abs`
/// lane operation with the reduction extension:
/// `sad[0] += |cur[i+1] − ref[i+3]|`.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn sum_abs_diff(n: u64) -> LoopProgram {
    assert!(n > 0);
    let mut b = LoopBuilder::new(ScalarType::I16);
    let sad = b.array("sad", 8, 0);
    let cur = b.array("cur", n + 16, 2);
    let refw = b.array("refw", n + 16, 6);
    let diff = cur.load(1) - refw.load(3);
    b.reduce(sad.at(0), BinOp::Add, Expr::unary(UnOp::Abs, diff));
    b.finish(n).expect("SAD kernel is simdizable")
}

/// Packed-RGB to grayscale conversion using the strided extension:
/// `gray[i] = r·wr + g·wg + b·wb` where the channels are stride-3…
/// — 3 is not a supported stride, so this kernel uses RGBA (stride 4):
/// `gray[i] = rgba[4i]·wr + rgba[4i+1]·wg + rgba[4i+2]·wb` over 16-bit
/// working precision.
///
/// Returns the program and the three weight parameter ids.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn rgba_to_gray(n: u64) -> (LoopProgram, [ParamId; 3]) {
    assert!(n > 0);
    let mut b = LoopBuilder::new(ScalarType::I16);
    let gray = b.array("gray", n + 16, 0);
    let rgba = b.array("rgba", 4 * n + 32, 2);
    let wr = b.param("wr");
    let wg = b.param("wg");
    let wb = b.param("wb");
    let rhs = rgba.load_strided(4, 0) * Expr::param(wr)
        + rgba.load_strided(4, 1) * Expr::param(wg)
        + rgba.load_strided(4, 2) * Expr::param(wb);
    b.stmt(gray.at(0), rhs);
    let p = b.finish(n).expect("RGBA kernel is simdizable");
    (p, [wr, wg, wb])
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::VectorShape;
    use simdize_reorg::ReorgGraph;

    #[test]
    fn fir_shape() {
        let (p, coeffs) = fir_filter(1000, 5);
        assert_eq!(coeffs.len(), 5);
        assert_eq!(p.stmts()[0].rhs.loads().len(), 5);
        assert_eq!(p.elem(), ScalarType::I16);
        ReorgGraph::build(&p, VectorShape::V16).unwrap();
    }

    #[test]
    fn blend_is_u8_with_three_alignments() {
        let (p, _) = alpha_blend(640);
        assert_eq!(p.elem(), ScalarType::U8);
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        assert_eq!(simdize_reorg::distinct_alignments(&g, 0), 3);
    }

    #[test]
    fn dot_product_is_a_reduction() {
        let p = dot_product(1000);
        assert!(p.stmts()[0].is_reduction());
        ReorgGraph::build(&p, VectorShape::V16).unwrap();
    }

    #[test]
    fn sad_reduces_with_abs() {
        let p = sum_abs_diff(500);
        assert!(p.stmts()[0].is_reduction());
        assert_eq!(p.stmts()[0].rhs.op_count(), 2); // sub + abs
    }

    #[test]
    fn rgba_kernel_is_strided() {
        let (p, weights) = rgba_to_gray(640);
        assert_eq!(weights.len(), 3);
        assert!(p.stmts()[0].rhs.loads().iter().all(|r| r.stride == 4));
    }

    #[test]
    fn saxpy_has_runtime_alignment() {
        let (p, _) = offset_saxpy(512);
        assert!(!p.all_alignments_known());
    }
}
