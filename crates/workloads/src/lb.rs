//! The analytic operations-per-datum lower bound of paper §5.3.

use simdize_ir::{AlignKind, LoopProgram, VectorShape};
use simdize_reorg::{distinct_alignments, Offset, Policy, ReorgGraph};
use std::collections::HashSet;

/// The lower bound on operations per datum for simdizing `program`
/// under `policy` (paper §5.3). Accounts, per simdized iteration, for:
///
/// * one vector load per *distinct* 16-byte-aligned static load (two
///   loads that provably map to the same aligned chunk count once —
///   footnote 3) and one vector store per statement;
/// * the minimum number of data reorganization operations: for the
///   zero-shift policy, exactly one `vshiftpair` per misaligned stream
///   (its shift count is fully deterministic); for the other policies,
///   `n − 1` per statement for `n` distinct alignments among the
///   statement's loads and store;
/// * the loop's data computations (one vector op per scalar op);
///
/// and excludes all architecture- and compiler-dependent overhead
/// (address computation, constant generation, loop control).
///
/// # Panics
///
/// Panics if the element does not fit `shape` (the pipeline rejects
/// such programs before this point).
pub fn lower_bound_opd(program: &LoopProgram, shape: VectorShape, policy: Policy) -> f64 {
    lower_bound_parts(program, shape, policy).opd()
}

/// The components of the §5.3 lower bound, per simdized iteration.
///
/// Exposed so the evaluation harness can reproduce the paper's Figure
/// 11/12 bar breakdown (bound / reorganization overhead / other
/// overhead) component by component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerBound {
    /// Distinct 16-byte-aligned loads per iteration (footnote 3).
    pub loads: usize,
    /// Vector stores per iteration (one per statement).
    pub stores: usize,
    /// Minimum data reorganization operations per iteration.
    pub shifts: usize,
    /// Vector data computations per iteration.
    pub ops: usize,
    /// Blocking factor `B`.
    pub block: u32,
    /// Statements per loop.
    pub statements: usize,
}

impl LowerBound {
    /// Data elements produced per simdized iteration.
    pub fn data_per_iteration(&self) -> f64 {
        self.block as f64 * self.statements as f64
    }

    /// The bound in operations per datum.
    pub fn opd(&self) -> f64 {
        (self.loads + self.stores + self.shifts + self.ops) as f64 / self.data_per_iteration()
    }

    /// Just the reorganization component in operations per datum.
    pub fn shift_opd(&self) -> f64 {
        self.shifts as f64 / self.data_per_iteration()
    }
}

/// Computes the components of [`lower_bound_opd`].
///
/// # Panics
///
/// Panics if the element does not fit `shape`.
pub fn lower_bound_parts(program: &LoopProgram, shape: VectorShape, policy: Policy) -> LowerBound {
    let graph = ReorgGraph::build(program, shape).expect("element fits the vector register");
    let d = program.elem().size() as i64;
    let v = shape.bytes() as i64;

    // Distinct chunk loads across the whole loop (cross-statement reuse
    // included — the generator's CSE achieves exactly this).
    let mut chunks: HashSet<(usize, i64)> = HashSet::new();
    // Distinct misaligned (array, offset) load streams, for the
    // zero-shift count.
    let mut misaligned_streams: HashSet<(usize, i64)> = HashSet::new();

    for stmt in program.stmts() {
        stmt.rhs.visit_loads(&mut |r| {
            let key = match program.array(r.array).align() {
                AlignKind::Known(beta) => {
                    let beta = (beta % shape.bytes()) as i64;
                    (r.array.index(), (beta + r.offset * d).div_euclid(v))
                }
                AlignKind::Runtime => (r.array.index(), r.offset),
            };
            chunks.insert(key);
            let off = Offset::of_ref(r, program, shape);
            if off != Offset::Byte(0) {
                misaligned_streams.insert((r.array.index(), r.offset));
            }
        });
    }

    let stores = program.stmts().len();
    let ops: usize = program.stmts().iter().map(|s| s.rhs.op_count()).sum();

    let shifts: usize = match policy {
        Policy::Zero => {
            let misaligned_stores = program
                .stmts()
                .iter()
                .filter(|s| Offset::of_ref(s.target, program, shape) != Offset::Byte(0))
                .count();
            misaligned_streams.len() + misaligned_stores
        }
        _ => (0..program.stmts().len())
            .map(|s| distinct_alignments(&graph, s).saturating_sub(1))
            .sum(),
    };

    LowerBound {
        loads: chunks.len(),
        stores,
        shifts,
        ops,
        block: shape.blocking_factor(program.elem()),
        statements: program.stmts().len(),
    }
}

/// The analytic bound for a machine with hardware *misaligned* vector
/// memory (the `generate_unaligned` target): one unaligned load per
/// distinct static reference and one unaligned store per statement —
/// each costing `unaligned_cost` (2 on SSE2-class hardware) — plus the
/// data computations. No reorganization operations exist on this
/// target.
pub fn lower_bound_opd_unaligned(
    program: &LoopProgram,
    shape: VectorShape,
    unaligned_cost: u64,
) -> f64 {
    let b = shape.blocking_factor(program.elem()) as f64;
    let stores = program.stmts().len();
    let mut refs: HashSet<(usize, i64)> = HashSet::new();
    for stmt in program.stmts() {
        stmt.rhs.visit_loads(&mut |r| {
            refs.insert((r.array.index(), r.offset));
        });
    }
    let ops: usize = program.stmts().iter().map(|s| s.rhs.op_count()).sum();
    let mem = (refs.len() + stores) as u64 * unaligned_cost;
    (mem as f64 + ops as f64) / (b * stores as f64)
}

/// A *CSE-aware* refinement of [`lower_bound_opd`]: the minimum
/// operations per datum achievable by ideal code generation including
/// **cross-statement** common subexpression elimination.
///
/// The paper's per-statement shift bound (`n − 1` per statement) can be
/// beaten when statements share arrays (`r > 0`): two statements
/// shifting the *same* stream to the *same* offset need only one
/// `vshiftpair`, and identical subexpressions need only one `vop`. This
/// bound value-numbers the policy-placed graph globally and counts
/// distinct loads (chunk-level), shifts and operations — it is a true
/// floor for this crate's generated code, used as the test-suite
/// assertion; the figures report the paper's formula for comparability.
///
/// # Panics
///
/// Panics if the element does not fit `shape`, or if `policy` does not
/// apply to `program` (e.g. a non-zero policy with runtime alignments).
pub fn lower_bound_opd_cse(program: &LoopProgram, shape: VectorShape, policy: Policy) -> f64 {
    let graph = ReorgGraph::build(program, shape)
        .expect("element fits the vector register")
        .with_policy(policy)
        .expect("policy applies to this program");
    let b = shape.blocking_factor(program.elem()) as f64;
    let stores = program.stmts().len();

    let mut loads: HashSet<String> = HashSet::new();
    let mut shifts: HashSet<String> = HashSet::new();
    let mut ops: HashSet<String> = HashSet::new();
    for &root in graph.roots() {
        signature(
            &graph,
            root,
            program,
            shape,
            &mut loads,
            &mut shifts,
            &mut ops,
        );
    }

    let per_iteration = loads.len() + stores + shifts.len() + ops.len();
    per_iteration as f64 / (b * stores as f64)
}

/// Canonical value signature of a placed-graph node, recording each
/// distinct load / shift / op along the way.
fn signature(
    graph: &ReorgGraph,
    node: simdize_reorg::NodeId,
    program: &LoopProgram,
    shape: VectorShape,
    loads: &mut HashSet<String>,
    shifts: &mut HashSet<String>,
    ops: &mut HashSet<String>,
) -> String {
    use simdize_reorg::RNode;
    match graph.node(node) {
        RNode::Load { r } => {
            let d = program.elem().size() as i64;
            let v = shape.bytes() as i64;
            let key = match program.array(r.array).align() {
                simdize_ir::AlignKind::Known(beta) => {
                    let beta = (beta % shape.bytes()) as i64;
                    format!(
                        "ld({},{})",
                        r.array.index(),
                        (beta + r.offset * d).div_euclid(v)
                    )
                }
                simdize_ir::AlignKind::Runtime => format!("ldrt({},{})", r.array.index(), r.offset),
            };
            loads.insert(key.clone());
            key
        }
        RNode::Splat { inv } => format!("sp({inv})"),
        RNode::Op { kind, srcs } => {
            let mut child: Vec<String> = srcs
                .iter()
                .map(|&s| signature(graph, s, program, shape, loads, shifts, ops))
                .collect();
            if let simdize_reorg::VOpKind::Bin(op) = kind {
                if op.is_reassociable() {
                    child.sort();
                }
            }
            let key = format!("op({kind},{})", child.join(","));
            ops.insert(key.clone());
            key
        }
        RNode::ShiftStream { src, to } => {
            let inner = signature(graph, *src, program, shape, loads, shifts, ops);
            let key = format!("sh({inner},{to})");
            shifts.insert(key.clone());
            key
        }
        RNode::Store { src, .. } => signature(graph, *src, program, shape, loads, shifts, ops),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::parse_program;

    #[test]
    fn naive_bound_for_aligned_loop() {
        // 6 loads + 5 adds + 1 store, all aligned: 12 ops per 4 data = 3.
        let p = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 0; c: i32[64] @ 0; d: i32[64] @ 0;
                      e: i32[64] @ 0; f: i32[64] @ 0; g: i32[64] @ 0; }
             for i in 0..32 { a[i] = b[i] + c[i] + d[i] + e[i] + f[i] + g[i]; }",
        )
        .unwrap();
        for policy in Policy::ALL {
            assert!((lower_bound_opd(&p, VectorShape::V16, policy) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_example_bounds() {
        // Figure 1: loads at 4 and 8, store at 12.
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
             for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
        )
        .unwrap();
        // zero: 2 loads + 1 store + 3 shifts + 1 add = 7 / 4.
        assert!((lower_bound_opd(&p, VectorShape::V16, Policy::Zero) - 7.0 / 4.0).abs() < 1e-12);
        // lazy: n = 3 distinct alignments → 2 shifts → 6 / 4.
        assert!((lower_bound_opd(&p, VectorShape::V16, Policy::Lazy) - 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn chunk_dedup_counts_once() {
        // b[i] and b[i+1] share every chunk: one load, not two.
        let p = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 0; }
             for i in 0..32 { a[i] = b[i] + b[i+1]; }",
        )
        .unwrap();
        // 1 chunk-load + 1 store + 1 shift (b[i+1] misaligned; lazy:
        // alignments {0, 4, 0} → n−1 = 1) + 1 add = 4 / 4.
        assert!((lower_bound_opd(&p, VectorShape::V16, Policy::Lazy) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_shift_counts_misaligned_streams() {
        let p = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 0; c: i32[64] @ 0; }
             for i in 0..32 { a[i] = b[i+1] + c[i]; }",
        )
        .unwrap();
        // zero: 2 loads + 1 store + 1 shift (only b misaligned) + 1 add.
        assert!((lower_bound_opd(&p, VectorShape::V16, Policy::Zero) - 5.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn shorter_elements_lower_the_bound() {
        let int = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 0; }
             for i in 0..32 { a[i] = b[i]; }",
        )
        .unwrap();
        let short = parse_program(
            "arrays { a: i16[64] @ 0; b: i16[64] @ 0; }
             for i in 0..32 { a[i] = b[i]; }",
        )
        .unwrap();
        let li = lower_bound_opd(&int, VectorShape::V16, Policy::Lazy);
        let ls = lower_bound_opd(&short, VectorShape::V16, Policy::Lazy);
        assert!(ls < li);
    }
}
