//! Aggregation helpers for benchmark reporting.

/// The harmonic mean of a sequence of positive values — the aggregation
/// the paper uses over each 50-loop benchmark ("the results are
/// reported as the harmonic means over all 50 loops").
///
/// Returns `None` for an empty sequence or when any value is
/// non-positive.
///
/// # Example
///
/// ```
/// use simdize_workloads::harmonic_mean;
/// let hm = harmonic_mean([2.0, 6.0]).unwrap();
/// assert!((hm - 3.0).abs() < 1e-12);
/// assert!(harmonic_mean(std::iter::empty()).is_none());
/// ```
pub fn harmonic_mean(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut count = 0usize;
    let mut recip_sum = 0.0;
    for v in values {
        if v <= 0.0 {
            return None;
        }
        count += 1;
        recip_sum += 1.0 / v;
    }
    if count == 0 {
        None
    } else {
        Some(count as f64 / recip_sum)
    }
}

/// Running summary of a metric over a benchmark's loops: harmonic mean
/// plus extremes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Records one loop's value.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Harmonic mean of the recorded values.
    pub fn harmonic_mean(&self) -> Option<f64> {
        harmonic_mean(self.values.iter().copied())
    }

    /// Arithmetic mean of the recorded values.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Smallest recorded value.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Largest recorded value.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Summary {
        Summary {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean([4.0]), Some(4.0));
        assert!(harmonic_mean([1.0, 0.0]).is_none());
        assert!(harmonic_mean([1.0, -2.0]).is_none());
        let hm = harmonic_mean([1.0, 2.0, 4.0]).unwrap();
        assert!((hm - 3.0 / (1.0 + 0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn summary_aggregates() {
        let s: Summary = [2.0, 6.0, 3.0].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
        assert!((s.mean().unwrap() - 11.0 / 3.0).abs() < 1e-12);
        assert!(s.harmonic_mean().unwrap() < s.mean().unwrap());
        let mut t = Summary::new();
        t.extend([1.0, 2.0]);
        assert_eq!(t.len(), 2);
    }
}
