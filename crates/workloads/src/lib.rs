//! Synthesized loop benchmarks and the analytic lower-bound model of
//! paper §5.3, plus a small library of realistic multimedia kernels.
//!
//! The paper evaluates its simdization scheme on loops synthesized from
//! five parameters: `s` statements per loop, `l` loads per statement,
//! trip count `n`, an alignment *bias* `b` (the probability that a
//! reference's alignment equals one randomly pre-selected value) and an
//! array *reuse* ratio `r` across statements. [`WorkloadSpec`] captures
//! those parameters and [`synthesize`] produces matching
//! [`simdize_ir::LoopProgram`]s from a seeded RNG.
//!
//! [`lower_bound_opd`] implements §5.3's lower bound: one operation per
//! distinct 16-byte-aligned load and store in the loop, the minimum
//! number of `vshiftpair`s per statement (`n − 1` for `n` distinct
//! alignments; one per misaligned stream under the zero-shift policy),
//! and the loop's data computations — everything else (address
//! computation, loop overhead) is excluded by construction.
//!
//! # Example
//!
//! ```
//! use simdize_workloads::{synthesize, WorkloadSpec};
//! use simdize_prng::SplitMix64;
//!
//! let spec = WorkloadSpec::new(1, 6).bias(0.3).reuse(0.3);
//! let mut rng = SplitMix64::seed_from_u64(7);
//! let p = synthesize(&spec, &mut rng);
//! assert_eq!(p.stmts().len(), 1);
//! assert_eq!(p.stmts()[0].rhs.loads().len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod kernels;
mod lb;
mod summary;

pub use gen::{synthesize, TripSpec, WorkloadSpec};
pub use kernels::{alpha_blend, dot_product, fir_filter, offset_saxpy, rgba_to_gray, sum_abs_diff};
pub use lb::{
    lower_bound_opd, lower_bound_opd_cse, lower_bound_opd_unaligned, lower_bound_parts, LowerBound,
};
pub use summary::{harmonic_mean, Summary};
