//! Loop intermediate representation for the `simdize` workspace.
//!
//! This crate defines the *input language* of the simdization pipeline: the
//! class of loops that Eichenberger, Wu and O'Brien's PLDI 2004 algorithm
//! ("Vectorization for SIMD Architectures with Alignment Constraints")
//! assumes as its precondition (paper §4.1):
//!
//! * an innermost, normalized counted loop `for i in 0..ub`;
//! * every memory reference is either loop invariant or a **stride-one**
//!   array reference `a[i + k]`;
//! * array base addresses are *naturally aligned* to the element length;
//! * the loop counter appears only in address computations;
//! * all memory references access data of one uniform length `D`.
//!
//! The IR is deliberately small: [`LoopProgram`] owns a table of
//! [`ArrayDecl`]s (each with a compile-time-known or runtime base
//! alignment), a table of loop-invariant [`ParamDecl`]s, and a list of
//! [`Stmt`]s of the form `a[i+k] = expr` where `expr` is a tree of
//! element-wise operations over stride-one loads and invariants.
//!
//! # Example
//!
//! Build the paper's running example `a[i+3] = b[i+1] + c[i+2]` (Figure 1):
//!
//! ```
//! use simdize_ir::{LoopBuilder, ScalarType, Expr};
//!
//! let mut b = LoopBuilder::new(ScalarType::I32);
//! let a = b.array("a", 128, 0);   // base aligned to the 16-byte boundary
//! let bb = b.array("b", 128, 0);
//! let c = b.array("c", 128, 0);
//! b.stmt(a.at(3), Expr::load(bb.at(1)) + Expr::load(c.at(2)));
//! let program = b.finish(100).expect("valid loop");
//! assert_eq!(program.stmts().len(), 1);
//! ```
//!
//! The same loop can also be written in the crate's textual syntax and
//! parsed with [`parse_program`]:
//!
//! ```
//! # use simdize_ir::parse_program;
//! let src = "
//!     arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
//!     for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }
//! ";
//! let program = parse_program(src).unwrap();
//! assert_eq!(program.arrays().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod builder;
mod error;
mod expr;
mod parser;
mod program;
mod stmt;
mod types;
mod value;

pub use array::{AlignKind, ArrayDecl, ArrayId, ArrayRef};
pub use builder::{ArrayHandle, LoopBuilder};
pub use error::ValidateLoopError;
pub use expr::{BinOp, Expr, Invariant, UnOp};
pub use parser::{parse_program, ParseProgramError};
pub use program::{LoopProgram, ParamDecl, ParamId, TripCount};
pub use stmt::Stmt;
pub use types::{ScalarType, VectorShape};
pub use value::Value;
