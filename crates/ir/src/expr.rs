//! Element-wise expression trees.

use crate::array::ArrayRef;
use crate::program::ParamId;
use crate::value::Value;
use std::fmt;
use std::ops;

/// Binary element-wise operations.
///
/// All operate lane-wise with wrapping semantics (see [`Value`]). `Add`
/// and `Mul` are the associative/commutative operations exploited by the
/// common-offset reassociation optimization (§5.5 "OffsetReassoc").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low half).
    Mul,
    /// Lane minimum (signedness-aware).
    Min,
    /// Lane maximum (signedness-aware).
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
}

impl BinOp {
    /// Whether the operation is associative and commutative, enabling
    /// common-offset reassociation.
    pub fn is_reassociable(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Applies the operation to two lane values.
    pub fn apply(self, a: Value, b: Value) -> Value {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Min => a.min_lane(b),
            BinOp::Max => a.max_lane(b),
            BinOp::And => a.and(b),
            BinOp::Or => a.or(b),
            BinOp::Xor => a.xor(b),
        }
    }

    /// The operator's textual symbol (used by the printer and parser).
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary element-wise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Wrapping negation.
    Neg,
    /// Bitwise NOT.
    Not,
    /// Wrapping absolute value.
    Abs,
}

impl UnOp {
    /// Applies the operation to a lane value.
    pub fn apply(self, a: Value) -> Value {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => a.not(),
            UnOp::Abs => a.wrapping_abs(),
        }
    }

    /// The operator's textual name.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "~",
            UnOp::Abs => "abs",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A loop-invariant scalar operand.
///
/// Invariants become `vsplat` nodes in the data reorganization graph;
/// their stream offset is ⊥ ("any") since every lane holds the same value
/// (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// A compile-time constant (wrapped to the loop's element type).
    Const(i64),
    /// A runtime scalar parameter of the program.
    Param(ParamId),
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Invariant::Const(c) => write!(f, "{c}"),
            Invariant::Param(p) => write!(f, "{p}"),
        }
    }
}

/// An element-wise expression over stride-one loads and invariants.
///
/// Expressions are uniform in type: every load and the result have the
/// loop's single element type (paper §4.1 — "no conversion between data
/// of different lengths").
///
/// # Example
///
/// ```
/// use simdize_ir::{ArrayId, ArrayRef, Expr};
/// let b = ArrayRef::new(ArrayId::from_index(0), 1);
/// let c = ArrayRef::new(ArrayId::from_index(1), 2);
/// let e = Expr::load(b) + Expr::load(c);
/// assert_eq!(e.loads().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A stride-one load `array[i + k]`.
    Load(ArrayRef),
    /// A loop-invariant scalar, replicated across lanes.
    Splat(Invariant),
    /// A binary element-wise operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A unary element-wise operation.
    Unary(UnOp, Box<Expr>),
}

impl Expr {
    /// A load expression `r.array[i + r.offset]`.
    pub fn load(r: ArrayRef) -> Expr {
        Expr::Load(r)
    }

    /// A splat of a compile-time constant.
    pub fn constant(c: i64) -> Expr {
        Expr::Splat(Invariant::Const(c))
    }

    /// A splat of a runtime parameter.
    pub fn param(p: ParamId) -> Expr {
        Expr::Splat(Invariant::Param(p))
    }

    /// A binary operation node.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// A unary operation node.
    pub fn unary(op: UnOp, operand: Expr) -> Expr {
        Expr::Unary(op, Box::new(operand))
    }

    /// Lane minimum of two expressions.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Min, self, rhs)
    }

    /// Lane maximum of two expressions.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Max, self, rhs)
    }

    /// All array references loaded by this expression, in left-to-right
    /// order (duplicates preserved).
    pub fn loads(&self) -> Vec<ArrayRef> {
        let mut out = Vec::new();
        self.visit_loads(&mut |r| out.push(r));
        out
    }

    /// Calls `f` on every load in the expression, left-to-right.
    pub fn visit_loads(&self, f: &mut impl FnMut(ArrayRef)) {
        match self {
            Expr::Load(r) => f(*r),
            Expr::Splat(_) => {}
            Expr::Binary(_, a, b) => {
                a.visit_loads(f);
                b.visit_loads(f);
            }
            Expr::Unary(_, a) => a.visit_loads(f),
        }
    }

    /// Number of arithmetic operation nodes (binary + unary) in the tree.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Load(_) | Expr::Splat(_) => 0,
            Expr::Binary(_, a, b) => 1 + a.op_count() + b.op_count(),
            Expr::Unary(_, a) => 1 + a.op_count(),
        }
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Load(_) | Expr::Splat(_) => 1,
            Expr::Binary(_, a, b) => 1 + a.node_count() + b.node_count(),
            Expr::Unary(_, a) => 1 + a.node_count(),
        }
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Add, self, rhs)
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Sub, self, rhs)
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Mul, self, rhs)
    }
}

impl ops::BitAnd for Expr {
    type Output = Expr;
    fn bitand(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::And, self, rhs)
    }
}

impl ops::BitOr for Expr {
    type Output = Expr;
    fn bitor(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Or, self, rhs)
    }
}

impl ops::BitXor for Expr {
    type Output = Expr;
    fn bitxor(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Xor, self, rhs)
    }
}

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::unary(UnOp::Neg, self)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Load(r) => write!(f, "{r}"),
            Expr::Splat(inv) => write!(f, "{inv}"),
            Expr::Binary(op, a, b) => match op {
                BinOp::Min | BinOp::Max => write!(f, "{op}({a}, {b})"),
                _ => write!(f, "({a} {op} {b})"),
            },
            Expr::Unary(op, a) => match op {
                UnOp::Abs => write!(f, "abs({a})"),
                _ => write!(f, "{op}({a})"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayId;
    use crate::types::ScalarType;

    fn r(id: u32, off: i64) -> ArrayRef {
        ArrayRef::new(ArrayId(id), off)
    }

    #[test]
    fn operator_sugar_builds_trees() {
        let e = Expr::load(r(0, 1)) + Expr::load(r(1, 2)) * Expr::constant(3);
        assert_eq!(e.op_count(), 2);
        assert_eq!(e.loads(), vec![r(0, 1), r(1, 2)]);
        assert_eq!(e.to_string(), "(arr0[i+1] + (arr1[i+2] * 3))");
    }

    #[test]
    fn unary_ops_display() {
        let e = -Expr::load(r(0, 0));
        assert_eq!(e.to_string(), "-(arr0[i])");
        let a = Expr::unary(UnOp::Abs, Expr::load(r(0, 0)));
        assert_eq!(a.to_string(), "abs(arr0[i])");
        assert_eq!(a.op_count(), 1);
        assert_eq!(a.node_count(), 2);
    }

    #[test]
    fn binop_apply_matches_value_semantics() {
        let a = Value::from_i64(ScalarType::I32, 7);
        let b = Value::from_i64(ScalarType::I32, -3);
        assert_eq!(BinOp::Add.apply(a, b).as_i64(), 4);
        assert_eq!(BinOp::Sub.apply(a, b).as_i64(), 10);
        assert_eq!(BinOp::Mul.apply(a, b).as_i64(), -21);
        assert_eq!(BinOp::Min.apply(a, b).as_i64(), -3);
        assert_eq!(BinOp::Max.apply(a, b).as_i64(), 7);
        assert_eq!(UnOp::Neg.apply(a).as_i64(), -7);
        assert_eq!(UnOp::Abs.apply(b).as_i64(), 3);
    }

    #[test]
    fn reassociable_classification() {
        assert!(BinOp::Add.is_reassociable());
        assert!(BinOp::Mul.is_reassociable());
        assert!(!BinOp::Sub.is_reassociable());
    }

    #[test]
    fn min_max_sugar() {
        let e = Expr::load(r(0, 0)).min(Expr::load(r(1, 0)));
        assert_eq!(e.to_string(), "min(arr0[i], arr1[i])");
    }
}
