//! Loop-body statements.

use crate::array::ArrayRef;
use crate::expr::{BinOp, Expr};
use std::fmt;

/// One loop-body statement.
///
/// * Without `reduction`: `target.array[stride·i + offset] = rhs` — a
///   stride-one (or strided) store of an element-wise expression; the
///   store reference's alignment drives the prologue/epilogue splice
///   points of the code generator (paper §4.2).
/// * With `reduction = Some(op)`: the statement is the reduction
///   `target.array[offset] = fold(op, target.array[offset], rhs(i) for
///   all i)` — the single array element accumulates every iteration's
///   value (`+=`-style). This is the §7 extension for scalar accesses
///   in non-address computation; `op` must be associative and
///   commutative so the vector accumulator may reassociate freely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// The store target (for reductions, the fixed accumulated element
    /// `target.array[target.offset]`; the stride is ignored).
    pub target: ArrayRef,
    /// The value stored (or accumulated) each iteration.
    pub rhs: Expr,
    /// `Some(op)` makes this a reduction statement.
    pub reduction: Option<BinOp>,
}

impl Stmt {
    /// Creates the statement `target = rhs`.
    pub fn new(target: ArrayRef, rhs: Expr) -> Stmt {
        Stmt {
            target,
            rhs,
            reduction: None,
        }
    }

    /// Creates the reduction statement `target op= rhs` folded over the
    /// whole iteration space.
    pub fn reduce(target: ArrayRef, op: BinOp, rhs: Expr) -> Stmt {
        Stmt {
            target,
            rhs,
            reduction: Some(op),
        }
    }

    /// Whether this statement is a reduction.
    pub fn is_reduction(&self) -> bool {
        self.reduction.is_some()
    }

    /// All array references touched by the statement: the loads of `rhs`
    /// followed by the store target.
    pub fn refs(&self) -> Vec<ArrayRef> {
        let mut out = self.rhs.loads();
        out.push(self.target);
        out
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reduction {
            Some(op) => write!(f, "{} {op}= {};", self.target, self.rhs),
            None => write!(f, "{} = {};", self.target, self.rhs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayId;

    #[test]
    fn refs_include_store_last() {
        let s = Stmt::new(
            ArrayRef::new(ArrayId::from_index(0), 3),
            Expr::load(ArrayRef::new(ArrayId::from_index(1), 1))
                + Expr::load(ArrayRef::new(ArrayId::from_index(2), 2)),
        );
        let refs = s.refs();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[2].array.index(), 0);
        assert_eq!(s.to_string(), "arr0[i+3] = (arr1[i+1] + arr2[i+2]);");
    }
}
