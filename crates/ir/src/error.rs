//! Validation errors for loop programs.

use crate::array::ArrayId;
use crate::program::ParamId;
use crate::types::ScalarType;
use std::error::Error;
use std::fmt;

/// A violation of the simdizable-loop preconditions (paper §4.1) or of
/// this IR's statement-independence requirements.
///
/// Returned by [`crate::LoopProgram::new`], [`crate::LoopProgram::validate`]
/// and [`crate::LoopBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateLoopError {
    /// The loop body has no statements.
    EmptyBody,
    /// The trip count is the compile-time constant 0.
    ZeroTripCount,
    /// An array's element type differs from the loop's uniform type.
    MixedElementTypes {
        /// Offending array name.
        array: String,
        /// The loop's uniform element type.
        expected: ScalarType,
        /// The array's declared element type.
        found: ScalarType,
    },
    /// Two statements store to the same array.
    DuplicateStore {
        /// Offending array name.
        array: String,
    },
    /// An array is both stored and loaded in the loop.
    StoreLoadOverlap {
        /// Offending array name.
        array: String,
    },
    /// A reference names an array id outside the program's table.
    UnknownArray {
        /// The dangling id.
        id: ArrayId,
    },
    /// A splat names a parameter id outside the program's table.
    UnknownParam {
        /// The dangling id.
        id: ParamId,
    },
    /// A reduction uses an operation that is not associative and
    /// commutative, so a vector accumulator could not reassociate it.
    NonReassociableReduction {
        /// The rejected operation.
        op: crate::BinOp,
    },
    /// A reference offset is negative (`a[i - k]` would underflow at
    /// `i = 0`).
    NegativeOffset {
        /// Offending array name.
        array: String,
        /// The negative element offset.
        offset: i64,
    },
    /// A reference runs past the end of its array over the iteration
    /// space.
    OutOfBounds {
        /// Offending array name.
        array: String,
        /// The reference's element offset.
        offset: i64,
        /// The loop trip count.
        trip: u64,
        /// The array length in elements.
        len: u64,
    },
}

impl fmt::Display for ValidateLoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateLoopError::EmptyBody => f.write_str("loop body has no statements"),
            ValidateLoopError::ZeroTripCount => f.write_str("loop trip count is zero"),
            ValidateLoopError::MixedElementTypes {
                array,
                expected,
                found,
            } => write!(
                f,
                "array `{array}` has element type {found}, but the loop uses {expected} \
                 (references must access data of one uniform length)"
            ),
            ValidateLoopError::DuplicateStore { array } => {
                write!(f, "two statements store to array `{array}`")
            }
            ValidateLoopError::StoreLoadOverlap { array } => write!(
                f,
                "array `{array}` is both stored and loaded; the loop may carry a dependence"
            ),
            ValidateLoopError::UnknownArray { id } => {
                write!(f, "reference to undeclared array {id}")
            }
            ValidateLoopError::UnknownParam { id } => {
                write!(f, "reference to undeclared parameter {id}")
            }
            ValidateLoopError::NonReassociableReduction { op } => write!(
                f,
                "`{op}` is not associative and commutative; reductions cannot use it"
            ),
            ValidateLoopError::NegativeOffset { array, offset } => write!(
                f,
                "reference `{array}[i{offset}]` reads before the array at i = 0"
            ),
            ValidateLoopError::OutOfBounds {
                array,
                offset,
                trip,
                len,
            } => write!(
                f,
                "reference `{array}[i+{offset}]` reaches element {} over {trip} iterations, \
                 but the array has {len} elements",
                trip - 1 + *offset as u64
            ),
        }
    }
}

impl Error for ValidateLoopError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = ValidateLoopError::OutOfBounds {
            array: "a".into(),
            offset: 5,
            trip: 100,
            len: 100,
        };
        let msg = e.to_string();
        assert!(msg.contains("a[i+5]"));
        assert!(msg.contains("104"));
        assert!(msg.starts_with(char::is_lowercase));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&ValidateLoopError::EmptyBody);
    }
}
