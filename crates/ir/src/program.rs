//! The top-level loop program: arrays, parameters, trip count, statements.

use crate::array::{ArrayDecl, ArrayId, ArrayRef};
use crate::error::ValidateLoopError;
use crate::expr::{Expr, Invariant};
use crate::stmt::Stmt;
use crate::types::ScalarType;
use std::collections::HashSet;
use std::fmt;

/// Identifier of a loop-invariant scalar parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(pub(crate) u32);

impl ParamId {
    /// The index of this parameter in the program's parameter table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id referring to the parameter at `index`; low-level
    /// escape hatch mirroring [`ArrayId::from_index`].
    ///
    /// [`ArrayId::from_index`]: crate::ArrayId::from_index
    pub fn from_index(index: usize) -> ParamId {
        ParamId(index as u32)
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Declaration of a loop-invariant runtime scalar parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDecl {
    name: String,
}

impl ParamDecl {
    /// Creates a parameter declaration with the given source name.
    pub fn new(name: impl Into<String>) -> ParamDecl {
        ParamDecl { name: name.into() }
    }

    /// The parameter's source-level name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The loop's trip count `ub`, known at compile time or not.
///
/// Unknown trip counts force the runtime upper-bound formulas (paper
/// eqs. 15–16) and the `ub > 3B` guard of §4.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TripCount {
    /// `ub` is a compile-time constant.
    Known(u64),
    /// `ub` is only available at run time (supplied when the loop runs).
    Runtime,
}

impl TripCount {
    /// The compile-time trip count, if known.
    pub fn known(self) -> Option<u64> {
        match self {
            TripCount::Known(n) => Some(n),
            TripCount::Runtime => None,
        }
    }
}

impl fmt::Display for TripCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripCount::Known(n) => write!(f, "{n}"),
            TripCount::Runtime => f.write_str("ub"),
        }
    }
}

/// A validated, normalized innermost loop — the unit of simdization.
///
/// `for i in 0..trip { stmts }` over the declared arrays and parameters.
/// Construct via [`crate::LoopBuilder`] or [`crate::parse_program`]; both
/// run [`LoopProgram::validate`], so a `LoopProgram` in hand always
/// satisfies the paper's §4.1 preconditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopProgram {
    elem: ScalarType,
    arrays: Vec<ArrayDecl>,
    params: Vec<ParamDecl>,
    trip: TripCount,
    stmts: Vec<Stmt>,
}

impl LoopProgram {
    /// Assembles and validates a program from parts.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateLoopError`] if any §4.1 precondition is
    /// violated; see [`LoopProgram::validate`] for the list of checks.
    pub fn new(
        elem: ScalarType,
        arrays: Vec<ArrayDecl>,
        params: Vec<ParamDecl>,
        trip: TripCount,
        stmts: Vec<Stmt>,
    ) -> Result<LoopProgram, ValidateLoopError> {
        let p = LoopProgram {
            elem,
            arrays,
            params,
            trip,
            stmts,
        };
        p.validate()?;
        Ok(p)
    }

    /// The uniform element type `D` of every reference in the loop.
    pub fn elem(&self) -> ScalarType {
        self.elem
    }

    /// The declared arrays, indexed by [`ArrayId`].
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Declaration of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not minted for this program.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    /// The declared runtime parameters, indexed by [`ParamId`].
    pub fn params(&self) -> &[ParamDecl] {
        &self.params
    }

    /// The loop trip count.
    pub fn trip(&self) -> TripCount {
        self.trip
    }

    /// The loop-body statements, in program order.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Every array reference in the loop (all loads, then the store, per
    /// statement in order).
    pub fn all_refs(&self) -> Vec<ArrayRef> {
        self.stmts.iter().flat_map(|s| s.refs()).collect()
    }

    /// Whether every array's base alignment is known at compile time.
    ///
    /// When false, only the zero-shift policy applies (paper §4.4).
    pub fn all_alignments_known(&self) -> bool {
        self.arrays.iter().all(|a| a.align().is_known())
    }

    /// Checks the §4.1 preconditions and this IR's additional
    /// independence requirements:
    ///
    /// * at least one statement;
    /// * every array has the program's uniform element type;
    /// * no array is both stored and loaded, and no two statements store
    ///   to the same array (rules out loop-carried and intra-iteration
    ///   dependences, which simdization must not reorder);
    /// * reference offsets are non-negative and, for known trip counts,
    ///   `ub + offset <= len` for every reference;
    /// * a known trip count is at least 1;
    /// * every parameter reference is in range.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition as a [`ValidateLoopError`].
    pub fn validate(&self) -> Result<(), ValidateLoopError> {
        if self.stmts.is_empty() {
            return Err(ValidateLoopError::EmptyBody);
        }
        if self.trip.known() == Some(0) {
            return Err(ValidateLoopError::ZeroTripCount);
        }
        for (idx, a) in self.arrays.iter().enumerate() {
            if a.elem() != self.elem {
                return Err(ValidateLoopError::MixedElementTypes {
                    array: a.name().to_string(),
                    expected: self.elem,
                    found: a.elem(),
                });
            }
            // Non-naturally aligned bases (offset not a multiple of the
            // element size) are accepted: the paper lists them as future
            // work (§7), and this implementation handles them by
            // quantizing shift-placement targets to natural offsets (see
            // `simdize-reorg`). Runtime-aligned arrays stay naturally
            // aligned by construction of the memory image.
            let _ = idx;
        }

        let mut stored: HashSet<ArrayId> = HashSet::new();
        for s in &self.stmts {
            if !stored.insert(s.target.array) {
                return Err(ValidateLoopError::DuplicateStore {
                    array: self.name_of(s.target.array),
                });
            }
        }
        for s in &self.stmts {
            let mut err = None;
            s.rhs.visit_loads(&mut |r| {
                if err.is_none() && stored.contains(&r.array) {
                    err = Some(ValidateLoopError::StoreLoadOverlap {
                        array: self.name_of(r.array),
                    });
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }

        for s in &self.stmts {
            if let Some(op) = s.reduction {
                if !op.is_reassociable() {
                    return Err(ValidateLoopError::NonReassociableReduction { op });
                }
            }
        }
        for s in &self.stmts {
            let mut refs = s.rhs.loads();
            // A reduction target is a single fixed element; only it
            // escapes the per-iteration bounds rule below.
            if s.reduction.is_none() {
                refs.push(s.target);
            } else {
                let r = s.target;
                if r.offset < 0 || r.offset as u64 >= self.array(r.array).len() {
                    return Err(ValidateLoopError::OutOfBounds {
                        array: self.name_of(r.array),
                        offset: r.offset,
                        trip: 1,
                        len: self.array(r.array).len(),
                    });
                }
            }
            for r in refs {
                if r.array.index() >= self.arrays.len() {
                    return Err(ValidateLoopError::UnknownArray { id: r.array });
                }
                if r.offset < 0 {
                    return Err(ValidateLoopError::NegativeOffset {
                        array: self.name_of(r.array),
                        offset: r.offset,
                    });
                }
                if let TripCount::Known(ub) = self.trip {
                    let last = r.stride as u64 * (ub - 1) + r.offset as u64;
                    if last >= self.array(r.array).len() {
                        return Err(ValidateLoopError::OutOfBounds {
                            array: self.name_of(r.array),
                            offset: r.offset,
                            trip: ub,
                            len: self.array(r.array).len(),
                        });
                    }
                }
            }
        }

        for s in &self.stmts {
            self.check_params(&s.rhs)?;
        }
        Ok(())
    }

    fn check_params(&self, e: &Expr) -> Result<(), ValidateLoopError> {
        match e {
            Expr::Splat(Invariant::Param(p)) if p.index() >= self.params.len() => {
                Err(ValidateLoopError::UnknownParam { id: *p })
            }
            Expr::Binary(_, a, b) => {
                self.check_params(a)?;
                self.check_params(b)
            }
            Expr::Unary(_, a) => self.check_params(a),
            _ => Ok(()),
        }
    }

    fn name_of(&self, id: ArrayId) -> String {
        self.arrays
            .get(id.index())
            .map(|a| a.name().to_string())
            .unwrap_or_else(|| id.to_string())
    }

    /// Renders the program in the textual syntax accepted by
    /// [`crate::parse_program`].
    pub fn to_source(&self) -> String {
        let mut out = String::from("arrays { ");
        for a in &self.arrays {
            out.push_str(&format!("{a}; "));
        }
        out.push_str("}\n");
        if !self.params.is_empty() {
            out.push_str("params { ");
            for p in &self.params {
                out.push_str(&format!("{}; ", p.name()));
            }
            out.push_str("}\n");
        }
        out.push_str(&format!("for i in 0..{} {{\n", self.trip));
        for s in &self.stmts {
            out.push_str(&format!("    {}\n", self.render_stmt(s)));
        }
        out.push_str("}\n");
        out
    }

    fn render_stmt(&self, s: &Stmt) -> String {
        match s.reduction {
            Some(op) => format!(
                "{} {op}= {};",
                self.render_ref(s.target),
                self.render_expr(&s.rhs)
            ),
            None => format!(
                "{} = {};",
                self.render_ref(s.target),
                self.render_expr(&s.rhs)
            ),
        }
    }

    fn render_ref(&self, r: ArrayRef) -> String {
        let name = self.name_of(r.array);
        let i = if r.stride == 1 {
            "i".to_string()
        } else {
            format!("{}*i", r.stride)
        };
        match r.offset {
            0 => format!("{name}[{i}]"),
            k if k > 0 => format!("{name}[{i}+{k}]"),
            k => format!("{name}[{i}{k}]"),
        }
    }

    fn render_expr(&self, e: &Expr) -> String {
        match e {
            Expr::Load(r) => self.render_ref(*r),
            Expr::Splat(Invariant::Const(c)) => format!("{c}"),
            Expr::Splat(Invariant::Param(p)) => self
                .params
                .get(p.index())
                .map(|d| d.name().to_string())
                .unwrap_or_else(|| p.to_string()),
            Expr::Binary(op, a, b) => match op {
                crate::BinOp::Min | crate::BinOp::Max => {
                    format!("{op}({}, {})", self.render_expr(a), self.render_expr(b))
                }
                _ => format!("({} {op} {})", self.render_expr(a), self.render_expr(b)),
            },
            Expr::Unary(op, a) => match op {
                crate::UnOp::Abs => format!("abs({})", self.render_expr(a)),
                _ => format!("{op}({})", self.render_expr(a)),
            },
        }
    }
}

impl fmt::Display for LoopProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::{AlignKind, Expr};

    fn example() -> LoopProgram {
        let mut b = LoopBuilder::new(ScalarType::I32);
        let a = b.array("a", 128, 12);
        let bb = b.array("b", 128, 4);
        let c = b.array("c", 128, 8);
        b.stmt(a.at(0), Expr::load(bb.at(1)) + Expr::load(c.at(2)));
        b.finish(100).unwrap()
    }

    #[test]
    fn accessors() {
        let p = example();
        assert_eq!(p.elem(), ScalarType::I32);
        assert_eq!(p.arrays().len(), 3);
        assert_eq!(p.trip(), TripCount::Known(100));
        assert!(p.all_alignments_known());
        assert_eq!(p.all_refs().len(), 3);
    }

    #[test]
    fn rejects_store_load_overlap() {
        let mut b = LoopBuilder::new(ScalarType::I32);
        let a = b.array("a", 128, 0);
        b.stmt(a.at(0), Expr::load(a.at(1)));
        assert!(matches!(
            b.finish(10),
            Err(ValidateLoopError::StoreLoadOverlap { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_store() {
        let mut b = LoopBuilder::new(ScalarType::I32);
        let a = b.array("a", 128, 0);
        let c = b.array("c", 128, 0);
        b.stmt(a.at(0), Expr::load(c.at(0)));
        b.stmt(a.at(1), Expr::load(c.at(1)));
        assert!(matches!(
            b.finish(10),
            Err(ValidateLoopError::DuplicateStore { .. })
        ));
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut b = LoopBuilder::new(ScalarType::I32);
        let a = b.array("a", 100, 0);
        let c = b.array("c", 100, 0);
        b.stmt(a.at(5), Expr::load(c.at(0)));
        assert!(matches!(
            b.finish(100),
            Err(ValidateLoopError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn rejects_negative_offset() {
        let mut b = LoopBuilder::new(ScalarType::I32);
        let a = b.array("a", 100, 0);
        let c = b.array("c", 100, 0);
        b.stmt(a.at(0), Expr::load(c.at(-1)));
        assert!(matches!(
            b.finish(10),
            Err(ValidateLoopError::NegativeOffset { .. })
        ));
    }

    #[test]
    fn accepts_unnatural_alignment() {
        // §7 extension: byte-granular base offsets are allowed; the
        // reorganization phase quantizes operation offsets to natural
        // boundaries.
        let mut b = LoopBuilder::new(ScalarType::I32);
        let a = b.array("a", 100, 2); // 2 is not a multiple of 4
        let c = b.array("c", 100, 0);
        b.stmt(a.at(0), Expr::load(c.at(0)));
        assert!(b.finish(10).is_ok());
    }

    #[test]
    fn rejects_mixed_types() {
        let arrays = vec![
            ArrayDecl::new("a", ScalarType::I32, 10, AlignKind::Known(0)),
            ArrayDecl::new("b", ScalarType::I16, 10, AlignKind::Known(0)),
        ];
        let stmts = vec![Stmt::new(
            ArrayRef::new(ArrayId::from_index(0), 0),
            Expr::load(ArrayRef::new(ArrayId::from_index(1), 0)),
        )];
        let r = LoopProgram::new(ScalarType::I32, arrays, vec![], TripCount::Known(5), stmts);
        assert!(matches!(
            r,
            Err(ValidateLoopError::MixedElementTypes { .. })
        ));
    }

    #[test]
    fn rejects_empty_and_zero_trip() {
        let r = LoopProgram::new(ScalarType::I32, vec![], vec![], TripCount::Known(5), vec![]);
        assert!(matches!(r, Err(ValidateLoopError::EmptyBody)));
        let mut b = LoopBuilder::new(ScalarType::I32);
        let a = b.array("a", 100, 0);
        let c = b.array("c", 100, 0);
        b.stmt(a.at(0), Expr::load(c.at(0)));
        assert!(matches!(b.finish(0), Err(ValidateLoopError::ZeroTripCount)));
    }

    #[test]
    fn source_roundtrip() {
        let p = example();
        let src = p.to_source();
        let q = crate::parse_program(&src).unwrap();
        assert_eq!(p, q);
    }
}
