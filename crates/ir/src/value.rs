//! Scalar values with SIMD-lane (wrapping, width-masked) semantics.

use crate::types::ScalarType;
use std::fmt;

/// A scalar value as it lives in one SIMD lane: a bit pattern of the
/// element width, interpreted as signed or unsigned by its [`ScalarType`].
///
/// All arithmetic wraps, mirroring packed integer hardware. The raw bits
/// are kept zero-extended in a `u64`.
///
/// # Example
///
/// ```
/// use simdize_ir::{ScalarType, Value};
/// let a = Value::new(ScalarType::U8, 250);
/// let b = Value::new(ScalarType::U8, 10);
/// assert_eq!(a.wrapping_add(b).bits(), 4); // 260 mod 256
/// let neg = Value::new(ScalarType::I16, -5i64 as u64);
/// assert_eq!(neg.as_i64(), -5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value {
    ty: ScalarType,
    bits: u64,
}

impl Value {
    /// Creates a value of type `ty` from raw `bits` (masked to the
    /// element width).
    pub fn new(ty: ScalarType, bits: u64) -> Value {
        Value {
            ty,
            bits: bits & ty_mask(ty),
        }
    }

    /// Creates a value of type `ty` from a signed integer, wrapping to the
    /// element width.
    pub fn from_i64(ty: ScalarType, v: i64) -> Value {
        Value::new(ty, v as u64)
    }

    /// The value's element type.
    pub fn ty(self) -> ScalarType {
        self.ty
    }

    /// Raw bits, zero-extended to 64 bits.
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// The value interpreted per its type's signedness, widened to `i64`.
    pub fn as_i64(self) -> i64 {
        if self.ty.is_signed() {
            sign_extend(self.bits, self.ty.bits())
        } else {
            self.bits as i64
        }
    }

    /// Little-endian byte representation, `ty.size()` bytes long.
    pub fn to_le_bytes(self) -> Vec<u8> {
        self.bits.to_le_bytes()[..self.ty.size()].to_vec()
    }

    /// Reads a value of type `ty` from the first `ty.size()` bytes of a
    /// little-endian byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `ty.size()`.
    pub fn from_le_bytes(ty: ScalarType, bytes: &[u8]) -> Value {
        let mut buf = [0u8; 8];
        buf[..ty.size()].copy_from_slice(&bytes[..ty.size()]);
        Value::new(ty, u64::from_le_bytes(buf))
    }

    /// Wrapping lane addition.
    pub fn wrapping_add(self, rhs: Value) -> Value {
        self.binary(rhs, |a, b| a.wrapping_add(b))
    }

    /// Wrapping lane subtraction.
    pub fn wrapping_sub(self, rhs: Value) -> Value {
        self.binary(rhs, |a, b| a.wrapping_sub(b))
    }

    /// Wrapping lane multiplication.
    pub fn wrapping_mul(self, rhs: Value) -> Value {
        self.binary(rhs, |a, b| a.wrapping_mul(b))
    }

    /// Lane minimum, respecting signedness.
    pub fn min_lane(self, rhs: Value) -> Value {
        self.ordered(rhs, true)
    }

    /// Lane maximum, respecting signedness.
    pub fn max_lane(self, rhs: Value) -> Value {
        self.ordered(rhs, false)
    }

    /// Bitwise AND.
    pub fn and(self, rhs: Value) -> Value {
        self.binary(rhs, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(self, rhs: Value) -> Value {
        self.binary(rhs, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(self, rhs: Value) -> Value {
        self.binary(rhs, |a, b| a ^ b)
    }

    /// Wrapping lane negation.
    pub fn wrapping_neg(self) -> Value {
        Value::new(self.ty, (self.bits as i64).wrapping_neg() as u64)
    }

    /// Bitwise NOT.
    #[allow(clippy::should_implement_trait)] // lane semantics, not operator sugar
    pub fn not(self) -> Value {
        Value::new(self.ty, !self.bits)
    }

    /// Wrapping absolute value (`abs(i::MIN) == i::MIN`, as on hardware).
    pub fn wrapping_abs(self) -> Value {
        if self.ty.is_signed() && self.as_i64() < 0 {
            self.wrapping_neg()
        } else {
            self
        }
    }

    fn binary(self, rhs: Value, f: impl FnOnce(u64, u64) -> u64) -> Value {
        debug_assert_eq!(self.ty, rhs.ty, "mixed-type lane operation");
        Value::new(self.ty, f(self.bits, rhs.bits))
    }

    fn ordered(self, rhs: Value, take_min: bool) -> Value {
        debug_assert_eq!(self.ty, rhs.ty, "mixed-type lane operation");
        let less = if self.ty.is_signed() {
            self.as_i64() < rhs.as_i64()
        } else {
            self.bits < rhs.bits
        };
        if less == take_min {
            self
        } else {
            rhs
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.as_i64(), self.ty)
    }
}

fn ty_mask(ty: ScalarType) -> u64 {
    match ty.bits() {
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

fn sign_extend(bits: u64, width: u32) -> i64 {
    let shift = 64 - width;
    ((bits << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_add_wraps_at_width() {
        let a = Value::new(ScalarType::I8, 0x7F);
        let one = Value::new(ScalarType::I8, 1);
        assert_eq!(a.wrapping_add(one).as_i64(), -128);
        let b = Value::new(ScalarType::U16, 0xFFFF);
        assert_eq!(b.wrapping_add(Value::new(ScalarType::U16, 2)).bits(), 1);
    }

    #[test]
    fn signed_vs_unsigned_min() {
        let big = Value::new(ScalarType::I8, 0xFF); // -1 signed, 255 unsigned
        let one = Value::new(ScalarType::I8, 1);
        assert_eq!(big.min_lane(one).as_i64(), -1);
        let ubig = Value::new(ScalarType::U8, 0xFF);
        let uone = Value::new(ScalarType::U8, 1);
        assert_eq!(ubig.min_lane(uone).bits(), 1);
    }

    #[test]
    fn byte_roundtrip_all_types() {
        for ty in ScalarType::ALL {
            let v = Value::from_i64(ty, -123456789);
            let bytes = v.to_le_bytes();
            assert_eq!(bytes.len(), ty.size());
            assert_eq!(Value::from_le_bytes(ty, &bytes), v, "{ty}");
        }
    }

    #[test]
    fn neg_abs_not() {
        let v = Value::from_i64(ScalarType::I16, -7);
        assert_eq!(v.wrapping_neg().as_i64(), 7);
        assert_eq!(v.wrapping_abs().as_i64(), 7);
        assert_eq!(v.not().as_i64(), 6);
        // abs(MIN) wraps to MIN like hardware packed-abs.
        let min = Value::from_i64(ScalarType::I8, -128);
        assert_eq!(min.wrapping_abs().as_i64(), -128);
    }

    #[test]
    fn mul_and_bitops() {
        let a = Value::from_i64(ScalarType::U8, 16);
        let b = Value::from_i64(ScalarType::U8, 17);
        assert_eq!(a.wrapping_mul(b).bits(), (16 * 17) % 256);
        assert_eq!(a.or(b).bits(), 16 | 17);
        assert_eq!(a.and(b).bits(), 16 & 17);
        assert_eq!(a.xor(b).bits(), 16 ^ 17);
    }

    #[test]
    fn display_shows_value_and_type() {
        assert_eq!(Value::from_i64(ScalarType::I32, -3).to_string(), "-3i32");
    }
}
