//! Scalar element types and the target vector shape.

use std::fmt;

/// Element type of an array and of every operation in a loop.
///
/// The paper's algorithm assumes all memory references in a loop access
/// data of the same length `D` (§4.1); the supported lengths are the 1-,
/// 2-, 4- and 8-byte packed types found on AltiVec/SSE-class SIMD units.
///
/// # Example
///
/// ```
/// use simdize_ir::ScalarType;
/// assert_eq!(ScalarType::I32.size(), 4);
/// assert!(ScalarType::I8.is_signed());
/// assert!(!ScalarType::U16.is_signed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScalarType {
    /// Signed 8-bit integer.
    I8,
    /// Unsigned 8-bit integer.
    U8,
    /// Signed 16-bit integer (the paper's `short`).
    I16,
    /// Unsigned 16-bit integer.
    U16,
    /// Signed 32-bit integer (the paper's `int`).
    I32,
    /// Unsigned 32-bit integer.
    U32,
    /// Signed 64-bit integer.
    I64,
    /// Unsigned 64-bit integer.
    U64,
}

impl ScalarType {
    /// All supported element types, in increasing size order.
    pub const ALL: [ScalarType; 8] = [
        ScalarType::I8,
        ScalarType::U8,
        ScalarType::I16,
        ScalarType::U16,
        ScalarType::I32,
        ScalarType::U32,
        ScalarType::I64,
        ScalarType::U64,
    ];

    /// Size of one element in bytes (the paper's `D`).
    pub const fn size(self) -> usize {
        match self {
            ScalarType::I8 | ScalarType::U8 => 1,
            ScalarType::I16 | ScalarType::U16 => 2,
            ScalarType::I32 | ScalarType::U32 => 4,
            ScalarType::I64 | ScalarType::U64 => 8,
        }
    }

    /// Whether values of this type are interpreted as signed.
    ///
    /// Signedness only matters for `Min`, `Max`, `Abs` and the shift-right
    /// semantics; additions and multiplications wrap identically.
    pub const fn is_signed(self) -> bool {
        matches!(
            self,
            ScalarType::I8 | ScalarType::I16 | ScalarType::I32 | ScalarType::I64
        )
    }

    /// Width of the type in bits.
    pub const fn bits(self) -> u32 {
        (self.size() as u32) * 8
    }

    /// Canonical lowercase name (`"i32"`, `"u8"`, ...).
    pub const fn name(self) -> &'static str {
        match self {
            ScalarType::I8 => "i8",
            ScalarType::U8 => "u8",
            ScalarType::I16 => "i16",
            ScalarType::U16 => "u16",
            ScalarType::I32 => "i32",
            ScalarType::U32 => "u32",
            ScalarType::I64 => "i64",
            ScalarType::U64 => "u64",
        }
    }

    /// Parses a canonical name produced by [`ScalarType::name`].
    pub fn from_name(name: &str) -> Option<ScalarType> {
        Self::ALL.into_iter().find(|t| t.name() == name)
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The geometry of the target's vector registers.
///
/// A `VectorShape` is just the register width `V` in bytes; together with
/// an element type it yields the *blocking factor* `B = V / D` (paper
/// eq. 7), the number of data packed per vector.
///
/// # Example
///
/// ```
/// use simdize_ir::{ScalarType, VectorShape};
/// let v = VectorShape::V16;
/// assert_eq!(v.bytes(), 16);
/// assert_eq!(v.blocking_factor(ScalarType::I32), 4);
/// assert_eq!(v.blocking_factor(ScalarType::I16), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VectorShape {
    bytes: u32,
}

impl VectorShape {
    /// The 16-byte shape of AltiVec/VMX and SSE registers — the shape used
    /// throughout the paper.
    pub const V16: VectorShape = VectorShape { bytes: 16 };

    /// An 8-byte shape (MMX/3DNow!-class units).
    pub const V8: VectorShape = VectorShape { bytes: 8 };

    /// A 32-byte shape (AVX2-class units), used by the extension benches.
    pub const V32: VectorShape = VectorShape { bytes: 32 };

    /// Creates a shape of `bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns `None` unless `bytes` is a power of two in `8..=64`; the
    /// alignment arithmetic throughout the pipeline relies on power-of-two
    /// register widths (addresses are truncated with `addr & !(V-1)`).
    pub fn new(bytes: u32) -> Option<VectorShape> {
        if bytes.is_power_of_two() && (8..=64).contains(&bytes) {
            Some(VectorShape { bytes })
        } else {
            None
        }
    }

    /// Register width `V` in bytes.
    pub const fn bytes(self) -> u32 {
        self.bytes
    }

    /// Mask with the low `log2(V)` bits set, i.e. `V - 1`.
    ///
    /// `addr & mask()` is the byte offset of `addr` within its aligned
    /// chunk — exactly the runtime alignment computation of paper §3.3.
    pub const fn mask(self) -> u64 {
        (self.bytes as u64) - 1
    }

    /// Truncates `addr` to the enclosing `V`-aligned boundary, mirroring
    /// the behaviour of AltiVec's `vload`/`vstore` (paper §1).
    pub const fn truncate(self, addr: u64) -> u64 {
        addr & !self.mask()
    }

    /// Byte offset of `addr` within its `V`-byte chunk (`addr mod V`).
    pub const fn offset_of(self, addr: u64) -> u32 {
        (addr & self.mask()) as u32
    }

    /// The blocking factor `B = V / D` for elements of type `ty`
    /// (paper eq. 7).
    ///
    /// # Panics
    ///
    /// Panics if the element does not fit in the register (`D > V`); the
    /// pipeline validates this before use.
    pub fn blocking_factor(self, ty: ScalarType) -> u32 {
        let d = ty.size() as u32;
        assert!(d <= self.bytes, "element wider than vector register");
        self.bytes / d
    }

    /// Number of lanes for elements of `size` bytes.
    pub const fn lanes_for_size(self, size: u32) -> u32 {
        self.bytes / size
    }
}

impl Default for VectorShape {
    fn default() -> Self {
        VectorShape::V16
    }
}

impl fmt::Display for VectorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_paper() {
        assert_eq!(ScalarType::I32.size(), 4);
        assert_eq!(ScalarType::I16.size(), 2);
        assert_eq!(ScalarType::I8.size(), 1);
        assert_eq!(ScalarType::U64.size(), 8);
    }

    #[test]
    fn signedness() {
        for t in ScalarType::ALL {
            assert_eq!(t.is_signed(), t.name().starts_with('i'), "{t}");
        }
    }

    #[test]
    fn name_roundtrip() {
        for t in ScalarType::ALL {
            assert_eq!(ScalarType::from_name(t.name()), Some(t));
        }
        assert_eq!(ScalarType::from_name("f32"), None);
    }

    #[test]
    fn blocking_factors_match_paper() {
        // 4 ints per 16-byte register; 8 shorts per 16-byte register.
        assert_eq!(VectorShape::V16.blocking_factor(ScalarType::I32), 4);
        assert_eq!(VectorShape::V16.blocking_factor(ScalarType::I16), 8);
        assert_eq!(VectorShape::V16.blocking_factor(ScalarType::U8), 16);
    }

    #[test]
    fn truncation_matches_altivec() {
        // AltiVec example from §4.3: loads from 0x1000, 0x1001, 0x100E all
        // load the 16 bytes starting at 0x1000.
        let v = VectorShape::V16;
        for addr in [0x1000u64, 0x1001, 0x100E] {
            assert_eq!(v.truncate(addr), 0x1000);
        }
        assert_eq!(v.offset_of(0x100E), 0xE);
    }

    #[test]
    fn new_rejects_bad_widths() {
        assert!(VectorShape::new(12).is_none());
        assert!(VectorShape::new(4).is_none());
        assert!(VectorShape::new(128).is_none());
        assert_eq!(VectorShape::new(16), Some(VectorShape::V16));
    }

    #[test]
    fn display_forms() {
        assert_eq!(VectorShape::V16.to_string(), "V16");
        assert_eq!(ScalarType::I16.to_string(), "i16");
    }
}
