//! Array declarations and stride-one array references.

use crate::types::{ScalarType, VectorShape};
use std::fmt;

/// Identifier of an array declared in a [`crate::LoopProgram`].
///
/// Indexes the program's array table; create arrays through
/// [`crate::LoopBuilder::array`] or the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub(crate) u32);

impl ArrayId {
    /// The index of this array in the program's array table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id referring to the array at `index` in some program's
    /// array table.
    ///
    /// This is a low-level escape hatch for tests and tools; ids minted
    /// this way are only meaningful against a program whose table actually
    /// has an entry at `index`.
    pub fn from_index(index: usize) -> ArrayId {
        ArrayId(index as u32)
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arr{}", self.0)
    }
}

/// How much is known at compile time about an array's base alignment.
///
/// The paper distinguishes *compile-time* alignments (the common case,
/// enabling the eager/lazy/dominant shift policies) from *runtime*
/// alignments, where the offset of the base address within its `V`-byte
/// chunk is only discoverable at run time via `addr & (V-1)` and only the
/// zero-shift policy applies (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlignKind {
    /// The base address is known to be `offset` bytes past a `V`-byte
    /// boundary. `offset` is stored un-reduced; consumers reduce it
    /// modulo their `V`.
    Known(u32),
    /// Nothing is known at compile time; the memory image still places
    /// the array at a concrete misalignment (chosen when the image is
    /// built), but the compiler must not exploit it.
    Runtime,
}

impl AlignKind {
    /// The compile-time byte offset reduced mod `V`, if known.
    pub fn known_offset(self, shape: VectorShape) -> Option<u32> {
        match self {
            AlignKind::Known(off) => Some(off % shape.bytes()),
            AlignKind::Runtime => None,
        }
    }

    /// Whether the alignment is known at compile time.
    pub fn is_known(self) -> bool {
        matches!(self, AlignKind::Known(_))
    }
}

impl fmt::Display for AlignKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignKind::Known(off) => write!(f, "@{off}"),
            AlignKind::Runtime => f.write_str("@?"),
        }
    }
}

/// Declaration of one array: name, element type, length and base
/// alignment.
///
/// The paper assumes every array base is *naturally aligned* to its
/// element length (§4.1); [`crate::LoopBuilder::finish`] enforces
/// `offset % elem.size() == 0` for known alignments, and the memory image
/// enforces it for runtime ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    name: String,
    elem: ScalarType,
    len: u64,
    align: AlignKind,
}

impl ArrayDecl {
    /// Creates a declaration. Prefer [`crate::LoopBuilder::array`], which
    /// also registers the array with a program under construction.
    pub fn new(name: impl Into<String>, elem: ScalarType, len: u64, align: AlignKind) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            elem,
            len,
            align,
        }
    }

    /// The array's source-level name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element type.
    pub fn elem(&self) -> ScalarType {
        self.elem
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.len * self.elem.size() as u64
    }

    /// Base alignment knowledge.
    pub fn align(&self) -> AlignKind {
        self.align
    }
}

impl fmt::Display for ArrayDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}[{}] {}",
            self.name, self.elem, self.len, self.align
        )
    }
}

/// A strided array reference `array[stride·i + offset]`, where `i` is
/// the loop counter.
///
/// The element address at original iteration `i` is
/// `base(array) + (stride·i + offset) · D`. The paper's core pipeline
/// handles `stride == 1` (its §4.1 precondition); larger power-of-two
/// strides are accepted by the IR and compiled by the `simdize-stride`
/// extension crate (§7 future work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// The referenced array.
    pub array: ArrayId,
    /// The constant element offset `k` in `array[stride·i + k]`.
    pub offset: i64,
    /// The loop-counter multiplier (1 for the paper's stride-one
    /// references).
    pub stride: u32,
}

impl ArrayRef {
    /// Creates the stride-one reference `array[i + offset]`.
    pub fn new(array: ArrayId, offset: i64) -> ArrayRef {
        ArrayRef {
            array,
            offset,
            stride: 1,
        }
    }

    /// Creates the strided reference `array[stride·i + offset]`.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is 0.
    pub fn strided(array: ArrayId, stride: u32, offset: i64) -> ArrayRef {
        assert!(stride > 0, "stride must be positive");
        ArrayRef {
            array,
            offset,
            stride,
        }
    }

    /// The byte offset of this reference's address at `i = 0` relative to
    /// the array base: `offset * D`.
    pub fn byte_offset(self, elem: ScalarType) -> i64 {
        self.offset * elem.size() as i64
    }

    /// Whether this is one of the paper's stride-one references.
    pub fn is_unit_stride(self) -> bool {
        self.stride == 1
    }

    /// The element index accessed at iteration `i`.
    pub fn index_at(self, i: u64) -> u64 {
        (self.stride as i64 * i as i64 + self.offset) as u64
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let i = if self.stride == 1 {
            "i".to_string()
        } else {
            format!("{}*i", self.stride)
        };
        match self.offset {
            0 => write!(f, "{}[{i}]", self.array),
            k if k > 0 => write!(f, "{}[{i}+{k}]", self.array),
            k => write!(f, "{}[{i}{k}]", self.array),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_offset_reduces_mod_v() {
        let a = AlignKind::Known(20);
        assert_eq!(a.known_offset(VectorShape::V16), Some(4));
        assert_eq!(AlignKind::Runtime.known_offset(VectorShape::V16), None);
        assert!(a.is_known());
        assert!(!AlignKind::Runtime.is_known());
    }

    #[test]
    fn decl_byte_len() {
        let d = ArrayDecl::new("x", ScalarType::I16, 100, AlignKind::Known(2));
        assert_eq!(d.byte_len(), 200);
        assert_eq!(d.to_string(), "x: i16[100] @2");
        assert!(!d.is_empty());
    }

    #[test]
    fn ref_display_and_byte_offset() {
        let r = ArrayRef::new(ArrayId(2), 3);
        assert_eq!(r.to_string(), "arr2[i+3]");
        assert_eq!(r.byte_offset(ScalarType::I32), 12);
        let n = ArrayRef::new(ArrayId(0), -1);
        assert_eq!(n.to_string(), "arr0[i-1]");
        let z = ArrayRef::new(ArrayId(1), 0);
        assert_eq!(z.to_string(), "arr1[i]");
    }
}

#[cfg(test)]
mod stride_unit_tests {
    use super::*;

    #[test]
    fn strided_ref_accessors() {
        let r = ArrayRef::strided(ArrayId::from_index(1), 4, 3);
        assert!(!r.is_unit_stride());
        assert_eq!(r.index_at(0), 3);
        assert_eq!(r.index_at(10), 43);
        assert_eq!(r.to_string(), "arr1[4*i+3]");
        assert!(ArrayRef::new(ArrayId::from_index(0), 0).is_unit_stride());
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let _ = ArrayRef::strided(ArrayId::from_index(0), 0, 0);
    }
}
