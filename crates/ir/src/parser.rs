//! A small textual syntax for loop programs.
//!
//! The grammar mirrors the paper's C-like examples:
//!
//! ```text
//! program := arrays-block params-block? loop
//! arrays  := "arrays" "{" (name ":" type "[" len "]" "@" (int | "?") ";")* "}"
//! params  := "params" "{" (name ";")* "}"
//! loop    := "for" "i" "in" "0" ".." (int | "ub") "{" stmt* "}"
//! stmt    := ref "=" expr ";"
//! ref     := name "[" "i" (("+"|"-") int)? "]"
//! expr    := or-expr with C-like precedence; also min(e,e), max(e,e), abs(e), ~(e)
//! ```
//!
//! `@ ?` declares a runtime base alignment, `.. ub` a runtime trip count.

use crate::array::{AlignKind, ArrayRef};
use crate::builder::{ArrayHandle, LoopBuilder};
use crate::error::ValidateLoopError;
use crate::expr::{BinOp, Expr, UnOp};
use crate::program::{LoopProgram, TripCount};
use crate::types::ScalarType;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An error produced while parsing the textual loop syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    message: String,
    position: usize,
}

impl ParseProgramError {
    /// Byte position in the source at which the error was detected.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.position)
    }
}

impl Error for ParseProgramError {}

impl From<ValidateLoopError> for ParseProgramError {
    fn from(e: ValidateLoopError) -> Self {
        ParseProgramError {
            message: e.to_string(),
            position: 0,
        }
    }
}

/// Parses a [`LoopProgram`] from the textual syntax.
///
/// # Errors
///
/// Returns a [`ParseProgramError`] on malformed syntax or when the parsed
/// loop fails [`LoopProgram::validate`].
///
/// # Example
///
/// ```
/// let p = simdize_ir::parse_program(
///     "arrays { a: i32[128] @ 12; b: i32[128] @ 4; c: i32[128] @ 8; }
///      for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
/// )?;
/// assert_eq!(p.stmts().len(), 1);
/// # Ok::<(), simdize_ir::ParseProgramError>(())
/// ```
pub fn parse_program(src: &str) -> Result<LoopProgram, ParseProgramError> {
    Parser::new(src).parse()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Punct(char),
    DotDot,
    Eof,
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            src,
            toks: Vec::new(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseProgramError> {
        let position = self
            .toks
            .get(self.pos)
            .map(|&(_, p)| p)
            .unwrap_or(self.src.len());
        Err(ParseProgramError {
            message: message.into(),
            position,
        })
    }

    fn tokenize(&mut self) -> Result<(), ParseProgramError> {
        let bytes = self.src.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_whitespace() {
                i += 1;
            } else if c == '/' && bytes.get(i + 1) == Some(&b'/') {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                self.toks
                    .push((Tok::Ident(self.src[start..i].to_string()), start));
            } else if c.is_ascii_digit() {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = self.src[start..i].parse().map_err(|_| ParseProgramError {
                    message: "integer literal out of range".into(),
                    position: start,
                })?;
                self.toks.push((Tok::Int(n), start));
            } else if c == '.' && bytes.get(i + 1) == Some(&b'.') {
                self.toks.push((Tok::DotDot, i));
                i += 2;
            } else if "{}[]()@;:=+-*&|^~,?".contains(c) {
                self.toks.push((Tok::Punct(c), i));
                i += 1;
            } else {
                return Err(ParseProgramError {
                    message: format!("unexpected character `{c}`"),
                    position: i,
                });
            }
        }
        self.toks.push((Tok::Eof, self.src.len()));
        Ok(())
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseProgramError> {
        if self.peek() == &Tok::Punct(c) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{c}`"))
        }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), ParseProgramError> {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{kw}`"))
        }
    }

    fn ident(&mut self) -> Result<String, ParseProgramError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            _ => {
                self.pos -= 1;
                self.err("expected identifier")
            }
        }
    }

    fn int(&mut self) -> Result<i64, ParseProgramError> {
        match self.bump() {
            Tok::Int(n) => Ok(n),
            _ => {
                self.pos -= 1;
                self.err("expected integer")
            }
        }
    }

    fn parse(mut self) -> Result<LoopProgram, ParseProgramError> {
        self.tokenize()?;

        // arrays { ... }
        self.expect_ident("arrays")?;
        self.expect_punct('{')?;
        let mut decls: Vec<(String, ScalarType, u64, AlignKind)> = Vec::new();
        while self.peek() != &Tok::Punct('}') {
            let name = self.ident()?;
            self.expect_punct(':')?;
            let tyname = self.ident()?;
            let ty = match ScalarType::from_name(&tyname) {
                Some(t) => t,
                None => return self.err(format!("unknown element type `{tyname}`")),
            };
            self.expect_punct('[')?;
            let len = self.int()?;
            if len < 0 {
                return self.err("array length must be non-negative");
            }
            self.expect_punct(']')?;
            self.expect_punct('@')?;
            let align = if self.peek() == &Tok::Punct('?') {
                self.bump();
                AlignKind::Runtime
            } else {
                let off = self.int()?;
                if off < 0 {
                    return self.err("alignment offset must be non-negative");
                }
                AlignKind::Known(off as u32)
            };
            self.expect_punct(';')?;
            decls.push((name, ty, len as u64, align));
        }
        self.bump(); // }

        let elem = match decls.first() {
            Some(&(_, t, _, _)) => t,
            None => return self.err("at least one array must be declared"),
        };
        let mut builder = LoopBuilder::new(elem);
        let mut arrays: HashMap<String, ArrayHandle> = HashMap::new();
        for (name, ty, len, align) in decls {
            let h = builder.declare(crate::ArrayDecl::new(name.clone(), ty, len, align));
            arrays.insert(name, h);
        }

        // params { ... } (optional)
        let mut params: HashMap<String, crate::ParamId> = HashMap::new();
        if matches!(self.peek(), Tok::Ident(s) if s == "params") {
            self.bump();
            self.expect_punct('{')?;
            while self.peek() != &Tok::Punct('}') {
                let name = self.ident()?;
                self.expect_punct(';')?;
                let id = builder.param(name.clone());
                params.insert(name, id);
            }
            self.bump();
        }

        // for i in 0..ub { stmts }
        self.expect_ident("for")?;
        self.expect_ident("i")?;
        self.expect_ident("in")?;
        let lo = self.int()?;
        if lo != 0 {
            return self.err("loops must be normalized: lower bound is 0");
        }
        if self.peek() != &Tok::DotDot {
            return self.err("expected `..`");
        }
        self.bump();
        let trip = match self.bump() {
            Tok::Int(n) if n >= 0 => TripCount::Known(n as u64),
            Tok::Ident(s) if s == "ub" => TripCount::Runtime,
            _ => {
                self.pos -= 1;
                return self.err("expected trip count integer or `ub`");
            }
        };
        self.expect_punct('{')?;
        while self.peek() != &Tok::Punct('}') {
            let target = self.array_ref(&arrays)?;
            // `target op= expr;` is a reduction (`+=`, `*=`, `&=`,
            // `|=`, `^=`, `min=`, `max=`); `target = expr;` a store.
            let reduction = match self.peek().clone() {
                Tok::Punct('+') => Some(BinOp::Add),
                Tok::Punct('*') => Some(BinOp::Mul),
                Tok::Punct('&') => Some(BinOp::And),
                Tok::Punct('|') => Some(BinOp::Or),
                Tok::Punct('^') => Some(BinOp::Xor),
                Tok::Ident(ref w) if w == "min" => Some(BinOp::Min),
                Tok::Ident(ref w) if w == "max" => Some(BinOp::Max),
                _ => None,
            };
            if reduction.is_some() {
                self.bump();
            }
            self.expect_punct('=')?;
            let rhs = self.expr(&arrays, &params)?;
            self.expect_punct(';')?;
            match reduction {
                Some(op) => builder.reduce(target, op, rhs),
                None => builder.stmt(target, rhs),
            };
        }
        self.bump();

        Ok(builder.finish_trip(trip)?)
    }

    fn array_ref(
        &mut self,
        arrays: &HashMap<String, ArrayHandle>,
    ) -> Result<ArrayRef, ParseProgramError> {
        let name = self.ident()?;
        let h = match arrays.get(&name) {
            Some(h) => *h,
            None => return self.err(format!("undeclared array `{name}`")),
        };
        self.expect_punct('[')?;
        // Optional stride multiplier: `name[2*i+3]`.
        let stride = if let Tok::Int(s) = self.peek() {
            let s = *s;
            self.bump();
            self.expect_punct('*')?;
            if !(1..=u32::MAX as i64).contains(&s) {
                return self.err("stride must be a positive integer");
            }
            s as u32
        } else {
            1
        };
        self.expect_ident("i")?;
        let offset = match self.peek() {
            Tok::Punct('+') => {
                self.bump();
                self.int()?
            }
            Tok::Punct('-') => {
                self.bump();
                -self.int()?
            }
            _ => 0,
        };
        self.expect_punct(']')?;
        Ok(h.at_strided(stride, offset))
    }

    fn expr(
        &mut self,
        arrays: &HashMap<String, ArrayHandle>,
        params: &HashMap<String, crate::ParamId>,
    ) -> Result<Expr, ParseProgramError> {
        self.bin_expr(arrays, params, 0)
    }

    fn bin_expr(
        &mut self,
        arrays: &HashMap<String, ArrayHandle>,
        params: &HashMap<String, crate::ParamId>,
        min_prec: u8,
    ) -> Result<Expr, ParseProgramError> {
        let mut lhs = self.unary_expr(arrays, params)?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Punct('|') => (BinOp::Or, 1),
                Tok::Punct('^') => (BinOp::Xor, 1),
                Tok::Punct('&') => (BinOp::And, 2),
                Tok::Punct('+') => (BinOp::Add, 3),
                Tok::Punct('-') => (BinOp::Sub, 3),
                Tok::Punct('*') => (BinOp::Mul, 4),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.bin_expr(arrays, params, prec + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(
        &mut self,
        arrays: &HashMap<String, ArrayHandle>,
        params: &HashMap<String, crate::ParamId>,
    ) -> Result<Expr, ParseProgramError> {
        match self.peek().clone() {
            Tok::Punct('-') => {
                self.bump();
                // Negative literal vs. unary negation of a subexpression.
                if let Tok::Int(n) = self.peek() {
                    let n = *n;
                    self.bump();
                    Ok(Expr::constant(-n))
                } else {
                    let inner = self.unary_expr(arrays, params)?;
                    Ok(Expr::unary(UnOp::Neg, inner))
                }
            }
            Tok::Punct('~') => {
                self.bump();
                let inner = self.unary_expr(arrays, params)?;
                Ok(Expr::unary(UnOp::Not, inner))
            }
            Tok::Punct('(') => {
                self.bump();
                let inner = self.expr(arrays, params)?;
                self.expect_punct(')')?;
                Ok(inner)
            }
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::constant(n))
            }
            Tok::Ident(name) => {
                // min/max/abs calls, array loads, or parameter splats.
                match name.as_str() {
                    "min" | "max" if self.toks[self.pos + 1].0 == Tok::Punct('(') => {
                        self.bump();
                        self.bump();
                        let a = self.expr(arrays, params)?;
                        self.expect_punct(',')?;
                        let b = self.expr(arrays, params)?;
                        self.expect_punct(')')?;
                        let op = if name == "min" {
                            BinOp::Min
                        } else {
                            BinOp::Max
                        };
                        Ok(Expr::binary(op, a, b))
                    }
                    "abs" if self.toks[self.pos + 1].0 == Tok::Punct('(') => {
                        self.bump();
                        self.bump();
                        let a = self.expr(arrays, params)?;
                        self.expect_punct(')')?;
                        Ok(Expr::unary(UnOp::Abs, a))
                    }
                    _ => {
                        if arrays.contains_key(&name) {
                            let r = self.array_ref(arrays)?;
                            Ok(Expr::load(r))
                        } else if let Some(&p) = params.get(&name) {
                            self.bump();
                            Ok(Expr::param(p))
                        } else {
                            self.err(format!("undeclared name `{name}`"))
                        }
                    }
                }
            }
            _ => self.err("expected expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripCount;

    #[test]
    fn parses_the_paper_example() {
        let p = parse_program(
            "arrays { a: i32[128] @ 12; b: i32[128] @ 4; c: i32[128] @ 8; }
             for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
        )
        .unwrap();
        assert_eq!(p.arrays().len(), 3);
        assert_eq!(p.stmts().len(), 1);
        assert_eq!(p.trip(), TripCount::Known(100));
        assert_eq!(p.array(p.stmts()[0].target.array).name(), "a");
    }

    #[test]
    fn parses_runtime_pieces_and_params() {
        let p = parse_program(
            "arrays { d: i16[64] @ ?; s: i16[64] @ 0; }
             params { gain; }
             for i in 0..ub { d[i] = s[i+1] * gain; }",
        )
        .unwrap();
        assert!(!p.all_alignments_known());
        assert_eq!(p.trip(), TripCount::Runtime);
        assert_eq!(p.params().len(), 1);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 0; c: i32[64] @ 0; d: i32[64] @ 0; }
             for i in 0..10 { a[i] = b[i] + c[i] * d[i]; }",
        )
        .unwrap();
        assert_eq!(
            format!("{}", p.stmts()[0].rhs),
            "(arr1[i] + (arr2[i] * arr3[i]))"
        );
    }

    #[test]
    fn parses_calls_and_unary() {
        let p = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 0; c: i32[64] @ 0; }
             for i in 0..10 { a[i] = min(abs(b[i]), -(c[i])) + -5; }",
        )
        .unwrap();
        assert_eq!(p.stmts()[0].rhs.op_count(), 4);
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program(
            "// header comment
             arrays { a: i32[64] @ 0; b: i32[64] @ 0; } // trailing
             for i in 0..10 { a[i] = b[i]; }",
        )
        .unwrap();
        assert_eq!(p.stmts().len(), 1);
    }

    #[test]
    fn rejects_unknown_names() {
        let e = parse_program(
            "arrays { a: i32[64] @ 0; }
             for i in 0..10 { a[i] = zzz[i]; }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("zzz"));
    }

    #[test]
    fn rejects_non_normalized_loop() {
        let e = parse_program(
            "arrays { a: i32[64] @ 0; b: i32[64] @ 0; }
             for i in 1..10 { a[i] = b[i]; }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("normalized"));
    }

    #[test]
    fn rejects_bad_type_and_chars() {
        assert!(parse_program("arrays { a: f32[4] @ 0; } for i in 0..1 { a[i] = a[i]; }").is_err());
        assert!(parse_program("arrays { a: i32[4] @ 0; } $").is_err());
    }

    #[test]
    fn validation_errors_surface() {
        let e = parse_program(
            "arrays { a: i32[4] @ 0; b: i32[4] @ 0; }
             for i in 0..100 { a[i] = b[i]; }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("elements"));
    }
}

#[cfg(test)]
mod stride_tests {
    use super::*;

    #[test]
    fn parses_strided_references() {
        let p = parse_program(
            "arrays { out: i32[64] @ 0; inter: i32[200] @ 0; }
             for i in 0..64 { out[i] = inter[2*i] + inter[2*i+1]; }",
        )
        .unwrap();
        let loads = p.stmts()[0].rhs.loads();
        assert_eq!(loads[0].stride, 2);
        assert_eq!(loads[0].offset, 0);
        assert_eq!(loads[1].stride, 2);
        assert_eq!(loads[1].offset, 1);
        assert_eq!(p.stmts()[0].target.stride, 1);
    }

    #[test]
    fn strided_source_roundtrip() {
        let p = parse_program(
            "arrays { out: i16[300] @ 2; x: i16[800] @ 0; }
             for i in 0..128 { out[2*i+1] = x[4*i+3] * 2; }",
        )
        .unwrap();
        let q = parse_program(&p.to_source()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn strided_bounds_checked() {
        // 2·(ub−1) + 1 must stay below the length.
        let err = parse_program(
            "arrays { out: i32[64] @ 0; x: i32[127] @ 0; }
             for i in 0..64 { out[i] = x[2*i+1]; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("elements"), "{err}");
        // 2·63 = 126 fits in 127 elements exactly.
        assert!(parse_program(
            "arrays { out: i32[64] @ 0; x: i32[127] @ 0; }
             for i in 0..64 { out[i] = x[2*i]; }",
        )
        .is_ok());
        // 2·63 + 1 = 127 fits in 128 elements.
        assert!(parse_program(
            "arrays { out: i32[64] @ 0; x: i32[128] @ 0; }
             for i in 0..64 { out[i] = x[2*i+1]; }",
        )
        .is_ok());
    }

    #[test]
    fn parses_reductions() {
        let p = parse_program(
            "arrays { acc: i32[4] @ 0; x: i32[128] @ 4; }
             for i in 0..100 { acc[i] += x[i+1] * x[i+1]; }",
        )
        .unwrap();
        assert_eq!(p.stmts()[0].reduction, Some(BinOp::Add));
        let q = parse_program(&p.to_source()).unwrap();
        assert_eq!(p, q);

        for (src_op, op) in [
            ("*", BinOp::Mul),
            ("&", BinOp::And),
            ("|", BinOp::Or),
            ("^", BinOp::Xor),
            ("min", BinOp::Min),
            ("max", BinOp::Max),
        ] {
            let src = format!(
                "arrays {{ acc: i32[4] @ 0; x: i32[128] @ 4; }}
                 for i in 0..100 {{ acc[i+1] {src_op}= x[i]; }}"
            );
            let p = parse_program(&src).unwrap();
            assert_eq!(p.stmts()[0].reduction, Some(op), "{src_op}=");
            assert_eq!(parse_program(&p.to_source()).unwrap(), p);
        }
    }

    #[test]
    fn rejects_zero_stride() {
        let err = parse_program(
            "arrays { out: i32[64] @ 0; x: i32[64] @ 0; }
             for i in 0..64 { out[i] = x[0*i]; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("stride"), "{err}");
    }
}
