//! Fluent construction of loop programs.

use crate::array::{AlignKind, ArrayDecl, ArrayId, ArrayRef};
use crate::error::ValidateLoopError;
use crate::expr::Expr;
use crate::program::{LoopProgram, ParamDecl, ParamId, TripCount};
use crate::stmt::Stmt;
use crate::types::ScalarType;

/// A handle to an array being declared by a [`LoopBuilder`].
///
/// Handles are cheap copies; [`ArrayHandle::at`] produces the stride-one
/// reference `array[i + k]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayHandle {
    id: ArrayId,
}

impl ArrayHandle {
    /// The underlying array id.
    pub fn id(self) -> ArrayId {
        self.id
    }

    /// The reference `array[i + offset]`.
    pub fn at(self, offset: i64) -> ArrayRef {
        ArrayRef::new(self.id, offset)
    }

    /// A load expression `array[i + offset]`.
    pub fn load(self, offset: i64) -> Expr {
        Expr::load(self.at(offset))
    }

    /// The strided reference `array[stride·i + offset]` (see the
    /// `simdize-stride` extension).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is 0.
    pub fn at_strided(self, stride: u32, offset: i64) -> ArrayRef {
        ArrayRef::strided(self.id, stride, offset)
    }

    /// A strided load expression.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is 0.
    pub fn load_strided(self, stride: u32, offset: i64) -> Expr {
        Expr::load(self.at_strided(stride, offset))
    }
}

/// Incremental builder for a [`LoopProgram`].
///
/// # Example
///
/// ```
/// use simdize_ir::{LoopBuilder, ScalarType, Expr};
/// let mut b = LoopBuilder::new(ScalarType::I16);
/// let dst = b.array("dst", 256, 0);
/// let src = b.array("src", 256, 6);
/// let gain = b.param("gain");
/// b.stmt(dst.at(0), src.load(1) * Expr::param(gain));
/// let program = b.finish(200)?;
/// assert_eq!(program.params().len(), 1);
/// # Ok::<(), simdize_ir::ValidateLoopError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LoopBuilder {
    elem: ScalarType,
    arrays: Vec<ArrayDecl>,
    params: Vec<ParamDecl>,
    stmts: Vec<Stmt>,
}

impl LoopBuilder {
    /// Starts a builder for a loop whose references all have element type
    /// `elem`.
    pub fn new(elem: ScalarType) -> LoopBuilder {
        LoopBuilder {
            elem,
            arrays: Vec::new(),
            params: Vec::new(),
            stmts: Vec::new(),
        }
    }

    /// The loop's uniform element type.
    pub fn elem(&self) -> ScalarType {
        self.elem
    }

    /// Declares an array of `len` elements whose base address sits
    /// `misalign` bytes past a vector-register boundary (compile-time
    /// known alignment).
    pub fn array(&mut self, name: impl Into<String>, len: u64, misalign: u32) -> ArrayHandle {
        self.declare(ArrayDecl::new(
            name,
            self.elem,
            len,
            AlignKind::Known(misalign),
        ))
    }

    /// Declares an array whose base alignment is only known at run time.
    pub fn array_runtime_align(&mut self, name: impl Into<String>, len: u64) -> ArrayHandle {
        self.declare(ArrayDecl::new(name, self.elem, len, AlignKind::Runtime))
    }

    /// Declares an array from a full [`ArrayDecl`].
    pub fn declare(&mut self, decl: ArrayDecl) -> ArrayHandle {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(decl);
        ArrayHandle { id }
    }

    /// Declares a loop-invariant runtime scalar parameter.
    pub fn param(&mut self, name: impl Into<String>) -> ParamId {
        let id = ParamId(self.params.len() as u32);
        self.params.push(ParamDecl::new(name));
        id
    }

    /// Appends the statement `target = rhs` to the loop body.
    pub fn stmt(&mut self, target: ArrayRef, rhs: Expr) -> &mut LoopBuilder {
        self.stmts.push(Stmt::new(target, rhs));
        self
    }

    /// Appends the reduction `target op= rhs`, folding every
    /// iteration's value into the single element
    /// `target.array[target.offset]`.
    pub fn reduce(&mut self, target: ArrayRef, op: crate::BinOp, rhs: Expr) -> &mut LoopBuilder {
        self.stmts.push(Stmt::reduce(target, op, rhs));
        self
    }

    /// Finishes with a compile-time trip count of `ub` iterations.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateLoopError`] if the assembled loop violates a
    /// §4.1 precondition.
    pub fn finish(self, ub: u64) -> Result<LoopProgram, ValidateLoopError> {
        self.finish_trip(TripCount::Known(ub))
    }

    /// Finishes with a trip count only known at run time.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateLoopError`] if the assembled loop violates a
    /// §4.1 precondition.
    pub fn finish_runtime_trip(self) -> Result<LoopProgram, ValidateLoopError> {
        self.finish_trip(TripCount::Runtime)
    }

    /// Finishes with an explicit [`TripCount`].
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateLoopError`] if the assembled loop violates a
    /// §4.1 precondition.
    pub fn finish_trip(self, trip: TripCount) -> Result<LoopProgram, ValidateLoopError> {
        LoopProgram::new(self.elem, self.arrays, self.params, trip, self.stmts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_paper_example() {
        let mut b = LoopBuilder::new(ScalarType::I32);
        let a = b.array("a", 128, 0);
        let bb = b.array("b", 128, 0);
        let c = b.array("c", 128, 0);
        b.stmt(a.at(3), bb.load(1) + c.load(2));
        let p = b.finish(100).unwrap();
        assert_eq!(p.stmts().len(), 1);
        assert_eq!(p.stmts()[0].target, a.at(3));
        assert_eq!(p.array(a.id()).name(), "a");
    }

    #[test]
    fn runtime_pieces() {
        let mut b = LoopBuilder::new(ScalarType::I32);
        let a = b.array_runtime_align("a", 64);
        let c = b.array("c", 64, 0);
        let k = b.param("k");
        b.stmt(a.at(0), c.load(0) + Expr::param(k));
        let p = b.finish_runtime_trip().unwrap();
        assert!(!p.all_alignments_known());
        assert_eq!(p.trip(), TripCount::Runtime);
        assert_eq!(p.params()[k.index()].name(), "k");
    }

    #[test]
    fn handle_is_copy_and_stable() {
        let mut b = LoopBuilder::new(ScalarType::I8);
        let a = b.array("a", 10, 0);
        let a2 = a;
        assert_eq!(a.id(), a2.id());
        assert_eq!(a.at(1).offset, 1);
    }
}
