//! The evaluation harness reproducing the paper's §5: synthesized-loop
//! suites, the OPD breakdown of Figures 11/12, and the speedup tables
//! (Tables 1/2).
//!
//! Every function here is deterministic given its seed; the `fig11`,
//! `fig12`, `table1`, `table2` and `coverage` binaries (and the
//! in-repo [`timing`] benches of the same names) are thin wrappers that
//! print the regenerated artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod study;
pub mod timing;

use simdize_prng::SplitMix64;

use simdize::{
    harmonic_mean, lower_bound_parts, synthesize, DiffConfig, LoopProgram, Policy, ReuseMode,
    ScalarType, Scheme, Simdizer, TripSpec, VectorShape, WorkloadSpec,
};

/// Number of loops per benchmark, as in the paper ("each benchmark …
/// consists of 50 distinct loops with identical (l, s, n, b, r)
/// characteristics").
pub const LOOPS_PER_BENCHMARK: usize = 50;

/// Builds a deterministic suite of `count` loops from one spec.
pub fn suite(spec: &WorkloadSpec, count: usize, base_seed: u64) -> Vec<LoopProgram> {
    (0..count)
        .map(|k| {
            let mut rng = SplitMix64::seed_from_u64(base_seed.wrapping_add(k as u64 * 7919));
            synthesize(spec, &mut rng)
        })
        .collect()
}

/// One bar of Figure 11/12: a scheme's OPD decomposed into the §5.3
/// lower bound, the data reorganization overhead actually introduced
/// beyond the bound, and the remaining (compiler/loop) overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRow {
    /// The scheme label (`SEQ`, `ZERO-sp`, `LAZY-pc`, …).
    pub label: String,
    /// Mean lower-bound component (bottom of the bar).
    pub bound: f64,
    /// Mean reorganization overhead over the bound (middle).
    pub reorg_overhead: f64,
    /// Mean remaining overhead (top).
    pub other_overhead: f64,
    /// Harmonic-mean total OPD (the paper's reported aggregate).
    pub total: f64,
}

/// Reproduces the Figure 11 (reassoc off) / Figure 12 (reassoc on)
/// experiment for the given spec: the `SEQ` scalar row, every
/// compile-time scheme, and the runtime-alignment `ZERO-pc`/`ZERO-sp`
/// rows the paper quotes for the no-static-information case.
///
/// # Panics
///
/// Panics if any loop fails to verify — reproduction runs double as
/// correctness checks.
pub fn figure_opd(spec: &WorkloadSpec, reassoc: bool, base_seed: u64) -> Vec<FigureRow> {
    let loops = suite(spec, LOOPS_PER_BENCHMARK, base_seed);
    let mut rows = Vec::new();

    // SEQ: the idealistic scalar count, e.g. 12 OPD for 1 × 6 loads.
    let seq: f64 = loops
        .iter()
        .map(|p| {
            let stmts = p.stmts().len() as f64;
            p.stmts()
                .iter()
                .map(|s| (s.rhs.loads().len() + s.rhs.op_count() + 1) as f64)
                .sum::<f64>()
                / stmts
        })
        .sum::<f64>()
        / loops.len() as f64;
    rows.push(FigureRow {
        label: "SEQ".into(),
        bound: seq,
        reorg_overhead: 0.0,
        other_overhead: 0.0,
        total: seq,
    });

    for scheme in Scheme::all() {
        rows.push(scheme_row(
            &loops,
            scheme.reassoc(reassoc),
            &scheme.label(),
            base_seed,
        ));
    }

    // Runtime-alignment rows: same shapes, alignments hidden from the
    // compiler.
    let rt_spec = spec.clone().runtime_align(true);
    let rt_loops = suite(&rt_spec, LOOPS_PER_BENCHMARK, base_seed ^ 0xACE1);
    for scheme in Scheme::runtime_contenders() {
        rows.push(scheme_row(
            &rt_loops,
            scheme.reassoc(reassoc),
            &format!("rt-{}", scheme.label()),
            base_seed,
        ));
    }
    rows
}

fn scheme_row(loops: &[LoopProgram], scheme: Scheme, label: &str, base_seed: u64) -> FigureRow {
    let mut bounds = Vec::new();
    let mut reorg = Vec::new();
    let mut others = Vec::new();
    let mut totals = Vec::new();
    for (k, program) in loops.iter().enumerate() {
        let report = Simdizer::new()
            .scheme(scheme)
            .evaluate_with(
                program,
                &DiffConfig::with_seed(base_seed ^ (k as u64 * 131 + 17)),
            )
            .unwrap_or_else(|e| panic!("{label} loop {k}: {e}"));
        assert!(report.verified, "{label} loop {k} diverged");
        let lb = lower_bound_parts(program, VectorShape::V16, scheme.policy);
        let measured_reorg = report.stats.reorg_ops() as f64 / report.data_produced as f64;
        let reorg_overhead = (measured_reorg - lb.shift_opd()).max(0.0);
        bounds.push(lb.opd());
        reorg.push(reorg_overhead);
        others.push((report.opd - lb.opd() - reorg_overhead).max(0.0));
        totals.push(report.opd);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    FigureRow {
        label: label.to_string(),
        bound: mean(&bounds),
        reorg_overhead: mean(&reorg),
        other_overhead: mean(&others),
        total: harmonic_mean(totals.iter().copied()).expect("positive opds"),
    }
}

/// Renders a figure as an aligned text table with proportional bars.
pub fn render_figure(title: &str, rows: &[FigureRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<14} {:>7} {:>8} {:>8} {:>8}  bar (#=bound, +=reorg, .=other)\n",
        "scheme", "bound", "reorg", "other", "opd"
    ));
    let scale = 6.0;
    for r in rows {
        let bar = format!(
            "{}{}{}",
            "#".repeat((r.bound * scale) as usize),
            "+".repeat((r.reorg_overhead * scale) as usize),
            ".".repeat((r.other_overhead * scale) as usize)
        );
        out.push_str(&format!(
            "{:<14} {:>7.3} {:>8.3} {:>8.3} {:>8.3}  {bar}\n",
            r.label, r.bound, r.reorg_overhead, r.other_overhead, r.total
        ));
    }
    out
}

/// One row of Table 1/2: the best-performing scheme with and without
/// compile-time alignment information, with the lower-bound speedups.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRow {
    /// The benchmark name (`S1*L2`, …).
    pub name: String,
    /// Best compile-time scheme label.
    pub best_static: String,
    /// Its aggregate speedup.
    pub static_speedup: f64,
    /// Lower-bound speedup with compile-time alignments.
    pub static_bound: f64,
    /// Best runtime-alignment scheme label.
    pub best_runtime: String,
    /// Its aggregate speedup.
    pub runtime_speedup: f64,
    /// Lower-bound speedup for the runtime case.
    pub runtime_bound: f64,
}

/// Reproduces Table 1 (`elem = i32`) / Table 2 (`elem = i16`): for each
/// loop shape, the best contender's aggregate speedup (total scalar
/// instructions over total simdized instructions, as in the paper's
/// footnote 7) with compile-time and with runtime alignments, plus the
/// lower-bound speedups.
///
/// # Panics
///
/// Panics if any loop fails to verify.
pub fn speedup_table(
    shapes: &[(usize, usize)],
    elem: ScalarType,
    base_seed: u64,
) -> Vec<SpeedupRow> {
    shapes
        .iter()
        .map(|&(s, l)| {
            let spec = WorkloadSpec::new(s, l)
                .elem(elem)
                .trip(TripSpec::KnownInRange(997, 1000));
            let static_loops = suite(&spec, LOOPS_PER_BENCHMARK, base_seed);
            let (best_static, static_speedup, static_bound) =
                best_scheme(&static_loops, &Scheme::contenders(), base_seed);

            let rt_spec = spec.clone().runtime_align(true);
            let rt_loops = suite(&rt_spec, LOOPS_PER_BENCHMARK, base_seed ^ 0xBEEF);
            let (best_runtime, runtime_speedup, runtime_bound) =
                best_scheme(&rt_loops, &Scheme::runtime_contenders(), base_seed);

            SpeedupRow {
                name: spec.name(),
                best_static,
                static_speedup,
                static_bound,
                best_runtime,
                runtime_speedup,
                runtime_bound,
            }
        })
        .collect()
}

fn best_scheme(loops: &[LoopProgram], schemes: &[Scheme], base_seed: u64) -> (String, f64, f64) {
    let mut best: Option<(String, f64)> = None;
    let mut bound_speedup = 0.0f64;
    for &scheme in schemes {
        let mut scalar_total = 0u64;
        let mut simd_total = 0u64;
        let mut lb_total = 0.0f64;
        for (k, program) in loops.iter().enumerate() {
            let report = Simdizer::new()
                .scheme(scheme)
                .evaluate_with(
                    program,
                    &DiffConfig::with_seed(base_seed ^ (k as u64 * 977 + 3)),
                )
                .unwrap_or_else(|e| panic!("{scheme} loop {k}: {e}"));
            assert!(report.verified);
            scalar_total += report.scalar_ideal;
            simd_total += report.stats.total();
            lb_total += lower_bound_parts(program, VectorShape::V16, scheme.policy).opd()
                * report.data_produced as f64;
        }
        let speedup = scalar_total as f64 / simd_total as f64;
        bound_speedup = bound_speedup.max(scalar_total as f64 / lb_total);
        if best.as_ref().is_none_or(|(_, s)| speedup > *s) {
            best = Some((scheme.label(), speedup));
        }
    }
    let (label, speedup) = best.expect("at least one scheme");
    (label, speedup, bound_speedup)
}

/// Renders a speedup table in the paper's Table 1/2 layout.
pub fn render_table(title: &str, rows: &[SpeedupRow], peak: u32) -> String {
    let mut out = format!("{title} (peak speedup {peak}x)\n");
    out.push_str(&format!(
        "{:<8} | {:<10} {:>7} {:>7} | {:<10} {:>7} {:>7}\n",
        "loop", "best(ct)", "actual", "LB", "best(rt)", "actual", "LB"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} | {:<10} {:>6.2}x {:>6.2}x | {:<10} {:>6.2}x {:>6.2}x\n",
            r.name,
            r.best_static,
            r.static_speedup,
            r.static_bound,
            r.best_runtime,
            r.runtime_speedup,
            r.runtime_bound
        ));
    }
    out
}

/// The loop shapes of Tables 1 and 2.
pub const TABLE_SHAPES: [(usize, usize); 6] = [(1, 2), (1, 4), (1, 6), (2, 4), (4, 4), (4, 8)];

/// The headline spec of Figures 11/12: one statement, six loads,
/// bias 30%, reuse 30%, integer elements.
pub fn figure_spec() -> WorkloadSpec {
    WorkloadSpec::new(1, 6)
        .bias(0.3)
        .reuse(0.3)
        .trip(TripSpec::KnownInRange(997, 1000))
}

/// A representative loop + scheme pair used by the timing benches: one
/// S1×L6 loop under dominant-shift with software pipelining.
pub fn representative() -> (LoopProgram, Scheme) {
    let mut rng = SplitMix64::seed_from_u64(2004);
    let program = synthesize(&figure_spec(), &mut rng);
    (
        program,
        Scheme::new(Policy::Dominant, ReuseMode::SoftwarePipeline),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::new(1, 3).trip(TripSpec::Known(200))
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite(&small_spec(), 3, 9);
        let b = suite(&small_spec(), 3, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn figure_rows_have_expected_shape() {
        // A tiny figure run: 50 loops but short trip counts keep it fast.
        let spec = WorkloadSpec::new(1, 4).trip(TripSpec::Known(200));
        let rows = figure_opd(&spec, false, 5);
        assert_eq!(rows.len(), 1 + 15 + 2);
        assert_eq!(rows[0].label, "SEQ");
        assert!((rows[0].total - 8.0).abs() < 1e-9); // 2l = 8 for l=4
        for r in &rows[1..] {
            assert!(r.total < rows[0].total, "{} did not beat SEQ", r.label);
            assert!(r.bound > 0.0);
        }
        // Reuse schemes beat their naive counterparts.
        let get = |l: &str| rows.iter().find(|r| r.label == l).unwrap().total;
        assert!(get("ZERO-sp") < get("ZERO"));
        assert!(get("LAZY-pc") < get("LAZY"));
        let text = render_figure("test", &rows);
        assert!(text.contains("SEQ"));
        assert!(text.contains("ZERO-sp"));
    }

    #[test]
    fn speedup_rows_have_expected_shape() {
        let rows = speedup_table(&[(1, 2), (2, 4)], ScalarType::I32, 3);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.static_speedup > 1.0, "{}: {}", r.name, r.static_speedup);
            assert!(r.static_speedup <= 4.0);
            assert!(r.runtime_speedup <= r.static_speedup * 1.05);
            assert!(r.static_bound >= r.static_speedup * 0.8);
        }
        let text = render_table("test", &rows, 4);
        assert!(text.contains("S1*L2"));
    }
}
