//! Regenerates Table 2: speedup factors with 8 short ints per register.
//!
//! Run with: `cargo run -p simdize-bench --bin table2 --release`

use simdize::ScalarType;

fn main() {
    let rows = simdize_bench::speedup_table(&simdize_bench::TABLE_SHAPES, ScalarType::I16, 2004);
    print!(
        "{}",
        simdize_bench::render_table("Table 2 — 8 × i16 per register", &rows, 8)
    );
    println!("\npaper reference points (actual/LB): S1*L2 5.10/5.85 … S4*L8 6.05/7.32");
    println!("compile-time; 4.22/4.63 … 3.88/5.67 runtime.");
}
