//! Load generator for `simdize serve`: drives an in-process server
//! with thousands of concurrent client connections over a deterministic
//! loop/policy/seed mix and writes `BENCH_server.json`
//! (`simdize-bench-server/v1`, appended to the bench history) with
//! throughput, client-observed p50/p95 latency (recorded into
//! `simdize-telemetry` histograms) and the shared kernel cache's hit
//! rate.
//!
//! Run with: `cargo run -p simdize-bench --bin loadgen --release -- [options]`
//!
//! ```text
//! --quick             64 connections (CI smoke mode; default 1200)
//! --connections N     concurrent client connections
//! --requests N        requests per connection (default 4)
//! --out PATH          JSON report path (default BENCH_server.json)
//! --history-dir DIR   bench-history directory (default bench_history)
//! --no-history        skip appending to the bench history
//! ```
//!
//! Every client holds its connection open for the whole run, so the
//! configured connection count is the *sustained* concurrency, not a
//! total. Requests that hit backpressure (`busy`) are retried with a
//! short backoff and counted separately; any other failure aborts the
//! bench.

use simdize_server::{Server, ServerConfig};
use simdize_telemetry::history;
use simdize_telemetry::json::{self, Json};
use simdize_telemetry::Histogram;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const FIG1: &str = "arrays { a: i32[216] @ 0; b: i32[216] @ 4; c: i32[216] @ 8; } \
                    for i in 0..200 { a[i+3] = b[i+1] + c[i+2]; }";
const RUNTIME: &str = "arrays { a: i32[216] @ ?; b: i32[216] @ ?; } \
                       for i in 0..ub { a[i] = b[i+1]; }";
const FIR: &str = "arrays { a: i32[216] @ 0; b: i32[216] @ 0; } \
                   for i in 0..200 { a[i] = b[i] + b[i+1] + b[i+2] + b[i+3]; }";

/// The deterministic request mix; `pick(k)` cycles it per connection
/// and request index so every run issues the identical workload.
fn request_mix() -> Vec<String> {
    let fig1 = json::escape(FIG1);
    let runtime = json::escape(RUNTIME);
    let fir = json::escape(FIR);
    vec![
        format!(r#"{{"v":1,"id":1,"cmd":"run","source":"{fig1}","seed":1}}"#),
        format!(r#"{{"v":1,"id":2,"cmd":"run","source":"{runtime}","seed":2,"ub":200}}"#),
        format!(r#"{{"v":1,"id":3,"cmd":"run","source":"{fir}","policy":"zero","seed":3}}"#),
        format!(r#"{{"v":1,"id":4,"cmd":"compile","source":"{fig1}","policy":"eager"}}"#),
        format!(r#"{{"v":1,"id":5,"cmd":"sweep","source":"{runtime}","seed":0,"ub":150,"count":4}}"#),
        format!(r#"{{"v":1,"id":6,"cmd":"run","source":"{fig1}","seed":4}}"#),
        r#"{"v":1,"id":7,"cmd":"ping"}"#.to_string(),
        format!(r#"{{"v":1,"id":8,"cmd":"run","source":"{runtime}","seed":5,"ub":200}}"#),
    ]
}

struct ClientOutcome {
    latency_us: Histogram,
    ok: u64,
    busy_retries: u64,
    /// Every trace id observed on this connection, busy responses
    /// included — the bench asserts global uniqueness at the end.
    trace_ids: Vec<String>,
}

/// Pulls the `"trace":"..."` field out of a response envelope; every
/// response — ok, error or busy — must carry one.
fn extract_trace_id(line: &str) -> String {
    let start = line
        .find("\"trace\":\"")
        .unwrap_or_else(|| panic!("response carries no trace id: {}", line.trim_end()))
        + "\"trace\":\"".len();
    let rest = &line[start..];
    let end = rest.find('"').expect("unterminated trace id");
    rest[..end].to_string()
}

fn connect_with_retry(addr: SocketAddr) -> TcpStream {
    let mut delay = Duration::from_millis(1);
    for _ in 0..10 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(100));
            }
        }
    }
    TcpStream::connect(addr).expect("connect to in-process server")
}

/// Connects and proves the connection live with a ping round-trip.
///
/// A burst of hundreds of simultaneous SYNs can overflow the listen
/// backlog; the kernel then drops the final ACK, leaving the client
/// with a socket that looks connected but was never accepted (it dies
/// with a reset at first use). Validating with a ping before the
/// barrier guarantees every connection counted by the bench is fully
/// established server-side before the measured window opens.
fn establish(addr: SocketAddr) -> TcpStream {
    let mut delay = Duration::from_millis(1);
    for _ in 0..20 {
        let conn = connect_with_retry(addr);
        let _ = conn.set_nodelay(true);
        let mut writer = match conn.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        let mut reader = BufReader::new(conn.try_clone().expect("clone stream"));
        let mut line = String::new();
        let alive = writeln!(writer, r#"{{"v":1,"id":0,"cmd":"ping"}}"#).is_ok()
            && matches!(reader.read_line(&mut line), Ok(n) if n > 0)
            && line.contains("\"ok\":true");
        if alive {
            return conn;
        }
        std::thread::sleep(delay);
        delay = (delay * 2).min(Duration::from_millis(100));
    }
    panic!("could not establish a validated connection to {addr}");
}

/// One client: connect, wait for the barrier, then issue `requests`
/// picks from the mix, retrying busy rejections with backoff.
fn client(
    addr: SocketAddr,
    k: usize,
    requests: usize,
    mix: &[String],
    barrier: &Barrier,
) -> ClientOutcome {
    let conn = establish(addr);
    let mut writer = conn.try_clone().expect("clone stream");
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    let mut outcome = ClientOutcome {
        latency_us: Histogram::new(),
        ok: 0,
        busy_retries: 0,
        trace_ids: Vec::new(),
    };
    barrier.wait();
    for i in 0..requests {
        let request = &mix[(k.wrapping_mul(7).wrapping_add(i)) % mix.len()];
        let mut backoff = Duration::from_micros(500);
        loop {
            let t0 = Instant::now();
            writeln!(writer, "{request}").expect("send request");
            line.clear();
            reader.read_line(&mut line).expect("read response");
            let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
            outcome.trace_ids.push(extract_trace_id(&line));
            if line.contains("\"busy\":true") {
                outcome.busy_retries += 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(20));
                continue;
            }
            assert!(
                line.contains("\"ok\":true"),
                "request failed: {request} -> {}",
                line.trim_end()
            );
            outcome.latency_us.observe(us);
            outcome.ok += 1;
            break;
        }
    }
    outcome
}

/// Sends one request on a fresh control connection and returns the
/// parsed response.
fn control(addr: SocketAddr, request: &str) -> Json {
    let conn = connect_with_retry(addr);
    let mut writer = conn.try_clone().expect("clone stream");
    let mut reader = BufReader::new(conn);
    writeln!(writer, "{request}").expect("send control request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read control response");
    json::parse(&line).expect("parse control response")
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    mode: &str,
    connections: usize,
    requests_total: u64,
    busy_retries: u64,
    elapsed_s: f64,
    latency: &Histogram,
    cache_hit_rate: f64,
    workers: usize,
) -> String {
    format!(
        "{{\n  \"schema\": \"simdize-bench-server/v1\",\n  \"mode\": \"{mode}\",\n  \"server\": [\n    {{\n      \
         \"name\": \"mixed\",\n      \
         \"connections\": {connections},\n      \
         \"workers\": {workers},\n      \
         \"requests\": {requests_total},\n      \
         \"busy_retries\": {busy_retries},\n      \
         \"requests_per_sec\": {:.0},\n      \
         \"p50_us\": {},\n      \
         \"p95_us\": {},\n      \
         \"mean_us\": {:.1},\n      \
         \"max_us\": {},\n      \
         \"cache_hit_rate\": {:.4}\n    }}\n  ]\n}}\n",
        requests_total as f64 / elapsed_s.max(1e-9),
        latency.quantile(0.5),
        latency.quantile(0.95),
        latency.mean(),
        latency.max(),
        cache_hit_rate,
    )
}

fn main() {
    let mut quick = false;
    let mut connections: Option<usize> = None;
    let mut requests = 4usize;
    let mut out_path = "BENCH_server.json".to_string();
    let mut history_dir = Some("bench_history".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--connections" => {
                connections = Some(
                    args.next()
                        .expect("--connections needs a value")
                        .parse()
                        .expect("--connections expects a number"),
                )
            }
            "--requests" => {
                requests = args
                    .next()
                    .expect("--requests needs a value")
                    .parse()
                    .expect("--requests expects a number")
            }
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--history-dir" => {
                history_dir = Some(args.next().expect("--history-dir needs a value"))
            }
            "--no-history" => history_dir = None,
            other => panic!("unknown option `{other}`"),
        }
    }
    let connections = connections.unwrap_or(if quick { 64 } else { 1200 });

    let workers = std::thread::available_parallelism().map_or(2, |n| n.get().max(2));
    // Each connection has at most one request in flight, so a queue as
    // deep as the connection count never rejects; anything smaller
    // turns the bench into a busy-retry storm that measures the
    // backpressure path instead of request throughput (that path is
    // covered by tests/server.rs).
    let config = ServerConfig {
        workers,
        queue_depth: connections + 16,
        sweep_threads: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind in-process server");
    let addr = server.local_addr();
    let serve_thread = std::thread::spawn(move || server.serve());

    println!(
        "loadgen: {connections} concurrent connection(s) x {requests} request(s) \
         against {addr} ({workers} worker(s))"
    );
    let mix = Arc::new(request_mix());
    let barrier = Arc::new(Barrier::new(connections + 1));
    let clients: Vec<_> = (0..connections)
        .map(|k| {
            let mix = Arc::clone(&mix);
            let barrier = Arc::clone(&barrier);
            std::thread::Builder::new()
                .name(format!("loadgen-{k}"))
                .stack_size(128 * 1024)
                .spawn(move || client(addr, k, requests, &mix, &barrier))
                .expect("spawn client thread")
        })
        .collect();
    // Every client is connected before the clock starts: the barrier
    // releases all of them at once, so the connection count is held
    // for the whole measured window.
    barrier.wait();
    let t0 = Instant::now();
    let mut latency = Histogram::new();
    let mut ok_total = 0u64;
    let mut busy_retries = 0u64;
    let mut trace_ids = std::collections::HashSet::new();
    let mut responses_total = 0u64;
    for handle in clients {
        let outcome = handle.join().expect("client thread panicked");
        latency.merge(&outcome.latency_us);
        ok_total += outcome.ok;
        busy_retries += outcome.busy_retries;
        responses_total += outcome.trace_ids.len() as u64;
        for id in outcome.trace_ids {
            assert!(
                trace_ids.insert(id.clone()),
                "duplicate trace id across connections: {id}"
            );
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    let stats = control(addr, r#"{"v":1,"id":1,"cmd":"stats"}"#);
    let cache = stats
        .get("result")
        .and_then(|r| r.get("cache"))
        .expect("stats response carries cache block");
    let cache_hit_rate = cache.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0);
    let shutdown = control(addr, r#"{"v":1,"id":2,"cmd":"shutdown"}"#);
    assert_eq!(shutdown.get("ok"), Some(&Json::Bool(true)));
    let summary = serve_thread
        .join()
        .expect("server thread panicked")
        .expect("server failed");

    println!(
        "{ok_total} request(s) in {elapsed_s:.2} s ({:.0} req/s), p50 {} us, p95 {} us, \
         {busy_retries} busy retries, cache hit rate {:.0}%",
        ok_total as f64 / elapsed_s.max(1e-9),
        latency.quantile(0.5),
        latency.quantile(0.95),
        cache_hit_rate * 100.0
    );
    println!(
        "server summary: {} request(s), {} connection(s), {} busy, {} error(s)",
        summary.requests, summary.connections, summary.busy, summary.errors
    );
    assert_eq!(summary.errors, 0, "server reported request errors");
    assert_eq!(ok_total, (connections * requests) as u64);
    assert_eq!(
        trace_ids.len() as u64,
        responses_total,
        "every response must carry a globally unique trace id"
    );
    println!(
        "trace ids: {} observed, all unique across {connections} connection(s)",
        trace_ids.len()
    );
    assert!(
        summary.connections >= connections as u64,
        "server saw fewer connections than the loadgen opened"
    );

    let json = render_json(
        if quick { "quick" } else { "full" },
        connections,
        ok_total,
        busy_retries,
        elapsed_s,
        &latency,
        cache_hit_rate,
        workers,
    );
    std::fs::write(&out_path, &json).expect("write JSON report");
    println!("wrote {out_path}");

    if let Some(dir) = history_dir {
        let meta = history::HistoryMeta::now(std::path::Path::new("."));
        let entry = history::append_entry(std::path::Path::new(&dir), &meta, &json)
            .expect("append bench-history entry");
        println!("appended {}", entry.display());
    }
}
