//! One-command reproduction of the paper's entire evaluation: prints
//! Figures 11 and 12, Tables 1 and 2, and runs a compact coverage
//! sweep, all with the default seed.
//!
//! Run with: `cargo run -p simdize-bench --bin repro --release`

use simdize::{synthesize, DiffConfig, ScalarType, Scheme, Simdizer, TripSpec, WorkloadSpec};
use simdize_prng::SplitMix64;

fn main() {
    println!("reproducing Eichenberger, Wu & O'Brien, PLDI 2004\n");

    let rows = simdize_bench::figure_opd(&simdize_bench::figure_spec(), false, 2004);
    print!(
        "{}",
        simdize_bench::render_figure(
            "Figure 11 — operations per datum (S1*L6 i32, reassoc OFF)",
            &rows
        )
    );
    println!();
    let rows = simdize_bench::figure_opd(&simdize_bench::figure_spec(), true, 2004);
    print!(
        "{}",
        simdize_bench::render_figure(
            "Figure 12 — operations per datum (S1*L6 i32, reassoc ON)",
            &rows
        )
    );
    println!();

    let rows = simdize_bench::speedup_table(&simdize_bench::TABLE_SHAPES, ScalarType::I32, 2004);
    print!(
        "{}",
        simdize_bench::render_table("Table 1 — 4 × i32 per register", &rows, 4)
    );
    println!();
    let rows = simdize_bench::speedup_table(&simdize_bench::TABLE_SHAPES, ScalarType::I16, 2004);
    print!(
        "{}",
        simdize_bench::render_table("Table 2 — 8 × i16 per register", &rows, 8)
    );
    println!();

    // Compact §5.4 coverage pass (the full sweep is `--bin coverage`).
    let mut loops = 0usize;
    let mut runs = 0usize;
    for seed in 0..64u64 {
        let mut meta = SplitMix64::seed_from_u64(seed * 7 + 1);
        let spec = WorkloadSpec::new(
            meta.range_inclusive(1, 4) as usize,
            meta.range_inclusive(1, 8) as usize,
        )
        .bias(meta.range_f64(0.0, 1.0))
        .reuse(meta.range_f64(0.0, 1.0))
        .trip(TripSpec::KnownInRange(997, 1000))
        .runtime_align(seed % 3 == 0);
        let mut rng = SplitMix64::seed_from_u64(seed);
        let program = synthesize(&spec, &mut rng);
        loops += 1;
        let schemes = if spec.runtime_align {
            Scheme::runtime_contenders()
        } else {
            Scheme::contenders()
        };
        for scheme in schemes {
            let report = Simdizer::new()
                .scheme(scheme)
                .evaluate_with(&program, &DiffConfig::with_seed(seed))
                .unwrap_or_else(|e| panic!("loop {seed} under {scheme}: {e}"));
            assert!(report.verified);
            runs += 1;
        }
    }
    println!("coverage sample: {loops} loops, {runs} verified simdized executions");
    println!("(full >1000-loop sweep: cargo run -p simdize-bench --bin coverage --release)");
}
