//! One-command reproduction of the paper's entire evaluation: prints
//! Figures 11 and 12, Tables 1 and 2, and runs a compact coverage
//! sweep, all with the default seed.
//!
//! Run with: `cargo run -p simdize-bench --bin repro --release`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simdize::{synthesize, DiffConfig, ScalarType, Scheme, Simdizer, TripSpec, WorkloadSpec};

fn main() {
    println!("reproducing Eichenberger, Wu & O'Brien, PLDI 2004\n");

    let rows = simdize_bench::figure_opd(&simdize_bench::figure_spec(), false, 2004);
    print!(
        "{}",
        simdize_bench::render_figure(
            "Figure 11 — operations per datum (S1*L6 i32, reassoc OFF)",
            &rows
        )
    );
    println!();
    let rows = simdize_bench::figure_opd(&simdize_bench::figure_spec(), true, 2004);
    print!(
        "{}",
        simdize_bench::render_figure(
            "Figure 12 — operations per datum (S1*L6 i32, reassoc ON)",
            &rows
        )
    );
    println!();

    let rows = simdize_bench::speedup_table(&simdize_bench::TABLE_SHAPES, ScalarType::I32, 2004);
    print!(
        "{}",
        simdize_bench::render_table("Table 1 — 4 × i32 per register", &rows, 4)
    );
    println!();
    let rows = simdize_bench::speedup_table(&simdize_bench::TABLE_SHAPES, ScalarType::I16, 2004);
    print!(
        "{}",
        simdize_bench::render_table("Table 2 — 8 × i16 per register", &rows, 8)
    );
    println!();

    // Compact §5.4 coverage pass (the full sweep is `--bin coverage`).
    let mut loops = 0usize;
    let mut runs = 0usize;
    for seed in 0..64u64 {
        let mut meta = StdRng::seed_from_u64(seed * 7 + 1);
        let spec = WorkloadSpec::new(meta.gen_range(1..=4), meta.gen_range(1..=8))
            .bias(meta.gen_range(0.0..=1.0))
            .reuse(meta.gen_range(0.0..=1.0))
            .trip(TripSpec::KnownInRange(997, 1000))
            .runtime_align(seed % 3 == 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let program = synthesize(&spec, &mut rng);
        loops += 1;
        let schemes = if spec.runtime_align {
            Scheme::runtime_contenders()
        } else {
            Scheme::contenders()
        };
        for scheme in schemes {
            let report = Simdizer::new()
                .scheme(scheme)
                .evaluate_with(&program, &DiffConfig::with_seed(seed))
                .unwrap_or_else(|e| panic!("loop {seed} under {scheme}: {e}"));
            assert!(report.verified);
            runs += 1;
        }
    }
    println!("coverage sample: {loops} loops, {runs} verified simdized executions");
    println!("(full >1000-loop sweep: cargo run -p simdize-bench --bin coverage --release)");
}
