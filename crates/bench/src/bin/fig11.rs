//! Regenerates Figure 11: OPD per scheme on the headline S1×L6 integer
//! benchmark (bias 30%, reuse 30%), common offset reassociation OFF.
//!
//! Run with: `cargo run -p simdize-bench --bin fig11 --release`

fn main() {
    let rows = simdize_bench::figure_opd(&simdize_bench::figure_spec(), false, 2004);
    print!(
        "{}",
        simdize_bench::render_figure(
            "Figure 11 — operations per datum, S1*L6 i32, bias 30%, reuse 30%, reassoc OFF",
            &rows
        )
    );
    println!("\npaper reference points: SEQ 12.0; best schemes 4.022-4.164 (LB 3.587);");
    println!("schemes without reuse 5.372-10.182; runtime zero-shift 4.963 (LB 4.750).");
}
