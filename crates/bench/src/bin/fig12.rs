//! Regenerates Figure 12: same experiment as Figure 11 with common
//! offset reassociation ON.
//!
//! Run with: `cargo run -p simdize-bench --bin fig12 --release`

fn main() {
    let rows = simdize_bench::figure_opd(&simdize_bench::figure_spec(), true, 2004);
    print!(
        "{}",
        simdize_bench::render_figure(
            "Figure 12 — operations per datum, S1*L6 i32, bias 30%, reuse 30%, reassoc ON",
            &rows
        )
    );
    println!("\npaper reference points: top-3 schemes improve to 3.823-3.963 from");
    println!("4.022-4.164, with lazy/dominant reaching no shift overhead over LB.");
}
