//! Regenerates Table 1: speedup factors of simdized versus scalar code
//! with 4 ints per register, best policy, compile-time vs runtime
//! alignments, against the lower-bound speedups.
//!
//! Run with: `cargo run -p simdize-bench --bin table1 --release`

use simdize::ScalarType;

fn main() {
    let rows = simdize_bench::speedup_table(&simdize_bench::TABLE_SHAPES, ScalarType::I32, 2004);
    print!(
        "{}",
        simdize_bench::render_table("Table 1 — 4 × i32 per register", &rows, 4)
    );
    println!("\npaper reference points (actual/LB): S1*L2 2.72/3.17 … S4*L8 3.71/3.93");
    println!("compile-time; 2.15/2.36 … 2.17/2.78 runtime. Expected shapes: speedup");
    println!("grows with loop size; runtime alignment costs 20-40%.");
}
