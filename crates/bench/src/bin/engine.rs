//! Engine telemetry harness: measures the compiled engine's throughput
//! (fused and unfused) against the `simdize-vm` interpreter, plus the
//! effect of the sweep compilation cache, and writes the results to
//! `BENCH_engine.json` so later changes have a trajectory to beat.
//!
//! Run with: `cargo run -p simdize-bench --bin engine --release -- [options]`
//!
//! ```text
//! --quick        smaller trip counts and fewer seeds (CI smoke mode)
//! --out PATH     where to write the JSON report (default BENCH_engine.json)
//! --floor X      minimum fused-engine speedup vs the interpreter
//!                (default 5; the harness exits non-zero below it)
//! --threads N    sweep worker threads (default: available parallelism)
//! --history-dir DIR   where to append the timestamped history entry
//!                (default bench_history)
//! --no-history   skip appending to the bench history
//! ```
//!
//! Besides the flat report, every run appends a
//! `simdize-bench-history/v1` entry (timestamp + git SHA + host
//! fingerprint wrapping the report) to the history directory, so
//! `simdize bench diff` has a trajectory to compare against. The entry
//! is appended even when a perf gate fails — a regression you can
//! diff is worth more than a missing data point.
//!
//! The kernel set is steady-state dominated by construction: large
//! trip counts over misaligned streams, where the trace fusion pass
//! collapses `vload`+`vshiftpair` chains. Kernels marked
//! `expect_fused_gain` must show fused ≥ 1.3× unfused — and, when a
//! real SIMD ISA dispatched, the `std::arch` intrinsics backend
//! (`native_*` columns) ≥ 1.5× the fused interpreter — or the harness
//! exits non-zero.

use simdize::{
    parse_program, run_simd, run_sweep_collect, run_sweep_with, CacheMode, IsaLevel,
    KernelOptions, MemoryImage, PredecodedKernel, RunInput, SimdKernel, Simdizer, SweepJob,
    SweepOptions, SweepStats, VectorShape,
};
use simdize_bench::timing::{black_box, Harness};
use simdize_telemetry::history;
use std::fmt::Write as _;
use std::time::Instant;

struct KernelSpec {
    name: &'static str,
    source: String,
    trip: u64,
    /// Whether the steady state is dominated by fusable load/shift
    /// chains, making the 1.3× fused-vs-unfused bar a hard requirement.
    expect_fused_gain: bool,
}

fn kernel_specs(quick: bool) -> Vec<KernelSpec> {
    let n: u64 = if quick { 100_000 } else { 1_000_000 };
    let len = n + 16;
    vec![
        // The paper's Figure 1 loop: two misaligned loads, one
        // misaligned store. The store-side shift operates on computed
        // values and cannot fuse, so the gain is moderate.
        KernelSpec {
            name: "fig1",
            source: format!(
                "arrays {{ a: i32[{len}] @ 0; b: i32[{len}] @ 4; c: i32[{len}] @ 8; }}
                 for i in 0..{n} {{ a[i+3] = b[i+1] + c[i+2]; }}"
            ),
            trip: n,
            expect_fused_gain: true,
        },
        // Six misaligned input streams reduced into one aligned store:
        // every load chain fuses, but the five lane additions per
        // statement are untouched by fusion and dilute the gain to
        // right around 1.3x — reported, not gated.
        KernelSpec {
            name: "chain6",
            source: format!(
                "arrays {{ a: i32[{len}] @ 0; b: i32[{len}] @ 4; c: i32[{len}] @ 8;
                           d: i32[{len}] @ 12; e: i32[{len}] @ 4; f: i32[{len}] @ 8;
                           g: i32[{len}] @ 12; }}
                 for i in 0..{n} {{ a[i] = b[i+1] + c[i+2] + d[i+3] + e[i+3] + f[i+1] + g[i+2]; }}"
            ),
            trip: n,
            expect_fused_gain: false,
        },
        // A 4-tap FIR over one stream: four offsets of the same array,
        // classic predictive-commoning/shift territory. Like chain6,
        // arithmetic-diluted — reported, not gated.
        KernelSpec {
            name: "fir4",
            source: format!(
                "arrays {{ a: i32[{len}] @ 0; b: i32[{len}] @ 0; }}
                 for i in 0..{n} {{ a[i] = b[i] + b[i+1] + b[i+2] + b[i+3]; }}"
            ),
            trip: n,
            expect_fused_gain: false,
        },
        // Pure data reorganization: a misaligned copy is nothing but
        // load/shift/store, so fusion sheds the largest op fraction.
        KernelSpec {
            name: "copy3",
            source: format!(
                "arrays {{ a: i32[{len}] @ 0; b: i32[{len}] @ 12; }}
                 for i in 0..{n} {{ a[i] = b[i+3]; }}"
            ),
            trip: n,
            expect_fused_gain: true,
        },
    ]
}

struct KernelRow {
    name: &'static str,
    trip: u64,
    stats_total: u64,
    fused_ns: f64,
    unfused_ns: f64,
    interp_ns: f64,
    native_ns: f64,
    speedup_vs_interp: f64,
    fused_vs_unfused: f64,
    /// How much faster the `std::arch` intrinsics backend runs than the
    /// fused interpreter it was lowered from.
    native_vs_fused: f64,
    expect_fused_gain: bool,
    fusion: simdize::FusionStats,
}

fn bench_kernel(c: &mut Harness, spec: &KernelSpec) -> KernelRow {
    let program = parse_program(&spec.source).expect("bench kernel parses");
    let compiled = Simdizer::new().compile(&program).expect("bench kernel compiles");
    let input = RunInput::with_ub(spec.trip);
    let image = MemoryImage::with_seed(&program, VectorShape::V16, 2004);
    let pre = PredecodedKernel::new(&compiled).expect("bench kernel pre-decodes");
    let fused = pre
        .bake(&image, &input, &KernelOptions::new().disassembly(false))
        .expect("fused bake");
    let unfused = pre
        .bake(
            &image,
            &input,
            &KernelOptions::new().fuse(false).disassembly(false),
        )
        .expect("unfused bake");

    let fused_ns = {
        let mut img = image.clone();
        c.bench_function(&format!("{}/engine-fused", spec.name), |b| {
            b.iter(|| fused.run(black_box(&mut img)).unwrap())
        })
        .median_ns
    };
    let unfused_ns = {
        let mut img = image.clone();
        c.bench_function(&format!("{}/engine-unfused", spec.name), |b| {
            b.iter(|| unfused.run(black_box(&mut img)).unwrap())
        })
        .median_ns
    };
    let interp_ns = {
        let mut img = image.clone();
        c.bench_function(&format!("{}/interp", spec.name), |b| {
            b.iter(|| run_simd(&compiled, black_box(&mut img), &input).unwrap())
        })
        .median_ns
    };
    let native_ns = {
        let lowered = SimdKernel::lower_detected(&fused);
        let mut img = image.clone();
        c.bench_function(&format!("{}/native", spec.name), |b| {
            b.iter(|| lowered.run(black_box(&mut img)).unwrap())
        })
        .median_ns
    };

    KernelRow {
        name: spec.name,
        trip: spec.trip,
        stats_total: fused.stats().total(),
        fused_ns,
        unfused_ns,
        interp_ns,
        native_ns,
        speedup_vs_interp: interp_ns / fused_ns,
        fused_vs_unfused: unfused_ns / fused_ns,
        native_vs_fused: fused_ns / native_ns,
        expect_fused_gain: spec.expect_fused_gain,
        fusion: fused.fusion_stats(),
    }
}

struct SweepRow {
    name: &'static str,
    seeds: u64,
    threads: usize,
    cached_ms: f64,
    uncached_ms: f64,
}

/// Best-of-3 wall clock for one sweep configuration, verifying every
/// seed each time.
fn time_sweep(jobs: &[SweepJob], opts: SweepOptions) -> f64 {
    (0..3)
        .map(|_| {
            let t0 = Instant::now();
            let outcomes = run_sweep_with(black_box(jobs), opts);
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            assert!(
                outcomes.iter().all(|o| o.as_ref().unwrap().verified),
                "sweep seed failed verification"
            );
            dt
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_sweep(
    name: &'static str,
    source: &str,
    ub: u64,
    seeds: u64,
    threads: usize,
) -> SweepRow {
    let program = parse_program(source).expect("sweep program parses");
    let compiled = Simdizer::new().compile(&program).expect("sweep program compiles");
    let jobs: Vec<SweepJob> = (0..seeds)
        .map(|s| SweepJob::new(compiled.clone(), s, ub))
        .collect();
    let cached_ms = time_sweep(&jobs, SweepOptions::new(threads));
    let uncached_ms = time_sweep(&jobs, SweepOptions::uncached(threads));
    SweepRow {
        name,
        seeds,
        threads,
        cached_ms,
        uncached_ms,
    }
}

/// The 128-job mixed-program sweep: interleaved distinct programs are
/// the worst case for the legacy per-worker single-slot cache (every
/// program switch re-bakes) and the best case for the sharded shared
/// cache (each program bakes once, process-wide).
struct MixedRow {
    programs: usize,
    seeds: u64,
    threads: usize,
    shared_ms: f64,
    slot_ms: f64,
    shared: SweepStats,
    slot: SweepStats,
}

/// Best-of-3 wall clock plus the stats of the fastest run.
fn time_sweep_collect(jobs: &[SweepJob], opts: SweepOptions) -> (f64, SweepStats) {
    let mut best: Option<(f64, SweepStats)> = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let (outcomes, stats) = run_sweep_collect(black_box(jobs), opts);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            outcomes.iter().all(|o| o.as_ref().unwrap().verified),
            "mixed sweep seed failed verification"
        );
        if best.as_ref().is_none_or(|(b, _)| dt < *b) {
            best = Some((dt, stats));
        }
    }
    best.expect("three timed runs")
}

fn bench_mixed(quick: bool, threads: usize) -> MixedRow {
    // Short trips keep the O(ub) execute/verify work from drowning the
    // O(program) bake work the cache exists to amortize — this is the
    // regime the serve workload lives in (many small requests).
    let ub = 150u64;
    let len = ub + 16;
    // Eight structurally distinct Figure-1-style programs (offsets and
    // alignments rotated), all with compile-time-known alignments so
    // each program needs exactly one bake per layout.
    let programs: Vec<_> = (0..8)
        .map(|k| {
            let (x, y, z) = (k % 4, (k + 1) % 4, (k + 2) % 4);
            let source = format!(
                "arrays {{ a: i32[{len}] @ {}; b: i32[{len}] @ {}; c: i32[{len}] @ {}; }}
                 for i in 0..{ub} {{ a[i+{z}] = b[i+{x}] + c[i+{y}]; }}",
                4 * x,
                4 * y,
                4 * z
            );
            let program = parse_program(&source).expect("mixed program parses");
            Simdizer::new().compile(&program).expect("mixed program compiles")
        })
        .collect();
    let seeds_per_program = if quick { 8 } else { 16 };
    let jobs: Vec<SweepJob> = (0..seeds_per_program)
        .flat_map(|s| {
            programs
                .iter()
                .map(move |p| (s, p.clone()))
                .map(|(s, p)| SweepJob::new(p, s, ub))
        })
        .collect();
    let (shared_ms, shared) = time_sweep_collect(&jobs, SweepOptions::new(threads));
    let (slot_ms, slot) = time_sweep_collect(
        &jobs,
        SweepOptions::new(threads).cache_mode(CacheMode::SlotPerWorker),
    );
    MixedRow {
        programs: programs.len(),
        seeds: jobs.len() as u64,
        threads,
        shared_ms,
        slot_ms,
        shared,
        slot,
    }
}

/// Wall-clock of one quick bounded-equivalence proof — the cost CI
/// pays per loop in its `verify --quick` step, tracked in the history
/// so prover slowdowns show up in `bench diff`.
struct VerifyRow {
    wall_ms: f64,
    units: u64,
    runs: u64,
    proved: bool,
}

fn bench_verify(threads: usize) -> VerifyRow {
    let source = "arrays { a: i32[80] @ 0; b: i32[80] @ 4; c: i32[80] @ 8; }
                  for i in 0..64 { a[i+1] = b[i] + c[i+2]; }";
    let mut vopts = simdize::VerifyOptions::quick();
    vopts.threads = threads;
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let report =
            simdize::prove_source("bench", black_box(source), &vopts).expect("verify parses");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(report);
    }
    let report = last.expect("three timed proofs");
    assert!(report.proved, "bench verify loop must prove");
    VerifyRow {
        wall_ms: best,
        units: report.units_compiled,
        runs: report.runs,
        proved: report.proved,
    }
}

fn render_json(
    mode: &str,
    floor: f64,
    kernels: &[KernelRow],
    sweeps: &[SweepRow],
    mixed: &MixedRow,
    verify: &VerifyRow,
    study: &[simdize_bench::study::StudyCell],
) -> String {
    let ops_per_sec = |total: u64, ns: f64| total as f64 / (ns * 1e-9);
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"simdize-bench-engine/v1\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"isa\": \"{}\",", IsaLevel::detect());
    let _ = writeln!(out, "  \"floor_vs_interp\": {floor},");
    let _ = writeln!(out, "  \"kernels\": [");
    for (i, k) in kernels.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", k.name);
        let _ = writeln!(out, "      \"trip\": {},", k.trip);
        let _ = writeln!(out, "      \"stats_total\": {},", k.stats_total);
        let _ = writeln!(out, "      \"fused_ns\": {:.0},", k.fused_ns);
        let _ = writeln!(out, "      \"unfused_ns\": {:.0},", k.unfused_ns);
        let _ = writeln!(out, "      \"interp_ns\": {:.0},", k.interp_ns);
        let _ = writeln!(out, "      \"native_ns\": {:.0},", k.native_ns);
        // Full precision: `{:.3e}` truncated these to three significant
        // digits, which made history diffs quantize at the 0.1% level.
        let _ = writeln!(
            out,
            "      \"fused_ops_per_sec\": {:.0},",
            ops_per_sec(k.stats_total, k.fused_ns)
        );
        let _ = writeln!(
            out,
            "      \"unfused_ops_per_sec\": {:.0},",
            ops_per_sec(k.stats_total, k.unfused_ns)
        );
        let _ = writeln!(
            out,
            "      \"interp_ops_per_sec\": {:.0},",
            ops_per_sec(k.stats_total, k.interp_ns)
        );
        let _ = writeln!(
            out,
            "      \"native_ops_per_sec\": {:.0},",
            ops_per_sec(k.stats_total, k.native_ns)
        );
        let _ = writeln!(out, "      \"speedup_vs_interp\": {:.2},", k.speedup_vs_interp);
        let _ = writeln!(out, "      \"fused_vs_unfused\": {:.3},", k.fused_vs_unfused);
        let _ = writeln!(out, "      \"native_vs_fused\": {:.3},", k.native_vs_fused);
        let _ = writeln!(out, "      \"expect_fused_gain\": {},", k.expect_fused_gain);
        let f = k.fusion;
        let _ = writeln!(
            out,
            "      \"fusion\": {{ \"fused_loads\": {}, \"splat_ops\": {}, \"hoisted\": {}, \"eliminated\": {} }}",
            f.fused_loads, f.splat_ops, f.hoisted, f.eliminated
        );
        let _ = writeln!(out, "    }}{}", if i + 1 < kernels.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"sweeps\": [");
    for s in sweeps {
        let jobs_per_sec = |ms: f64| s.seeds as f64 / (ms * 1e-3);
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
        let _ = writeln!(out, "      \"seeds\": {},", s.seeds);
        let _ = writeln!(out, "      \"threads\": {},", s.threads);
        let _ = writeln!(out, "      \"cached_ms\": {:.2},", s.cached_ms);
        let _ = writeln!(out, "      \"uncached_ms\": {:.2},", s.uncached_ms);
        let _ = writeln!(
            out,
            "      \"cache_speedup\": {:.3},",
            s.uncached_ms / s.cached_ms
        );
        let _ = writeln!(
            out,
            "      \"cached_jobs_per_sec\": {:.0},",
            jobs_per_sec(s.cached_ms)
        );
        let _ = writeln!(
            out,
            "      \"uncached_jobs_per_sec\": {:.0}",
            jobs_per_sec(s.uncached_ms)
        );
        let _ = writeln!(out, "    }},");
    }
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"name\": \"mixed-programs\",");
    let _ = writeln!(out, "      \"programs\": {},", mixed.programs);
    let _ = writeln!(out, "      \"seeds\": {},", mixed.seeds);
    let _ = writeln!(out, "      \"threads\": {},", mixed.threads);
    let _ = writeln!(out, "      \"shared_ms\": {:.2},", mixed.shared_ms);
    let _ = writeln!(out, "      \"slot_ms\": {:.2},", mixed.slot_ms);
    let _ = writeln!(
        out,
        "      \"shared_vs_slot\": {:.3},",
        mixed.slot_ms / mixed.shared_ms
    );
    let _ = writeln!(
        out,
        "      \"shared_hit_rate\": {:.4},",
        mixed.shared.cache_hit_rate()
    );
    let _ = writeln!(
        out,
        "      \"slot_hit_rate\": {:.4},",
        mixed.slot.cache_hit_rate()
    );
    let _ = writeln!(
        out,
        "      \"shared_evictions\": {},",
        mixed.shared.cache_evictions
    );
    let _ = writeln!(
        out,
        "      \"shared_occupied\": {}",
        mixed.shared.cache_occupied()
    );
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"verify\": {{");
    let _ = writeln!(out, "    \"proved\": {},", verify.proved);
    let _ = writeln!(out, "    \"units\": {},", verify.units);
    let _ = writeln!(out, "    \"runs\": {},", verify.runs);
    let _ = writeln!(out, "    \"quick_ms\": {:.2},", verify.wall_ms);
    let _ = writeln!(
        out,
        "    \"runs_per_sec\": {:.0}",
        verify.runs as f64 / (verify.wall_ms * 1e-3)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "{}", simdize_bench::study::render_study_json(study));
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_engine.json".to_string();
    let mut floor = 5.0f64;
    let mut threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut history_dir = Some("bench_history".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--history-dir" => {
                history_dir = Some(args.next().expect("--history-dir needs a value"))
            }
            "--no-history" => history_dir = None,
            "--floor" => {
                floor = args
                    .next()
                    .expect("--floor needs a value")
                    .parse()
                    .expect("--floor expects a number")
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads expects a number")
            }
            other => panic!("unknown option `{other}`"),
        }
    }

    let mut c = Harness::new().sample_size(if quick { 5 } else { 10 });
    let kernels: Vec<KernelRow> = kernel_specs(quick)
        .iter()
        .map(|spec| bench_kernel(&mut c, spec))
        .collect();

    // Small trip counts keep the per-job O(ub) execute/verify work from
    // drowning out the O(program) compile work the cache amortizes.
    let (sweep_seeds, sweep_ub) = if quick { (64, 500) } else { (128, 500) };
    let sweep_len = sweep_ub + 16;
    let sweeps = vec![
        // Compile-time-known alignments: one layout across every seed,
        // so the cached path bakes once and reuses the kernel verbatim.
        bench_sweep(
            "known-align",
            &format!(
                "arrays {{ a: i32[{sweep_len}] @ 0; b: i32[{sweep_len}] @ 4; c: i32[{sweep_len}] @ 8; }}
                 for i in 0..{sweep_ub} {{ a[i+3] = b[i+1] + c[i+2]; }}"
            ),
            sweep_ub,
            sweep_seeds,
            threads,
        ),
        // Runtime alignments: every seed gets its own layout, so only
        // the shared pre-decode and scratch reuse help.
        bench_sweep(
            "runtime-align",
            &format!(
                "arrays {{ a: i32[{sweep_len}] @ ?; b: i32[{sweep_len}] @ ?; }}
                 for i in 0..ub {{ a[i] = b[i+1]; }}"
            ),
            sweep_ub,
            sweep_seeds,
            threads,
        ),
    ];
    let mixed = bench_mixed(quick, threads);
    let verify = bench_verify(threads);
    // The optimality study: pure graph placement, no execution, so even
    // the full matrix is cheap — quick mode just trims the suites.
    let study = simdize_bench::study::study_matrix(if quick { 10 } else { 25 }, 2004);
    c.final_summary();

    println!();
    println!("backend: simd/{}", IsaLevel::detect());
    for k in &kernels {
        println!(
            "{:<8} {:>7.2}x vs interp, {:>6.3}x fused-vs-unfused, {:>6.3}x native-vs-fused  \
             (fused loads {}, eliminated {})",
            k.name,
            k.speedup_vs_interp,
            k.fused_vs_unfused,
            k.native_vs_fused,
            k.fusion.fused_loads,
            k.fusion.eliminated
        );
    }
    for s in &sweeps {
        println!(
            "sweep {:<14} {} seeds: cached {:.1} ms vs uncached {:.1} ms ({:.2}x)",
            s.name,
            s.seeds,
            s.cached_ms,
            s.uncached_ms,
            s.uncached_ms / s.cached_ms
        );
    }
    println!(
        "sweep mixed-programs {} jobs ({} programs): shared {:.1} ms ({:.0}% hits) vs \
         slot {:.1} ms ({:.0}% hits) => {:.2}x",
        mixed.seeds,
        mixed.programs,
        mixed.shared_ms,
        mixed.shared.cache_hit_rate() * 100.0,
        mixed.slot_ms,
        mixed.slot.cache_hit_rate() * 100.0,
        mixed.slot_ms / mixed.shared_ms
    );
    println!(
        "verify quick proof: {} units, {} harness runs in {:.1} ms ({:.0} runs/sec)",
        verify.units,
        verify.runs,
        verify.wall_ms,
        verify.runs as f64 / (verify.wall_ms * 1e-3)
    );
    let overall = simdize_bench::study::study_overall(&study);
    let rates: Vec<String> = overall
        .gaps
        .iter()
        .map(|g| {
            format!(
                "{} {:.0}%",
                g.policy.name(),
                100.0 * g.matched as f64 / overall.loops as f64
            )
        })
        .collect();
    println!(
        "optimality study: {} loops, {} proven-minimum shifts; greedy match rates: {}",
        overall.loops,
        overall.optimal_total,
        rates.join(", ")
    );

    let json = render_json(
        if quick { "quick" } else { "full" },
        floor,
        &kernels,
        &sweeps,
        &mixed,
        &verify,
        &study,
    );
    std::fs::write(&out_path, &json).expect("write JSON report");
    println!("\nwrote {out_path}");

    if let Some(dir) = history_dir {
        let meta = history::HistoryMeta::now(std::path::Path::new("."));
        let entry = history::append_entry(std::path::Path::new(&dir), &meta, &json)
            .expect("append bench-history entry");
        println!("appended {}", entry.display());
    }

    let mut failed = false;
    for k in &kernels {
        if k.speedup_vs_interp < floor {
            eprintln!(
                "FAIL: {} fused engine only {:.2}x vs interpreter (floor {floor}x)",
                k.name, k.speedup_vs_interp
            );
            failed = true;
        }
        if k.expect_fused_gain && k.fused_vs_unfused < 1.3 {
            eprintln!(
                "FAIL: {} fused only {:.3}x vs unfused (need >= 1.3x)",
                k.name, k.fused_vs_unfused
            );
            failed = true;
        }
        if k.fusion.fused_loads == 0 {
            eprintln!("FAIL: {} fused no loads at all", k.name);
            failed = true;
        }
        // The intrinsics backend earns its keep on reorg-dominated
        // kernels: at least 1.5x over the fused interpreter it lowers.
        // (The scalar tier can't hit this — the gate only applies when
        // a real SIMD ISA dispatched, so non-SIMD hosts still pass.)
        if k.expect_fused_gain && IsaLevel::detect() != IsaLevel::Scalar && k.native_vs_fused < 1.5
        {
            eprintln!(
                "FAIL: {} simd backend only {:.3}x vs fused interpreter (need >= 1.5x)",
                k.name, k.native_vs_fused
            );
            failed = true;
        }
    }
    for s in &sweeps {
        if s.cached_ms >= s.uncached_ms {
            eprintln!(
                "FAIL: sweep {} cache did not improve wall-clock ({:.1} ms vs {:.1} ms)",
                s.name, s.cached_ms, s.uncached_ms
            );
            failed = true;
        }
    }
    // The sharded cache must beat the legacy single-slot cache on the
    // interleaved mixed-program sweep, on both hit rate and wall time.
    if mixed.shared.cache_hit_rate() <= mixed.slot.cache_hit_rate() {
        eprintln!(
            "FAIL: mixed-programs sharded cache hit rate {:.0}% <= single-slot {:.0}%",
            mixed.shared.cache_hit_rate() * 100.0,
            mixed.slot.cache_hit_rate() * 100.0
        );
        failed = true;
    }
    if mixed.shared_ms >= mixed.slot_ms {
        eprintln!(
            "FAIL: mixed-programs sharded cache slower than single-slot ({:.1} ms vs {:.1} ms)",
            mixed.shared_ms, mixed.slot_ms
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("engine telemetry within bounds");
}
