//! The full §5.4 coverage sweep: >1000 synthesized loops at the paper's
//! trip counts ([997, 1000]), every applicable scheme, every run
//! verified byte-for-byte against the scalar oracle.
//!
//! Run with: `cargo run -p simdize-bench --bin coverage --release`

use simdize::{synthesize, DiffConfig, Scheme, Simdizer, TripSpec, WorkloadSpec};
use simdize_prng::SplitMix64;

fn main() {
    let mut loops = 0usize;
    let mut runs = 0usize;
    let mut seed = 0u64;
    for s in 1..=4usize {
        for l in 1..=8usize {
            for runtime_align in [false, true] {
                for rep in 0..16u64 {
                    seed += 1;
                    let mut meta = SplitMix64::seed_from_u64(seed * 131 + rep);
                    let spec = WorkloadSpec::new(s, l)
                        .bias(meta.range_f64(0.0, 1.0))
                        .reuse(meta.range_f64(0.0, 1.0))
                        .trip(TripSpec::KnownInRange(997, 1000))
                        .runtime_align(runtime_align);
                    let mut rng = SplitMix64::seed_from_u64(seed);
                    let program = synthesize(&spec, &mut rng);
                    loops += 1;
                    let schemes = if runtime_align {
                        Scheme::runtime_contenders()
                    } else {
                        Scheme::contenders()
                    };
                    for scheme in schemes {
                        let report = Simdizer::new()
                            .scheme(scheme)
                            .evaluate_with(&program, &DiffConfig::with_seed(seed))
                            .unwrap_or_else(|e| {
                                panic!("loop {seed} ({}) under {scheme}: {e}", spec.name())
                            });
                        assert!(report.verified);
                        runs += 1;
                    }
                }
            }
            if loops.is_multiple_of(48) {
                println!("  … {loops} loops, {runs} verified runs");
            }
        }
    }
    println!("coverage: {loops} loops simdized, {runs} simdized executions verified");
    println!(
        "(paper §5.4: \"our compiler simdized all the loops … and the results were verified\")"
    );
}
