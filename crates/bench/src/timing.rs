//! A dependency-free wall-clock timing harness.
//!
//! This replaces criterion for the repository's bench targets so they
//! build and run with no registry access. The API deliberately mirrors
//! the slice of criterion the benches use — [`Harness::bench_function`]
//! with a [`Bencher::iter`] closure — so a bench file reads the same
//! either way. Measurement is simple and robust rather than clever:
//! per sample, time `iters` back-to-back runs with [`Instant`], then
//! report the median over [`Harness::sample_size`] samples (the median
//! shrugs off scheduler noise that would wreck a mean).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// An opaque identity function that inhibits constant folding.
///
/// Re-exported so bench files can keep writing `black_box(...)`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The per-benchmark measurement driver passed to the bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` back to back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One benchmark's aggregated result.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The benchmark name.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

impl Measurement {
    fn line(&self) -> String {
        format!(
            "{:<32} {:>12} /iter  (min {}, max {}, {} samples)",
            self.name,
            format_ns(self.median_ns),
            format_ns(self.min_ns),
            format_ns(self.max_ns),
            self.samples
        )
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The top-level harness: collects measurements, prints a summary.
pub struct Harness {
    sample_size: usize,
    min_sample_time: Duration,
    results: Vec<Measurement>,
}

impl Default for Harness {
    fn default() -> Harness {
        Harness::new()
    }
}

impl Harness {
    /// A harness with the default 10 samples of ≥ 2 ms each.
    pub fn new() -> Harness {
        Harness {
            sample_size: 10,
            min_sample_time: Duration::from_millis(2),
            results: Vec::new(),
        }
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Harness {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the minimum wall-clock span of one sample; the harness
    /// raises the per-sample iteration count until a sample takes at
    /// least this long.
    pub fn min_sample_time(mut self, t: Duration) -> Harness {
        self.min_sample_time = t;
        self
    }

    /// Times `f` and records (and prints) the aggregated measurement.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &Measurement {
        // Calibrate: grow the iteration count until one sample is long
        // enough to dwarf timer granularity.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= self.min_sample_time || iters >= 1 << 30 {
                break;
            }
            // Jump straight toward the target span rather than doubling
            // blindly, but at least double to make progress on 0-reads.
            let target = self.min_sample_time.as_nanos().max(1) as f64;
            let got = b.elapsed.as_nanos().max(1) as f64;
            iters = (iters as f64 * (target / got).max(2.0)).ceil() as u64;
        }

        let mut per_iter: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));

        let m = Measurement {
            name: name.to_string(),
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            samples: per_iter.len(),
        };
        println!("{}", m.line());
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// All measurements recorded so far, in bench order.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints the closing summary table.
    pub fn final_summary(&self) {
        println!("\n=== timing summary ({} benches) ===", self.results.len());
        for m in &self.results {
            println!("{}", m.line());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut h = Harness::new()
            .sample_size(3)
            .min_sample_time(Duration::from_micros(50));
        let m = h
            .bench_function("spin", |b| {
                b.iter(|| (0..100u64).fold(0u64, |a, x| a.wrapping_add(x * x)))
            })
            .clone();
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5.0e3).ends_with("µs"));
        assert!(format_ns(5.0e6).ends_with("ms"));
        assert!(format_ns(5.0e9).ends_with(" s"));
    }
}
