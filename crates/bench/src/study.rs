//! The optimality study: how often does each greedy shift-placement
//! policy match the provably minimum shift count of [`Policy::Optimal`]?
//!
//! For every cell of a §5.3-style `(l, s, b, r)` workload matrix this
//! module synthesizes a suite of loops, places each one under all four
//! greedy policies, and compares the shift counts against the exact
//! minimum computed by [`optimal_shift_counts`]. The aggregate — match
//! rate, total excess shifts, worst single-loop gap — is the evidence
//! behind the claims in `docs/POLICIES.md`, whose summary table is
//! generated from [`render_study_markdown`] (CI checks it for drift).
//!
//! Everything here is deterministic given the base seed, so the table
//! is reproducible byte for byte:
//!
//! ```text
//! cargo run -p simdize-bench --bin study --release
//! ```

use crate::suite;
use simdize::{
    distinct_alignments, optimal_shift_counts, Policy, ReorgGraph, TripSpec, VectorShape,
    WorkloadSpec,
};
use std::fmt::Write as _;

/// The greedy policies the study measures against the optimum.
pub const GREEDY_POLICIES: [Policy; 4] =
    [Policy::Zero, Policy::Eager, Policy::Lazy, Policy::Dominant];

/// One greedy policy's aggregate over a study cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyGap {
    /// The greedy policy measured.
    pub policy: Policy,
    /// Loops whose shift count equalled the proven minimum.
    pub matched: usize,
    /// Total shifts placed beyond the minimum, summed over the suite.
    pub excess: u64,
    /// The largest single-loop excess.
    pub worst: usize,
}

/// One `(l, s, b, r)` cell of the study matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyCell {
    /// Cell label, e.g. `S2*L4 b=0.3 r=0.3`.
    pub label: String,
    /// Loops in the suite.
    pub loops: usize,
    /// Total proven-minimum shifts over the suite.
    pub optimal_total: u64,
    /// Total §5.3 analytic lower bound (distinct alignments − 1 per
    /// statement) over the suite.
    pub bound_total: u64,
    /// Loops where the proven minimum equals the analytic bound.
    pub tight: usize,
    /// One [`PolicyGap`] per greedy policy, in [`GREEDY_POLICIES`] order.
    pub gaps: Vec<PolicyGap>,
}

impl StudyCell {
    /// The gap entry for `policy`.
    pub fn gap(&self, policy: Policy) -> &PolicyGap {
        self.gaps
            .iter()
            .find(|g| g.policy == policy)
            .expect("every greedy policy is measured")
    }
}

/// The §5.3 analytic lower bound of a whole (unplaced) graph: per
/// statement, one shift fewer than the number of distinct alignments.
fn analytic_bound(graph: &ReorgGraph) -> u64 {
    (0..graph.roots().len())
        .map(|s| distinct_alignments(graph, s).saturating_sub(1) as u64)
        .sum()
}

/// Measures one suite of `count` loops drawn from `spec`.
///
/// # Panics
///
/// Panics if `spec` declares runtime alignments (the optimal search,
/// like every policy but zero-shift, needs compile-time offsets) or if
/// any generated loop fails to place under a greedy policy.
pub fn study_cell(spec: &WorkloadSpec, count: usize, base_seed: u64) -> StudyCell {
    assert!(!spec.runtime_align, "the optimality study needs compile-time alignments");
    let mut optimal_total = 0u64;
    let mut bound_total = 0u64;
    let mut tight = 0usize;
    let mut gaps: Vec<PolicyGap> = GREEDY_POLICIES
        .iter()
        .map(|&policy| PolicyGap {
            policy,
            matched: 0,
            excess: 0,
            worst: 0,
        })
        .collect();

    for program in suite(spec, count, base_seed) {
        let graph = ReorgGraph::build(&program, VectorShape::V16).expect("study loop builds");
        let optimal: usize = optimal_shift_counts(&graph).iter().map(|s| s.shifts).sum();
        let bound = analytic_bound(&graph);
        optimal_total += optimal as u64;
        bound_total += bound;
        if optimal as u64 == bound {
            tight += 1;
        }
        for gap in &mut gaps {
            let placed = graph
                .with_policy(gap.policy)
                .expect("compile-time alignments place under every policy")
                .shift_count();
            assert!(
                placed >= optimal,
                "{}: greedy {} beat the proven minimum ({placed} < {optimal})",
                spec.name(),
                gap.policy.name()
            );
            if placed == optimal {
                gap.matched += 1;
            }
            gap.excess += (placed - optimal) as u64;
            gap.worst = gap.worst.max(placed - optimal);
        }
    }

    StudyCell {
        label: format!("{} b={} r={}", spec.name(), spec.bias, spec.reuse),
        loops: count,
        optimal_total,
        bound_total,
        tight,
        gaps,
    }
}

/// The default study matrix: the paper's statement/load shapes crossed
/// with no-bias, headline-bias and full-bias alignment distributions.
pub fn study_specs() -> Vec<WorkloadSpec> {
    let mut specs = Vec::new();
    for (s, l) in [(1, 2), (1, 4), (1, 6), (2, 4), (4, 4), (4, 8)] {
        for (bias, reuse) in [(0.0, 0.3), (0.3, 0.3), (0.8, 0.3), (0.3, 0.0)] {
            specs.push(
                WorkloadSpec::new(s, l)
                    .bias(bias)
                    .reuse(reuse)
                    .trip(TripSpec::Known(200)),
            );
        }
    }
    specs
}

/// Runs [`study_cell`] over the whole default matrix.
pub fn study_matrix(count: usize, base_seed: u64) -> Vec<StudyCell> {
    study_specs()
        .iter()
        .map(|spec| study_cell(spec, count, base_seed))
        .collect()
}

/// Sums `cells` into one overall row (the table's footer).
pub fn study_overall(cells: &[StudyCell]) -> StudyCell {
    let mut gaps: Vec<PolicyGap> = GREEDY_POLICIES
        .iter()
        .map(|&policy| PolicyGap {
            policy,
            matched: 0,
            excess: 0,
            worst: 0,
        })
        .collect();
    let mut overall = StudyCell {
        label: "overall".to_string(),
        loops: 0,
        optimal_total: 0,
        bound_total: 0,
        tight: 0,
        gaps: Vec::new(),
    };
    for cell in cells {
        overall.loops += cell.loops;
        overall.optimal_total += cell.optimal_total;
        overall.bound_total += cell.bound_total;
        overall.tight += cell.tight;
        for gap in &mut gaps {
            let g = cell.gap(gap.policy);
            gap.matched += g.matched;
            gap.excess += g.excess;
            gap.worst = gap.worst.max(g.worst);
        }
    }
    overall.gaps = gaps;
    overall
}

fn pct(part: usize, whole: usize) -> String {
    if whole == 0 {
        return "-".to_string();
    }
    format!("{:.0}%", 100.0 * part as f64 / whole as f64)
}

/// Renders the study as the Markdown table embedded in
/// `docs/POLICIES.md` (between the `study:begin`/`study:end` markers).
///
/// Per cell: suite size, total proven-minimum shifts, how often the
/// minimum met the §5.3 analytic bound, and per greedy policy the
/// match rate plus total excess shifts.
pub fn render_study_markdown(cells: &[StudyCell], count: usize, base_seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| suite | loops | min shifts | bound tight | zero | eager | lazy | dominant |"
    );
    let _ = writeln!(
        out,
        "|-------|-------|-----------|-------------|------|-------|------|----------|"
    );
    let overall = study_overall(cells);
    for cell in cells.iter().chain(std::iter::once(&overall)) {
        let mut row = format!(
            "| {} | {} | {} | {} |",
            if cell.label == "overall" {
                "**overall**".to_string()
            } else {
                format!("`{}`", cell.label)
            },
            cell.loops,
            cell.optimal_total,
            pct(cell.tight, cell.loops),
        );
        for policy in GREEDY_POLICIES {
            let gap = cell.gap(policy);
            let _ = write!(
                row,
                " {} (+{}) |",
                pct(gap.matched, cell.loops),
                gap.excess
            );
        }
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Per policy column: match rate against the proven minimum, then total \
         excess shifts over the suite in parentheses. \"bound tight\" is how \
         often the proven minimum equals the §5.3 analytic bound (distinct \
         alignments − 1 per statement). Regenerate with \
         `cargo run -p simdize-bench --bin study --release -- --loops {count} --seed {base_seed} --update-docs`."
    );
    out
}

/// Renders the study as the `"optimality"` JSON section of
/// `BENCH_engine.json` (hand-rolled like the rest of the report).
pub fn render_study_json(cells: &[StudyCell]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "  \"optimality\": {{");
    let _ = writeln!(out, "    \"schema\": \"simdize-optimality-study/v1\",");
    let _ = writeln!(out, "    \"cells\": [");
    let overall = study_overall(cells);
    let all: Vec<&StudyCell> = cells.iter().chain(std::iter::once(&overall)).collect();
    for (i, cell) in all.iter().enumerate() {
        let _ = writeln!(out, "      {{");
        let _ = writeln!(out, "        \"suite\": \"{}\",", cell.label);
        let _ = writeln!(out, "        \"loops\": {},", cell.loops);
        let _ = writeln!(out, "        \"optimal_shifts\": {},", cell.optimal_total);
        let _ = writeln!(out, "        \"analytic_bound\": {},", cell.bound_total);
        let _ = writeln!(out, "        \"bound_tight\": {},", cell.tight);
        let _ = writeln!(out, "        \"policies\": [");
        for (j, policy) in GREEDY_POLICIES.iter().enumerate() {
            let gap = cell.gap(*policy);
            let _ = writeln!(
                out,
                "          {{ \"policy\": \"{}\", \"matched\": {}, \"excess\": {}, \"worst\": {} }}{}",
                policy.name(),
                gap.matched,
                gap.excess,
                gap.worst,
                if j + 1 < GREEDY_POLICIES.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "        ]");
        let _ = writeln!(out, "      }}{}", if i + 1 < all.len() { "," } else { "" });
    }
    let _ = writeln!(out, "    ]");
    let _ = write!(out, "  }}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_is_deterministic_and_sound() {
        let spec = WorkloadSpec::new(2, 4).trip(TripSpec::Known(200));
        let a = study_cell(&spec, 8, 11);
        let b = study_cell(&spec, 8, 11);
        assert_eq!(a, b);
        assert_eq!(a.loops, 8);
        // The optimum can never beat the analytic bound...
        assert!(a.optimal_total >= a.bound_total);
        // ...and no greedy policy can match more often than it runs.
        for gap in &a.gaps {
            assert!(gap.matched <= a.loops);
            if gap.matched == a.loops {
                assert_eq!(gap.excess, 0);
            }
        }
    }

    #[test]
    fn lazy_dominates_zero_in_aggregate() {
        // On the headline bias, lazy's match count is never below
        // zero-shift's: zero pays for every distinct load alignment.
        let spec = WorkloadSpec::new(1, 6).trip(TripSpec::Known(200));
        let cell = study_cell(&spec, 12, 2004);
        assert!(cell.gap(Policy::Lazy).matched >= cell.gap(Policy::Zero).matched);
        assert!(cell.gap(Policy::Lazy).excess <= cell.gap(Policy::Zero).excess);
    }

    #[test]
    fn renderers_cover_every_cell() {
        let cells = vec![
            study_cell(&WorkloadSpec::new(1, 2).trip(TripSpec::Known(200)), 4, 7),
            study_cell(&WorkloadSpec::new(2, 4).trip(TripSpec::Known(200)), 4, 7),
        ];
        let md = render_study_markdown(&cells, 4, 7);
        assert!(md.contains("S1*L2"));
        assert!(md.contains("S2*L4"));
        assert!(md.contains("**overall**"));
        let json = render_study_json(&cells);
        assert!(json.contains("\"optimality\""));
        assert!(json.contains("\"simdize-optimality-study/v1\""));
        assert!(json.contains("\"policy\": \"dominant\""));
        let overall = study_overall(&cells);
        assert_eq!(overall.loops, 8);
    }
}
