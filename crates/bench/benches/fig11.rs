//! Figure 11 bench: regenerates the table, then times the full
//! pipeline (compile + simulate + verify) on the headline loop.

use simdize_bench::timing::{black_box, Harness};
use simdize::{DiffConfig, Simdizer};

fn main() {
    let rows = simdize_bench::figure_opd(&simdize_bench::figure_spec(), false, 2004);
    print!(
        "{}",
        simdize_bench::render_figure("Figure 11 — S1*L6 i32, reassoc OFF", &rows)
    );

    let (program, scheme) = simdize_bench::representative();
    let mut c = Harness::new().sample_size(20);
    c.bench_function("fig11/compile", |b| {
        b.iter(|| {
            Simdizer::new()
                .scheme(scheme)
                .compile(black_box(&program))
                .unwrap()
        })
    });
    c.bench_function("fig11/compile+run+verify", |b| {
        b.iter(|| {
            Simdizer::new()
                .scheme(scheme)
                .evaluate_with(black_box(&program), &DiffConfig::with_seed(1))
                .unwrap()
        })
    });
    c.final_summary();
}
