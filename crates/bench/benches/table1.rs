//! Table 1 bench: regenerates the 4-lane speedup table, then times the
//! simulated execution (the dominant cost of the harness).

use simdize_bench::timing::{black_box, Harness};
use simdize::{run_differential, DiffConfig, ScalarType, Simdizer};

fn main() {
    let rows = simdize_bench::speedup_table(&simdize_bench::TABLE_SHAPES, ScalarType::I32, 2004);
    print!(
        "{}",
        simdize_bench::render_table("Table 1 — 4 × i32 per register", &rows, 4)
    );

    let (program, scheme) = simdize_bench::representative();
    let compiled = Simdizer::new().scheme(scheme).compile(&program).unwrap();
    let mut c = Harness::new().sample_size(20);
    c.bench_function("table1/simulate 1000-iteration loop", |b| {
        b.iter(|| run_differential(black_box(&compiled), &DiffConfig::with_seed(1)).unwrap())
    });
    c.final_summary();
}
