//! Table 2 bench: the 8-lane (i16) speedup table, timing the short-int
//! pipeline.

use simdize_bench::timing::{black_box, Harness};
use simdize_prng::SplitMix64;
use simdize::{synthesize, DiffConfig, ScalarType, Simdizer};

fn main() {
    let rows = simdize_bench::speedup_table(&simdize_bench::TABLE_SHAPES, ScalarType::I16, 2004);
    print!(
        "{}",
        simdize_bench::render_table("Table 2 — 8 × i16 per register", &rows, 8)
    );

    let spec = simdize_bench::figure_spec().elem(ScalarType::I16);
    let mut rng = SplitMix64::seed_from_u64(2004);
    let program = synthesize(&spec, &mut rng);
    let (_, scheme) = simdize_bench::representative();
    let mut c = Harness::new().sample_size(20);
    c.bench_function("table2/compile+run+verify i16", |b| {
        b.iter(|| {
            Simdizer::new()
                .scheme(scheme)
                .evaluate_with(black_box(&program), &DiffConfig::with_seed(1))
                .unwrap()
        })
    });
    c.final_summary();
}
