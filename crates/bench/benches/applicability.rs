//! Ablation E10: how much of the loop space each strategy can simdize
//! at all — the paper's motivating argument. "The most commonly used
//! policy today is to simdize a loop only if all memory references in
//! the loop are aligned"; peeling helps only when every reference
//! shares one misalignment; this paper's scheme handles everything.
//!
//! Effective speedup counts non-simdizable loops at 1.0x (they run the
//! scalar loop).

use simdize_bench::timing::{black_box, Harness};
use simdize::{
    harmonic_mean, simdizable_aligned_only, simdizable_by_peeling, DiffConfig, Simdizer, TripSpec,
    VectorShape, WorkloadSpec,
};

fn main() {
    println!("E10 — applicability & effective speedup by strategy (S2*L4 i32, 50 loops/point)");
    println!(
        "{:<8} | {:>14} {:>14} {:>10} | {:>10} {:>10} {:>10}",
        "bias", "aligned-only%", "peeling%", "paper%", "eff(al)", "eff(peel)", "eff(paper)"
    );
    for bias10 in [0, 3, 6, 9, 10] {
        let bias = bias10 as f64 / 10.0;
        let spec = WorkloadSpec::new(2, 4)
            .bias(bias)
            .trip(TripSpec::Known(1000));
        let loops = simdize_bench::suite(&spec, 50, 11);
        let mut counts = [0usize; 3];
        let mut speedups: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (k, p) in loops.iter().enumerate() {
            let report = Simdizer::new()
                .evaluate_with(p, &DiffConfig::with_seed(k as u64))
                .unwrap();
            assert!(report.verified);
            let strategies = [
                simdizable_aligned_only(p, VectorShape::V16),
                simdizable_by_peeling(p, VectorShape::V16),
                true, // this paper
            ];
            for (i, &applies) in strategies.iter().enumerate() {
                if applies {
                    counts[i] += 1;
                    // Baselines on their applicable loops produce the
                    // same shift-free code our lazy policy does.
                    speedups[i].push(report.speedup);
                } else {
                    speedups[i].push(1.0);
                }
            }
        }
        let pct = |c: usize| 100.0 * c as f64 / loops.len() as f64;
        let eff = |v: &Vec<f64>| harmonic_mean(v.iter().copied()).unwrap();
        println!(
            "{:<8.1} | {:>13.0}% {:>13.0}% {:>9.0}% | {:>9.2}x {:>9.2}x {:>9.2}x",
            bias,
            pct(counts[0]),
            pct(counts[1]),
            pct(counts[2]),
            eff(&speedups[0]),
            eff(&speedups[1]),
            eff(&speedups[2])
        );
    }
    println!("\nOnly at bias 1.0 (every reference accidentally co-aligned) do the");
    println!("baselines catch up; everywhere else the paper's scheme is the only");
    println!("one that simdizes the loops at all.");

    let (program, _) = simdize_bench::representative();
    let mut c = Harness::new().sample_size(50);
    c.bench_function("applicability/analysis", |b| {
        b.iter(|| {
            (
                simdizable_aligned_only(black_box(&program), VectorShape::V16),
                simdizable_by_peeling(black_box(&program), VectorShape::V16),
            )
        })
    });
    c.final_summary();
}
