//! Ablation E9: software alignment handling (aligned-only machine, the
//! paper's scheme) versus hardware misaligned memory (SSE2-style
//! `movdqu` at 2× per access). The paper's §2 footnote notes SSE2's
//! misaligned accesses "incur additional overhead"; this bench
//! quantifies the crossover as the fraction of misaligned references
//! grows.

use simdize_bench::timing::{black_box, Harness};
use simdize::{DiffConfig, ScalarType, Simdizer, Target, TripSpec, WorkloadSpec};

fn main() {
    println!("E9 — aligned-machine simdization vs hardware misaligned memory");
    println!("(S1*L6 i32, 50 loops per point; opd, lower is better; movdqu cost 2)");
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "alignment bias", "paper/OPD", "movdqu/OPD", "winner"
    );
    for bias10 in [0, 3, 6, 10] {
        let bias = bias10 as f64 / 10.0;
        let spec = WorkloadSpec::new(1, 6)
            .bias(bias)
            .elem(ScalarType::I32)
            .trip(TripSpec::Known(1000));
        let loops = simdize_bench::suite(&spec, 50, 42);
        let mean = |target: Target| {
            let mut total = 0.0;
            for (k, p) in loops.iter().enumerate() {
                let r = Simdizer::new()
                    .target(target)
                    .evaluate_with(p, &DiffConfig::with_seed(k as u64))
                    .unwrap();
                assert!(r.verified);
                total += r.opd;
            }
            total / loops.len() as f64
        };
        let aligned = mean(Target::Aligned);
        let unaligned = mean(Target::Unaligned);
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>10}",
            format!("b = {bias:.1}"),
            aligned,
            unaligned,
            if aligned < unaligned {
                "paper"
            } else {
                "movdqu"
            }
        );
    }
    println!();
    println!("With mostly-aligned data (high bias) the alignment-handling scheme");
    println!("wins because aligned streams need no shifts at all; with arbitrary");
    println!("misalignment the comparison tracks the shift count per statement");
    println!("against the constant 2x memory penalty.");

    // Sweep the hardware penalty analytically: at what per-access cost
    // does the misaligned-memory machine overtake the paper's scheme?
    // (This is why post-Nehalem hardware made movdqu cheap: once the
    // penalty approaches 1x, software alignment handling stops paying.)
    println!("\ncrossover vs. hardware penalty (bias 0.0, S1*L6):");
    println!("{:<10} {:>12} {:>10}", "penalty", "movdqu/OPD", "winner");
    let spec = WorkloadSpec::new(1, 6)
        .bias(0.0)
        .elem(ScalarType::I32)
        .trip(TripSpec::Known(1000));
    let loops = simdize_bench::suite(&spec, 50, 42);
    let mut aligned_total = 0.0;
    let mut mem_per_datum = 0.0;
    let mut base_total = 0.0;
    for (k, p) in loops.iter().enumerate() {
        let a = Simdizer::new()
            .evaluate_with(p, &DiffConfig::with_seed(k as u64))
            .unwrap();
        aligned_total += a.opd;
        let u = Simdizer::new()
            .target(Target::Unaligned)
            .evaluate_with(p, &DiffConfig::with_seed(k as u64))
            .unwrap();
        mem_per_datum += u.stats.unaligned_mem as f64 / u.data_produced as f64;
        base_total += (u.stats.total() - 2 * u.stats.unaligned_mem) as f64 / u.data_produced as f64;
    }
    let n = loops.len() as f64;
    let (aligned, mem, base) = (aligned_total / n, mem_per_datum / n, base_total / n);
    for penalty in [1.0f64, 1.25, 1.5, 2.0, 3.0] {
        let opd = base + penalty * mem;
        println!(
            "{:<10} {:>12.3} {:>10}",
            format!("{penalty:.2}x"),
            opd,
            if aligned < opd { "paper" } else { "movdqu" }
        );
    }

    let (program, _) = simdize_bench::representative();
    let mut c = Harness::new().sample_size(20);
    for (name, target) in [("aligned", Target::Aligned), ("movdqu", Target::Unaligned)] {
        c.bench_function(&format!("hardware/evaluate {name}"), |b| {
            b.iter(|| {
                Simdizer::new()
                    .target(target)
                    .evaluate_with(black_box(&program), &DiffConfig::with_seed(1))
                    .unwrap()
            })
        });
    }
    c.final_summary();
}
