//! Ablation E12: vector-width scaling. The pipeline is generic in `V`;
//! this bench sweeps 8/16/32-byte registers over the headline benchmark
//! to show speedups tracking the lane count while reorganization
//! overhead stays proportionally constant.

use simdize_bench::timing::{black_box, Harness};
use simdize::{DiffConfig, ScalarType, Simdizer, TripSpec, VectorShape, WorkloadSpec};

fn main() {
    println!("E12 — vector-width scaling (S1*L6 i16, 50 loops, best scheme)");
    println!(
        "{:<8} {:>6} {:>8} {:>10} {:>12}",
        "V", "lanes", "opd", "speedup", "reorg opd"
    );
    for shape in [VectorShape::V8, VectorShape::V16, VectorShape::V32] {
        let spec = WorkloadSpec::new(1, 6)
            .elem(ScalarType::I16)
            .trip(TripSpec::Known(1000));
        let loops = simdize_bench::suite(&spec, 50, 21);
        let mut opd = 0.0;
        let mut speedup_n = 0.0;
        let mut reorg = 0.0;
        for (k, p) in loops.iter().enumerate() {
            let r = Simdizer::new()
                .shape(shape)
                .evaluate_with(p, &DiffConfig::with_seed(k as u64))
                .unwrap();
            assert!(r.verified);
            opd += r.opd;
            speedup_n += r.speedup;
            reorg += r.stats.reorg_ops() as f64 / r.data_produced as f64;
        }
        let n = loops.len() as f64;
        println!(
            "{:<8} {:>6} {:>8.3} {:>9.2}x {:>12.3}",
            shape.to_string(),
            shape.bytes() / 2,
            opd / n,
            speedup_n / n,
            reorg / n
        );
    }
    println!("\nWider registers scale the speedup with the lane count; the");
    println!("reorganization work per datum *shrinks* (the same number of");
    println!("shifts covers more lanes), which is the paper's observation that");
    println!("8-way short loops get closer to peak than 4-way integer loops.");

    let (program, scheme) = simdize_bench::representative();
    let mut c = Harness::new().sample_size(20);
    for shape in [VectorShape::V8, VectorShape::V32] {
        c.bench_function(&format!("scaling/evaluate {shape}"), |b| {
            b.iter(|| {
                Simdizer::new()
                    .shape(shape)
                    .scheme(scheme)
                    .evaluate_with(black_box(&program), &DiffConfig::with_seed(1))
                    .unwrap()
            })
        });
    }
    c.final_summary();
}
