//! Ablation E7: shift counts per placement policy as the alignment
//! bias sweeps from 0 (uniform random) to 1 (all references share one
//! alignment) — the design-space behind Figure 11's middle components.

use simdize_bench::timing::{black_box, Harness};
use simdize_prng::SplitMix64;
use simdize::{synthesize, Policy, ReorgGraph, TripSpec, VectorShape, WorkloadSpec};

fn main() {
    println!("E7 — mean shifts per statement, S1*L6, by policy and alignment bias");
    println!(
        "{:<6} {:>7} {:>7} {:>7} {:>9} {:>9} {:>13}",
        "bias", "zero", "eager", "lazy", "dominant", "optimal", "lazy+reassoc"
    );
    for bias10 in [0, 3, 6, 10] {
        let bias = bias10 as f64 / 10.0;
        let spec = WorkloadSpec::new(1, 6)
            .bias(bias)
            .trip(TripSpec::Known(500));
        let loops = simdize_bench::suite(&spec, 50, 77);
        let mean = |f: &dyn Fn(&simdize::LoopProgram) -> usize| {
            loops.iter().map(|p| f(p) as f64).sum::<f64>() / loops.len() as f64
        };
        let shifts = |p: &simdize::LoopProgram, policy: Policy, reassoc: bool| {
            let p = if reassoc {
                simdize::reassociate(p, VectorShape::V16)
            } else {
                p.clone()
            };
            ReorgGraph::build(&p, VectorShape::V16)
                .unwrap()
                .with_policy(policy)
                .unwrap()
                .shift_count()
        };
        println!(
            "{:<6.1} {:>7.2} {:>7.2} {:>7.2} {:>9.2} {:>9.2} {:>13.2}",
            bias,
            mean(&|p| shifts(p, Policy::Zero, false)),
            mean(&|p| shifts(p, Policy::Eager, false)),
            mean(&|p| shifts(p, Policy::Lazy, false)),
            mean(&|p| shifts(p, Policy::Dominant, false)),
            mean(&|p| shifts(p, Policy::Optimal, false)),
            mean(&|p| shifts(p, Policy::Lazy, true)),
        );
    }

    let spec = WorkloadSpec::new(1, 6).trip(TripSpec::Known(500));
    let mut rng = SplitMix64::seed_from_u64(3);
    let program = synthesize(&spec, &mut rng);
    let graph = ReorgGraph::build(&program, VectorShape::V16).unwrap();
    let mut c = Harness::new().sample_size(50);
    c.bench_function("policies/dominant placement", |b| {
        b.iter(|| black_box(&graph).with_policy(Policy::Dominant).unwrap())
    });
    c.bench_function("policies/optimal placement", |b| {
        b.iter(|| black_box(&graph).with_policy(Policy::Optimal).unwrap())
    });
    c.final_summary();
}
