//! Ablation E8: the cost of not exploiting reuse — dynamic loads and
//! total OPD for none / predictive commoning / software pipelining,
//! with and without the copy-removing unroll (§4.5's closing remark).
//! Also checks the never-load-twice guarantee numerically.

use simdize_bench::timing::{black_box, Harness};
use simdize::{DiffConfig, ReuseMode, Simdizer};

fn main() {
    let (program, scheme) = simdize_bench::representative();
    println!("E8 — reuse ablation on one S1*L6 loop (dominant-shift policy)");
    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>8} {:>9}",
        "scheme", "loads/it", "copies", "opd", "speedup", "max live"
    );
    for (label, reuse, unroll) in [
        ("naive", ReuseMode::None, true),
        ("pc, no unroll", ReuseMode::PredictiveCommoning, false),
        ("pc + unroll", ReuseMode::PredictiveCommoning, true),
        ("sp, no unroll", ReuseMode::SoftwarePipeline, false),
        ("sp + unroll", ReuseMode::SoftwarePipeline, true),
    ] {
        let driver = Simdizer::new()
            .policy(scheme.policy)
            .reuse(reuse)
            .unroll(unroll);
        let report = driver
            .evaluate_with(&program, &DiffConfig::with_seed(8))
            .unwrap();
        assert!(report.verified);
        let compiled = driver.compile(&program).unwrap();
        let iters = report.stats.steady_iterations.max(1);
        println!(
            "{:<22} {:>9.2} {:>8} {:>8.3} {:>7.2}x {:>6}/{}",
            label,
            report.stats.loads as f64 / iters as f64,
            report.stats.copies,
            report.opd,
            report.speedup,
            simdize::max_live_vregs(&compiled),
            simdize::MACHINE_VREGS
        );
    }

    let mut c = Harness::new().sample_size(20);
    for reuse in [ReuseMode::None, ReuseMode::SoftwarePipeline] {
        c.bench_function(&format!("reuse/evaluate {reuse}"), |b| {
            b.iter(|| {
                Simdizer::new()
                    .policy(scheme.policy)
                    .reuse(reuse)
                    .evaluate_with(black_box(&program), &DiffConfig::with_seed(8))
                    .unwrap()
            })
        });
    }
    c.final_summary();
}
