//! Figure 12 bench: the reassociation variant of Figure 11, timing the
//! reassociation pass itself.

use simdize_bench::timing::{black_box, Harness};
use simdize::{reassociate, VectorShape};

fn main() {
    let rows = simdize_bench::figure_opd(&simdize_bench::figure_spec(), true, 2004);
    print!(
        "{}",
        simdize_bench::render_figure("Figure 12 — S1*L6 i32, reassoc ON", &rows)
    );

    let (program, scheme) = simdize_bench::representative();
    let mut c = Harness::new().sample_size(20);
    c.bench_function("fig12/reassociate", |b| {
        b.iter(|| reassociate(black_box(&program), VectorShape::V16))
    });
    c.bench_function("fig12/compile with reassoc", |b| {
        b.iter(|| {
            simdize::Simdizer::new()
                .scheme(scheme.reassoc(true))
                .compile(black_box(&program))
                .unwrap()
        })
    });
    c.final_summary();
}
