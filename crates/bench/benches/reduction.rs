//! Ablation E13: the reduction extension (§7 "scalar accesses in
//! non-address computation"). Dot products and min/max scans with
//! misaligned inputs: speedup vs the scalar fold, and the cost split
//! between the steady accumulate and the horizontal epilogue.

use simdize_bench::timing::{black_box, Harness};
use simdize::{dot_product, BinOp, DiffConfig, LoopBuilder, ScalarType, Simdizer};

fn scan(op: BinOp, n: u64) -> simdize::LoopProgram {
    let mut b = LoopBuilder::new(ScalarType::I16);
    let acc = b.array("acc", 8, 2);
    let x = b.array("x", n + 16, 6);
    b.reduce(acc.at(0), op, x.load(1));
    b.finish(n).unwrap()
}

fn main() {
    println!("E13 — reductions (1000 iterations, misaligned inputs)");
    println!(
        "{:<26} {:>8} {:>10} {:>12}",
        "kernel", "opd", "speedup", "epilogue ops"
    );
    let cases: Vec<(&str, simdize::LoopProgram)> = vec![
        ("dot_product (i32, 4x)", dot_product(1000)),
        ("running max (i16, 8x)", scan(BinOp::Max, 1000)),
        ("running min (i16, 8x)", scan(BinOp::Min, 1000)),
        ("checksum xor (i16, 8x)", scan(BinOp::Xor, 1000)),
    ];
    for (name, p) in &cases {
        let driver = Simdizer::new();
        let r = driver.evaluate_with(p, &DiffConfig::with_seed(13)).unwrap();
        assert!(r.verified);
        let compiled = driver.compile(p).unwrap();
        let (_, _, epi) = compiled.static_counts();
        println!(
            "{:<26} {:>8.3} {:>9.2}x {:>12}",
            name, r.opd, r.speedup, epi
        );
    }
    println!("\nThe horizontal fold costs log2(B) shift+op pairs once per loop;");
    println!("the steady state accumulates whole registers, so reductions reach");
    println!("the same per-iteration costs as stores of the same expression.");

    let p = dot_product(1000);
    let mut c = Harness::new().sample_size(20);
    c.bench_function("reduction/dot product evaluate", |b| {
        b.iter(|| {
            Simdizer::new()
                .evaluate_with(black_box(&p), &DiffConfig::with_seed(13))
                .unwrap()
        })
    });
    c.final_summary();
}
