//! Ablation E11: the non-unit-stride extension. Measures speedup of the
//! gather/scatter permute generator over the scalar loop for strides 1,
//! 2 and 4, and compares its stride-1 code against the paper's stream
//! framework (quantifying what window reloading costs).

use simdize_bench::timing::{black_box, Harness};
use simdize::{DiffConfig, Expr, LoopBuilder, LoopProgram, ScalarType, Simdizer};

fn strided_loop(stride: u32) -> LoopProgram {
    let mut b = LoopBuilder::new(ScalarType::I16);
    let out = b.array("out", 1100, 0);
    let src = b.array("src", 1100 * stride as u64 + 64, 6);
    b.stmt(
        out.at(0),
        src.load_strided(stride, 1) + src.load_strided(stride, 0) * Expr::constant(2),
    );
    b.finish(1000).unwrap()
}

fn main() {
    println!("E11 — strided gather/scatter generator (i16, 8 lanes, 1000 iterations)");
    println!(
        "{:<10} {:>8} {:>10} {:>10}",
        "stride", "opd", "speedup", "perms/it"
    );
    for stride in [1u32, 2, 4] {
        let p = strided_loop(stride);
        // Force the strided generator even for stride 1 by… stride 1
        // loops route to the stream framework; measure both paths there.
        let r = Simdizer::new()
            .evaluate_with(&p, &DiffConfig::with_seed(3))
            .unwrap();
        assert!(r.verified);
        let iters = r.stats.steady_iterations.max(1);
        println!(
            "{:<10} {:>8.3} {:>9.2}x {:>10.2}",
            stride,
            r.opd,
            r.speedup,
            r.stats.shifts as f64 / iters as f64
        );
    }
    println!();
    println!("Stride 1 uses the paper's stream framework (software pipelining,");
    println!("never-load-twice); strides 2 and 4 use the §7 extension, which");
    println!("reloads each window — its speedup comes purely from lane packing.");

    let p = strided_loop(2);
    let compiled = Simdizer::new().compile(&p).unwrap();
    let mut c = Harness::new().sample_size(20);
    c.bench_function("stride/compile strided", |b| {
        b.iter(|| Simdizer::new().compile(black_box(&p)).unwrap())
    });
    c.bench_function("stride/simulate strided", |b| {
        b.iter(|| {
            simdize::run_differential(black_box(&compiled), &DiffConfig::with_seed(3)).unwrap()
        })
    });
    c.final_summary();
}
