//! Engine bench: compiled-kernel execution versus the tree-walking
//! interpreter on a 1M-element loop, plus the parallel batch sweep.
//!
//! The interpreter is the reference semantics; the engine must beat it
//! by at least 5× on the big loop (the whole point of pre-lowering).
//! This bench measures both, prints the ratio, and fails loudly if the
//! engine ever regresses below that bar.

use simdize::{
    parse_program, run_simd, run_sweep, CompiledKernel, MemoryImage, RunInput, Simdizer, SweepJob,
    VectorShape,
};
use simdize_bench::timing::{black_box, Harness};
use std::time::Instant;

const BIG: &str = "arrays { a: i32[1000016] @ 0; b: i32[1000016] @ 4; c: i32[1000016] @ 8; }
                   for i in 0..1000000 { a[i+3] = b[i+1] + c[i+2]; }";

fn main() {
    let program = parse_program(BIG).unwrap();
    let compiled = Simdizer::new().compile(&program).unwrap();
    let input = RunInput::with_ub(1_000_000);
    let image = MemoryImage::with_seed(&program, VectorShape::V16, 2004);
    let kernel = CompiledKernel::compile(&compiled, &image, &input).unwrap();

    let mut c = Harness::new().sample_size(10);
    c.bench_function("engine/compile-kernel", |b| {
        b.iter(|| CompiledKernel::compile(black_box(&compiled), &image, &input).unwrap())
    });
    c.bench_function("engine/run-1M", |b| {
        let mut img = image.clone();
        b.iter(|| kernel.run(black_box(&mut img)).unwrap())
    });
    c.bench_function("interp/run-1M", |b| {
        let mut img = image.clone();
        b.iter(|| run_simd(&compiled, black_box(&mut img), &input).unwrap())
    });
    c.bench_function("engine/sweep-8x100k", |b| {
        let small = parse_program(
            "arrays { a: i32[100016] @ ?; b: i32[100016] @ ?; }
             for i in 0..100000 { a[i] = b[i+1]; }",
        )
        .unwrap();
        let prog = Simdizer::new().compile(&small).unwrap();
        let jobs: Vec<SweepJob> = (0..8)
            .map(|s| SweepJob::new(prog.clone(), s, 100_000))
            .collect();
        b.iter(|| {
            let outcomes = run_sweep(black_box(&jobs), 4);
            assert!(outcomes.iter().all(|o| o.as_ref().unwrap().verified));
        })
    });
    c.final_summary();

    // The acceptance bar: compiled kernel ≥5× the interpreter on the
    // 1M-element loop, measured directly on single full runs.
    let mut img = image.clone();
    let t0 = Instant::now();
    kernel.run(&mut img).unwrap();
    let engine_t = t0.elapsed();
    let t1 = Instant::now();
    run_simd(&compiled, &mut img, &input).unwrap();
    let interp_t = t1.elapsed();
    let ratio = interp_t.as_secs_f64() / engine_t.as_secs_f64();
    println!(
        "\nengine {engine_t:?} vs interp {interp_t:?} on 1M elements -> {ratio:.1}x speedup"
    );
    assert!(
        ratio >= 5.0,
        "compiled kernel only {ratio:.1}x faster than the interpreter (need >= 5x)"
    );
}
