//! The `simdize` command-line driver: parse a loop in the textual
//! syntax, run it through the alignment-handling pipeline, and print
//! graphs, generated code, lowerings and evaluation reports.
//!
//! The binary is a thin wrapper around [`run`], which is exposed (and
//! unit-tested) here. Usage:
//!
//! ```text
//! simdize <command> <file.loop|-> [options]
//!
//! commands:
//!   check      parse and validate the loop, print the normalized form
//!   graph      print the data reorganization graph (--dot for Graphviz)
//!   compile    print the generated vector code (--asm for AltiVec form)
//!   analyze    statically check the generated code (lints; --json)
//!   run        compile, execute, verify against the scalar loop, report
//!   explain    decision-trace report: every instruction back-linked to
//!              the placement/codegen/fusion decision that produced it,
//!              with OPD accounting (--json / --markdown)
//!   policies   compare all four shift-placement policies on the loop
//!   sweep      run the loop over many memory seeds on worker threads
//!
//! options:
//!   --policy zero|eager|lazy|dominant   force a placement policy
//!   --reuse none|sp|pc                  reuse scheme (default sp)
//!   --reassoc                           enable common-offset reassociation
//!   --no-memnorm / --no-unroll          disable those passes
//!   --target unaligned                  SSE2-style misaligned-memory machine
//!   --shape 8|16|32                     vector register bytes (default 16)
//!   --seed N                            memory image seed (default 2004)
//!   --ub N                              trip count for runtime-`ub` loops
//!   --param N (repeatable)              loop parameter values, in order
//!   --engine interp|native              executor for `run` (default interp)
//!   --lint NAME=allow|warn|deny         override a lint level (repeatable)
//!   --json                              JSON output for `analyze`/`explain`
//!   --markdown                          Markdown output for `explain`
//!   --threads N                         sweep worker threads (default:
//!                                       available parallelism; --jobs is
//!                                       an alias)
//!   --count N                           sweep seeds to cover (default 32)
//!   --smoke                             quick 8-seed sweep preset
//!   --dot / --asm                       alternative output formats
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simdize::{
    analyze_program, lower_altivec, run_scalar, run_sweep, to_dot, AnalyzeOptions, CompiledKernel,
    DiffConfig, Level, Lint, MemoryImage, Policy, ReorgGraph, ReuseMode, RunInput, Scheme,
    SimdizeError, Simdizer, SweepJob, Target, VectorShape,
};
use simdize_explain::{render_json, render_markdown, render_text, Explainer};
use std::error::Error;
use std::fmt::Write as _;

/// Source reader injected into [`parse_args`] so tests can supply loop
/// text without touching the filesystem.
pub type ReadSource = dyn Fn(&str) -> Result<String, Box<dyn Error>>;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    command: String,
    source: String,
    policy: Option<Policy>,
    reuse: ReuseMode,
    reassoc: bool,
    memnorm: bool,
    unroll: bool,
    target: Target,
    shape: VectorShape,
    seed: u64,
    ub: u64,
    params: Vec<i64>,
    engine: String,
    lints: Vec<(Lint, Level)>,
    json: bool,
    markdown: bool,
    threads: usize,
    count: usize,
    smoke: bool,
    dot: bool,
    asm: bool,
}

/// Parses argv-style arguments (`args` excludes the program name) and
/// reads the loop source via `read_file` (injected for testability;
/// `"-"` means standard input in the binary).
///
/// # Errors
///
/// Returns a usage message on malformed arguments.
pub fn parse_args(
    args: &[String],
    read_file: &ReadSource,
) -> Result<Options, Box<dyn Error>> {
    let mut it = args.iter();
    let command = it.next().ok_or(USAGE)?.clone();
    if !matches!(
        command.as_str(),
        "check" | "graph" | "compile" | "analyze" | "run" | "explain" | "policies" | "sweep"
    ) {
        return Err(format!("unknown command `{command}`\n{USAGE}").into());
    }
    let path = it.next().ok_or("missing <file.loop> argument")?;
    let source = read_file(path)?;

    let mut opts = Options {
        command,
        source,
        policy: None,
        reuse: ReuseMode::SoftwarePipeline,
        reassoc: false,
        memnorm: true,
        unroll: true,
        target: Target::Aligned,
        shape: VectorShape::V16,
        seed: 2004,
        ub: 1000,
        params: Vec::new(),
        engine: "interp".to_string(),
        lints: Vec::new(),
        json: false,
        markdown: false,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        count: 32,
        smoke: false,
        dot: false,
        asm: false,
    };
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, Box<dyn Error>> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match arg.as_str() {
            "--policy" => {
                opts.policy = Some(match value("--policy")?.as_str() {
                    "zero" => Policy::Zero,
                    "eager" => Policy::Eager,
                    "lazy" => Policy::Lazy,
                    "dominant" => Policy::Dominant,
                    other => return Err(format!("unknown policy `{other}`").into()),
                })
            }
            "--reuse" => {
                opts.reuse = match value("--reuse")?.as_str() {
                    "none" => ReuseMode::None,
                    "sp" => ReuseMode::SoftwarePipeline,
                    "pc" => ReuseMode::PredictiveCommoning,
                    other => return Err(format!("unknown reuse mode `{other}`").into()),
                }
            }
            "--reassoc" => opts.reassoc = true,
            "--no-memnorm" => opts.memnorm = false,
            "--no-unroll" => opts.unroll = false,
            "--target" => {
                opts.target = match value("--target")?.as_str() {
                    "aligned" => Target::Aligned,
                    "unaligned" => Target::Unaligned,
                    other => return Err(format!("unknown target `{other}`").into()),
                }
            }
            "--shape" => {
                let bytes: u32 = value("--shape")?.parse()?;
                opts.shape =
                    VectorShape::new(bytes).ok_or_else(|| format!("unsupported shape {bytes}"))?;
            }
            "--seed" => opts.seed = value("--seed")?.parse()?,
            "--ub" => opts.ub = value("--ub")?.parse()?,
            "--param" => opts.params.push(value("--param")?.parse()?),
            "--engine" => {
                let name = value("--engine")?;
                if !matches!(name.as_str(), "interp" | "native") {
                    return Err(format!("unknown engine `{name}` (expected `interp` or `native`)").into());
                }
                opts.engine = name;
            }
            "--lint" => {
                let spec = value("--lint")?;
                let (name, level) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--lint expects `name=level`, got `{spec}`"))?;
                let lint = Lint::from_name(name)
                    .ok_or_else(|| format!("unknown lint `{name}`"))?;
                let level: Level = level
                    .parse()
                    .map_err(|e| format!("--lint {name}: {e}"))?;
                opts.lints.push((lint, level));
            }
            "--json" => opts.json = true,
            "--markdown" => opts.markdown = true,
            "--threads" | "--jobs" => {
                opts.threads = value(arg)?.parse()?;
                if opts.threads == 0 {
                    return Err(format!("{arg} must be at least 1").into());
                }
            }
            "--count" => opts.count = value("--count")?.parse()?,
            "--smoke" => opts.smoke = true,
            "--dot" => opts.dot = true,
            "--asm" => opts.asm = true,
            other => return Err(format!("unknown option `{other}`\n{USAGE}").into()),
        }
    }
    Ok(opts)
}

const USAGE: &str =
    "usage: simdize <check|graph|compile|analyze|run|explain|policies|sweep> <file.loop|-> [options]
run `simdize` with no arguments for the full option list";

/// Executes the parsed command and returns its printable output.
///
/// # Errors
///
/// Propagates parse, pipeline and verification errors with readable
/// messages.
pub fn run(opts: &Options) -> Result<String, Box<dyn Error>> {
    let program = simdize::parse_program(&opts.source)?;
    let mut driver = Simdizer::new()
        .shape(opts.shape)
        .reuse(opts.reuse)
        .memnorm(opts.memnorm)
        .unroll(opts.unroll)
        .reassociate(opts.reassoc)
        .target(opts.target);
    if let Some(p) = opts.policy {
        driver = driver.policy(p);
    }

    let mut out = String::new();
    match opts.command.as_str() {
        "check" => {
            writeln!(out, "valid simdizable loop:")?;
            write!(out, "{program}")?;
            writeln!(
                out,
                "element {} ({} lanes on {}), {} statement(s), alignments {}",
                program.elem(),
                opts.shape.blocking_factor(program.elem()),
                opts.shape,
                program.stmts().len(),
                if program.all_alignments_known() {
                    "compile-time"
                } else {
                    "runtime"
                }
            )?;
        }
        "graph" => {
            let graph = ReorgGraph::build(&program, opts.shape)?;
            let placed = graph.with_policy(driver.policy_for(&program))?;
            if opts.dot {
                out.push_str(&to_dot(&placed));
            } else {
                write!(out, "{placed}")?;
                writeln!(out, "{} stream shifts", placed.shift_count())?;
            }
        }
        "compile" => {
            let compiled = driver.compile(&program)?;
            if opts.asm {
                out.push_str(&lower_altivec(&compiled));
            } else {
                write!(out, "{compiled}")?;
            }
        }
        "analyze" => {
            let compiled = driver.compile(&program)?;
            // The exactly-once lint only applies to the standard stream
            // generator; the strided and hardware-misaligned paths
            // don't pipeline chunks.
            let standard = opts.target == Target::Aligned
                && program.all_refs().iter().all(|r| r.is_unit_stride());
            let mut aopts = AnalyzeOptions::new().memnorm(opts.memnorm);
            if standard {
                aopts = aopts.reuse(opts.reuse);
            }
            for (lint, level) in &opts.lints {
                aopts = aopts.level(*lint, *level);
            }
            let report = analyze_program(&compiled, &aopts);
            let rendered = if opts.json {
                report.render_json()
            } else {
                report.render_text()
            };
            writeln!(out, "{rendered}")?;
            if report.deny_count() > 0 {
                return Err(format!(
                    "analysis found {} deny-level finding(s)\n{rendered}",
                    report.deny_count()
                )
                .into());
            }
        }
        "run" if opts.engine == "native" => {
            let compiled = driver.compile(&program)?;
            let source = compiled.source().clone();
            let ub = source.trip().known().unwrap_or(opts.ub);
            let input = RunInput {
                ub,
                params: opts.params.clone(),
            };
            let mut image = MemoryImage::with_seed(&source, opts.shape, opts.seed);
            let mut oracle = image.clone();
            let kernel = CompiledKernel::compile(&compiled, &image, &input)?;
            let stats = kernel.run(&mut image)?;
            let ideal = run_scalar(&source, &mut oracle, ub, &opts.params)?;
            let verified = image.first_difference(&oracle).is_none();
            let data = source.stmts().len() as u64 * ub;
            writeln!(out, "verified: {verified}")?;
            writeln!(
                out,
                "engine: native ({})",
                if kernel.is_fallback() {
                    "scalar fallback"
                } else {
                    "compiled kernel"
                }
            )?;
            let fusion = kernel.fusion_stats();
            writeln!(
                out,
                "trace: {} fused load(s), {} splat op(s), {} hoisted, {} eliminated",
                fusion.fused_loads, fusion.splat_ops, fusion.hoisted, fusion.eliminated
            )?;
            writeln!(
                out,
                "opd: {:.3}  speedup: {:.2}x over idealistic scalar",
                stats.opd(data),
                ideal as f64 / stats.total() as f64
            )?;
            writeln!(out, "stats: {stats}")?;
            if !verified {
                return Err("native engine diverged from the scalar oracle".into());
            }
        }
        "run" => {
            let report = driver.evaluate_with(
                &program,
                &DiffConfig::with_seed(opts.seed)
                    .runtime_ub(opts.ub)
                    .params(opts.params.clone()),
            )?;
            writeln!(out, "verified: {}", report.verified)?;
            writeln!(out, "{report}")?;
        }
        "explain" => {
            let mut explainer = Explainer::new()
                .shape(opts.shape)
                .reuse(opts.reuse)
                .seed(opts.seed)
                .ub(opts.ub)
                .params(opts.params.clone());
            if let Some(p) = opts.policy {
                explainer = explainer.policy(p);
            }
            let report = explainer.explain(&program)?;
            out.push_str(&if opts.json {
                render_json(&report)
            } else if opts.markdown {
                render_markdown(&report)
            } else {
                render_text(&report)
            });
            if !out.ends_with('\n') {
                out.push('\n');
            }
        }
        "sweep" => {
            let compiled = driver.compile(&program)?;
            let count = if opts.smoke { 8 } else { opts.count };
            let jobs: Vec<SweepJob> = (0..count as u64)
                .map(|k| SweepJob::new(compiled.clone(), opts.seed.wrapping_add(k), opts.ub))
                .collect();
            let started = std::time::Instant::now();
            let outcomes = run_sweep(&jobs, opts.threads);
            let elapsed = started.elapsed();
            writeln!(
                out,
                "{:>6} {:>9} {:>9} {:>9}",
                "seed", "verified", "opd", "speedup"
            )?;
            let mut ok = 0usize;
            for outcome in &outcomes {
                match outcome {
                    Ok(o) => {
                        ok += usize::from(o.verified);
                        writeln!(
                            out,
                            "{:>6} {:>9} {:>9.3} {:>8.2}x",
                            o.seed,
                            o.verified,
                            o.stats.opd(o.data_produced),
                            o.speedup()
                        )?;
                    }
                    Err(e) => writeln!(out, "     - error: {e}")?,
                }
            }
            writeln!(
                out,
                "{ok}/{count} verified on {} worker thread(s), {:.0} jobs/sec",
                opts.threads.min(count.max(1)),
                count as f64 / elapsed.as_secs_f64().max(1e-9)
            )?;
            if ok != count {
                return Err(format!("sweep failed: {ok}/{count} seeds verified").into());
            }
        }
        "policies" => {
            writeln!(
                out,
                "{:<10} {:>7} {:>9} {:>9} {:>9}",
                "policy", "shifts", "opd", "bound", "speedup"
            )?;
            for policy in Policy::ALL {
                let graph = ReorgGraph::build(&program, opts.shape)?;
                let placed = match graph.with_policy(policy) {
                    Ok(p) => p,
                    Err(e) => {
                        writeln!(out, "{:<10} {e}", policy.name())?;
                        continue;
                    }
                };
                let report = driver
                    .scheme(Scheme::new(policy, opts.reuse).reassoc(opts.reassoc))
                    .evaluate_with(
                        &program,
                        &DiffConfig::with_seed(opts.seed)
                            .runtime_ub(opts.ub)
                            .params(opts.params.clone()),
                    );
                match report {
                    Ok(r) => writeln!(
                        out,
                        "{:<10} {:>7} {:>9.3} {:>9.3} {:>8.2}x",
                        policy.name(),
                        placed.shift_count(),
                        r.opd,
                        r.lower_bound_opd,
                        r.speedup
                    )?,
                    Err(SimdizeError::Policy(e)) => writeln!(out, "{:<10} {e}", policy.name())?,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        _ => unreachable!("validated in parse_args"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP: &str = "arrays { a: i32[1024] @ 0; b: i32[1024] @ 0; c: i32[1024] @ 0; }
                        for i in 0..1000 { a[i+3] = b[i+1] + c[i+2]; }";

    fn opts(args: &[&str]) -> Options {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&args, &|_| Ok(LOOP.to_string())).unwrap()
    }

    #[test]
    fn check_prints_summary() {
        let out = run(&opts(&["check", "x.loop"])).unwrap();
        assert!(out.contains("valid simdizable loop"));
        assert!(out.contains("4 lanes"));
        assert!(out.contains("compile-time"));
    }

    #[test]
    fn graph_and_dot() {
        let out = run(&opts(&["graph", "x.loop", "--policy", "zero"])).unwrap();
        assert!(out.contains("vshiftstream"));
        assert!(out.contains("3 stream shifts"));
        let dot = run(&opts(&["graph", "x.loop", "--dot"])).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn compile_and_asm() {
        let out = run(&opts(&["compile", "x.loop"])).unwrap();
        assert!(out.contains("prologue"));
        assert!(out.contains("vshiftpair"));
        let asm = run(&opts(&["compile", "x.loop", "--asm"])).unwrap();
        assert!(asm.contains("lvx"));
    }

    #[test]
    fn analyze_reports_clean() {
        let out = run(&opts(&["analyze", "x.loop"])).unwrap();
        assert!(out.contains("analysis clean"), "{out}");
        let json = run(&opts(&["analyze", "x.loop", "--json"])).unwrap();
        assert!(json.contains("\"findings\":[]"), "{json}");
        // Lint overrides parse and apply (allow-all keeps it clean too).
        let out = run(&opts(&[
            "analyze",
            "x.loop",
            "--lint",
            "redundant-shift=deny",
            "--lint",
            "dead-load=allow",
        ]))
        .unwrap();
        assert!(out.contains("analysis clean"), "{out}");
    }

    #[test]
    fn analyze_lint_parse_errors() {
        let args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let read = |_: &str| -> Result<String, Box<dyn Error>> { Ok(LOOP.into()) };
        assert!(parse_args(&args(&["analyze", "x", "--lint", "dead-load"]), &read).is_err());
        assert!(parse_args(&args(&["analyze", "x", "--lint", "bogus=deny"]), &read).is_err());
        assert!(parse_args(&args(&["analyze", "x", "--lint", "dead-load=loud"]), &read).is_err());
    }

    #[test]
    fn run_verifies() {
        let out = run(&opts(&["run", "x.loop", "--seed", "7"])).unwrap();
        assert!(out.contains("verified: true"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn explain_backlinks_and_formats() {
        let out = run(&opts(&["explain", "x.loop"])).unwrap();
        assert!(out.contains("== decisions =="), "{out}");
        assert!(out.contains('\u{2190}'), "{out}");
        let json = run(&opts(&["explain", "x.loop", "--json"])).unwrap();
        assert!(json.starts_with("{\"schema\":\"simdize-explain/v1\""), "{json}");
        let md = run(&opts(&["explain", "x.loop", "--policy", "zero", "--markdown"])).unwrap();
        assert!(md.starts_with("# Worked example"), "{md}");
    }

    #[test]
    fn policies_table() {
        let out = run(&opts(&["policies", "x.loop", "--reassoc"])).unwrap();
        assert!(out.contains("zero"));
        assert!(out.contains("dominant"));
        assert_eq!(out.lines().count(), 5);
    }

    #[test]
    fn run_native_engine_verifies() {
        let out = run(&opts(&["run", "x.loop", "--engine", "native", "--seed", "7"])).unwrap();
        assert!(out.contains("verified: true"));
        assert!(out.contains("engine: native (compiled kernel)"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn sweep_smoke_reports_all_seeds() {
        let out = run(&opts(&["sweep", "x.loop", "--smoke", "--jobs", "2"])).unwrap();
        assert!(out.contains("8/8 verified"));
        assert!(out.contains("jobs/sec"));
        assert!(out.lines().count() >= 10); // header + 8 rows + summary
    }

    #[test]
    fn threads_flag_matches_jobs_alias() {
        let via_threads = opts(&["sweep", "x.loop", "--threads", "3"]);
        let via_jobs = opts(&["sweep", "x.loop", "--jobs", "3"]);
        assert_eq!(via_threads, via_jobs);
        let out = run(&opts(&["sweep", "x.loop", "--smoke", "--threads", "2"])).unwrap();
        assert!(out.contains("8/8 verified on 2 worker thread(s)"));
    }

    #[test]
    fn run_native_reports_fusion_trace() {
        let out = run(&opts(&["run", "x.loop", "--engine", "native"])).unwrap();
        assert!(out.contains("trace:"), "{out}");
        assert!(out.contains("fused load(s)"), "{out}");
    }

    #[test]
    fn option_parsing_errors() {
        let args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let read = |_: &str| -> Result<String, Box<dyn Error>> { Ok(LOOP.into()) };
        assert!(parse_args(&args(&["frobnicate", "x"]), &read).is_err());
        assert!(parse_args(&args(&["run"]), &read).is_err());
        assert!(parse_args(&args(&["run", "x", "--policy", "bogus"]), &read).is_err());
        assert!(parse_args(&args(&["run", "x", "--shape", "12"]), &read).is_err());
        assert!(parse_args(&args(&["run", "x", "--whatever"]), &read).is_err());
        assert!(parse_args(&args(&["run", "x", "--engine", "jit"]), &read).is_err());
        assert!(parse_args(&args(&["sweep", "x", "--jobs", "0"]), &read).is_err());
        assert!(parse_args(&args(&["sweep", "x", "--threads", "0"]), &read).is_err());
    }

    #[test]
    fn unaligned_target_flag() {
        let out = run(&opts(&["run", "x.loop", "--target", "unaligned"])).unwrap();
        assert!(out.contains("verified: true"));
        let code = run(&opts(&["compile", "x.loop", "--target", "unaligned"])).unwrap();
        assert!(code.contains("vloadu"));
    }
}
