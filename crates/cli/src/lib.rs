//! The `simdize` command-line driver: parse a loop in the textual
//! syntax, run it through the alignment-handling pipeline, and print
//! graphs, generated code, lowerings and evaluation reports.
//!
//! The binary is a thin wrapper around [`run`], which is exposed (and
//! unit-tested) here. Usage:
//!
//! ```text
//! simdize <command> <file.loop|-> [options]
//!
//! commands:
//!   check      parse and validate the loop, print the normalized form
//!   graph      print the data reorganization graph (--dot for Graphviz)
//!   compile    print the generated vector code (--asm for AltiVec form)
//!   analyze    statically check the generated code (lints; --json)
//!   run        compile, execute, verify against the scalar loop, report
//!   verify     bounded-equivalence prover: exhaustively prove the
//!              generated, fused and cached kernels byte-equivalent to
//!              the scalar oracle over every realizable alignment x
//!              trip count x policy/reuse/unroll configuration
//!              (--quick, --json; exits non-zero on a violation)
//!   explain    decision-trace report: every instruction back-linked to
//!              the placement/codegen/fusion decision that produced it,
//!              with OPD accounting (--json / --markdown)
//!   policies   compare all four shift-placement policies on the loop
//!   sweep      run the loop over many memory seeds on worker threads
//!   profile    instrumented end-to-end pass: span tree over every
//!              pipeline phase plus engine metrics (--json for the
//!              versioned simdize-telemetry/v1 document)
//!   trace      request-scoped end-to-end trace: one pass collected
//!              under a fresh trace id, printed as a span timeline
//!              with pipeline attributes (--json for the versioned
//!              simdize-trace/v1 document, --chrome-out FILE for a
//!              chrome://tracing / Perfetto trace-event file)
//!   serve <addr>   long-running simdization server speaking the
//!              simdize-wire/v1 JSONL-over-TCP protocol; prints
//!              `listening on ADDR` (with the resolved port) before
//!              accepting, shuts down on SIGINT or a shutdown request
//!   bench diff [old new]   compare two bench-history entries with
//!              noise-aware thresholds; exits non-zero on regression
//!              (defaults to the two newest entries in --dir)
//!
//! Every command that takes `<file.loop>` also accepts a bare loop
//! name: `simdize run figure1` resolves to `loops/figure1.loop`,
//! searched upward from the current directory.
//!
//! options:
//!   --policy zero|eager|lazy|dominant|optimal   force a placement policy
//!   --reuse none|sp|pc                  reuse scheme (default sp)
//!   --reassoc                           enable common-offset reassociation
//!   --no-memnorm / --no-unroll          disable those passes
//!   --target unaligned                  SSE2-style misaligned-memory machine
//!   --shape 8|16|32                     vector register bytes (default 16)
//!   --seed N                            memory image seed (default 2004)
//!   --ub N                              trip count for runtime-`ub` loops
//!   --param N (repeatable)              loop parameter values, in order
//!   --engine interp|native|simd         executor for `run` (default
//!                                       interp); `simd` lowers the baked
//!                                       plan to std::arch intrinsics and
//!                                       also selects the sweep backend
//!   --lint NAME=allow|warn|deny         override a lint level (repeatable)
//!   --json                              JSON output for `analyze`/`explain`
//!   --markdown                          Markdown output for `explain`
//!   --threads N                         sweep worker threads (default:
//!                                       available parallelism; --jobs is
//!                                       an alias)
//!   --count N                           sweep seeds to cover (default 32)
//!   --smoke                             quick 8-seed sweep preset
//!   --telemetry                         collect and print span/metric
//!                                       telemetry around `run`/`sweep`
//!   --dir PATH                          bench-history directory for
//!                                       `bench diff` (default bench_history)
//!   --workers N                         serve: worker pool size (default 2)
//!   --queue N                           serve: bounded job-queue depth
//!                                       (default 64; full queue => busy)
//!   --shards N / --cache-cap N          serve: kernel-cache shard count
//!                                       (default 8) and per-shard LRU
//!                                       capacity (default 32)
//!   --flight-cap N                      serve: flight-recorder ring
//!                                       capacity in requests (default 128)
//!   --metrics-addr ADDR                 serve: also bind a plain-HTTP
//!                                       GET /metrics endpoint with
//!                                       Prometheus text exposition;
//!                                       prints `metrics on ADDR`
//!   --chrome-out FILE                   trace: also write the Chrome
//!                                       trace-event JSON to FILE
//!   --threshold F                       allowed relative loss before a
//!                                       metric counts as regressed
//!                                       (default 0.25; timings get 2x)
//!   --quick                             verify: smoke-sized domain preset
//!                                       (sampled alignments, boundary trips)
//!   --trip-bound N                      verify: prove trip counts 1..=N
//!                                       (default 64, quick 16)
//!   --budget N                          verify: max harness executions
//!                                       before reporting INCOMPLETE
//!   --mutate splice|shift               verify: inject a known-bad
//!                                       mutation — the prover must fail
//!                                       (the mutate-and-catch meta-test)
//!   --dot / --asm                       alternative output formats
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simdize::{
    analyze_program, lower_altivec, run_scalar, run_sweep_collect, to_dot, AnalyzeOptions,
    CompiledKernel, DiffConfig, IsaLevel, Level, Lint, MemoryImage, MutationKind, Policy,
    ReorgGraph, ReuseMode, RunInput, Scheme, SimdKernel, SimdizeError, Simdizer, SweepBackend,
    SweepJob, SweepOptions, Target, VectorShape, VerifyOptions,
};
use simdize_explain::{render_json, render_markdown, render_text, Explainer};
use simdize_telemetry as telemetry;
use std::error::Error;
use std::fmt::Write as _;

/// Source reader injected into [`parse_args`] so tests can supply loop
/// text without touching the filesystem.
pub type ReadSource = dyn Fn(&str) -> Result<String, Box<dyn Error>>;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    command: String,
    source: String,
    loop_name: String,
    policy: Option<Policy>,
    reuse: ReuseMode,
    reassoc: bool,
    memnorm: bool,
    unroll: bool,
    target: Target,
    shape: VectorShape,
    seed: u64,
    ub: u64,
    params: Vec<i64>,
    engine: String,
    lints: Vec<(Lint, Level)>,
    json: bool,
    markdown: bool,
    threads: usize,
    count: usize,
    smoke: bool,
    telemetry: bool,
    dir: String,
    threshold: f64,
    bench_old: Option<String>,
    bench_new: Option<String>,
    dot: bool,
    asm: bool,
    addr: String,
    workers: usize,
    queue: usize,
    shards: usize,
    cache_cap: usize,
    quick: bool,
    trip_bound: Option<u64>,
    budget: Option<u64>,
    mutate: Option<MutationKind>,
    chrome_out: Option<String>,
    flight_cap: usize,
    metrics_addr: Option<String>,
}

/// Parses argv-style arguments (`args` excludes the program name) and
/// reads the loop source via `read_file` (injected for testability;
/// `"-"` means standard input in the binary).
///
/// # Errors
///
/// Returns a usage message on malformed arguments.
pub fn parse_args(
    args: &[String],
    read_file: &ReadSource,
) -> Result<Options, Box<dyn Error>> {
    let mut it = args.iter();
    let command = it.next().ok_or(USAGE)?.clone();
    if !matches!(
        command.as_str(),
        "check"
            | "graph"
            | "compile"
            | "analyze"
            | "run"
            | "verify"
            | "explain"
            | "policies"
            | "sweep"
            | "profile"
            | "trace"
            | "serve"
            | "bench"
    ) {
        return Err(format!("unknown command `{command}`\n{USAGE}").into());
    }
    // `bench` takes a subcommand and entry paths, and `serve` a listen
    // address — neither reads a loop file.
    let mut addr = String::new();
    let mut loop_name = String::new();
    let source = if command == "bench" {
        let sub = it.next().ok_or("bench needs a subcommand: `bench diff`")?;
        if sub != "diff" {
            return Err(format!("unknown bench subcommand `{sub}` (expected `diff`)").into());
        }
        String::new()
    } else if command == "serve" {
        addr = it
            .next()
            .ok_or("serve needs a listen address, e.g. `serve 127.0.0.1:4910` (port 0 = ephemeral)")?
            .clone();
        String::new()
    } else {
        let path = it.next().ok_or("missing <file.loop> argument")?;
        loop_name = if path == "-" {
            "stdin".to_string()
        } else {
            std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.clone())
        };
        read_file(path)?
    };

    let mut opts = Options {
        command,
        source,
        loop_name,
        policy: None,
        reuse: ReuseMode::SoftwarePipeline,
        reassoc: false,
        memnorm: true,
        unroll: true,
        target: Target::Aligned,
        shape: VectorShape::V16,
        seed: 2004,
        ub: 1000,
        params: Vec::new(),
        engine: "interp".to_string(),
        lints: Vec::new(),
        json: false,
        markdown: false,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        count: 32,
        smoke: false,
        telemetry: false,
        dir: "bench_history".to_string(),
        threshold: 0.25,
        bench_old: None,
        bench_new: None,
        dot: false,
        asm: false,
        addr,
        workers: 2,
        queue: 64,
        shards: 8,
        cache_cap: 32,
        quick: false,
        trip_bound: None,
        budget: None,
        mutate: None,
        chrome_out: None,
        flight_cap: 128,
        metrics_addr: None,
    };
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, Box<dyn Error>> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match arg.as_str() {
            "--policy" => {
                opts.policy = Some(match value("--policy")?.as_str() {
                    "zero" => Policy::Zero,
                    "eager" => Policy::Eager,
                    "lazy" => Policy::Lazy,
                    "dominant" => Policy::Dominant,
                    "optimal" => Policy::Optimal,
                    other => return Err(format!("unknown policy `{other}`").into()),
                })
            }
            "--reuse" => {
                opts.reuse = match value("--reuse")?.as_str() {
                    "none" => ReuseMode::None,
                    "sp" => ReuseMode::SoftwarePipeline,
                    "pc" => ReuseMode::PredictiveCommoning,
                    other => return Err(format!("unknown reuse mode `{other}`").into()),
                }
            }
            "--reassoc" => opts.reassoc = true,
            "--no-memnorm" => opts.memnorm = false,
            "--no-unroll" => opts.unroll = false,
            "--target" => {
                opts.target = match value("--target")?.as_str() {
                    "aligned" => Target::Aligned,
                    "unaligned" => Target::Unaligned,
                    other => return Err(format!("unknown target `{other}`").into()),
                }
            }
            "--shape" => {
                let bytes: u32 = value("--shape")?.parse()?;
                opts.shape =
                    VectorShape::new(bytes).ok_or_else(|| format!("unsupported shape {bytes}"))?;
            }
            "--seed" => opts.seed = value("--seed")?.parse()?,
            "--ub" => opts.ub = value("--ub")?.parse()?,
            "--param" => opts.params.push(value("--param")?.parse()?),
            "--engine" => {
                let name = value("--engine")?;
                if !matches!(name.as_str(), "interp" | "native" | "simd") {
                    return Err(format!(
                        "unknown engine `{name}` (expected `interp`, `native` or `simd`)"
                    )
                    .into());
                }
                opts.engine = name;
            }
            "--lint" => {
                let spec = value("--lint")?;
                let (name, level) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--lint expects `name=level`, got `{spec}`"))?;
                let lint = Lint::from_name(name)
                    .ok_or_else(|| format!("unknown lint `{name}`"))?;
                let level: Level = level
                    .parse()
                    .map_err(|e| format!("--lint {name}: {e}"))?;
                opts.lints.push((lint, level));
            }
            "--json" => opts.json = true,
            "--markdown" => opts.markdown = true,
            "--threads" | "--jobs" => {
                opts.threads = value(arg)?.parse()?;
                if opts.threads == 0 {
                    return Err(format!("{arg} must be at least 1").into());
                }
            }
            "--count" => opts.count = value("--count")?.parse()?,
            "--smoke" => opts.smoke = true,
            "--telemetry" => opts.telemetry = true,
            "--dir" => opts.dir = value("--dir")?,
            "--threshold" => {
                opts.threshold = value("--threshold")?.parse()?;
                if !(0.0..1.0).contains(&opts.threshold) {
                    return Err("--threshold must be in [0, 1)".into());
                }
            }
            "--dot" => opts.dot = true,
            "--asm" => opts.asm = true,
            "--workers" => {
                opts.workers = value("--workers")?.parse()?;
                if opts.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--queue" => {
                opts.queue = value("--queue")?.parse()?;
                if opts.queue == 0 {
                    return Err("--queue must be at least 1".into());
                }
            }
            "--shards" => opts.shards = value("--shards")?.parse()?,
            "--cache-cap" => opts.cache_cap = value("--cache-cap")?.parse()?,
            "--quick" => opts.quick = true,
            "--trip-bound" => {
                let bound: u64 = value("--trip-bound")?.parse()?;
                if bound == 0 {
                    return Err("--trip-bound must be at least 1".into());
                }
                opts.trip_bound = Some(bound);
            }
            "--budget" => {
                let budget: u64 = value("--budget")?.parse()?;
                if budget == 0 {
                    return Err("--budget must be at least 1".into());
                }
                opts.budget = Some(budget);
            }
            "--chrome-out" => opts.chrome_out = Some(value("--chrome-out")?),
            "--flight-cap" => {
                opts.flight_cap = value("--flight-cap")?.parse()?;
                if opts.flight_cap == 0 {
                    return Err("--flight-cap must be at least 1".into());
                }
            }
            "--metrics-addr" => opts.metrics_addr = Some(value("--metrics-addr")?),
            "--mutate" => {
                let name = value("--mutate")?;
                opts.mutate = Some(MutationKind::from_name(&name).ok_or_else(|| {
                    format!("unknown mutation `{name}` (expected `splice` or `shift`)")
                })?);
            }
            other if opts.command == "bench" && !other.starts_with('-') => {
                if opts.bench_old.is_none() {
                    opts.bench_old = Some(other.to_string());
                } else if opts.bench_new.is_none() {
                    opts.bench_new = Some(other.to_string());
                } else {
                    return Err("bench diff takes at most two entry paths".into());
                }
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}").into()),
        }
    }
    Ok(opts)
}

const USAGE: &str =
    "usage: simdize <check|graph|compile|analyze|run|verify|explain|policies|sweep|profile|trace> <file.loop|-> [options]
       simdize serve <addr> [--workers N] [--queue N] [--shards N] [--cache-cap N] [--flight-cap N] [--metrics-addr ADDR]
       simdize bench diff [old.json new.json] [--dir DIR] [--threshold F]
run `simdize` with no arguments for the full option list";

/// Resolves a `<file.loop>` argument: an existing path (or anything
/// path-like, containing `/` or `.`) is used as-is; a bare loop name
/// like `figure1` falls back to `loops/figure1.loop`, searched in the
/// current directory and then each ancestor, so bare names work from
/// anywhere inside the checkout. Returns the bare name unchanged when
/// no bundled loop matches (the caller's read then reports the usual
/// not-found error).
pub fn resolve_loop_path(path: &str) -> std::path::PathBuf {
    let direct = std::path::Path::new(path);
    if direct.exists() || path.contains(['/', '.']) {
        return direct.to_path_buf();
    }
    let rel = format!("loops/{path}.loop");
    let mut dir = std::env::current_dir().unwrap_or_default();
    loop {
        let candidate = dir.join(&rel);
        if candidate.exists() {
            return candidate;
        }
        if !dir.pop() {
            break;
        }
    }
    direct.to_path_buf()
}

/// Executes the parsed command and returns its printable output.
///
/// # Errors
///
/// Propagates parse, pipeline and verification errors with readable
/// messages.
pub fn run(opts: &Options) -> Result<String, Box<dyn Error>> {
    if opts.command == "bench" {
        return run_bench_diff(opts);
    }
    if opts.command == "serve" {
        return run_serve(opts);
    }
    // --telemetry wraps the whole command in a collection session; the
    // report is appended to the normal output.
    let mut session = opts.telemetry.then(telemetry::session);
    let program = simdize::parse_program(&opts.source)?;
    let mut driver = Simdizer::new()
        .shape(opts.shape)
        .reuse(opts.reuse)
        .memnorm(opts.memnorm)
        .unroll(opts.unroll)
        .reassociate(opts.reassoc)
        .target(opts.target);
    if let Some(p) = opts.policy {
        driver = driver.policy(p);
    }

    let mut out = String::new();
    match opts.command.as_str() {
        "check" => {
            writeln!(out, "valid simdizable loop:")?;
            write!(out, "{program}")?;
            writeln!(
                out,
                "element {} ({} lanes on {}), {} statement(s), alignments {}",
                program.elem(),
                opts.shape.blocking_factor(program.elem()),
                opts.shape,
                program.stmts().len(),
                if program.all_alignments_known() {
                    "compile-time"
                } else {
                    "runtime"
                }
            )?;
        }
        "graph" => {
            let graph = ReorgGraph::build(&program, opts.shape)?;
            let placed = graph.with_policy(driver.policy_for(&program))?;
            if opts.dot {
                out.push_str(&to_dot(&placed));
            } else {
                write!(out, "{placed}")?;
                writeln!(out, "{} stream shifts", placed.shift_count())?;
            }
        }
        "compile" => {
            let compiled = driver.compile(&program)?;
            if opts.asm {
                out.push_str(&lower_altivec(&compiled));
            } else {
                write!(out, "{compiled}")?;
            }
        }
        "analyze" => {
            let compiled = driver.compile(&program)?;
            // The exactly-once lint only applies to the standard stream
            // generator; the strided and hardware-misaligned paths
            // don't pipeline chunks.
            let standard = opts.target == Target::Aligned
                && program.all_refs().iter().all(|r| r.is_unit_stride());
            let mut aopts = AnalyzeOptions::new().memnorm(opts.memnorm);
            if standard {
                aopts = aopts.reuse(opts.reuse);
            }
            for (lint, level) in &opts.lints {
                aopts = aopts.level(*lint, *level);
            }
            let report = analyze_program(&compiled, &aopts);
            let rendered = if opts.json {
                report.render_json()
            } else {
                report.render_text()
            };
            writeln!(out, "{rendered}")?;
            if report.deny_count() > 0 {
                return Err(format!(
                    "analysis found {} deny-level finding(s)\n{rendered}",
                    report.deny_count()
                )
                .into());
            }
        }
        "run" if opts.engine == "simd" => {
            let compiled = driver.compile(&program)?;
            let source = compiled.source().clone();
            let ub = source.trip().known().unwrap_or(opts.ub);
            let input = RunInput {
                ub,
                params: opts.params.clone(),
            };
            let mut image = MemoryImage::with_seed(&source, opts.shape, opts.seed);
            let mut oracle = image.clone();
            let kernel = CompiledKernel::compile(&compiled, &image, &input)?;
            let lowered = SimdKernel::lower_detected(&kernel);
            let stats = lowered.run(&mut image)?;
            let ideal = run_scalar(&source, &mut oracle, ub, &opts.params)?;
            let verified = image.first_difference(&oracle).is_none();
            let data = source.stmts().len() as u64 * ub;
            writeln!(out, "verified: {verified}")?;
            writeln!(
                out,
                "engine: simd (std::arch intrinsics{})",
                if lowered.is_fallback() {
                    ", scalar fallback"
                } else {
                    ""
                }
            )?;
            writeln!(out, "backend: simd/{}", lowered.isa())?;
            let fusion = kernel.fusion_stats();
            writeln!(
                out,
                "trace: {} fused load(s), {} splat op(s), {} hoisted, {} eliminated",
                fusion.fused_loads, fusion.splat_ops, fusion.hoisted, fusion.eliminated
            )?;
            writeln!(
                out,
                "opd: {:.3}  speedup: {:.2}x over idealistic scalar",
                stats.opd(data),
                ideal as f64 / stats.total() as f64
            )?;
            writeln!(out, "stats: {stats}")?;
            if !verified {
                return Err("simd engine diverged from the scalar oracle".into());
            }
        }
        "run" if opts.engine == "native" => {
            let compiled = driver.compile(&program)?;
            let source = compiled.source().clone();
            let ub = source.trip().known().unwrap_or(opts.ub);
            let input = RunInput {
                ub,
                params: opts.params.clone(),
            };
            let mut image = MemoryImage::with_seed(&source, opts.shape, opts.seed);
            let mut oracle = image.clone();
            let kernel = CompiledKernel::compile(&compiled, &image, &input)?;
            let stats = kernel.run(&mut image)?;
            let ideal = run_scalar(&source, &mut oracle, ub, &opts.params)?;
            let verified = image.first_difference(&oracle).is_none();
            let data = source.stmts().len() as u64 * ub;
            writeln!(out, "verified: {verified}")?;
            writeln!(
                out,
                "engine: native ({})",
                if kernel.is_fallback() {
                    "scalar fallback"
                } else {
                    "compiled kernel"
                }
            )?;
            let fusion = kernel.fusion_stats();
            writeln!(
                out,
                "trace: {} fused load(s), {} splat op(s), {} hoisted, {} eliminated",
                fusion.fused_loads, fusion.splat_ops, fusion.hoisted, fusion.eliminated
            )?;
            writeln!(
                out,
                "opd: {:.3}  speedup: {:.2}x over idealistic scalar",
                stats.opd(data),
                ideal as f64 / stats.total() as f64
            )?;
            writeln!(out, "stats: {stats}")?;
            if !verified {
                return Err("native engine diverged from the scalar oracle".into());
            }
        }
        "run" => {
            let report = driver.evaluate_with(
                &program,
                &DiffConfig::with_seed(opts.seed)
                    .runtime_ub(opts.ub)
                    .params(opts.params.clone()),
            )?;
            writeln!(out, "verified: {}", report.verified)?;
            writeln!(out, "{report}")?;
        }
        "verify" => {
            let mut vopts = if opts.quick {
                VerifyOptions::quick()
            } else {
                VerifyOptions::new()
            };
            if let Some(bound) = opts.trip_bound {
                vopts.trip_bound = bound;
            }
            if let Some(budget) = opts.budget {
                vopts.budget = budget;
            }
            vopts.threads = opts.threads.max(1);
            if let Some(p) = opts.policy {
                vopts.policies = vec![p];
            }
            vopts.mutation = opts.mutate;
            let report = simdize::prove_loop(&opts.loop_name, &program, &vopts);
            let rendered = if opts.json {
                report.render_json()
            } else {
                report.render_text()
            };
            out.push_str(&rendered);
            if !out.ends_with('\n') {
                out.push('\n');
            }
            if report.violations_total > 0 {
                return Err(format!(
                    "verification found {} violated propert{}\n{rendered}",
                    report.violations_total,
                    if report.violations_total == 1 { "y" } else { "ies" }
                )
                .into());
            }
        }
        "explain" => {
            let mut explainer = Explainer::new()
                .shape(opts.shape)
                .reuse(opts.reuse)
                .seed(opts.seed)
                .ub(opts.ub)
                .params(opts.params.clone());
            if let Some(p) = opts.policy {
                explainer = explainer.policy(p);
            }
            let report = explainer.explain(&program)?;
            out.push_str(&if opts.json {
                render_json(&report)
            } else if opts.markdown {
                render_markdown(&report)
            } else {
                render_text(&report)
            });
            if !out.ends_with('\n') {
                out.push('\n');
            }
            // Text mode is interactive, so the host's dispatched ISA is
            // useful context; JSON/Markdown feed goldens and generated
            // docs, which must stay byte-identical across hosts.
            if !opts.json && !opts.markdown {
                writeln!(out, "backend: simd/{} (std::arch dispatch)", IsaLevel::detect())?;
            }
        }
        "profile" => {
            let outcome = simdize::profile_source(&opts.source)?;
            if opts.json {
                out.push_str(&outcome.report.render_json(false));
                out.push('\n');
            } else {
                writeln!(
                    out,
                    "profiled: verified={} sweep {}/{} verified, {:.2}x speedup, \
                     kernel cache {:.0}% hit rate",
                    outcome.verified,
                    outcome.sweep_verified,
                    outcome.sweep_jobs,
                    outcome.speedup,
                    outcome.sweep_stats.cache_hit_rate() * 100.0
                )?;
                out.push_str(&outcome.report.render_text());
            }
            if !outcome.verified || outcome.sweep_verified != outcome.sweep_jobs {
                return Err("profiled run diverged from the scalar oracle".into());
            }
        }
        "trace" => {
            let outcome = simdize::trace_source(&opts.source)?;
            if let Some(path) = &opts.chrome_out {
                std::fs::write(path, outcome.trace.render_chrome())
                    .map_err(|e| format!("--chrome-out {path}: {e}"))?;
            }
            if opts.json {
                out.push_str(&outcome.trace.render_json(false));
                out.push('\n');
            } else {
                writeln!(
                    out,
                    "traced {}: verified={} sweep {}/{} verified, {:.2}x speedup, \
                     opd {:.3} (bound {:.3})",
                    outcome.trace.trace_id,
                    outcome.verified,
                    outcome.sweep_verified,
                    outcome.sweep_jobs,
                    outcome.speedup,
                    outcome.opd,
                    outcome.opd_bound
                )?;
                out.push_str(&outcome.trace.render_text());
            }
            if let Some(path) = &opts.chrome_out {
                writeln!(out, "chrome trace written to {path}")?;
            }
            if !outcome.verified || outcome.sweep_verified != outcome.sweep_jobs {
                return Err("traced run diverged from the scalar oracle".into());
            }
        }
        "sweep" => {
            let compiled = driver.compile(&program)?;
            let count = if opts.smoke { 8 } else { opts.count };
            let jobs: Vec<SweepJob> = (0..count as u64)
                .map(|k| SweepJob::new(compiled.clone(), opts.seed.wrapping_add(k), opts.ub))
                .collect();
            let backend = if opts.engine == "simd" {
                SweepBackend::Simd
            } else {
                SweepBackend::Baked
            };
            let started = std::time::Instant::now();
            let (outcomes, stats) =
                run_sweep_collect(&jobs, SweepOptions::new(opts.threads).backend(backend));
            let elapsed = started.elapsed();
            match backend {
                SweepBackend::Simd => {
                    writeln!(out, "backend: simd/{}", IsaLevel::detect())?
                }
                SweepBackend::Baked => writeln!(out, "backend: fused interpreter")?,
            }
            writeln!(
                out,
                "{:>6} {:>9} {:>9} {:>9}",
                "seed", "verified", "opd", "speedup"
            )?;
            let mut ok = 0usize;
            for outcome in &outcomes {
                match outcome {
                    Ok(o) => {
                        ok += usize::from(o.verified);
                        writeln!(
                            out,
                            "{:>6} {:>9} {:>9.3} {:>8.2}x",
                            o.seed,
                            o.verified,
                            o.stats.opd(o.data_produced),
                            o.speedup()
                        )?;
                    }
                    Err(e) => writeln!(out, "     - error: {e}")?,
                }
            }
            writeln!(
                out,
                "{ok}/{count} verified on {} worker thread(s), {:.0} jobs/sec",
                stats.workers,
                count as f64 / elapsed.as_secs_f64().max(1e-9)
            )?;
            writeln!(
                out,
                "wall time {:.3} ms, kernel cache {} hit / {} miss / {} evict \
                 ({:.0}% hit rate, {} resident over {} shard(s)), {} scratch reseed(s)",
                elapsed.as_secs_f64() * 1e3,
                stats.cache_hits,
                stats.cache_misses,
                stats.cache_evictions,
                stats.cache_hit_rate() * 100.0,
                stats.cache_occupied(),
                stats.cache_occupancy.len(),
                stats.scratch_reseeds
            )?;
            if ok != count {
                return Err(format!("sweep failed: {ok}/{count} seeds verified").into());
            }
        }
        "policies" => {
            writeln!(
                out,
                "{:<10} {:>7} {:>9} {:>9} {:>9}",
                "policy", "shifts", "opd", "bound", "speedup"
            )?;
            for policy in Policy::ALL {
                let graph = ReorgGraph::build(&program, opts.shape)?;
                let placed = match graph.with_policy(policy) {
                    Ok(p) => p,
                    Err(e) => {
                        writeln!(out, "{:<10} {e}", policy.name())?;
                        continue;
                    }
                };
                let report = driver
                    .scheme(Scheme::new(policy, opts.reuse).reassoc(opts.reassoc))
                    .evaluate_with(
                        &program,
                        &DiffConfig::with_seed(opts.seed)
                            .runtime_ub(opts.ub)
                            .params(opts.params.clone()),
                    );
                match report {
                    Ok(r) => writeln!(
                        out,
                        "{:<10} {:>7} {:>9.3} {:>9.3} {:>8.2}x",
                        policy.name(),
                        placed.shift_count(),
                        r.opd,
                        r.lower_bound_opd,
                        r.speedup
                    )?,
                    Err(SimdizeError::Policy(e)) => writeln!(out, "{:<10} {e}", policy.name())?,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        _ => unreachable!("validated in parse_args"),
    }
    if let Some(session) = &mut session {
        let report = session.finish();
        writeln!(out, "\n-- telemetry --")?;
        out.push_str(&report.render_text());
    }
    Ok(out)
}

/// `simdize serve <addr>`: bind, announce the resolved address on
/// stdout (so scripts can bind port 0 and discover the port), then
/// block serving the simdize-wire/v1 protocol until a `shutdown`
/// request or SIGINT. The returned string summarizes the traffic once
/// the server has drained.
fn run_serve(opts: &Options) -> Result<String, Box<dyn Error>> {
    use simdize_server::{Server, ServerConfig};
    let metrics_addr = opts
        .metrics_addr
        .as_deref()
        .map(|a| {
            a.parse()
                .map_err(|e| format!("--metrics-addr {a}: {e}"))
        })
        .transpose()?;
    let config = ServerConfig {
        workers: opts.workers,
        queue_depth: opts.queue,
        cache_shards: opts.shards,
        cache_capacity: opts.cache_cap,
        sweep_threads: opts.threads.max(1),
        handle_sigint: true,
        flight_capacity: opts.flight_cap,
        metrics_addr,
    };
    let server = Server::bind(&opts.addr, config)?;
    // Printed (and flushed) before blocking: these lines are the
    // contract scripts use to learn ephemeral ports.
    println!("listening on {}", server.local_addr());
    if let Some(addr) = server.metrics_addr() {
        println!("metrics on {addr}");
    }
    use std::io::Write as _;
    std::io::stdout().flush()?;
    let summary = server.serve()?;
    Ok(format!(
        "served {} request(s) over {} connection(s): {} busy rejection(s), {} error(s)\n",
        summary.requests, summary.connections, summary.busy, summary.errors
    ))
}

/// `simdize bench diff`: compare two bench-history entries (explicit
/// paths, or the two newest in `--dir`) and fail on regression.
fn run_bench_diff(opts: &Options) -> Result<String, Box<dyn Error>> {
    use simdize_telemetry::history;
    let dir = std::path::Path::new(&opts.dir);
    let (old_path, new_path) = match (&opts.bench_old, &opts.bench_new) {
        (Some(old), Some(new)) => (old.into(), new.into()),
        (None, None) => {
            let entries = history::list_entries(dir);
            if entries.len() < 2 {
                return Err(format!(
                    "bench diff needs two history entries in {} (found {}); \
                     pass two entry paths explicitly or record more runs",
                    dir.display(),
                    entries.len()
                )
                .into());
            }
            // The history interleaves engine and server entries, so the
            // baseline is the newest *older* entry sharing the newest
            // entry's bench schema — not simply the second-newest file.
            let newest = entries[entries.len() - 1].clone();
            let schema = history::entry_schema(&history::load_entry(&newest)?)
                .map(str::to_owned)
                .ok_or_else(|| format!("{}: entry has no bench schema", newest.display()))?;
            let baseline = entries[..entries.len() - 1]
                .iter()
                .rev()
                .find(|p| {
                    history::load_entry(p)
                        .is_ok_and(|doc| history::entry_schema(&doc) == Some(schema.as_str()))
                })
                .cloned()
                .ok_or_else(|| {
                    format!(
                        "bench diff: no older entry in {} shares schema {schema} \
                         with {}; pass two entry paths explicitly",
                        dir.display(),
                        newest.display()
                    )
                })?;
            (baseline, newest)
        }
        _ => return Err("bench diff takes zero or two entry paths, not one".into()),
    };
    let old = history::load_entry(&old_path)?;
    let new = history::load_entry(&new_path)?;
    let report = history::diff(&old, &new, opts.threshold);
    if report.rows.is_empty() {
        return Err("bench diff: no comparable metrics between the two entries".into());
    }
    let mut out = String::new();
    writeln!(out, "old: {}", old_path.display())?;
    writeln!(out, "new: {}", new_path.display())?;
    out.push_str(&report.render_text());
    if report.regressions > 0 {
        return Err(format!(
            "{out}bench diff: {} metric(s) regressed past the {:.0}% threshold",
            report.regressions,
            opts.threshold * 100.0
        )
        .into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP: &str = "arrays { a: i32[1024] @ 0; b: i32[1024] @ 0; c: i32[1024] @ 0; }
                        for i in 0..1000 { a[i+3] = b[i+1] + c[i+2]; }";

    fn opts(args: &[&str]) -> Options {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&args, &|_| Ok(LOOP.to_string())).unwrap()
    }

    #[test]
    fn check_prints_summary() {
        let out = run(&opts(&["check", "x.loop"])).unwrap();
        assert!(out.contains("valid simdizable loop"));
        assert!(out.contains("4 lanes"));
        assert!(out.contains("compile-time"));
    }

    #[test]
    fn graph_and_dot() {
        let out = run(&opts(&["graph", "x.loop", "--policy", "zero"])).unwrap();
        assert!(out.contains("vshiftstream"));
        assert!(out.contains("3 stream shifts"));
        let dot = run(&opts(&["graph", "x.loop", "--dot"])).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn compile_and_asm() {
        let out = run(&opts(&["compile", "x.loop"])).unwrap();
        assert!(out.contains("prologue"));
        assert!(out.contains("vshiftpair"));
        let asm = run(&opts(&["compile", "x.loop", "--asm"])).unwrap();
        assert!(asm.contains("lvx"));
    }

    #[test]
    fn analyze_reports_clean() {
        let out = run(&opts(&["analyze", "x.loop"])).unwrap();
        assert!(out.contains("analysis clean"), "{out}");
        let json = run(&opts(&["analyze", "x.loop", "--json"])).unwrap();
        assert!(json.contains("\"findings\":[]"), "{json}");
        // Lint overrides parse and apply (allow-all keeps it clean too).
        let out = run(&opts(&[
            "analyze",
            "x.loop",
            "--lint",
            "redundant-shift=deny",
            "--lint",
            "dead-load=allow",
        ]))
        .unwrap();
        assert!(out.contains("analysis clean"), "{out}");
    }

    #[test]
    fn analyze_lint_parse_errors() {
        let args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let read = |_: &str| -> Result<String, Box<dyn Error>> { Ok(LOOP.into()) };
        assert!(parse_args(&args(&["analyze", "x", "--lint", "dead-load"]), &read).is_err());
        assert!(parse_args(&args(&["analyze", "x", "--lint", "bogus=deny"]), &read).is_err());
        assert!(parse_args(&args(&["analyze", "x", "--lint", "dead-load=loud"]), &read).is_err());
    }

    #[test]
    fn run_verifies() {
        let out = run(&opts(&["run", "x.loop", "--seed", "7"])).unwrap();
        assert!(out.contains("verified: true"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn verify_quick_proves() {
        let out = run(&opts(&["verify", "x.loop", "--quick", "--threads", "2"])).unwrap();
        assert!(out.starts_with("PROVED: x"), "{out}");
        assert!(out.contains("harness_codegen_equiv"), "{out}");
        let json = run(&opts(&[
            "verify", "x.loop", "--quick", "--json", "--threads", "2",
        ]))
        .unwrap();
        assert!(
            json.starts_with("{\"schema\":\"simdize-verify/v1\""),
            "{json}"
        );
        assert!(json.contains("\"proved\":true"), "{json}");
    }

    #[test]
    fn verify_mutate_and_catch_exits_nonzero() {
        let err = run(&opts(&[
            "verify", "x.loop", "--quick", "--mutate", "splice", "--threads", "2",
        ]))
        .unwrap_err()
        .to_string();
        assert!(err.contains("violated propert"), "{err}");
        assert!(err.contains("simdize run"), "{err}");
    }

    #[test]
    fn verify_argument_errors() {
        let args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let read = |_: &str| -> Result<String, Box<dyn Error>> { Ok(LOOP.into()) };
        assert!(parse_args(&args(&["verify", "x", "--mutate", "bogus"]), &read).is_err());
        assert!(parse_args(&args(&["verify", "x", "--trip-bound", "0"]), &read).is_err());
        assert!(parse_args(&args(&["verify", "x", "--budget", "0"]), &read).is_err());
    }

    #[test]
    fn explain_backlinks_and_formats() {
        let out = run(&opts(&["explain", "x.loop"])).unwrap();
        assert!(out.contains("== decisions =="), "{out}");
        assert!(out.contains('\u{2190}'), "{out}");
        // Text mode reports the host's dispatched ISA; the golden-backed
        // JSON/Markdown forms must stay host-independent.
        assert!(
            out.contains(&format!("backend: simd/{}", IsaLevel::detect())),
            "{out}"
        );
        let json = run(&opts(&["explain", "x.loop", "--json"])).unwrap();
        assert!(json.starts_with("{\"schema\":\"simdize-explain/v1\""), "{json}");
        assert!(!json.contains("backend: simd/"), "{json}");
        let md = run(&opts(&["explain", "x.loop", "--policy", "zero", "--markdown"])).unwrap();
        assert!(md.starts_with("# Worked example"), "{md}");
        assert!(!md.contains("backend: simd/"), "{md}");
    }

    #[test]
    fn policies_table() {
        let out = run(&opts(&["policies", "x.loop", "--reassoc"])).unwrap();
        assert!(out.contains("zero"));
        assert!(out.contains("dominant"));
        assert!(out.contains("optimal"));
        assert_eq!(out.lines().count(), 6);
    }

    #[test]
    fn run_native_engine_verifies() {
        let out = run(&opts(&["run", "x.loop", "--engine", "native", "--seed", "7"])).unwrap();
        assert!(out.contains("verified: true"));
        assert!(out.contains("engine: native (compiled kernel)"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn run_simd_engine_verifies_and_reports_isa() {
        let out = run(&opts(&["run", "x.loop", "--engine", "simd", "--seed", "7"])).unwrap();
        assert!(out.contains("verified: true"), "{out}");
        assert!(out.contains("engine: simd (std::arch intrinsics)"), "{out}");
        assert!(
            out.contains(&format!("backend: simd/{}", IsaLevel::detect())),
            "{out}"
        );
        assert!(out.contains("speedup"), "{out}");
    }

    #[test]
    fn sweep_smoke_reports_all_seeds() {
        let out = run(&opts(&["sweep", "x.loop", "--smoke", "--jobs", "2"])).unwrap();
        assert!(out.contains("backend: fused interpreter"), "{out}");
        assert!(out.contains("8/8 verified"));
        assert!(out.contains("jobs/sec"));
        assert!(out.lines().count() >= 10); // header + 8 rows + summary
    }

    #[test]
    fn sweep_simd_backend_reports_isa_and_verifies() {
        let out = run(&opts(&[
            "sweep", "x.loop", "--smoke", "--jobs", "2", "--engine", "simd",
        ]))
        .unwrap();
        assert!(
            out.contains(&format!("backend: simd/{}", IsaLevel::detect())),
            "{out}"
        );
        assert!(out.contains("8/8 verified"), "{out}");
    }

    #[test]
    fn threads_flag_matches_jobs_alias() {
        let via_threads = opts(&["sweep", "x.loop", "--threads", "3"]);
        let via_jobs = opts(&["sweep", "x.loop", "--jobs", "3"]);
        assert_eq!(via_threads, via_jobs);
        let out = run(&opts(&["sweep", "x.loop", "--smoke", "--threads", "2"])).unwrap();
        assert!(out.contains("8/8 verified on 2 worker thread(s)"));
    }

    #[test]
    fn run_native_reports_fusion_trace() {
        let out = run(&opts(&["run", "x.loop", "--engine", "native"])).unwrap();
        assert!(out.contains("trace:"), "{out}");
        assert!(out.contains("fused load(s)"), "{out}");
    }

    #[test]
    fn option_parsing_errors() {
        let args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let read = |_: &str| -> Result<String, Box<dyn Error>> { Ok(LOOP.into()) };
        assert!(parse_args(&args(&["frobnicate", "x"]), &read).is_err());
        assert!(parse_args(&args(&["run"]), &read).is_err());
        assert!(parse_args(&args(&["run", "x", "--policy", "bogus"]), &read).is_err());
        assert!(parse_args(&args(&["run", "x", "--shape", "12"]), &read).is_err());
        assert!(parse_args(&args(&["run", "x", "--whatever"]), &read).is_err());
        assert!(parse_args(&args(&["run", "x", "--engine", "jit"]), &read).is_err());
        assert!(parse_args(&args(&["sweep", "x", "--jobs", "0"]), &read).is_err());
        assert!(parse_args(&args(&["sweep", "x", "--threads", "0"]), &read).is_err());
    }

    #[test]
    fn profile_text_and_json() {
        let out = run(&opts(&["profile", "x.loop"])).unwrap();
        assert!(out.contains("profiled: verified=true"), "{out}");
        assert!(out.contains("== spans =="), "{out}");
        assert!(out.contains("hit rate"), "{out}");
        let json = run(&opts(&["profile", "x.loop", "--json"])).unwrap();
        assert!(
            json.starts_with("{\"schema\":\"simdize-telemetry/v1\""),
            "{json}"
        );
        assert!(json.contains("\"name\":\"parse\""), "{json}");
        assert!(json.contains("\"sweep.kernel_cache.hit\""), "{json}");
    }

    #[test]
    fn trace_text_json_and_chrome_out() {
        let out = run(&opts(&["trace", "x.loop"])).unwrap();
        assert!(out.contains("traced c"), "{out}");
        assert!(out.contains("verified=true"), "{out}");
        assert!(out.contains("policy"), "{out}");
        let json = run(&opts(&["trace", "x.loop", "--json"])).unwrap();
        assert!(json.starts_with("{\"schema\":\"simdize-trace/v1\""), "{json}");
        assert!(json.contains("\"verb\":\"trace\""), "{json}");
        assert!(json.contains("\"policy\":\"dominant\""), "{json}");
        // --chrome-out writes a loadable trace-event file alongside.
        let path = std::env::temp_dir().join(format!(
            "simdize-cli-chrome-{}.json",
            std::process::id()
        ));
        let out = run(&opts(&[
            "trace",
            "x.loop",
            "--chrome-out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("chrome trace written to"), "{out}");
        let chrome = std::fs::read_to_string(&path).unwrap();
        assert!(
            chrome.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            "{chrome}"
        );
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn telemetry_flag_appends_report() {
        let out = run(&opts(&[
            "sweep", "x.loop", "--smoke", "--threads", "1", "--telemetry",
        ]))
        .unwrap();
        assert!(out.contains("8/8 verified"), "{out}");
        assert!(out.contains("-- telemetry --"), "{out}");
        assert!(out.contains("== spans =="), "{out}");
        assert!(out.contains("sweep.kernel_cache.hit"), "{out}");
        // Without the flag, no telemetry section.
        let plain = run(&opts(&["sweep", "x.loop", "--smoke", "--threads", "1"])).unwrap();
        assert!(!plain.contains("-- telemetry --"), "{plain}");
    }

    #[test]
    fn sweep_summary_reports_cache_and_wall_time() {
        let out = run(&opts(&["sweep", "x.loop", "--smoke", "--threads", "1"])).unwrap();
        assert!(out.contains("wall time"), "{out}");
        assert!(
            out.contains("kernel cache 7 hit / 1 miss / 0 evict (88% hit rate, 1 resident"),
            "{out}"
        );
        assert!(out.contains("scratch reseed(s)"), "{out}");
    }

    fn bench_doc(speedup: f64) -> String {
        format!(
            r#"{{ "schema": "simdize-bench-engine/v1",
  "kernels": [ {{ "name": "fig1", "speedup_vs_interp": {speedup} }} ] }}"#
        )
    }

    fn history_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "simdize-cli-bench-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn bench_diff_compares_newest_entries() {
        use simdize_telemetry::history::{append_entry, HistoryMeta, HostFingerprint};
        let dir = history_dir("ok");
        let meta = |ms| HistoryMeta {
            recorded_at_unix_ms: ms,
            git_sha: "test".into(),
            host: HostFingerprint::gather(),
        };
        append_entry(&dir, &meta(1), &bench_doc(20.0)).unwrap();
        append_entry(&dir, &meta(2), &bench_doc(21.0)).unwrap();
        let out = run(&opts(&["bench", "diff", "--dir", dir.to_str().unwrap()])).unwrap();
        assert!(out.contains("kernel.fig1.speedup_vs_interp"), "{out}");
        assert!(out.contains("1 metric(s) compared, 0 regression(s)"), "{out}");
        // The pair of entry filenames compared is printed up front.
        assert!(out.starts_with("old: "), "{out}");
        assert!(out.lines().nth(1).is_some_and(|l| l.starts_with("new: ")), "{out}");
        assert!(out.contains(dir.to_str().unwrap()), "{out}");

        // A large drop regresses and the command fails.
        append_entry(&dir, &meta(3), &bench_doc(5.0)).unwrap();
        let err = run(&opts(&["bench", "diff", "--dir", dir.to_str().unwrap()]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("REGRESSED"), "{err}");
        assert!(err.contains("regressed past the 25% threshold"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// With engine and server entries interleaved in one history, the
    /// default pair is the newest entry plus the newest *older* entry
    /// of the same bench schema — a server entry recorded in between
    /// must not become the engine baseline.
    #[test]
    fn bench_diff_pairs_default_entries_by_schema() {
        use simdize_telemetry::history::{append_entry, HistoryMeta, HostFingerprint};
        let dir = history_dir("schema");
        let meta = |ms| HistoryMeta {
            recorded_at_unix_ms: ms,
            git_sha: "test".into(),
            host: HostFingerprint::gather(),
        };
        let server_doc = r#"{ "schema": "simdize-bench-server/v1",
  "server": [ { "name": "loadgen", "requests_per_sec": 5000.0 } ] }"#;
        let engine_old = append_entry(&dir, &meta(1), &bench_doc(20.0)).unwrap();
        append_entry(&dir, &meta(2), server_doc).unwrap();
        append_entry(&dir, &meta(3), &bench_doc(21.0)).unwrap();
        let out = run(&opts(&["bench", "diff", "--dir", dir.to_str().unwrap()])).unwrap();
        assert!(
            out.contains(engine_old.file_name().unwrap().to_str().unwrap()),
            "{out}"
        );
        assert!(out.contains("kernel.fig1.speedup_vs_interp"), "{out}");
        assert!(out.contains("0 regression(s)"), "{out}");

        // A lone newest-schema entry has no baseline to pair with.
        let lone = history_dir("schema-lone");
        append_entry(&lone, &meta(1), &bench_doc(20.0)).unwrap();
        append_entry(&lone, &meta(2), server_doc).unwrap();
        let err = run(&opts(&["bench", "diff", "--dir", lone.to_str().unwrap()]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("shares schema simdize-bench-server/v1"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&lone);
    }

    #[test]
    fn bench_diff_takes_explicit_paths() {
        use simdize_telemetry::history::{append_entry, HistoryMeta, HostFingerprint};
        let dir = history_dir("explicit");
        let meta = HistoryMeta {
            recorded_at_unix_ms: 7,
            git_sha: "test".into(),
            host: HostFingerprint::gather(),
        };
        let p1 = append_entry(&dir, &meta, &bench_doc(20.0)).unwrap();
        let p2 = append_entry(&dir, &meta, &bench_doc(19.0)).unwrap();
        let args: Vec<String> = ["bench", "diff"]
            .iter()
            .map(|s| s.to_string())
            .chain([p1, p2].iter().map(|p| p.to_str().unwrap().to_string()))
            .collect();
        let parsed = parse_args(&args, &|_| unreachable!("bench reads no loop file")).unwrap();
        let out = run(&parsed).unwrap();
        assert!(out.contains("0 regression(s)"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_diff_argument_errors() {
        let args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let read = |_: &str| -> Result<String, Box<dyn Error>> { Ok(LOOP.into()) };
        assert!(parse_args(&args(&["bench"]), &read).is_err());
        assert!(parse_args(&args(&["bench", "frobnicate"]), &read).is_err());
        assert!(parse_args(&args(&["bench", "diff", "a", "b", "c"]), &read).is_err());
        assert!(parse_args(&args(&["bench", "diff", "--threshold", "1.5"]), &read).is_err());
        assert!(parse_args(&args(&["bench", "diff", "--threshold", "-0.1"]), &read).is_err());
        // One explicit path is ambiguous; an empty directory has no entries.
        let one = parse_args(&args(&["bench", "diff", "only.json"]), &read).unwrap();
        assert!(run(&one).unwrap_err().to_string().contains("zero or two"));
        let missing = parse_args(
            &args(&["bench", "diff", "--dir", "/nonexistent/simdize-history"]),
            &read,
        )
        .unwrap();
        let err = run(&missing).unwrap_err().to_string();
        assert!(err.contains("needs two history entries"), "{err}");
    }

    #[test]
    fn serve_argument_parsing() {
        let args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let read = |_: &str| -> Result<String, Box<dyn Error>> { unreachable!("serve reads no loop") };
        let parsed = parse_args(
            &args(&[
                "serve",
                "127.0.0.1:0",
                "--workers",
                "3",
                "--queue",
                "7",
                "--flight-cap",
                "9",
                "--metrics-addr",
                "127.0.0.1:0",
            ]),
            &read,
        )
        .unwrap();
        assert_eq!(parsed.addr, "127.0.0.1:0");
        assert_eq!((parsed.workers, parsed.queue), (3, 7));
        assert_eq!(parsed.flight_cap, 9);
        assert_eq!(parsed.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert!(parse_args(&args(&["serve"]), &read).is_err());
        assert!(parse_args(&args(&["serve", "a:1", "--workers", "0"]), &read).is_err());
        assert!(parse_args(&args(&["serve", "a:1", "--queue", "0"]), &read).is_err());
        assert!(parse_args(&args(&["serve", "a:1", "--flight-cap", "0"]), &read).is_err());
        // A malformed metrics address fails at run time with context.
        let bad = parse_args(&args(&["serve", "127.0.0.1:0", "--metrics-addr", "bogus"]), &read)
            .unwrap();
        let err = run(&bad).unwrap_err().to_string();
        assert!(err.contains("--metrics-addr bogus"), "{err}");
    }

    #[test]
    fn serve_round_trip_over_tcp() {
        use std::io::{BufRead, BufReader, Write};
        let parsed = opts(&["serve", "127.0.0.1:0", "--workers", "1"]);
        // run() prints the listening line to stdout and blocks; drive
        // it from a second thread through a real socket. Port 0 means
        // we must learn the port from the server — bind ourselves via
        // the library to keep the test deterministic instead.
        use simdize_server::{Server, ServerConfig};
        let server = Server::bind(&parsed.addr, ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.serve().unwrap());
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        writeln!(conn, r#"{{"v":1,"id":1,"cmd":"ping"}}"#).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"pong\":true"), "{line}");
        writeln!(conn, r#"{{"v":1,"id":2,"cmd":"shutdown"}}"#).unwrap();
        let summary = handle.join().unwrap();
        assert_eq!(summary.requests, 2);
    }

    #[test]
    fn bare_loop_names_resolve_from_subdirectories() {
        // Path-like arguments pass through untouched.
        assert_eq!(
            resolve_loop_path("loops/figure1.loop"),
            std::path::PathBuf::from("loops/figure1.loop")
        );
        assert_eq!(
            resolve_loop_path("./x"),
            std::path::PathBuf::from("./x")
        );
        // A bare name resolves against loops/ in an ancestor of the
        // current directory (tests run somewhere inside the checkout).
        let resolved = resolve_loop_path("figure1");
        assert!(
            resolved.ends_with("loops/figure1.loop") && resolved.exists(),
            "{resolved:?}"
        );
        // An unknown bare name falls through unchanged.
        assert_eq!(
            resolve_loop_path("no-such-loop-anywhere"),
            std::path::PathBuf::from("no-such-loop-anywhere")
        );
    }

    #[test]
    fn unaligned_target_flag() {
        let out = run(&opts(&["run", "x.loop", "--target", "unaligned"])).unwrap();
        assert!(out.contains("verified: true"));
        let code = run(&opts(&["compile", "x.loop", "--target", "unaligned"])).unwrap();
        assert!(code.contains("vloadu"));
    }
}
