//! The `simdize` binary: see the crate docs of `simdize_cli` for usage.

use std::error::Error;
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let read_file = |path: &str| -> Result<String, Box<dyn Error>> {
        if path == "-" {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            return Ok(buf);
        }
        // Bare names resolve against the repo's loops/ directory
        // (searched upward), so `simdize run figure1` works from
        // anywhere inside the checkout, for every subcommand.
        Ok(std::fs::read_to_string(simdize_cli::resolve_loop_path(
            path,
        ))?)
    };
    match simdize_cli::parse_args(&args, &read_file).and_then(|o| simdize_cli::run(&o)) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simdize: {e}");
            ExitCode::FAILURE
        }
    }
}
