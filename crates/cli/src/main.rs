//! The `simdize` binary: see the crate docs of `simdize_cli` for usage.

use std::error::Error;
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let read_file = |path: &str| -> Result<String, Box<dyn Error>> {
        if path == "-" {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            Ok(buf)
        } else {
            Ok(std::fs::read_to_string(path)?)
        }
    };
    match simdize_cli::parse_args(&args, &read_file).and_then(|o| simdize_cli::run(&o)) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simdize: {e}");
            ExitCode::FAILURE
        }
    }
}
