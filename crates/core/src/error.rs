//! The facade's unified error type.

use simdize_analysis::AnalysisFailed;
use simdize_codegen::GenCodeError;
use simdize_reorg::{BuildGraphError, PolicyError};
use simdize_vm::VerifyError;
use std::error::Error;
use std::fmt;

/// Any failure along the simdization pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimdizeError {
    /// The loop could not be turned into a reorganization graph.
    Build(BuildGraphError),
    /// The requested shift-placement policy does not apply.
    Policy(PolicyError),
    /// Code generation failed.
    Gen(GenCodeError),
    /// Differential verification failed or faulted.
    Verify(VerifyError),
    /// The loop's textual form failed to parse.
    Parse(simdize_ir::ParseProgramError),
    /// The post-codegen static analysis gate rejected the generated
    /// program with deny-level findings.
    Analysis(AnalysisFailed),
}

impl fmt::Display for SimdizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimdizeError::Build(e) => write!(f, "graph construction failed: {e}"),
            SimdizeError::Policy(e) => write!(f, "shift placement failed: {e}"),
            SimdizeError::Gen(e) => write!(f, "code generation failed: {e}"),
            SimdizeError::Verify(e) => write!(f, "verification failed: {e}"),
            SimdizeError::Parse(e) => write!(f, "parse failed: {e}"),
            SimdizeError::Analysis(e) => write!(f, "static analysis rejected the program: {e}"),
        }
    }
}

impl Error for SimdizeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimdizeError::Build(e) => Some(e),
            SimdizeError::Policy(e) => Some(e),
            SimdizeError::Gen(e) => Some(e),
            SimdizeError::Verify(e) => Some(e),
            SimdizeError::Parse(e) => Some(e),
            SimdizeError::Analysis(e) => Some(e),
        }
    }
}

impl From<BuildGraphError> for SimdizeError {
    fn from(e: BuildGraphError) -> Self {
        SimdizeError::Build(e)
    }
}

impl From<PolicyError> for SimdizeError {
    fn from(e: PolicyError) -> Self {
        SimdizeError::Policy(e)
    }
}

impl From<GenCodeError> for SimdizeError {
    fn from(e: GenCodeError) -> Self {
        SimdizeError::Gen(e)
    }
}

impl From<VerifyError> for SimdizeError {
    fn from(e: VerifyError) -> Self {
        SimdizeError::Verify(e)
    }
}

impl From<simdize_ir::ParseProgramError> for SimdizeError {
    fn from(e: simdize_ir::ParseProgramError) -> Self {
        SimdizeError::Parse(e)
    }
}

impl From<AnalysisFailed> for SimdizeError {
    fn from(e: AnalysisFailed) -> Self {
        SimdizeError::Analysis(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_convert() {
        let e = simdize_ir::parse_program("garbage").unwrap_err();
        let s = SimdizeError::from(e);
        assert!(s.to_string().contains("parse failed"));
        assert!(s.source().is_some());
    }
}
