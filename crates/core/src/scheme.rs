//! Named simdization schemes, matching the labels of the paper's
//! evaluation (Figures 11–12, Tables 1–2).

use simdize_codegen::ReuseMode;
use simdize_reorg::Policy;
use std::fmt;

/// A full simdization scheme: shift-placement policy × reuse mode ×
/// common-offset reassociation — one bar of Figure 11/12, e.g.
/// `LAZY-pc` or `ZERO-sp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scheme {
    /// The shift placement policy.
    pub policy: Policy,
    /// The reuse exploitation mode.
    pub reuse: ReuseMode,
    /// Whether common-offset reassociation runs first (§5.5,
    /// "OffsetReassoc" — Figure 12 vs Figure 11).
    pub reassoc: bool,
}

impl Scheme {
    /// A scheme with reassociation off.
    pub fn new(policy: Policy, reuse: ReuseMode) -> Scheme {
        Scheme {
            policy,
            reuse,
            reassoc: false,
        }
    }

    /// The same scheme with reassociation toggled.
    pub fn reassoc(mut self, on: bool) -> Scheme {
        self.reassoc = on;
        self
    }

    /// The paper's label, e.g. `ZERO`, `EAGER-sp`, `LAZY-pc`, `DOM-sp`.
    pub fn label(&self) -> String {
        let policy = match self.policy {
            Policy::Zero => "ZERO",
            Policy::Eager => "EAGER",
            Policy::Lazy => "LAZY",
            Policy::Dominant => "DOM",
            Policy::Optimal => "OPT",
        };
        match self.reuse {
            ReuseMode::None => policy.to_string(),
            ReuseMode::SoftwarePipeline => format!("{policy}-sp"),
            ReuseMode::PredictiveCommoning => format!("{policy}-pc"),
        }
    }

    /// All 15 policy × reuse combinations, in figure order.
    pub fn all() -> Vec<Scheme> {
        let mut out = Vec::new();
        for policy in Policy::ALL {
            for reuse in [
                ReuseMode::None,
                ReuseMode::PredictiveCommoning,
                ReuseMode::SoftwarePipeline,
            ] {
                out.push(Scheme::new(policy, reuse));
            }
        }
        out
    }

    /// The schemes competing in the paper's best-policy tables
    /// (policies with a reuse scheme; the naive generators are
    /// dominated and excluded).
    pub fn contenders() -> Vec<Scheme> {
        Scheme::all()
            .into_iter()
            .filter(|s| s.reuse != ReuseMode::None)
            .collect()
    }

    /// The contenders applicable without compile-time alignment
    /// information (§4.4: zero-shift only).
    pub fn runtime_contenders() -> Vec<Scheme> {
        Scheme::contenders()
            .into_iter()
            .filter(|s| s.policy == Policy::Zero)
            .collect()
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.reassoc {
            write!(f, "{}+reassoc", self.label())
        } else {
            f.write_str(&self.label())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Scheme::new(Policy::Zero, ReuseMode::None).label(), "ZERO");
        assert_eq!(
            Scheme::new(Policy::Dominant, ReuseMode::SoftwarePipeline).label(),
            "DOM-sp"
        );
        assert_eq!(
            Scheme::new(Policy::Lazy, ReuseMode::PredictiveCommoning).label(),
            "LAZY-pc"
        );
        assert_eq!(
            Scheme::new(Policy::Eager, ReuseMode::SoftwarePipeline)
                .reassoc(true)
                .to_string(),
            "EAGER-sp+reassoc"
        );
    }

    #[test]
    fn enumerations() {
        assert_eq!(Scheme::all().len(), 15);
        assert_eq!(Scheme::contenders().len(), 10);
        assert_eq!(Scheme::runtime_contenders().len(), 2);
        assert_eq!(
            Scheme::new(Policy::Optimal, ReuseMode::SoftwarePipeline).label(),
            "OPT-sp"
        );
    }
}
