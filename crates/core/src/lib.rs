//! `simdize` — auto-vectorization for SIMD architectures with alignment
//! constraints.
//!
//! A faithful, executable reproduction of **Eichenberger, Wu and
//! O'Brien, "Vectorization for SIMD Architectures with Alignment
//! Constraints" (PLDI 2004)**: a compilation scheme that simdizes loops
//! containing *misaligned* stride-one memory references for machines
//! (AltiVec/VMX-class) whose vector loads and stores silently truncate
//! addresses to register-length boundaries.
//!
//! The pipeline has the paper's two phases plus an execution substrate:
//!
//! 1. **Data reorganization** ([`simdize_reorg`], re-exported here):
//!    build an expression graph as if alignment did not exist, then
//!    insert `vshiftstream` operations per a shift-placement
//!    [`Policy`] (zero / eager / lazy / dominant, §3.4) so that every
//!    stream offset satisfies the validity constraints (C.2)/(C.3).
//! 2. **SIMD code generation** ([`simdize_codegen`]): lower the graph
//!    to a vector target IR with prologue/steady-state/epilogue
//!    structure, partial stores via `vsplice`, multi-statement bounds,
//!    runtime alignments, unknown trip counts with the `ub > 3B` guard,
//!    and software pipelining or predictive commoning so no chunk of a
//!    static stream is loaded twice (§4).
//! 3. **Simulated SIMD machine** ([`simdize_vm`]): execute the result
//!    against a memory image with controlled misalignment, verify it
//!    byte-for-byte against a scalar oracle, and report the paper's
//!    operations-per-datum and speedup metrics (§5).
//! 4. **Compiled engine** ([`simdize_engine`]): a pre-lowered native
//!    execution tier ([`CompiledKernel`]) that folds all runtime
//!    scalars and addresses at compile time and runs the steady state
//!    as a tight dispatch loop — byte- and stat-identical to the
//!    interpreter, orders of magnitude faster — plus parallel batch
//!    sweeps ([`run_sweep`]) over many memory seeds.
//! 5. **Bounded verification** ([`simdize_verify`], re-exported here):
//!    a model-checking tier ([`prove_loop`]) that proves
//!    byte-equivalence to the scalar oracle by exhaustive enumeration
//!    over every realizable alignment, trip counts up to a bound, and
//!    all policy/reuse/unroll configurations, with counterexample
//!    shrinking and seeded fault injection ([`MutationKind`]).
//!
//! # Quick start
//!
//! ```
//! use simdize::{Simdizer, Policy, ReuseMode};
//!
//! // The paper's Figure 1: every reference misaligned differently.
//! let program = simdize::parse_program(
//!     "arrays { a: i32[1024] @ 0; b: i32[1024] @ 0; c: i32[1024] @ 0; }
//!      for i in 0..1000 { a[i+3] = b[i+1] + c[i+2]; }",
//! )?;
//!
//! let report = Simdizer::new()
//!     .policy(Policy::Lazy)
//!     .reuse(ReuseMode::SoftwarePipeline)
//!     .evaluate(&program, 42)?;
//!
//! assert!(report.verified);
//! assert!(report.speedup > 2.0); // toward the 4× peak for 4-lane i32
//! # Ok::<(), simdize::SimdizeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod profile;
mod report;
mod scheme;
mod simdizer;
pub mod trace;

pub use error::SimdizeError;
pub use profile::{profile_source, ProfileOutcome, PROFILE_SWEEP_SEEDS};
pub use report::Report;
pub use scheme::Scheme;
pub use simdizer::{Simdizer, Target};
pub use trace::{trace_source, trace_source_with, TraceOutcome};

// The full pipeline surface, re-exported for one-stop use.
pub use simdize_analysis::{
    analyze_program, AnalysisFailed, AnalysisReport, AnalyzeOptions, Finding, Level, Lint, Section,
};
pub use simdize_codegen::{
    generate, generate_strided, generate_traced, generate_unaligned, lower_altivec,
    max_live_vregs, strided_model_opd, verify_program, Addr, BoundFormula, CodegenEvent,
    CodegenOptions, CodegenTrace, GenCodeError, GenStridedError, ReuseMode, SCond, SExpr,
    SectionCounts, SimdProgram, VInst, VReg, VerifyProgramError, MACHINE_VREGS, MAX_STRIDE,
};
pub use simdize_ir::{
    parse_program, AlignKind, ArrayDecl, ArrayId, ArrayRef, BinOp, Expr, Invariant, LoopBuilder,
    LoopProgram, ParamId, ParseProgramError, ScalarType, Stmt, TripCount, UnOp, ValidateLoopError,
    Value, VectorShape,
};
pub use simdize_reorg::{
    branch_and_bound_shift_counts, distinct_alignments, optimal_shift_counts, reassociate,
    simdizable_aligned_only, simdizable_by_peeling, to_dot, BuildGraphError, Constraint,
    GraphStats, Offset, OptimalStmt, PlacementEvent, PlacementTrace, Policy, PolicyError,
    ReorgGraph, ValidateGraphError,
};
pub use simdize_engine::{
    program_fingerprint, run_sweep, run_sweep_collect, run_sweep_shared, run_sweep_with, CacheMode,
    CacheStats, CompiledKernel, FusionEvent, FusionEventKind, FusionStats, IsaLevel,
    KernelBackend, KernelCache, KernelOptions, NativeEngine, PredecodedKernel, SimdEngine,
    SimdKernel, SweepBackend, SweepJob, SweepOptions, SweepOutcome, SweepStats,
};
pub use simdize_telemetry::{RequestTrace, TelemetryReport, TraceId, TELEMETRY_SCHEMA, TRACE_SCHEMA};
pub use simdize_verify::{
    apply_mutation, prove_loop, prove_source, Counterexample, HarnessSummary, Mode as VerifyMode,
    MutationKind, Probe, ProveError, TripStyle, VerifyOptions, VerifyReport, HARNESS_NAMES,
};
pub use simdize_vm::{
    run_differential, run_scalar, run_simd, run_simd_traced, scalar_ideal_ops, DiffConfig,
    DiffOutcome, ExecError, Executor, Interpreter, MemoryImage, RunInput, RunStats, VerifyError,
    UNALIGNED_MEM_COST,
};
pub use simdize_workloads::{
    alpha_blend, dot_product, fir_filter, harmonic_mean, lower_bound_opd, lower_bound_opd_cse,
    lower_bound_opd_unaligned, lower_bound_parts, offset_saxpy, rgba_to_gray, sum_abs_diff,
    synthesize, LowerBound, Summary, TripSpec, WorkloadSpec,
};
