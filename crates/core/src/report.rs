//! Evaluation reports combining measurement and the analytic bound.

use simdize_vm::RunStats;
use std::fmt;

/// The outcome of compiling, executing and verifying one loop — one
/// data point of the paper's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Whether the simdized execution matched the scalar oracle byte
    /// for byte (always true when the report came from a successful
    /// [`crate::Simdizer::evaluate`]).
    pub verified: bool,
    /// Dynamic instruction counts of the simdized run.
    pub stats: RunStats,
    /// Data elements produced.
    pub data_produced: u64,
    /// Measured operations per datum.
    pub opd: f64,
    /// The §5.3 analytic lower bound on OPD for this loop and policy.
    pub lower_bound_opd: f64,
    /// Idealistic scalar instruction count (the `SEQ` baseline).
    pub scalar_ideal: u64,
    /// Speedup: scalar ideal over simdized dynamic count.
    pub speedup: f64,
    /// The lower bound's implied speedup ceiling.
    pub speedup_bound: f64,
}

impl Report {
    /// Measured OPD in excess of the analytic bound — the paper's
    /// "overhead" bar components combined.
    pub fn overhead_opd(&self) -> f64 {
        (self.opd - self.lower_bound_opd).max(0.0)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "opd {:.3} (bound {:.3}), speedup {:.2}× (bound {:.2}×), {}",
            self.opd, self.lower_bound_opd, self.speedup, self.speedup_bound, self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_and_display() {
        let r = Report {
            verified: true,
            stats: RunStats::default(),
            data_produced: 100,
            opd: 4.0,
            lower_bound_opd: 3.5,
            scalar_ideal: 1200,
            speedup: 3.0,
            speedup_bound: 3.43,
        };
        assert!((r.overhead_opd() - 0.5).abs() < 1e-12);
        let text = r.to_string();
        assert!(text.contains("4.000"));
        assert!(text.contains("3.00×"));
    }
}
