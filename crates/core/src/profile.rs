//! The `simdize profile` driver: one instrumented end-to-end pass over
//! a loop, producing a [`TelemetryReport`] whose span tree covers every
//! pipeline phase.
//!
//! The pass runs, in order: parse → reorg → codegen → analysis (the
//! static-analysis gate is always on here) → predecode → bake (with the
//! per-pass fusion spans beneath it) → run + scalar verification → a
//! small single-threaded seed sweep that exercises the baked-kernel
//! cache, the scratch-image reuse and the per-worker accounting. The
//! sweep is single-threaded on purpose: with one worker the cache
//! hit/miss counters and the span tree are deterministic for a fixed
//! loop, which is what lets the JSON rendering be pinned by a golden
//! test (timings normalized to zero).

use crate::error::SimdizeError;
use crate::simdizer::Simdizer;
use simdize_engine::{
    run_sweep_collect, KernelOptions, PredecodedKernel, SweepJob, SweepOptions, SweepStats,
};
use simdize_ir::{parse_program, VectorShape};
use simdize_telemetry::{self as telemetry, TelemetryReport};
use simdize_vm::{run_scalar, ExecError, MemoryImage, RunInput, VerifyError};

/// How many seeds the profiling sweep covers. Small enough to finish
/// instantly, large enough that cache hits dominate misses on a
/// known-alignment loop.
pub const PROFILE_SWEEP_SEEDS: u64 = 16;

/// Everything one profiling pass produced.
#[derive(Debug, Clone)]
pub struct ProfileOutcome {
    /// The collected telemetry: span tree plus engine metrics.
    pub report: TelemetryReport,
    /// Whether the single instrumented run matched the scalar oracle
    /// byte for byte.
    pub verified: bool,
    /// Jobs of the profiling sweep that verified.
    pub sweep_verified: usize,
    /// Total jobs in the profiling sweep.
    pub sweep_jobs: usize,
    /// What the sweep's caches did.
    pub sweep_stats: SweepStats,
    /// Speedup of the instrumented run over the idealistic scalar
    /// baseline (the paper's OPD terms).
    pub speedup: f64,
}

fn exec_err(e: ExecError) -> SimdizeError {
    SimdizeError::from(VerifyError::from(e))
}

/// Profiles one loop end to end and returns the telemetry plus a
/// verification summary.
///
/// # Errors
///
/// Any [`SimdizeError`] the instrumented pipeline raises: parse
/// failures, graph/codegen errors, analysis rejections, or engine
/// faults (wrapped as [`SimdizeError::Verify`]).
pub fn profile_source(src: &str) -> Result<ProfileOutcome, SimdizeError> {
    let mut session = telemetry::session();
    let program = {
        let _span = telemetry::span("parse");
        parse_program(src)?
    };
    let compiled = Simdizer::new().analyze(true).compile(&program)?;
    let ub = program.trip().known().unwrap_or(256);
    let input = RunInput::with_ub(ub);

    let pre = PredecodedKernel::new(&compiled).map_err(exec_err)?;
    let mut engine_img = MemoryImage::with_seed(&program, VectorShape::V16, 1);
    let mut oracle_img = engine_img.clone();
    let kernel = pre
        .bake(&engine_img, &input, &KernelOptions::default())
        .map_err(exec_err)?;
    let stats = kernel.run(&mut engine_img).map_err(exec_err)?;
    let scalar_ideal =
        run_scalar(&program, &mut oracle_img, ub, &input.params).map_err(exec_err)?;
    let verified = engine_img.first_difference(&oracle_img).is_none();
    let speedup = scalar_ideal as f64 / stats.total() as f64;

    let jobs: Vec<SweepJob> = (0..PROFILE_SWEEP_SEEDS)
        .map(|seed| SweepJob::new(compiled.clone(), seed, ub))
        .collect();
    let (outcomes, sweep_stats) = run_sweep_collect(&jobs, SweepOptions::new(1));
    let sweep_jobs = outcomes.len();
    let mut sweep_verified = 0;
    for outcome in outcomes {
        if outcome.map_err(exec_err)?.verified {
            sweep_verified += 1;
        }
    }

    Ok(ProfileOutcome {
        report: session.finish(),
        verified,
        sweep_verified,
        sweep_jobs,
        sweep_stats,
        speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
                        for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }";

    #[test]
    fn profile_covers_every_pipeline_phase() {
        let outcome = profile_source(FIG1).unwrap();
        assert!(outcome.verified);
        assert_eq!(outcome.sweep_verified, outcome.sweep_jobs);
        assert_eq!(outcome.sweep_jobs, PROFILE_SWEEP_SEEDS as usize);
        assert!(outcome.speedup > 1.0);
        let roots: Vec<&str> = outcome
            .report
            .spans
            .iter()
            .map(|n| n.name.as_str())
            .collect();
        for phase in [
            "parse",
            "reorg",
            "codegen",
            "analysis",
            "predecode",
            "bake",
            "run",
            "sweep",
            "sweep.job",
        ] {
            assert!(roots.contains(&phase), "missing phase {phase} in {roots:?}");
        }
        // Fusion passes nest under bake/fuse.
        let bake = outcome
            .report
            .spans
            .iter()
            .find(|n| n.name == "bake")
            .unwrap();
        let fuse = bake.children.iter().find(|n| n.name == "fuse").unwrap();
        let passes: Vec<&str> = fuse.children.iter().map(|n| n.name.as_str()).collect();
        assert!(passes.contains(&"rewrite"));
        assert!(passes.contains(&"dce"));
        // Known alignments + one worker: the sweep bakes once and hits
        // the cache on every remaining seed.
        let counters = &outcome.report.metrics.counters;
        assert_eq!(counters["sweep.kernel_cache.miss"], 1);
        assert_eq!(
            counters["sweep.kernel_cache.hit"],
            PROFILE_SWEEP_SEEDS - 1
        );
        assert_eq!(outcome.sweep_stats.workers, 1);
    }

    #[test]
    fn profile_propagates_parse_errors() {
        assert!(matches!(
            profile_source("garbage"),
            Err(SimdizeError::Parse(_))
        ));
    }
}
