//! The `simdize trace` driver: one request-scoped end-to-end pass over
//! a loop, producing a [`RequestTrace`] — the span timeline, the
//! pipeline attributes (policy, dispatched ISA, cache hit/miss, fusion
//! rewrites, OPD vs the §5.3 bound), and the Chrome-trace export.
//!
//! This is the request-scoped sibling of [`profile_source`]: the same
//! deterministic pipeline (parse → compile → predecode → bake → run →
//! scalar verification → a single-threaded seed sweep), but collected
//! through [`begin_request`](simdize_telemetry::begin_request) instead
//! of a process-wide session, exactly as the server's `trace` wire verb
//! collects it. With one sweep worker the span tree, attribute set and
//! cache counters are deterministic for a fixed loop, so the normalized
//! JSON rendering is pinned by a golden test.
//!
//! [`profile_source`]: crate::profile_source

use crate::error::SimdizeError;
use crate::profile::PROFILE_SWEEP_SEEDS;
use crate::simdizer::Simdizer;
use simdize_engine::{
    run_sweep_collect, IsaLevel, KernelOptions, PredecodedKernel, SweepJob, SweepOptions,
};
use simdize_ir::{parse_program, VectorShape};
use simdize_telemetry::{self as telemetry, RequestTrace, TraceId};
use simdize_vm::{run_scalar, ExecError, MemoryImage, RunInput, VerifyError};
use simdize_workloads::lower_bound_opd;

/// Everything one traced pass produced.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    /// The request-scoped collection: span timeline, attributes,
    /// renderable as `simdize-trace/v1` JSON or Chrome trace events.
    pub trace: RequestTrace,
    /// Whether the instrumented run matched the scalar oracle byte for
    /// byte.
    pub verified: bool,
    /// Jobs of the trace sweep that verified.
    pub sweep_verified: usize,
    /// Total jobs in the trace sweep.
    pub sweep_jobs: usize,
    /// Speedup of the instrumented run over the idealistic scalar
    /// baseline.
    pub speedup: f64,
    /// Achieved operations per datum of the instrumented run (§5).
    pub opd: f64,
    /// The §5.3 lower bound on operations per datum for this loop
    /// under the chosen policy.
    pub opd_bound: f64,
}

fn exec_err(e: ExecError) -> SimdizeError {
    SimdizeError::from(VerifyError::from(e))
}

/// Traces one loop end to end under a fresh CLI-local [`TraceId`].
///
/// # Errors
///
/// Any [`SimdizeError`] the instrumented pipeline raises; the partial
/// trace is discarded on error (the caller's own scope, if any, still
/// records the failure).
pub fn trace_source(src: &str) -> Result<TraceOutcome, SimdizeError> {
    trace_source_with(src, TraceId::next(0))
}

/// [`trace_source`] under a caller-supplied id — the server's `trace`
/// verb passes the wire request's id so the exported document and the
/// response envelope agree.
///
/// # Errors
///
/// See [`trace_source`].
pub fn trace_source_with(src: &str, id: TraceId) -> Result<TraceOutcome, SimdizeError> {
    let scope = telemetry::begin_request(id, "trace");
    let program = {
        let _span = telemetry::span("parse");
        parse_program(src)?
    };
    let simdizer = Simdizer::new().analyze(true);
    let policy = simdizer.policy_for(&program);
    let compiled = simdizer.compile(&program)?;
    let ub = program.trip().known().unwrap_or(256);
    let input = RunInput::with_ub(ub);

    let pre = PredecodedKernel::new(&compiled).map_err(exec_err)?;
    let mut engine_img = MemoryImage::with_seed(&program, VectorShape::V16, 1);
    let mut oracle_img = engine_img.clone();
    let kernel = pre
        .bake(&engine_img, &input, &KernelOptions::default())
        .map_err(exec_err)?;
    let stats = kernel.run(&mut engine_img).map_err(exec_err)?;
    let scalar_ideal =
        run_scalar(&program, &mut oracle_img, ub, &input.params).map_err(exec_err)?;
    let verified = engine_img.first_difference(&oracle_img).is_none();
    let speedup = scalar_ideal as f64 / stats.total() as f64;
    let data_produced = program.stmts().len() as u64 * ub;
    let opd = stats.opd(data_produced);
    let opd_bound = lower_bound_opd(&program, VectorShape::V16, policy);

    // Attribute the run's headline numbers. Policy, fusion rewrites
    // and cache hit/miss are tagged inside the pipeline; the dispatch
    // tier is tagged here too so the attribute is present even when
    // the run never lowers through the native backend.
    telemetry::tag("isa", IsaLevel::detect());
    telemetry::tag("opd", format!("{opd:.3}"));
    telemetry::tag("opd.bound", format!("{opd_bound:.3}"));
    telemetry::tag("speedup", format!("{speedup:.2}"));
    telemetry::tag("verified", verified);

    // A single-threaded seed sweep, as in the profile driver: one
    // worker keeps the cache hit/miss attribution deterministic.
    let jobs: Vec<SweepJob> = (0..PROFILE_SWEEP_SEEDS)
        .map(|seed| SweepJob::new(compiled.clone(), seed, ub))
        .collect();
    let (outcomes, _sweep_stats) = run_sweep_collect(&jobs, SweepOptions::new(1));
    let sweep_jobs = outcomes.len();
    let mut sweep_verified = 0;
    for outcome in outcomes {
        if outcome.map_err(exec_err)?.verified {
            sweep_verified += 1;
        }
    }

    Ok(TraceOutcome {
        trace: scope.finish(None),
        verified,
        sweep_verified,
        sweep_jobs,
        speedup,
        opd,
        opd_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
                        for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }";

    #[test]
    fn trace_collects_spans_and_pipeline_attrs() {
        let outcome = trace_source(FIG1).unwrap();
        assert!(outcome.verified);
        assert_eq!(outcome.sweep_verified, outcome.sweep_jobs);
        assert_eq!(outcome.trace.verb, "trace");
        assert!(outcome.trace.error.is_none());
        let roots: Vec<&str> = outcome
            .trace
            .spans
            .iter()
            .map(|n| n.name.as_str())
            .collect();
        for phase in ["parse", "reorg", "codegen", "analysis", "bake", "run", "sweep"] {
            assert!(roots.contains(&phase), "missing phase {phase} in {roots:?}");
        }
        let attrs = &outcome.trace.attrs;
        assert_eq!(attrs["policy"], "dominant");
        assert_eq!(attrs["verified"], "true");
        assert!(attrs.contains_key("isa"));
        assert!(attrs.contains_key("fusion.rewrites"));
        // Known alignments + one worker: 1 miss, 15 hits.
        assert_eq!(attrs["cache.misses"], "1");
        assert_eq!(
            attrs["cache.hits"],
            (PROFILE_SWEEP_SEEDS - 1).to_string()
        );
        // OPD is achieved, the §5.3 bound is a bound.
        assert!(outcome.opd >= outcome.opd_bound);
        assert_eq!(attrs["opd"], format!("{:.3}", outcome.opd));
        assert_eq!(attrs["opd.bound"], format!("{:.3}", outcome.opd_bound));
        // The timeline carries every span completion.
        assert!(!outcome.trace.events.is_empty());
    }

    #[test]
    fn trace_sums_consistently_with_its_own_tree() {
        // The Chrome export's per-event durations must sum to the span
        // tree's totals — both views come from the same records.
        let outcome = trace_source(FIG1).unwrap();
        let tree_total: u64 = outcome.trace.spans.iter().map(|n| n.total_ns).sum();
        let events_total: u64 = outcome
            .trace
            .events
            .iter()
            .filter(|e| !e.path.contains('/'))
            .map(|e| e.ns)
            .sum();
        assert_eq!(tree_total, events_total);
    }

    #[test]
    fn trace_propagates_parse_errors_and_discards_scope() {
        assert!(matches!(
            trace_source("garbage"),
            Err(SimdizeError::Parse(_))
        ));
        // The dropped scope restored this thread cleanly. (The global
        // enabled flag is not asserted here — sibling tests may hold
        // their own scopes concurrently.)
        assert!(telemetry::current_context().is_none());
    }

    #[test]
    fn trace_uses_the_supplied_id() {
        let id = TraceId::next(42);
        let outcome = trace_source_with(FIG1, id).unwrap();
        assert_eq!(outcome.trace.trace_id, id.to_string());
    }
}
