//! The high-level pipeline driver.

use crate::error::SimdizeError;
use crate::report::Report;
use crate::scheme::Scheme;
use simdize_analysis::{analyze_program, AnalysisFailed, AnalyzeOptions};
use simdize_codegen::{
    generate, generate_strided, generate_unaligned, strided_model_opd, CodegenOptions, ReuseMode,
    SimdProgram,
};
use simdize_ir::{LoopProgram, VectorShape};
use simdize_reorg::{reassociate, Policy, ReorgGraph};
use simdize_telemetry as telemetry;
use simdize_vm::UNALIGNED_MEM_COST;
use simdize_vm::{run_differential, DiffConfig};
use simdize_workloads::{lower_bound_opd, lower_bound_opd_unaligned};

/// The machine model code is generated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Target {
    /// AltiVec/VMX-style: aligned-only, truncating vector memory — the
    /// paper's machine, requiring the full alignment-handling pipeline.
    #[default]
    Aligned,
    /// SSE2-style hardware misaligned memory (`movdqu`): no
    /// reorganization needed, but every access costs
    /// [`UNALIGNED_MEM_COST`]. Used by the E9 ablation to quantify when
    /// software alignment handling beats hardware support.
    Unaligned,
}

/// One-stop driver for the complete simdization pipeline:
/// reassociation → reorganization graph → shift placement → code
/// generation → (optionally) differential execution and measurement.
///
/// # Example
///
/// ```
/// use simdize::{Simdizer, Policy};
/// let p = simdize::parse_program(
///     "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
///      for i in 0..100 { a[i+1] = b[i+2] * 3; }",
/// )?;
/// let program = Simdizer::new().policy(Policy::Eager).compile(&p)?;
/// assert_eq!(program.block(), 4);
/// # Ok::<(), simdize::SimdizeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Simdizer {
    shape: VectorShape,
    policy: Option<Policy>,
    options: CodegenOptions,
    reassoc: bool,
    target: Target,
}

impl Default for Simdizer {
    fn default() -> Self {
        Simdizer {
            shape: VectorShape::V16,
            policy: None,
            options: CodegenOptions::default().reuse(ReuseMode::SoftwarePipeline),
            reassoc: false,
            target: Target::Aligned,
        }
    }
}

impl Simdizer {
    /// A driver with the paper's best defaults: 16-byte vectors,
    /// automatic policy choice (dominant-shift when alignments are
    /// known at compile time, zero-shift otherwise), software
    /// pipelining, memory normalization, unroll-by-2.
    pub fn new() -> Simdizer {
        Simdizer::default()
    }

    /// Sets the vector register shape.
    pub fn shape(mut self, shape: VectorShape) -> Simdizer {
        self.shape = shape;
        self
    }

    /// Forces a specific shift-placement policy. Without this call the
    /// driver picks automatically.
    pub fn policy(mut self, policy: Policy) -> Simdizer {
        self.policy = Some(policy);
        self
    }

    /// Sets the reuse mode (software pipelining by default).
    pub fn reuse(mut self, reuse: ReuseMode) -> Simdizer {
        self.options = self.options.reuse(reuse);
        self
    }

    /// Enables or disables memory normalization + CSE.
    pub fn memnorm(mut self, on: bool) -> Simdizer {
        self.options = self.options.memnorm(on);
        self
    }

    /// Enables or disables the copy-removing unroll-by-2.
    pub fn unroll(mut self, on: bool) -> Simdizer {
        self.options = self.options.unroll(on);
        self
    }

    /// Enables or disables common-offset reassociation.
    pub fn reassociate(mut self, on: bool) -> Simdizer {
        self.reassoc = on;
        self
    }

    /// Enables or disables the post-codegen static analysis gate: when
    /// on, [`Simdizer::compile`] runs the `simdize-analysis` abstract
    /// interpreter over the generated program and rejects it with
    /// [`SimdizeError::Analysis`] on any deny-level finding.
    pub fn analyze(mut self, on: bool) -> Simdizer {
        self.options = self.options.analyze(on);
        self
    }

    /// Selects the machine model (aligned-only, the default, or
    /// hardware-misaligned).
    pub fn target(mut self, target: Target) -> Simdizer {
        self.target = target;
        self
    }

    /// Configures policy, reuse and reassociation from a named
    /// [`Scheme`].
    pub fn scheme(self, scheme: Scheme) -> Simdizer {
        self.policy(scheme.policy)
            .reuse(scheme.reuse)
            .reassociate(scheme.reassoc)
    }

    /// The policy that will be used for `program` — the forced one, or
    /// the automatic choice (dominant-shift when every alignment is
    /// known at compile time, zero-shift otherwise, per §4.4).
    pub fn policy_for(&self, program: &LoopProgram) -> Policy {
        self.policy.unwrap_or(if program.all_alignments_known() {
            Policy::Dominant
        } else {
            Policy::Zero
        })
    }

    /// Compiles `program` to a simdized VIR program.
    ///
    /// # Errors
    ///
    /// Any [`SimdizeError`] from graph construction, shift placement or
    /// code generation — e.g. forcing a non-zero policy on a loop with
    /// runtime alignments.
    pub fn compile(&self, program: &LoopProgram) -> Result<SimdProgram, SimdizeError> {
        let strided = program.all_refs().iter().any(|r| !r.is_unit_stride());
        let compiled = if strided {
            // §7 extension: loops with non-unit-stride references go
            // through the gather/scatter permute generator.
            let _span = telemetry::span("codegen");
            generate_strided(program, self.shape)?
        } else if self.target == Target::Unaligned {
            let graph = {
                let _span = telemetry::span("reorg");
                ReorgGraph::build(program, self.shape)?
            };
            let _span = telemetry::span("codegen");
            generate_unaligned(&graph)?
        } else {
            let policy = self.policy_for(program);
            telemetry::tag("policy", policy);
            let graph = {
                let _span = telemetry::span("reorg");
                let program = if self.reassoc {
                    reassociate(program, self.shape)
                } else {
                    program.clone()
                };
                ReorgGraph::build(&program, self.shape)?.with_policy(policy)?
            };
            let _span = telemetry::span("codegen");
            generate(&graph, &self.options)?
        };
        if self.options.analyze_enabled() {
            let _span = telemetry::span("analysis");
            // The exactly-once reuse lint only applies to the standard
            // stream generator — the strided and hardware-misaligned
            // generators don't pipeline chunks.
            let mut opts = AnalyzeOptions::new().memnorm(self.options.memnorm_enabled());
            if !strided && self.target == Target::Aligned {
                opts = opts.reuse(self.options.reuse_mode());
            }
            let report = analyze_program(&compiled, &opts);
            if report.deny_count() > 0 {
                return Err(AnalysisFailed::new(report).into());
            }
        }
        Ok(compiled)
    }

    /// Compiles, runs differentially against the scalar oracle with the
    /// given `seed`, and reports the paper's metrics.
    ///
    /// # Errors
    ///
    /// Compilation errors, execution faults, or
    /// [`simdize_vm::VerifyError::MemoryMismatch`] if the simdized code
    /// computed wrong results.
    pub fn evaluate(&self, program: &LoopProgram, seed: u64) -> Result<Report, SimdizeError> {
        self.evaluate_with(program, &DiffConfig::with_seed(seed))
    }

    /// [`Simdizer::evaluate`] with full control over the differential
    /// configuration (runtime trip count, parameters).
    ///
    /// # Errors
    ///
    /// Same as [`Simdizer::evaluate`].
    pub fn evaluate_with(
        &self,
        program: &LoopProgram,
        config: &DiffConfig,
    ) -> Result<Report, SimdizeError> {
        let compiled = self.compile(program)?;
        let outcome = run_differential(&compiled, config)?;
        let strided = program.all_refs().iter().any(|r| !r.is_unit_stride());
        let bound = if strided {
            // The §5.3 analytic bound only covers the stream framework;
            // for strided loops report the strided generator's static
            // cost model instead.
            strided_model_opd(program, self.shape).unwrap_or(f64::NAN)
        } else {
            match self.target {
                Target::Aligned => lower_bound_opd(program, self.shape, self.policy_for(program)),
                Target::Unaligned => {
                    lower_bound_opd_unaligned(program, self.shape, UNALIGNED_MEM_COST)
                }
            }
        };
        let scalar_opd = outcome.scalar_ideal as f64 / outcome.data_produced as f64;
        Ok(Report {
            verified: outcome.verified,
            stats: outcome.stats,
            data_produced: outcome.data_produced,
            opd: outcome.opd(),
            lower_bound_opd: bound,
            scalar_ideal: outcome.scalar_ideal,
            speedup: outcome.speedup(),
            speedup_bound: scalar_opd / bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::parse_program;

    const FIG1: &str = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
                        for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }";

    #[test]
    fn auto_policy_selection() {
        let known = parse_program(FIG1).unwrap();
        assert_eq!(Simdizer::new().policy_for(&known), Policy::Dominant);
        let runtime = parse_program(
            "arrays { a: i32[64] @ ?; b: i32[64] @ 0; }
             for i in 0..32 { a[i] = b[i]; }",
        )
        .unwrap();
        assert_eq!(Simdizer::new().policy_for(&runtime), Policy::Zero);
        assert_eq!(
            Simdizer::new().policy(Policy::Lazy).policy_for(&runtime),
            Policy::Lazy
        );
    }

    #[test]
    fn evaluate_all_schemes_on_fig1() {
        let p = parse_program(FIG1).unwrap();
        for scheme in Scheme::all() {
            let report = Simdizer::new().scheme(scheme).evaluate(&p, 7).unwrap();
            assert!(report.verified, "{scheme}");
            assert!(
                report.opd + 1e-9 >= report.lower_bound_opd,
                "{scheme}: measured {} below bound {}",
                report.opd,
                report.lower_bound_opd
            );
        }
    }

    #[test]
    fn reassociation_helps_lazy() {
        let src = "arrays { a: i32[2048] @ 0; b: i32[2048] @ 0; c: i32[2048] @ 0;
                            d: i32[2048] @ 0; e: i32[2048] @ 0; }
                   for i in 0..2000 { a[i] = b[i+1] + c[i+2] + d[i+1] + e[i+2]; }";
        let p = parse_program(src).unwrap();
        let base = Simdizer::new()
            .policy(Policy::Lazy)
            .reuse(ReuseMode::SoftwarePipeline)
            .evaluate(&p, 3)
            .unwrap();
        let re = Simdizer::new()
            .policy(Policy::Lazy)
            .reuse(ReuseMode::SoftwarePipeline)
            .reassociate(true)
            .evaluate(&p, 3)
            .unwrap();
        assert!(re.stats.shifts < base.stats.shifts);
        assert!(re.opd < base.opd);
    }

    #[test]
    fn analysis_gate_accepts_generated_programs() {
        let p = parse_program(FIG1).unwrap();
        for scheme in Scheme::all() {
            Simdizer::new()
                .scheme(scheme)
                .analyze(true)
                .compile(&p)
                .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        }
        let runtime = parse_program(
            "arrays { a: i32[256] @ ?; b: i32[256] @ ?; }
             for i in 0..ub { a[i] = b[i+1]; }",
        )
        .unwrap();
        Simdizer::new().analyze(true).compile(&runtime).unwrap();
        let strided = parse_program(
            "arrays { out: i32[128] @ 0; inter: i32[300] @ 4; }
             for i in 0..100 { out[i] = inter[2*i] + inter[2*i+1]; }",
        )
        .unwrap();
        Simdizer::new().analyze(true).compile(&strided).unwrap();
    }

    #[test]
    fn forced_policy_on_runtime_alignment_errors() {
        let p = parse_program(
            "arrays { a: i32[64] @ ?; b: i32[64] @ 0; }
             for i in 0..32 { a[i] = b[i]; }",
        )
        .unwrap();
        assert!(matches!(
            Simdizer::new().policy(Policy::Eager).compile(&p),
            Err(SimdizeError::Policy(_))
        ));
    }

    #[test]
    fn speedup_approaches_peak_on_friendly_loops() {
        // Large loop, shorts (8 lanes): speedup should clear 4× even
        // with misalignment.
        let src = "arrays { a: i16[4096] @ 0; b: i16[4096] @ 2; c: i16[4096] @ 6; }
                   for i in 0..4000 { a[i+1] = b[i] + c[i]; }";
        let p = parse_program(src).unwrap();
        let report = Simdizer::new().evaluate(&p, 1).unwrap();
        assert!(report.speedup > 4.0, "speedup {}", report.speedup);
        assert!(report.speedup <= 8.0);
    }
}
