//! Graph statistics used by the evaluation harness and the lower-bound
//! model of paper §5.3.

use crate::graph::{NodeId, RNode, ReorgGraph};
use crate::offset::Offset;
use std::collections::HashSet;
use std::fmt;

/// Node-kind counts for a [`ReorgGraph`].
///
/// The `shifts` field is the data reorganization overhead a placement
/// policy introduced; `per_stmt_shifts` breaks it down by statement, the
/// granularity at which the paper's lower bound reasons ("for a statement
/// with accesses of n distinct alignments, a minimum of n − 1 vshiftpair
/// operations are required").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GraphStats {
    /// Number of `vload` nodes.
    pub loads: usize,
    /// Number of `vstore` nodes (equals the statement count).
    pub stores: usize,
    /// Number of `vop` nodes.
    pub ops: usize,
    /// Number of `vsplat` nodes.
    pub splats: usize,
    /// Number of `vshiftstream` nodes.
    pub shifts: usize,
    /// Shift count per statement, in statement order.
    pub per_stmt_shifts: Vec<usize>,
}

impl GraphStats {
    /// Computes the statistics of `graph`.
    pub fn of(graph: &ReorgGraph) -> GraphStats {
        let mut stats = GraphStats::default();
        for node in graph.nodes() {
            match node {
                RNode::Load { .. } => stats.loads += 1,
                RNode::Store { .. } => stats.stores += 1,
                RNode::Op { .. } => stats.ops += 1,
                RNode::Splat { .. } => stats.splats += 1,
                RNode::ShiftStream { .. } => stats.shifts += 1,
            }
        }
        stats.per_stmt_shifts = graph
            .roots()
            .iter()
            .map(|&root| count_shifts(graph, root))
            .collect();
        stats
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} loads, {} stores, {} ops, {} splats, {} shifts",
            self.loads, self.stores, self.ops, self.splats, self.shifts
        )
    }
}

fn count_shifts(graph: &ReorgGraph, node: NodeId) -> usize {
    match graph.node(node) {
        RNode::Load { .. } | RNode::Splat { .. } => 0,
        RNode::Op { srcs, .. } => srcs.iter().map(|&s| count_shifts(graph, s)).sum(),
        RNode::ShiftStream { src, .. } => 1 + count_shifts(graph, *src),
        RNode::Store { src, .. } => count_shifts(graph, *src),
    }
}

/// The number of distinct stream offsets among statement `stmt`'s load
/// streams and its store stream — the `n` of the paper's per-statement
/// shift lower bound `n − 1` (§5.3).
///
/// Runtime offsets count by structural identity; splats (offset ⊥) do
/// not count.
///
/// # Panics
///
/// Panics if `stmt` is out of range.
pub fn distinct_alignments(graph: &ReorgGraph, stmt: usize) -> usize {
    let root = graph.roots()[stmt];
    let mut seen: HashSet<Offset> = HashSet::new();
    collect(graph, root, &mut seen);
    seen.len()
}

fn collect(graph: &ReorgGraph, node: NodeId, seen: &mut HashSet<Offset>) {
    match graph.node(node) {
        RNode::Load { .. } => {
            seen.insert(graph.offset_of(node));
        }
        RNode::Splat { .. } => {}
        RNode::Op { srcs, .. } => {
            for &s in srcs {
                collect(graph, s, seen);
            }
        }
        RNode::ShiftStream { src, .. } => collect(graph, *src, seen),
        RNode::Store { src, .. } => {
            seen.insert(graph.offset_of(node));
            collect(graph, *src, seen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use simdize_ir::{parse_program, VectorShape};

    fn graph(src: &str) -> ReorgGraph {
        let p = parse_program(src).unwrap();
        ReorgGraph::build(&p, VectorShape::V16).unwrap()
    }

    #[test]
    fn stats_count_kinds() {
        let g = graph(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
             for i in 0..100 { a[i+3] = b[i+1] + c[i+2] * 2; }",
        );
        let s = g.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.ops, 2);
        assert_eq!(s.splats, 1);
        assert_eq!(s.shifts, 0);
        let z = g.with_policy(Policy::Zero).unwrap();
        assert_eq!(z.stats().shifts, 3);
        assert_eq!(z.stats().per_stmt_shifts, vec![3]);
        assert!(z.stats().to_string().contains("3 shifts"));
    }

    #[test]
    fn distinct_alignment_counts() {
        // offsets: loads 4, 8; store 12 → 3 distinct.
        let g = graph(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
             for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
        );
        assert_eq!(distinct_alignments(&g, 0), 3);
        // all at 4 → 1 distinct.
        let g = graph(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
             for i in 0..100 { a[i+1] = b[i+1] + c[i+1]; }",
        );
        assert_eq!(distinct_alignments(&g, 0), 1);
    }

    #[test]
    fn per_stmt_breakdown_multi() {
        let g = graph(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; x: i32[128] @ 0; y: i32[128] @ 0; }
             for i in 0..100 { a[i+3] = b[i+1] + b[i+1]; x[i] = y[i]; }",
        );
        let l = g.with_policy(Policy::Lazy).unwrap();
        assert_eq!(l.stats().per_stmt_shifts, vec![1, 0]);
    }
}
