//! Common offset reassociation (paper §5.5, "OffsetReassoc").
//!
//! Uses the associativity and commutativity of lane-wise operations to
//! regroup operand chains so that operands with identical stream offsets
//! are combined first. After this transformation the lazy and dominant
//! policies place, per statement, exactly the analytic minimum of
//! `n − 1` shifts for `n` distinct alignments.

use crate::offset::Offset;
use simdize_ir::{BinOp, Expr, LoopProgram, Stmt, VectorShape};

/// Rewrites every statement of `program` so that maximal chains of one
/// associative-commutative operation are regrouped by stream offset.
///
/// The returned program is semantically equivalent: only the evaluation
/// *shape* of reassociable chains changes (all lane operations here are
/// exact integer operations, so regrouping is value-preserving). Operand
/// order *within* a group and group order are deterministic, keyed by
/// offset.
///
/// # Example
///
/// ```
/// use simdize_ir::{parse_program, VectorShape};
/// use simdize_reorg::{reassociate, Policy, ReorgGraph};
///
/// // b and d share offset 4; naive association combines b with c first.
/// let p = parse_program(
///     "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; d: i32[128] @ 0; }
///      for i in 0..100 { a[i+3] = b[i+1] + c[i+2] + d[i+1]; }",
/// )?;
/// let shifts = |p: &simdize_ir::LoopProgram| -> usize {
///     ReorgGraph::build(p, VectorShape::V16)
///         .unwrap()
///         .with_policy(Policy::Lazy)
///         .unwrap()
///         .shift_count()
/// };
/// let q = reassociate(&p, VectorShape::V16);
/// assert!(shifts(&q) < shifts(&p));
/// assert_eq!(shifts(&q), 2); // n-1: offsets {4, 8, 12} → 2 shifts
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn reassociate(program: &LoopProgram, shape: VectorShape) -> LoopProgram {
    let stmts: Vec<Stmt> = program
        .stmts()
        .iter()
        .map(|s| {
            let rhs = rewrite(&s.rhs, program, shape);
            match s.reduction {
                Some(op) => Stmt::reduce(s.target, op, rhs),
                None => Stmt::new(s.target, rhs),
            }
        })
        .collect();
    LoopProgram::new(
        program.elem(),
        program.arrays().to_vec(),
        program.params().to_vec(),
        program.trip(),
        stmts,
    )
    .expect("reassociation preserves validity")
}

/// The grouping key of an operand: its uniform stream offset if it has
/// one, otherwise a unique bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Key {
    /// Operand contains no loads (splat-only): combines with anything.
    Any,
    /// All loads in the operand share this compile-time offset.
    Byte(u32),
    /// Runtime offset, identified structurally.
    Runtime(u32, u32),
    /// Mixed offsets inside the operand; treated as its own bucket.
    Mixed(u32),
}

fn rewrite(e: &Expr, program: &LoopProgram, shape: VectorShape) -> Expr {
    match e {
        Expr::Load(_) | Expr::Splat(_) => e.clone(),
        Expr::Unary(op, a) => Expr::unary(*op, rewrite(a, program, shape)),
        Expr::Binary(op, _, _) if !op.is_reassociable() => {
            if let Expr::Binary(op, a, b) = e {
                Expr::binary(*op, rewrite(a, program, shape), rewrite(b, program, shape))
            } else {
                unreachable!()
            }
        }
        Expr::Binary(op, _, _) => {
            let mut operands = Vec::new();
            flatten(e, *op, &mut operands);
            let mut rewritten: Vec<Expr> = operands
                .into_iter()
                .map(|o| rewrite(&o, program, shape))
                .collect();

            // Stable sort by grouping key: Any first (free to merge),
            // then known offsets ascending, runtime, then mixed buckets.
            let mut mixed_counter = 0u32;
            let mut keyed: Vec<(Key, Expr)> = rewritten
                .drain(..)
                .map(|o| {
                    let k = key_of(&o, program, shape, &mut mixed_counter);
                    (k, o)
                })
                .collect();
            keyed.sort_by_key(|a| a.0);

            // Left-assoc reduce within groups, then across groups.
            let mut group_results: Vec<Expr> = Vec::new();
            let mut current: Option<(Key, Expr)> = None;
            for (k, o) in keyed {
                current = Some(match current {
                    Some((ck, acc)) if ck == k => (ck, Expr::binary(*op, acc, o)),
                    Some((_, acc)) => {
                        group_results.push(acc);
                        (k, o)
                    }
                    None => (k, o),
                });
            }
            if let Some((_, acc)) = current {
                group_results.push(acc);
            }
            group_results
                .into_iter()
                .reduce(|acc, o| Expr::binary(*op, acc, o))
                .expect("chain has at least two operands")
        }
    }
}

/// Collects the maximal same-operator chain rooted at `e`.
fn flatten(e: &Expr, op: BinOp, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary(o, a, b) if *o == op => {
            flatten(a, op, out);
            flatten(b, op, out);
        }
        other => out.push(other.clone()),
    }
}

fn key_of(e: &Expr, program: &LoopProgram, shape: VectorShape, mixed: &mut u32) -> Key {
    let mut offsets: Vec<Offset> = Vec::new();
    e.visit_loads(&mut |r| offsets.push(Offset::of_ref(r, program, shape)));
    let Some(&first) = offsets.first() else {
        return Key::Any;
    };
    if offsets.iter().all(|&o| o == first) {
        match first {
            Offset::Byte(b) => Key::Byte(b),
            Offset::Runtime { array, disp } => Key::Runtime(array.index() as u32, disp),
            Offset::Any => Key::Any,
        }
    } else {
        *mixed += 1;
        Key::Mixed(*mixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ReorgGraph;
    use crate::policy::Policy;
    use simdize_ir::parse_program;

    fn lazy_shifts(p: &LoopProgram) -> usize {
        ReorgGraph::build(p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Lazy)
            .unwrap()
            .shift_count()
    }

    #[test]
    fn groups_common_offsets() {
        // offsets: b@4, c@8, d@4, e@8, store@0 → n = 3 → minimum 2 shifts.
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0;
                      d: i32[128] @ 0; e: i32[128] @ 0; }
             for i in 0..100 { a[i] = b[i+1] + c[i+2] + d[i+1] + e[i+2]; }",
        )
        .unwrap();
        assert_eq!(lazy_shifts(&p), 4); // naive association: every add conflicts
        let q = reassociate(&p, VectorShape::V16);
        assert_eq!(lazy_shifts(&q), 2);
    }

    #[test]
    fn preserves_semantics_shape() {
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; d: i32[128] @ 0; }
             for i in 0..100 { a[i+3] = b[i+1] + c[i+2] + d[i+1]; }",
        )
        .unwrap();
        let q = reassociate(&p, VectorShape::V16);
        // Same multiset of loads and op count.
        let mut l1 = p.stmts()[0].rhs.loads();
        let mut l2 = q.stmts()[0].rhs.loads();
        l1.sort_by_key(|r| (r.array.index(), r.offset));
        l2.sort_by_key(|r| (r.array.index(), r.offset));
        assert_eq!(l1, l2);
        assert_eq!(p.stmts()[0].rhs.op_count(), q.stmts()[0].rhs.op_count());
    }

    #[test]
    fn does_not_cross_non_reassociable_ops() {
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; d: i32[128] @ 0; }
             for i in 0..100 { a[i] = b[i+1] - (c[i+2] + d[i+1]); }",
        )
        .unwrap();
        let q = reassociate(&p, VectorShape::V16);
        // The subtraction stays a subtraction of the same operands.
        match &q.stmts()[0].rhs {
            Expr::Binary(BinOp::Sub, lhs, _) => {
                assert_eq!(lhs.loads().len(), 1);
            }
            other => panic!("expected Sub at root, got {other:?}"),
        }
    }

    #[test]
    fn splats_merge_freely() {
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
             for i in 0..100 { a[i+1] = b[i+1] + 5 + c[i+1] + 9; }",
        )
        .unwrap();
        let q = reassociate(&p, VectorShape::V16);
        // Everything at offset 4 (splats free): zero shifts under lazy.
        assert_eq!(lazy_shifts(&q), 0);
    }

    #[test]
    fn preserves_reduction_statements() {
        use simdize_ir::{BinOp, LoopBuilder, ScalarType};
        let mut b = LoopBuilder::new(ScalarType::I32);
        let acc = b.array("acc", 4, 0);
        let x = b.array("x", 128, 4);
        let y = b.array("y", 128, 4);
        let z = b.array("z", 128, 8);
        b.reduce(acc.at(0), BinOp::Add, x.load(0) + z.load(0) + y.load(0));
        let p = b.finish(100).unwrap();
        let q = reassociate(&p, VectorShape::V16);
        assert!(q.stmts()[0].is_reduction());
        assert_eq!(q.stmts()[0].reduction, p.stmts()[0].reduction);
    }

    #[test]
    fn idempotent_on_single_loads() {
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
             for i in 0..100 { a[i] = b[i+1]; }",
        )
        .unwrap();
        let q = reassociate(&p, VectorShape::V16);
        assert_eq!(p, q);
    }

    #[test]
    fn mul_chains_group_too() {
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; d: i32[128] @ 0; }
             for i in 0..100 { a[i+1] = b[i+1] * c[i+2] * d[i+1]; }",
        )
        .unwrap();
        let q = reassociate(&p, VectorShape::V16);
        // groups {4: b,d} {8: c}; store@4 → reconcile once at the final mul.
        assert_eq!(lazy_shifts(&q), 1);
    }
}
