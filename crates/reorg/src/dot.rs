//! Graphviz (DOT) export of data reorganization graphs.

use crate::graph::{NodeId, RNode, ReorgGraph};

/// Renders `graph` in Graphviz DOT syntax.
///
/// Load/store nodes are boxes labelled with their reference and stream
/// offset, shifts are double octagons, and edges point from producers to
/// consumers (data-flow direction). Paste the output into `dot -Tsvg`
/// to visualize a placement policy's work.
///
/// # Example
///
/// ```
/// # use simdize_ir::{parse_program, VectorShape};
/// # use simdize_reorg::{ReorgGraph, Policy, to_dot};
/// # let p = parse_program(
/// #     "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
/// #      for i in 0..16 { a[i+1] = b[i+2]; }").unwrap();
/// let g = ReorgGraph::build(&p, VectorShape::V16)?.with_policy(Policy::Zero)?;
/// let dot = to_dot(&g);
/// assert!(dot.starts_with("digraph reorg"));
/// assert!(dot.contains("vshiftstream"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_dot(graph: &ReorgGraph) -> String {
    let mut out =
        String::from("digraph reorg {\n  rankdir=BT;\n  node [fontname=\"monospace\"];\n");
    for (idx, node) in graph.nodes().iter().enumerate() {
        let id = NodeId(idx as u32);
        let (label, shape) = match node {
            RNode::Load { r } => (
                format!(
                    "vload {}[i{:+}]\\n@{}",
                    graph.program().array(r.array).name(),
                    r.offset,
                    graph.offset_of(id)
                ),
                "box",
            ),
            RNode::Splat { inv } => (format!("vsplat {inv}\\n@⊥"), "ellipse"),
            RNode::Op { kind, .. } => (format!("{kind}\\n@{}", graph.offset_of(id)), "oval"),
            RNode::ShiftStream { src, to } => (
                format!("vshiftstream\\n{} → {to}", graph.offset_of(*src)),
                "doubleoctagon",
            ),
            RNode::Store { r, .. } => (
                format!(
                    "vstore {}[i{:+}]\\n@{}",
                    graph.program().array(r.array).name(),
                    r.offset,
                    graph.offset_of(id)
                ),
                "box",
            ),
        };
        out.push_str(&format!("  {id} [label=\"{label}\", shape={shape}];\n"));
        match node {
            RNode::Op { srcs, .. } => {
                for &s in srcs {
                    out.push_str(&format!("  {s} -> {id};\n"));
                }
            }
            RNode::ShiftStream { src, .. } => out.push_str(&format!("  {src} -> {id};\n")),
            RNode::Store { src, .. } => out.push_str(&format!("  {src} -> {id};\n")),
            _ => {}
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use simdize_ir::{parse_program, VectorShape};

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
             for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16)
            .unwrap()
            .with_policy(Policy::Eager)
            .unwrap();
        let dot = to_dot(&g);
        assert_eq!(dot.matches("vload").count(), 2);
        assert_eq!(dot.matches("vstore").count(), 1);
        assert_eq!(dot.matches("vshiftstream").count(), 2);
        // A forest has (nodes − roots) edges.
        assert_eq!(
            dot.matches(" -> ").count(),
            g.nodes().len() - g.roots().len()
        );
        assert!(dot.ends_with("}\n"));
    }
}
