//! Stream-shift placement policies (paper §3.4).

use crate::error::PolicyError;
use crate::graph::{NodeId, RNode, ReorgGraph};
use crate::offset::Offset;
use crate::trace::{Constraint, PlacementEvent, PlacementTrace};
use std::collections::HashMap;
use std::fmt;

/// Where `vshiftstream` nodes are placed to make a graph valid.
///
/// The policies trade generality for shift count exactly as in §3.4:
///
/// | policy | shifts for `a[i+3]=b[i+1]+c[i+2]` | runtime alignments? |
/// |---|---|---|
/// | [`Policy::Zero`] | 3 | yes (the only one) |
/// | [`Policy::Eager`] | 2 | no |
/// | [`Policy::Lazy`] | 2 | no |
/// | [`Policy::Dominant`] | 2 | no |
/// | [`Policy::Optimal`] | 2 | no |
///
/// Lazy and dominant pay off on larger statements: lazy keeps relatively
/// aligned subexpressions unshifted (Figure 6a needs 1 shift instead of
/// 3), and dominant shifts minority streams toward the statement's most
/// common offset (Figure 6b needs 2 instead of 4). Optimal is not a
/// greedy rule at all: it proves the minimum per statement by exact
/// search (see the `optimal` module) and can beat every greedy policy
/// on deep expressions where the best reconciliation target differs
/// per subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Shift every misaligned load stream to offset 0 right after the
    /// load, and shift the computed stream from 0 to the store alignment
    /// just before the store. Works with runtime alignments because every
    /// load shift is a left shift and every store shift a right shift
    /// (§4.4).
    Zero,
    /// Shift each misaligned load stream directly to the alignment of
    /// the store. Requires compile-time alignments.
    Eager,
    /// Like eager, but delay shifts as long as constraints (C.2)/(C.3)
    /// hold: relatively aligned operands are combined unshifted, and a
    /// conflict is reconciled directly to the store alignment.
    Lazy,
    /// Like lazy, but reconcile conflicts to the statement's *dominant*
    /// (most frequent) stream offset, further reducing shifts when the
    /// store alignment is in the minority.
    Dominant,
    /// The provably minimum-shift placement, found per statement by
    /// exact search: tree dynamic programming over candidate natural
    /// offsets, cross-checkable by branch-and-bound seeded with the
    /// lazy incumbent and pruned by the §5.3 analytic bound. Requires
    /// compile-time alignments.
    Optimal,
}

impl Policy {
    /// All policies: the paper's four greedy rules in presentation
    /// order, then the exact-search extension.
    pub const ALL: [Policy; 5] = [
        Policy::Zero,
        Policy::Eager,
        Policy::Lazy,
        Policy::Dominant,
        Policy::Optimal,
    ];

    /// Short lowercase name used in reports (`"zero"`, `"eager"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Policy::Zero => "zero",
            Policy::Eager => "eager",
            Policy::Lazy => "lazy",
            Policy::Dominant => "dominant",
            Policy::Optimal => "optimal",
        }
    }

    /// Whether the policy supports runtime alignments (only zero-shift
    /// does, §4.4).
    pub fn supports_runtime_alignment(self) -> bool {
        self == Policy::Zero
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ReorgGraph {
    /// Produces a new graph with `vshiftstream` nodes placed by `policy`
    /// so that the result satisfies constraints (C.2)/(C.3).
    ///
    /// # Errors
    ///
    /// * [`PolicyError::AlreadyPlaced`] if this graph already carries a
    ///   policy's shifts — apply policies to the graph returned by
    ///   [`ReorgGraph::build`];
    /// * [`PolicyError::NeedsCompileTimeAlignment`] if a policy other
    ///   than zero-shift is requested and some alignment is unknown at
    ///   compile time.
    pub fn with_policy(&self, policy: Policy) -> Result<ReorgGraph, PolicyError> {
        let mut trace = PlacementTrace::new();
        self.with_policy_traced(policy, &mut trace)
    }

    /// Like [`ReorgGraph::with_policy`], but records every placement
    /// decision — offsets computed, (C.2)/(C.3) instantiations, shifts
    /// inserted or elided with the rule that fired — into `trace`.
    ///
    /// Node ids in the recorded events refer to the *returned* graph.
    ///
    /// # Errors
    ///
    /// Same as [`ReorgGraph::with_policy`]; on error the trace is left
    /// unchanged.
    pub fn with_policy_traced(
        &self,
        policy: Policy,
        trace: &mut PlacementTrace,
    ) -> Result<ReorgGraph, PolicyError> {
        if let Some(existing) = self.policy {
            return Err(PolicyError::AlreadyPlaced { existing });
        }
        if !policy.supports_runtime_alignment() && !self.program.all_alignments_known() {
            return Err(PolicyError::NeedsCompileTimeAlignment { policy });
        }

        let mut out = ReorgGraph {
            program: self.program.clone(),
            shape: self.shape,
            nodes: Vec::new(),
            roots: Vec::new(),
            policy: Some(policy),
        };

        let elem_size = self.program.elem().size() as u32;
        for (idx, &root) in self.roots.clone().iter().enumerate() {
            let (r, src_old) = match self.node(root) {
                RNode::Store { r, src } => (*r, *src),
                other => unreachable!("root is not a store: {other:?}"),
            };
            let reduction = self.program.stmts()[idx].is_reduction();
            let store_off = if reduction {
                Offset::Byte(0)
            } else {
                Offset::of_ref(r, &self.program, self.shape)
            };
            // Lane arithmetic requires element-aligned (natural) stream
            // offsets, so reconciliation targets are the store offset
            // rounded down to the element grid (§7 extension: stores to
            // non-naturally aligned addresses get one final byte-level
            // shift; see `natural_target`).
            let natural_store = natural_target(store_off, elem_size);

            let placer = Placer {
                old: self,
                stmt: idx,
                policy,
                elem_size,
            };
            let (new_src, src_off) = match policy {
                Policy::Zero => {
                    placer.rebuild(&mut out, src_old, ShiftLeavesTo(Offset::Byte(0)), trace)
                }
                Policy::Eager => {
                    placer.rebuild(&mut out, src_old, ShiftLeavesTo(natural_store), trace)
                }
                Policy::Lazy => {
                    placer.rebuild(&mut out, src_old, ReconcileTo(natural_store), trace)
                }
                Policy::Dominant => {
                    let (d, histogram) =
                        dominant_offset(self, src_old, natural_store, elem_size);
                    trace.events.push(PlacementEvent::DominantChosen {
                        stmt: idx,
                        target: d,
                        histogram,
                        store: store_off,
                    });
                    placer.rebuild(&mut out, src_old, ReconcileTo(d), trace)
                }
                Policy::Optimal => {
                    let search = crate::optimal::Search::for_stmt(self, idx);
                    search.rebuild(&mut out, trace)
                }
            };

            let satisfied = src_off.matches(store_off);
            let final_src = if satisfied {
                new_src
            } else {
                out.add(RNode::ShiftStream {
                    src: new_src,
                    to: store_off,
                })
            };
            let new_root = out.add(RNode::Store { r, src: final_src });
            let desc = if reduction {
                format!(
                    "vstore({}) [reduction: accumulator kept at offset 0]",
                    self.ref_str(r)
                )
            } else {
                format!("vstore({})", self.ref_str(r))
            };
            trace.events.push(PlacementEvent::OffsetComputed {
                stmt: idx,
                node: new_root,
                desc,
                offset: store_off,
            });
            trace.events.push(PlacementEvent::ConstraintChecked {
                stmt: idx,
                constraint: Constraint::C2,
                node: new_root,
                required: store_off,
                found: src_off,
                satisfied,
            });
            if satisfied {
                trace.events.push(PlacementEvent::ShiftElided {
                    stmt: idx,
                    node: new_src,
                    offset: src_off,
                    rule: "source stream already at the store offset; (C.2) holds without a \
                           shift"
                        .to_string(),
                });
            } else {
                let rule = if policy == Policy::Zero {
                    "zero-shift: one right shift from offset 0 to the store offset just \
                     before the store (§4.4, works for runtime alignments)"
                        .to_string()
                } else {
                    format!(
                        "final shift to satisfy (C.2): the {policy}-placed stream offset \
                         differs from the store offset"
                    )
                };
                trace.events.push(PlacementEvent::ShiftInserted {
                    stmt: idx,
                    node: final_src,
                    src: new_src,
                    from: src_off,
                    to: store_off,
                    rule,
                });
            }
            out.roots.push(new_root);
        }
        Ok(out)
    }
}

use Strategy::{ReconcileTo, ShiftLeavesTo};

/// How `rebuild` places shifts below the store.
#[derive(Clone, Copy)]
enum Strategy {
    /// Shift every load not already at the target offset (zero/eager).
    ShiftLeavesTo(Offset),
    /// Keep natural offsets; reconcile `vop` conflicts to the target
    /// offset (lazy/dominant).
    ReconcileTo(Offset),
}

/// The nearest natural (element-aligned) reconciliation target at or
/// below `offset`. Runtime offsets are natural by construction.
pub(crate) fn natural_target(offset: Offset, elem_size: u32) -> Offset {
    match offset {
        Offset::Byte(b) => Offset::Byte(b - b % elem_size),
        other => other,
    }
}

/// Per-statement context for the recursive traced rebuild.
struct Placer<'a> {
    old: &'a ReorgGraph,
    stmt: usize,
    policy: Policy,
    elem_size: u32,
}

impl Placer<'_> {
    /// Recursively copies the subtree at `node` from `self.old` into
    /// `out`, inserting shifts per `strategy` and recording each
    /// decision in `trace`; returns the new node and its stream offset.
    /// All `vop` results end up at natural offsets.
    fn rebuild(
        &self,
        out: &mut ReorgGraph,
        node: NodeId,
        strategy: Strategy,
        trace: &mut PlacementTrace,
    ) -> (NodeId, Offset) {
        let stmt = self.stmt;
        match self.old.node(node).clone() {
            RNode::Load { r } => {
                let off = self.old.offset_of(node);
                let loaded = out.add(RNode::Load { r });
                trace.events.push(PlacementEvent::OffsetComputed {
                    stmt,
                    node: loaded,
                    desc: format!("vload({})", self.old.ref_str(r)),
                    offset: off,
                });
                match strategy {
                    ShiftLeavesTo(target) if !off.matches(target) => {
                        let s = out.add(RNode::ShiftStream {
                            src: loaded,
                            to: target,
                        });
                        let rule = match self.policy {
                            Policy::Zero => {
                                "zero-shift: every load stream is left-shifted to offset 0 \
                                 immediately after the load (§3.4; the only policy valid \
                                 for runtime alignments)"
                                    .to_string()
                            }
                            _ => "eager-shift: each load stream is shifted directly to the \
                                  store's natural offset (§3.4)"
                                .to_string(),
                        };
                        trace.events.push(PlacementEvent::ShiftInserted {
                            stmt,
                            node: s,
                            src: loaded,
                            from: off,
                            to: target,
                            rule,
                        });
                        (s, target)
                    }
                    ShiftLeavesTo(target) => {
                        trace.events.push(PlacementEvent::ShiftElided {
                            stmt,
                            node: loaded,
                            offset: off,
                            rule: format!(
                                "load stream is already at the {}-shift target offset \
                                 {target}",
                                self.policy
                            ),
                        });
                        (loaded, off)
                    }
                    ReconcileTo(_) => {
                        trace.events.push(PlacementEvent::ShiftElided {
                            stmt,
                            node: loaded,
                            offset: off,
                            rule: format!(
                                "{}-shift delays shifts: the load is kept at its natural \
                                 offset until a constraint forces movement",
                                self.policy
                            ),
                        });
                        (loaded, off)
                    }
                }
            }
            RNode::Splat { inv } => {
                let n = out.add(RNode::Splat { inv });
                trace.events.push(PlacementEvent::OffsetComputed {
                    stmt,
                    node: n,
                    desc: format!("vsplat({inv})"),
                    offset: Offset::Any,
                });
                (n, Offset::Any)
            }
            RNode::Op { kind, srcs } => {
                let rebuilt: Vec<(NodeId, Offset)> = srcs
                    .iter()
                    .map(|&s| self.rebuild(out, s, strategy, trace))
                    .collect();
                let meet = rebuilt
                    .iter()
                    .try_fold(Offset::Any, |acc, &(_, o)| acc.meet(o));
                match meet {
                    // A natural agreed offset can be computed on in place;
                    // a non-natural one (possible only with non-naturally
                    // aligned arrays) must still be reconciled.
                    Some(common) if common.is_natural(self.elem_size) => {
                        let ids = rebuilt.iter().map(|&(n, _)| n).collect();
                        let op = out.add(RNode::Op { kind, srcs: ids });
                        trace.events.push(PlacementEvent::ConstraintChecked {
                            stmt,
                            constraint: Constraint::C3,
                            node: op,
                            required: common,
                            found: common,
                            satisfied: true,
                        });
                        (op, common)
                    }
                    _ => {
                        // Conflict: reconcile every operand to the strategy's
                        // target offset. (Under ShiftLeavesTo the leaves are
                        // already uniform, so this branch is lazy/dominant.)
                        let target = match strategy {
                            ShiftLeavesTo(t) | ReconcileTo(t) => t,
                        };
                        // The check is the *reason* for the shifts below,
                        // so it reads first in the trace; remember where
                        // to insert it once the vop node id is known.
                        let mark = trace.events.len();
                        let found = rebuilt
                            .iter()
                            .map(|&(_, o)| o)
                            .find(|o| !o.matches(target))
                            .unwrap_or(target);
                        let ids = rebuilt
                            .into_iter()
                            .map(|(n, o)| {
                                if o.matches(target) {
                                    trace.events.push(PlacementEvent::ShiftElided {
                                        stmt,
                                        node: n,
                                        offset: o,
                                        rule: format!(
                                            "operand already at the reconciliation target \
                                             {target}"
                                        ),
                                    });
                                    n
                                } else {
                                    let s =
                                        out.add(RNode::ShiftStream { src: n, to: target });
                                    trace.events.push(PlacementEvent::ShiftInserted {
                                        stmt,
                                        node: s,
                                        src: n,
                                        from: o,
                                        to: target,
                                        rule: format!(
                                            "{}-shift reconciles the (C.3) conflict: \
                                             operand shifted to {}",
                                            self.policy,
                                            match self.policy {
                                                Policy::Dominant =>
                                                    "the statement's dominant offset",
                                                _ => "the store's natural offset",
                                            }
                                        ),
                                    });
                                    s
                                }
                            })
                            .collect();
                        let op = out.add(RNode::Op { kind, srcs: ids });
                        trace.events.insert(
                            mark,
                            PlacementEvent::ConstraintChecked {
                                stmt,
                                constraint: Constraint::C3,
                                node: op,
                                required: target,
                                found,
                                satisfied: false,
                            },
                        );
                        (op, target)
                    }
                }
            }
            RNode::ShiftStream { .. } | RNode::Store { .. } => {
                unreachable!("policies run on unshifted expression subtrees")
            }
        }
    }
}

/// The statement's dominant stream offset: the most frequent offset over
/// all load streams plus the store stream, preferring the store offset
/// and then the smallest byte value on ties. Also returns the offset
/// histogram (`(byte, count)` sorted by byte) for the decision trace.
fn dominant_offset(
    old: &ReorgGraph,
    src: NodeId,
    store_off: Offset,
    elem_size: u32,
) -> (Offset, Vec<(u32, usize)>) {
    let mut histogram: HashMap<u32, usize> = HashMap::new();
    collect_load_offsets(old, src, &mut histogram, elem_size);
    if let Offset::Byte(b) = store_off {
        *histogram.entry(b).or_insert(0) += 1;
    }
    let store_byte = store_off.known();
    let chosen = histogram
        .iter()
        .map(|(&byte, &count)| (byte, count))
        .max_by_key(|&(byte, count)| (count, Some(byte) == store_byte, u32::MAX - byte))
        .map(|(byte, _)| Offset::Byte(byte))
        .unwrap_or(store_off);
    let mut hist: Vec<(u32, usize)> = histogram.into_iter().collect();
    hist.sort_unstable();
    (chosen, hist)
}

fn collect_load_offsets(
    old: &ReorgGraph,
    node: NodeId,
    hist: &mut HashMap<u32, usize>,
    elem_size: u32,
) {
    match old.node(node) {
        RNode::Load { .. } => {
            // Only natural offsets are legal reconciliation targets.
            if let Offset::Byte(b) = old.offset_of(node) {
                if b % elem_size == 0 {
                    *hist.entry(b).or_insert(0) += 1;
                }
            }
        }
        RNode::Op { srcs, .. } => {
            for &s in srcs {
                collect_load_offsets(old, s, hist, elem_size);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::{parse_program, VectorShape};

    fn graph(src: &str) -> ReorgGraph {
        let p = parse_program(src).unwrap();
        ReorgGraph::build(&p, VectorShape::V16).unwrap()
    }

    const FIG1: &str = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
                        for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }";

    // Figure 6a: b and c relatively aligned, store misaligned.
    const FIG6A: &str = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
                         for i in 0..100 { a[i+3] = b[i+1] + c[i+1]; }";

    // Figure 6b: dominant offset 4 (b, d), minority c@8, store @12.
    const FIG6B: &str =
        "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; d: i32[128] @ 0; }
                         for i in 0..100 { a[i+3] = b[i+1] * c[i+2] + d[i+1]; }";

    #[test]
    fn zero_shift_counts_match_paper() {
        // One shift per misaligned stream: 2 loads + 1 store for Fig 1.
        let g = graph(FIG1);
        let z = g.with_policy(Policy::Zero).unwrap();
        z.validate().unwrap();
        assert_eq!(z.shift_count(), 3);
        // Fig 6a: 3 misaligned streams → 3 shifts under zero.
        let z = graph(FIG6A).with_policy(Policy::Zero).unwrap();
        assert_eq!(z.shift_count(), 3);
        // Fig 6b: 4 misaligned streams → 4 shifts under zero.
        let z = graph(FIG6B).with_policy(Policy::Zero).unwrap();
        assert_eq!(z.shift_count(), 4);
    }

    #[test]
    fn eager_shifts_loads_to_store_alignment() {
        let e = graph(FIG1).with_policy(Policy::Eager).unwrap();
        e.validate().unwrap();
        assert_eq!(e.shift_count(), 2); // Figure 5
                                        // Fig 6a: eager still shifts both loads.
        let e = graph(FIG6A).with_policy(Policy::Eager).unwrap();
        e.validate().unwrap();
        assert_eq!(e.shift_count(), 2);
    }

    #[test]
    fn lazy_exploits_relative_alignment() {
        // Figure 6a: only the add result needs shifting.
        let l = graph(FIG6A).with_policy(Policy::Lazy).unwrap();
        l.validate().unwrap();
        assert_eq!(l.shift_count(), 1);
        // Figure 6b under lazy: mul conflict → 2 shifts to 12, then the
        // add conflict shifts d too: 3 total.
        let l = graph(FIG6B).with_policy(Policy::Lazy).unwrap();
        l.validate().unwrap();
        assert_eq!(l.shift_count(), 3);
    }

    #[test]
    fn dominant_matches_figure_6b() {
        // Dominant offset 4: shift c to 4, then the result to 12 → 2.
        let d = graph(FIG6B).with_policy(Policy::Dominant).unwrap();
        d.validate().unwrap();
        assert_eq!(d.shift_count(), 2);
        // Fig 6a: dominant offset is 4 (two loads) → add stays at 4,
        // store shift only → 1, same as lazy.
        let d = graph(FIG6A).with_policy(Policy::Dominant).unwrap();
        d.validate().unwrap();
        assert_eq!(d.shift_count(), 1);
    }

    #[test]
    fn aligned_loop_needs_no_shifts_under_any_policy() {
        let src = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
                   for i in 0..100 { a[i] = b[i] + c[i]; }";
        for policy in Policy::ALL {
            let g = graph(src).with_policy(policy).unwrap();
            g.validate().unwrap();
            assert_eq!(g.shift_count(), 0, "{policy}");
        }
    }

    #[test]
    fn runtime_alignment_restricts_to_zero_shift() {
        let src = "arrays { a: i32[128] @ ?; b: i32[128] @ 0; }
                   for i in 0..100 { a[i] = b[i+1]; }";
        let g = graph(src);
        let z = g.with_policy(Policy::Zero).unwrap();
        z.validate().unwrap();
        assert_eq!(z.shift_count(), 2); // load shift (b misaligned) + runtime store shift
        for policy in [Policy::Eager, Policy::Lazy, Policy::Dominant, Policy::Optimal] {
            assert!(matches!(
                g.with_policy(policy),
                Err(PolicyError::NeedsCompileTimeAlignment { .. })
            ));
        }
    }

    #[test]
    fn runtime_aligned_load_still_shifts_under_zero() {
        // Even a runtime stream that happens to be aligned must shift:
        // the compiler cannot know.
        let src = "arrays { a: i32[128] @ 0; b: i32[128] @ ?; }
                   for i in 0..100 { a[i] = b[i]; }";
        let z = graph(src).with_policy(Policy::Zero).unwrap();
        z.validate().unwrap();
        assert_eq!(z.shift_count(), 1);
    }

    #[test]
    fn double_application_is_rejected() {
        let g = graph(FIG1).with_policy(Policy::Zero).unwrap();
        assert!(matches!(
            g.with_policy(Policy::Lazy),
            Err(PolicyError::AlreadyPlaced {
                existing: Policy::Zero
            })
        ));
    }

    #[test]
    fn splat_only_statement() {
        let src = "arrays { a: i32[128] @ 4; b: i32[128] @ 4; }
                   for i in 0..100 { a[i] = b[i] * 0 + 7; }";
        for policy in Policy::ALL {
            let g = graph(src).with_policy(policy).unwrap();
            g.validate().unwrap();
        }
    }

    #[test]
    fn multi_statement_policies_are_per_statement() {
        let src = "arrays { a: i32[128] @ 0; b: i32[128] @ 0;
                            x: i32[128] @ 0; y: i32[128] @ 0; }
                   for i in 0..100 { a[i+3] = b[i+1] + b[i+1]; x[i+1] = y[i+1] + y[i+1]; }";
        let l = graph(src).with_policy(Policy::Lazy).unwrap();
        l.validate().unwrap();
        // stmt 0: operands agree at 4, store at 12 → 1 shift;
        // stmt 1: everything at 4 → 0 shifts.
        assert_eq!(l.shift_count(), 1);
    }

    #[test]
    fn policy_metadata() {
        assert_eq!(Policy::Zero.name(), "zero");
        assert_eq!(Policy::Optimal.name(), "optimal");
        assert!(Policy::Zero.supports_runtime_alignment());
        assert!(!Policy::Dominant.supports_runtime_alignment());
        assert!(!Policy::Optimal.supports_runtime_alignment());
        assert_eq!(Policy::ALL.len(), 5);
    }

    #[test]
    fn optimal_matches_best_greedy_on_paper_figures() {
        // Figure 1: 3 distinct alignments → the §5.3 bound of 2 is met.
        let o = graph(FIG1).with_policy(Policy::Optimal).unwrap();
        o.validate().unwrap();
        assert_eq!(o.shift_count(), 2);
        // Figure 6a: relative alignment → 1 shift, same as lazy.
        let o = graph(FIG6A).with_policy(Policy::Optimal).unwrap();
        o.validate().unwrap();
        assert_eq!(o.shift_count(), 1);
        // Figure 6b: 2 shifts, same as dominant (lazy needs 3).
        let o = graph(FIG6B).with_policy(Policy::Optimal).unwrap();
        o.validate().unwrap();
        assert_eq!(o.shift_count(), 2);
    }

    #[test]
    fn optimal_beats_every_greedy_policy_on_deep_trees() {
        // ((b@4 + c@4) * d@8) + e@8, store @12: the cheapest plan
        // computes the product at offset 8 (one shift for the add's
        // result) and pays one final store shift — 2 total. Greedy:
        // zero 5, eager 4, lazy 3, dominant 3.
        let src = "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0;
                            d: i32[128] @ 0; e: i32[128] @ 0; }
                   for i in 0..100 { a[i+3] = (b[i+1] + c[i+1]) * d[i+2] + e[i+2]; }";
        let g = graph(src);
        let o = g.with_policy(Policy::Optimal).unwrap();
        o.validate().unwrap();
        assert_eq!(o.shift_count(), 2);
        for policy in [Policy::Zero, Policy::Eager, Policy::Lazy, Policy::Dominant] {
            assert!(
                g.with_policy(policy).unwrap().shift_count() > 2,
                "{policy} unexpectedly matched the optimum"
            );
        }
    }

    #[test]
    fn optimal_never_exceeds_any_greedy_policy() {
        for src in [
            FIG1,
            FIG6A,
            FIG6B,
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 4; d: i32[128] @ 8; }
             for i in 0..100 { a[i] = b[i+1] * c[i+2] + d[i+3] * b[i]; }",
            "arrays { a: i16[128] @ 2; b: i16[128] @ 6; c: i16[128] @ 10; }
             for i in 0..100 { a[i] = b[i] + c[i] * 3; }",
        ] {
            let g = graph(src);
            let best = g.with_policy(Policy::Optimal).unwrap().shift_count();
            for policy in [Policy::Zero, Policy::Eager, Policy::Lazy, Policy::Dominant] {
                assert!(
                    best <= g.with_policy(policy).unwrap().shift_count(),
                    "{policy} beat optimal on {src}"
                );
            }
        }
    }

    #[test]
    fn optimal_handles_leaf_and_reduction_statements() {
        // Bare-load statement: offsets match → 0 shifts.
        let g = graph(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
             for i in 0..100 { a[i+1] = b[i+1]; }",
        );
        let o = g.with_policy(Policy::Optimal).unwrap();
        o.validate().unwrap();
        assert_eq!(o.shift_count(), 0);
        // Misaligned bare load: exactly the one (C.2) shift.
        let g = graph(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; }
             for i in 0..100 { a[i+1] = b[i+2]; }",
        );
        let o = g.with_policy(Policy::Optimal).unwrap();
        o.validate().unwrap();
        assert_eq!(o.shift_count(), 1);
        // Reduction: the accumulator pins the store side to offset 0.
        let g = graph(
            "arrays { s: i32[4] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
             for i in 0..100 { s[i] += b[i+1] * c[i+1]; }",
        );
        let o = g.with_policy(Policy::Optimal).unwrap();
        o.validate().unwrap();
        let l = g.with_policy(Policy::Lazy).unwrap();
        assert!(o.shift_count() <= l.shift_count());
    }

    #[test]
    fn optimal_trace_records_the_proof() {
        let mut trace = PlacementTrace::new();
        let o = graph(FIG1)
            .with_policy_traced(Policy::Optimal, &mut trace)
            .unwrap();
        assert_eq!(trace.shifts_inserted(), o.shift_count());
        let chosen: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                PlacementEvent::OptimalChosen {
                    shifts,
                    lower_bound,
                    candidates,
                    ..
                } => Some((*shifts, *lower_bound, candidates.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(chosen, vec![(2, 2, vec![4, 8, 12])]);
        assert!(trace.events.iter().any(|e| e
            .to_string()
            .contains("optimal placement proved minimal")));
    }
}

#[cfg(test)]
mod natural_tests {
    use super::*;
    use crate::error::ValidateGraphError;
    use simdize_ir::{parse_program, VectorShape};

    #[test]
    fn relatively_aligned_at_non_natural_offset_still_shifts() {
        // Both loads sit at byte offset 2 (non-natural for i32): lazy
        // must not combine them in place; it reconciles to a natural
        // target and shifts the result to the store's byte offset.
        let p = parse_program(
            "arrays { out: i32[64] @ 2; x: i32[64] @ 2; y: i32[64] @ 2; }
             for i in 0..48 { out[i] = x[i] + y[i]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        // The unshifted graph agrees at offset 2 — but that offset is
        // not natural, so validation rejects it.
        assert!(matches!(
            g.validate(),
            Err(ValidateGraphError::UnnaturalOperands { .. })
        ));
        for policy in Policy::ALL {
            let placed = g.with_policy(policy).unwrap();
            placed.validate().unwrap();
            assert!(
                placed.shift_count() >= 2,
                "{policy} produced too few shifts"
            );
        }
    }

    #[test]
    fn natural_target_rounds_down() {
        assert_eq!(natural_target(Offset::Byte(14), 4), Offset::Byte(12));
        assert_eq!(natural_target(Offset::Byte(12), 4), Offset::Byte(12));
        assert_eq!(natural_target(Offset::Byte(3), 2), Offset::Byte(2));
        assert_eq!(natural_target(Offset::Any, 4), Offset::Any);
    }

    #[test]
    fn dominant_ignores_non_natural_candidates() {
        // Loads at byte 2 (×2) and byte 4 (×1): the dominant target must
        // be 4 (byte 2 is not a legal vop offset for i32).
        let p = parse_program(
            "arrays { out: i32[64] @ 0; x: i32[64] @ 2; y: i32[64] @ 2; z: i32[64] @ 4; }
             for i in 0..48 { out[i] = x[i] + y[i] + z[i]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        let placed = g.with_policy(Policy::Dominant).unwrap();
        placed.validate().unwrap();
    }
}
