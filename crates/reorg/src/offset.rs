//! Stream offsets (paper §3.2–§3.3).

use simdize_ir::{ArrayId, ArrayRef, LoopProgram, VectorShape};
use std::fmt;

/// The stream offset of a register stream: the byte offset, within a
/// vector register, of the first *desired* value of the stream (the value
/// belonging to original iteration `i = 0`).
///
/// Offsets are always non-negative and smaller than the vector length
/// `V` (paper §3.2). Three cases are distinguished:
///
/// * [`Offset::Byte`] — known at compile time;
/// * [`Offset::Runtime`] — the alignment of `base(array) + disp` where
///   the array's base address is only known at run time; it is computed
///   at run time as `addr & (V - 1)` (paper §3.3). Two runtime offsets
///   are *provably equal* iff they name the same array with the same
///   displacement mod `V`;
/// * [`Offset::Any`] — the paper's ⊥, used for `vsplat` streams whose
///   lanes all hold the same value and therefore match any offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Offset {
    /// Compile-time byte offset in `0..V`.
    Byte(u32),
    /// Runtime offset `(base(array) + disp) mod V`, with `disp` already
    /// reduced mod `V`.
    Runtime {
        /// The array whose (runtime) base address defines the offset.
        array: ArrayId,
        /// Compile-time byte displacement from the base, reduced mod `V`.
        disp: u32,
    },
    /// The ⊥ offset of replicated (splat) streams: matches anything.
    Any,
}

impl Offset {
    /// The stream offset of the stride-one reference `r` at `i = 0`,
    /// given its array's declared alignment.
    ///
    /// For a known base alignment `base`, this is
    /// `(base + r.offset * D) mod V` (paper eq. 1); otherwise it is the
    /// symbolic runtime offset of the same address.
    pub fn of_ref(r: ArrayRef, program: &LoopProgram, shape: VectorShape) -> Offset {
        let d = program.elem().size() as i64;
        let disp = (r.offset * d).rem_euclid(shape.bytes() as i64) as u32;
        match program.array(r.array).align().known_offset(shape) {
            Some(base) => Offset::Byte((base + disp) % shape.bytes()),
            None => Offset::Runtime {
                array: r.array,
                disp,
            },
        }
    }

    /// Whether a stream at this offset has its elements aligned to
    /// lane boundaries (`offset % D == 0`), which lane-wise arithmetic
    /// requires: a `vop` over streams whose elements straddle lanes
    /// would mix element halves. Runtime offsets are natural by
    /// construction (the memory image places runtime-aligned arrays at
    /// element-aligned addresses); ⊥ matches any context.
    pub fn is_natural(self, elem_size: u32) -> bool {
        match self {
            Offset::Byte(b) => b % elem_size == 0,
            Offset::Runtime { .. } | Offset::Any => true,
        }
    }

    /// Whether the offset is known at compile time.
    pub fn is_known(self) -> bool {
        matches!(self, Offset::Byte(_))
    }

    /// The compile-time byte value, if known.
    pub fn known(self) -> Option<u32> {
        match self {
            Offset::Byte(b) => Some(b),
            _ => None,
        }
    }

    /// Whether two offsets are *provably equal* (constraint C.3 is
    /// satisfiable without a shift). `Any` matches everything; runtime
    /// offsets match only structurally.
    pub fn matches(self, other: Offset) -> bool {
        match (self, other) {
            (Offset::Any, _) | (_, Offset::Any) => true,
            (a, b) => a == b,
        }
    }

    /// The meet of two offsets under [`Offset::matches`]: the more
    /// specific of the two, or `None` when they conflict.
    pub fn meet(self, other: Offset) -> Option<Offset> {
        match (self, other) {
            (Offset::Any, o) | (o, Offset::Any) => Some(o),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }

    /// Classifies the direction of a stream shift from `self` to `to`
    /// following the rules of paper Figure 7:
    ///
    /// * shift **left** (combine current and *next* registers) when both
    ///   offsets are known and `from > to`, or when `from` is a runtime
    ///   value (the zero-shift policy only ever shifts runtime streams
    ///   down to offset 0, which is never a right shift);
    /// * shift **right** (combine *previous* and current registers) when
    ///   both are known and `from < to`, or when `to` is a runtime value
    ///   (zero-shift stores shift from offset 0 up);
    /// * [`ShiftDir::None`] when the offsets provably match.
    ///
    /// Returns `None` for undecidable combinations (both runtime with
    /// different symbols, or an `Any` endpoint) — valid graphs never
    /// contain such shifts.
    pub fn shift_dir(self, to: Offset) -> Option<ShiftDir> {
        match (self, to) {
            (from, to) if from.matches(to) => Some(ShiftDir::None),
            (Offset::Byte(f), Offset::Byte(t)) if f > t => Some(ShiftDir::Left),
            (Offset::Byte(_), Offset::Byte(_)) => Some(ShiftDir::Right),
            (Offset::Runtime { .. }, Offset::Byte(0)) => Some(ShiftDir::Left),
            (Offset::Byte(0), Offset::Runtime { .. }) => Some(ShiftDir::Right),
            _ => None,
        }
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Offset::Byte(b) => write!(f, "{b}"),
            Offset::Runtime { array, disp } => write!(f, "rt({array}+{disp})"),
            Offset::Any => f.write_str("⊥"),
        }
    }
}

/// Direction of a stream shift, which determines whether the code
/// generator combines the current register with the next (left) or the
/// previous (right) register of the stream (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftDir {
    /// No data movement needed: source and target offsets match.
    None,
    /// Shift left: data from the next register enters the current one.
    Left,
    /// Shift right: data from the previous register enters.
    Right,
}

/// The paper's `(from - to) mod V` shift amount for compile-time
/// offsets: the byte index at which [`ShiftDir`]-directed `vshiftpair`
/// selection starts (see `simdize-codegen`).
pub fn shift_amount(from: u32, to: u32, shape: VectorShape) -> u32 {
    let v = shape.bytes();
    (from + v - to) % v
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::{Expr, LoopBuilder, ScalarType};

    fn program() -> (LoopProgram, ArrayRef, ArrayRef, ArrayRef) {
        let mut b = LoopBuilder::new(ScalarType::I32);
        let a = b.array("a", 128, 12);
        let bb = b.array("b", 128, 0);
        let c = b.array_runtime_align("c", 128);
        b.stmt(a.at(0), Expr::load(bb.at(1)) + Expr::load(c.at(2)));
        let p = b.finish(64).unwrap();
        (p, a.at(0), bb.at(1), c.at(2))
    }

    #[test]
    fn of_ref_known_and_runtime() {
        let (p, a0, b1, c2) = program();
        let v = VectorShape::V16;
        assert_eq!(Offset::of_ref(a0, &p, v), Offset::Byte(12));
        assert_eq!(Offset::of_ref(b1, &p, v), Offset::Byte(4));
        assert_eq!(
            Offset::of_ref(c2, &p, v),
            Offset::Runtime {
                array: c2.array,
                disp: 8
            }
        );
    }

    #[test]
    fn runtime_offsets_wrap_mod_v() {
        let (p, _, _, c2) = program();
        // c[i+2] and c[i+6] differ by 16 bytes: provably equal offsets.
        let c6 = ArrayRef::new(c2.array, 6);
        let v = VectorShape::V16;
        assert_eq!(Offset::of_ref(c2, &p, v), Offset::of_ref(c6, &p, v));
    }

    #[test]
    fn matches_and_meet() {
        let b4 = Offset::Byte(4);
        let b8 = Offset::Byte(8);
        assert!(b4.matches(b4));
        assert!(!b4.matches(b8));
        assert!(Offset::Any.matches(b8));
        assert_eq!(b4.meet(Offset::Any), Some(b4));
        assert_eq!(b4.meet(b8), None);
        assert_eq!(Offset::Any.meet(Offset::Any), Some(Offset::Any));
    }

    #[test]
    fn shift_direction_rules() {
        let rt = Offset::Runtime {
            array: ArrayId::from_index(0),
            disp: 0,
        };
        assert_eq!(
            Offset::Byte(4).shift_dir(Offset::Byte(0)),
            Some(ShiftDir::Left)
        );
        assert_eq!(
            Offset::Byte(0).shift_dir(Offset::Byte(12)),
            Some(ShiftDir::Right)
        );
        assert_eq!(
            Offset::Byte(4).shift_dir(Offset::Byte(4)),
            Some(ShiftDir::None)
        );
        assert_eq!(rt.shift_dir(Offset::Byte(0)), Some(ShiftDir::Left));
        assert_eq!(Offset::Byte(0).shift_dir(rt), Some(ShiftDir::Right));
        assert_eq!(rt.shift_dir(rt), Some(ShiftDir::None)); // provably equal
        assert_eq!(Offset::Byte(4).shift_dir(rt), None);
    }

    #[test]
    fn shift_amount_mod_v() {
        let v = VectorShape::V16;
        assert_eq!(shift_amount(4, 0, v), 4);
        assert_eq!(shift_amount(0, 12, v), 4);
        assert_eq!(shift_amount(8, 8, v), 0);
    }
}
