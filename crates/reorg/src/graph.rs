//! The data reorganization graph (paper §3.3).

use crate::error::{BuildGraphError, ValidateGraphError};
use crate::offset::Offset;
use crate::policy::Policy;
use crate::stats::GraphStats;
use simdize_ir::{ArrayRef, BinOp, Expr, Invariant, LoopProgram, UnOp, VectorShape};
use std::fmt;

/// Identifier of a node within a [`ReorgGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The node's index in the graph's node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The element-wise operation performed by a `vop` node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VOpKind {
    /// A binary lane-wise operation.
    Bin(BinOp),
    /// A unary lane-wise operation.
    Un(UnOp),
}

impl fmt::Display for VOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VOpKind::Bin(op) => write!(f, "v{}", format!("{op:?}").to_lowercase()),
            VOpKind::Un(op) => write!(f, "v{}", format!("{op:?}").to_lowercase()),
        }
    }
}

/// One node of a data reorganization graph.
///
/// The node kinds mirror the paper's §3.3 exactly: `vload`, `vsplat`,
/// `vop`, `vshiftstream` and `vstore`. Stream offsets are not stored in
/// the nodes; they are derived by [`ReorgGraph::offset_of`], which keeps
/// the graph's single source of truth in the array declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RNode {
    /// `vload(addr(i))` for the stride-one reference `r`; produces a
    /// register stream whose offset is `addr(0) mod V` (eq. 1).
    Load {
        /// The loaded stride-one reference.
        r: ArrayRef,
    },
    /// `vsplat(x)` of a loop invariant; stream offset ⊥.
    Splat {
        /// The replicated invariant.
        inv: Invariant,
    },
    /// `vop(src1, …, srcn)`: a lane-wise computation whose inputs must
    /// satisfy constraint (C.3).
    Op {
        /// The operation.
        kind: VOpKind,
        /// Input streams, in operand order.
        srcs: Vec<NodeId>,
    },
    /// `vshiftstream(src, Osrc, to)`: re-offsets the `src` stream to
    /// stream offset `to` (eq. 5).
    ShiftStream {
        /// The stream being shifted.
        src: NodeId,
        /// The target stream offset (must be loop invariant).
        to: Offset,
    },
    /// `vstore(addr(i), src)`: consumes a stream; constraint (C.2)
    /// requires `offset_of(src) == addr(0) mod V`.
    Store {
        /// The stored stride-one reference.
        r: ArrayRef,
        /// The value stream being stored.
        src: NodeId,
    },
}

/// An expression forest augmented with data reordering operations —
/// the *data reorganization graph* of paper §3.3.
///
/// The graph owns a validated [`LoopProgram`] plus the target
/// [`VectorShape`], holds one [`RNode::Store`] root per statement, and is
/// produced in two stages:
///
/// 1. [`ReorgGraph::build`] simdizes the loop *as if the machine had no
///    alignment constraints* (no shift nodes);
/// 2. [`ReorgGraph::with_policy`] inserts `vshiftstream` nodes according
///    to a [`Policy`], yielding a graph that satisfies (C.2)/(C.3) —
///    checkable with [`ReorgGraph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorgGraph {
    pub(crate) program: LoopProgram,
    pub(crate) shape: VectorShape,
    pub(crate) nodes: Vec<RNode>,
    pub(crate) roots: Vec<NodeId>,
    pub(crate) policy: Option<Policy>,
}

impl ReorgGraph {
    /// Builds the unshifted graph for `program` on a machine with vector
    /// registers of `shape`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildGraphError::ElementTooWide`] when one element does
    /// not fit a register, or [`BuildGraphError::NoParallelism`] when the
    /// blocking factor `B = V / D` is 1 and simdization is pointless.
    pub fn build(program: &LoopProgram, shape: VectorShape) -> Result<ReorgGraph, BuildGraphError> {
        let d = program.elem().size() as u32;
        if d > shape.bytes() {
            return Err(BuildGraphError::ElementTooWide {
                elem: program.elem(),
                shape,
            });
        }
        if shape.bytes() / d < 2 {
            return Err(BuildGraphError::NoParallelism {
                elem: program.elem(),
                shape,
            });
        }
        for r in program.all_refs() {
            if !r.is_unit_stride() {
                return Err(BuildGraphError::NonUnitStride { stride: r.stride });
            }
        }
        let mut g = ReorgGraph {
            program: program.clone(),
            shape,
            nodes: Vec::new(),
            roots: Vec::new(),
            policy: None,
        };
        for stmt in program.stmts() {
            let src = g.add_expr(&stmt.rhs);
            let root = g.add(RNode::Store {
                r: stmt.target,
                src,
            });
            g.roots.push(root);
        }
        Ok(g)
    }

    fn add_expr(&mut self, e: &Expr) -> NodeId {
        match e {
            Expr::Load(r) => self.add(RNode::Load { r: *r }),
            Expr::Splat(inv) => self.add(RNode::Splat { inv: *inv }),
            Expr::Binary(op, a, b) => {
                let a = self.add_expr(a);
                let b = self.add_expr(b);
                self.add(RNode::Op {
                    kind: VOpKind::Bin(*op),
                    srcs: vec![a, b],
                })
            }
            Expr::Unary(op, a) => {
                let a = self.add_expr(a);
                self.add(RNode::Op {
                    kind: VOpKind::Un(*op),
                    srcs: vec![a],
                })
            }
        }
    }

    pub(crate) fn add(&mut self, node: RNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// The loop this graph simdizes.
    pub fn program(&self) -> &LoopProgram {
        &self.program
    }

    /// The target vector register shape.
    pub fn shape(&self) -> VectorShape {
        self.shape
    }

    /// The blocking factor `B = V / D` (paper eq. 7).
    pub fn blocking_factor(&self) -> u32 {
        self.shape.blocking_factor(self.program.elem())
    }

    /// The node arena; indexes are [`NodeId`]s.
    pub fn nodes(&self) -> &[RNode] {
        &self.nodes
    }

    /// The node with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &RNode {
        &self.nodes[id.index()]
    }

    /// The store roots, one per statement, in statement order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// The policy that produced this graph's shifts, if
    /// [`ReorgGraph::with_policy`] has run.
    pub fn policy(&self) -> Option<Policy> {
        self.policy
    }

    /// The stream offset of `id` (paper §3.3):
    ///
    /// * load → `addr(0) mod V`;
    /// * splat → ⊥;
    /// * shift → its target offset;
    /// * op → the meet of its operand offsets (first conflict-free
    ///   answer; on an *invalid* graph, the leftmost operand's offset);
    /// * store → the offset the store *requires* of its source, i.e.
    ///   `addr(0) mod V`.
    pub fn offset_of(&self, id: NodeId) -> Offset {
        match self.node(id) {
            RNode::Load { r } => Offset::of_ref(*r, &self.program, self.shape),
            RNode::Splat { .. } => Offset::Any,
            RNode::ShiftStream { to, .. } => *to,
            RNode::Op { srcs, .. } => {
                let mut acc = Offset::Any;
                for &s in srcs {
                    match acc.meet(self.offset_of(s)) {
                        Some(m) => acc = m,
                        None => return acc, // invalid graph; keep leftmost
                    }
                }
                acc
            }
            RNode::Store { r, .. } => Offset::of_ref(*r, &self.program, self.shape),
        }
    }

    /// The required store offset of statement `stmt` — the right-hand
    /// side of constraint (C.2). Reduction statements require offset 0
    /// (their registers are accumulated whole).
    pub fn store_offset(&self, stmt: usize) -> Offset {
        if self.program.stmts()[stmt].is_reduction() {
            Offset::Byte(0)
        } else {
            self.offset_of(self.roots[stmt])
        }
    }

    /// Checks the validity constraints (C.2) and (C.3) on every node.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, naming the offending node.
    pub fn validate(&self) -> Result<(), ValidateGraphError> {
        for (idx, node) in self.nodes.iter().enumerate() {
            let id = NodeId(idx as u32);
            match node {
                RNode::Op { srcs, .. } => {
                    let mut acc = Offset::Any;
                    for &s in srcs {
                        let o = self.offset_of(s);
                        match acc.meet(o) {
                            Some(m) => acc = m,
                            None => {
                                return Err(ValidateGraphError::OperandMismatch {
                                    node: id,
                                    left: acc,
                                    right: o,
                                })
                            }
                        }
                    }
                    let d = self.program.elem().size() as u32;
                    if !acc.is_natural(d) {
                        return Err(ValidateGraphError::UnnaturalOperands {
                            node: id,
                            offset: acc,
                        });
                    }
                }
                RNode::Store { r, src } => {
                    let stmt = self
                        .roots
                        .iter()
                        .position(|&root| root == id)
                        .expect("store nodes are roots");
                    let need = if self.program.stmts()[stmt].is_reduction() {
                        // Reductions accumulate whole registers; offset 0
                        // keeps steady-state registers garbage-free.
                        Offset::Byte(0)
                    } else {
                        Offset::of_ref(*r, &self.program, self.shape)
                    };
                    let have = self.offset_of(*src);
                    if !have.matches(need) {
                        return Err(ValidateGraphError::StoreMismatch {
                            node: id,
                            required: need,
                            found: have,
                        });
                    }
                }
                RNode::ShiftStream { src, to } => {
                    let from = self.offset_of(*src);
                    if from.shift_dir(*to).is_none() {
                        return Err(ValidateGraphError::UndecidableShift {
                            node: id,
                            from,
                            to: *to,
                        });
                    }
                }
                RNode::Load { .. } | RNode::Splat { .. } => {}
            }
        }
        Ok(())
    }

    /// Number of `vshiftstream` nodes in the graph — the data
    /// reorganization overhead a policy introduces.
    pub fn shift_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, RNode::ShiftStream { .. }))
            .count()
    }

    /// Per-kind node counts and shift statistics.
    pub fn stats(&self) -> GraphStats {
        GraphStats::of(self)
    }

    /// The `vshiftstream` source and `from` offset for a shift node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a shift node.
    pub fn shift_parts(&self, id: NodeId) -> (NodeId, Offset, Offset) {
        match self.node(id) {
            RNode::ShiftStream { src, to } => (*src, self.offset_of(*src), *to),
            other => panic!("shift_parts on non-shift node {other:?}"),
        }
    }
}

impl fmt::Display for ReorgGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (s, &root) in self.roots.iter().enumerate() {
            writeln!(f, "stmt {s}:")?;
            self.fmt_node(f, root, 1)?;
        }
        Ok(())
    }
}

impl ReorgGraph {
    fn fmt_node(&self, f: &mut fmt::Formatter<'_>, id: NodeId, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self.node(id) {
            RNode::Load { r } => {
                writeln!(
                    f,
                    "{pad}{id} = vload({}) @{}",
                    self.ref_str(*r),
                    self.offset_of(id)
                )
            }
            RNode::Splat { inv } => writeln!(f, "{pad}{id} = vsplat({inv}) @⊥"),
            RNode::Op { kind, srcs } => {
                let args: Vec<String> = srcs.iter().map(|s| s.to_string()).collect();
                writeln!(
                    f,
                    "{pad}{id} = {kind}({}) @{}",
                    args.join(", "),
                    self.offset_of(id)
                )?;
                for &s in srcs {
                    self.fmt_node(f, s, depth + 1)?;
                }
                Ok(())
            }
            RNode::ShiftStream { src, to } => {
                writeln!(
                    f,
                    "{pad}{id} = vshiftstream({src}, from={}, to={to})",
                    self.offset_of(*src)
                )?;
                self.fmt_node(f, *src, depth + 1)
            }
            RNode::Store { r, src } => {
                writeln!(
                    f,
                    "{pad}{id} = vstore({} @{}, {src})",
                    self.ref_str(*r),
                    self.offset_of(id)
                )?;
                self.fmt_node(f, *src, depth + 1)
            }
        }
    }

    pub(crate) fn ref_str(&self, r: ArrayRef) -> String {
        let name = self.program.array(r.array).name();
        match r.offset {
            0 => format!("{name}[i]"),
            k if k > 0 => format!("{name}[i+{k}]"),
            k => format!("{name}[i{k}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdize_ir::{parse_program, ScalarType};

    fn paper_example() -> ReorgGraph {
        // Figure 1 with 16-byte-aligned bases: offsets b[i+1] → 4,
        // c[i+2] → 8, a[i+3] → 12, exactly as in Figure 3.
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
             for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
        )
        .unwrap();
        ReorgGraph::build(&p, VectorShape::V16).unwrap()
    }

    #[test]
    fn builds_one_root_per_statement() {
        let g = paper_example();
        assert_eq!(g.roots().len(), 1);
        assert_eq!(g.nodes().len(), 4); // 2 loads + add + store
        assert_eq!(g.blocking_factor(), 4);
        assert!(g.policy().is_none());
    }

    #[test]
    fn offsets_match_figure_3() {
        // Figure 3: b[i+1] has offset 4, c[i+2] offset 8, a[i+3] offset 12.
        let g = paper_example();
        let loads: Vec<Offset> = g
            .nodes()
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n {
                RNode::Load { .. } => Some(g.offset_of(NodeId(i as u32))),
                _ => None,
            })
            .collect();
        assert_eq!(loads, vec![Offset::Byte(4), Offset::Byte(8)]);
        assert_eq!(g.store_offset(0), Offset::Byte(12));
    }

    #[test]
    fn unshifted_misaligned_graph_fails_validation() {
        let p = parse_program(
            "arrays { a: i32[128] @ 0; b: i32[128] @ 4; c: i32[128] @ 8; }
             for i in 0..100 { a[i] = b[i] + c[i]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        assert!(matches!(
            g.validate(),
            Err(ValidateGraphError::OperandMismatch { .. })
        ));
    }

    #[test]
    fn aligned_graph_validates_without_shifts() {
        let p = parse_program(
            "arrays { a: i32[128] @ 4; b: i32[128] @ 4; c: i32[128] @ 4; }
             for i in 0..100 { a[i] = b[i] + c[i]; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        g.validate().unwrap();
        assert_eq!(g.shift_count(), 0);
    }

    #[test]
    fn splat_streams_match_everything() {
        let p = parse_program(
            "arrays { a: i32[128] @ 4; b: i32[128] @ 4; }
             for i in 0..100 { a[i] = b[i] * 3; }",
        )
        .unwrap();
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn element_too_wide_and_no_parallelism() {
        let mut b = simdize_ir::LoopBuilder::new(ScalarType::I64);
        let a = b.array("a", 32, 0);
        let c = b.array("c", 32, 0);
        b.stmt(a.at(0), c.load(0));
        let p = b.finish(16).unwrap();
        assert!(matches!(
            ReorgGraph::build(&p, VectorShape::V8),
            Err(BuildGraphError::NoParallelism { .. })
        ));
        let g = ReorgGraph::build(&p, VectorShape::V16).unwrap();
        assert_eq!(g.blocking_factor(), 2);
    }

    #[test]
    fn display_includes_offsets() {
        let g = paper_example();
        let s = g.to_string();
        assert!(s.contains("vload(b[i+1]) @4"), "got:\n{s}");
        assert!(s.contains("vstore(a[i+3] @12"), "got:\n{s}");
    }
}
