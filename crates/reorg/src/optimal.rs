//! Provably minimum-shift placement ([`Policy::Optimal`]).
//!
//! The four §3.4 policies are greedy: each picks shift targets from
//! local rules (shift-to-zero, shift-to-store, delay-until-conflict,
//! shift-to-dominant). This module finds the *global* minimum instead,
//! with two independent engines:
//!
//! 1. **Tree dynamic programming** — the primary engine. Because
//!    [`crate::ReorgGraph::build`] clones every expression occurrence
//!    into a fresh node, each statement is a tree, and the minimum
//!    number of `vshiftstream` nodes decomposes exactly over subtrees:
//!    for every node and every *candidate offset* `t`, compute the
//!    cheapest way to deliver the node's result stream at `t`. A child
//!    is delivered either by computing directly at `t`, or by computing
//!    at its own best offset and paying one shift — chained shifts
//!    never beat a single direct shift, so this two-way choice is
//!    exhaustive. The candidate set is the statement's natural load
//!    offsets plus the store's natural target: a standard exchange
//!    argument shows restricting to these offsets loses nothing.
//!
//! 2. **Branch-and-bound** — an independent cross-check (and the
//!    fallback engine for graph shapes the tree argument would not
//!    cover). It enumerates explicit offset assignments for every
//!    `vop` node, seeded with a greedy incumbent (the lazy-policy
//!    count) as the upper bound and pruned by the partial cost and the
//!    §5.3 analytic per-statement bound (`n − 1` shifts for `n`
//!    distinct alignments).
//!
//! Both engines are offline and dependency-free. The test suite
//! asserts they agree on every checked-in loop, and that the optimal
//! count never exceeds any greedy policy's.

use crate::graph::{NodeId, RNode, ReorgGraph};
use crate::offset::Offset;
use crate::policy::natural_target;
use crate::stats::distinct_alignments;
use crate::trace::{Constraint, PlacementEvent, PlacementTrace};

/// The exact-search result for one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimalStmt {
    /// The proven minimum shift count (including any final store
    /// shift).
    pub shifts: usize,
    /// The §5.3 analytic per-statement lower bound (`n − 1`).
    pub lower_bound: usize,
    /// The candidate natural offsets the search ranged over, sorted.
    pub candidates: Vec<u32>,
}

/// The provably minimum shift count of every statement of the
/// *unshifted* graph, by tree dynamic programming.
///
/// The per-statement counts include the final store shift when the
/// store offset cannot be met directly; their sum equals
/// `graph.with_policy(Policy::Optimal)?.shift_count()`.
///
/// # Panics
///
/// Panics if `graph` already carries a policy's shifts or has runtime
/// alignments — callers go through [`crate::ReorgGraph::with_policy`],
/// which rejects both conditions first.
pub fn optimal_shift_counts(graph: &ReorgGraph) -> Vec<OptimalStmt> {
    assert!(
        graph.policy().is_none(),
        "optimal search runs on the unshifted graph"
    );
    assert!(
        graph.program().all_alignments_known(),
        "optimal placement requires compile-time alignments"
    );
    (0..graph.roots().len())
        .map(|stmt| {
            let search = Search::for_stmt(graph, stmt);
            OptimalStmt {
                shifts: search.minimum(),
                lower_bound: distinct_alignments(graph, stmt).saturating_sub(1),
                candidates: search.candidates,
            }
        })
        .collect()
}

/// The provably minimum shift count of every statement by
/// branch-and-bound over explicit per-`vop` offset assignments — the
/// independent cross-check of [`optimal_shift_counts`].
///
/// `incumbents` supplies one upper bound per statement (typically the
/// lazy policy's per-statement shift counts); the search never returns
/// more than the incumbent and stops early once the §5.3 analytic
/// bound is met.
///
/// # Panics
///
/// Same preconditions as [`optimal_shift_counts`], plus
/// `incumbents.len()` must equal the statement count.
pub fn branch_and_bound_shift_counts(graph: &ReorgGraph, incumbents: &[usize]) -> Vec<usize> {
    assert!(
        graph.policy().is_none(),
        "optimal search runs on the unshifted graph"
    );
    assert!(
        graph.program().all_alignments_known(),
        "optimal placement requires compile-time alignments"
    );
    assert_eq!(incumbents.len(), graph.roots().len());
    (0..graph.roots().len())
        .map(|stmt| {
            let search = Search::for_stmt(graph, stmt);
            search.branch_and_bound(incumbents[stmt], distinct_alignments(graph, stmt).saturating_sub(1))
        })
        .collect()
}

/// Per-statement exact search context over the unshifted graph.
pub(crate) struct Search<'a> {
    old: &'a ReorgGraph,
    stmt: usize,
    /// The statement's expression root (the store's source).
    expr: NodeId,
    /// The (C.2) target offset of the store.
    store_off: Offset,
    /// Sorted candidate natural offsets: every natural load offset in
    /// the statement plus the store's natural target.
    pub(crate) candidates: Vec<u32>,
}

/// Per-node DP table over the statement's candidate offsets.
struct Dp {
    /// `raw[k]`: minimum shifts in the subtree with the result
    /// *computed* at `candidates[k]` (no trailing shift on this node).
    raw: Vec<usize>,
    /// Whether the subtree's result offset is ⊥ (splats only), which
    /// matches every delivery target for free.
    any: bool,
}

impl Dp {
    fn best(&self) -> usize {
        if self.any {
            0
        } else {
            self.raw.iter().copied().min().unwrap_or(0)
        }
    }

    /// Cheapest delivery at `candidates[k]`: compute there directly, or
    /// compute at the best offset and pay one shift.
    fn delivered(&self, k: usize) -> usize {
        if self.any {
            0
        } else {
            self.raw[k].min(self.best() + 1)
        }
    }
}

impl<'a> Search<'a> {
    pub(crate) fn for_stmt(old: &'a ReorgGraph, stmt: usize) -> Search<'a> {
        let root = old.roots()[stmt];
        let expr = match old.node(root) {
            RNode::Store { src, .. } => *src,
            other => unreachable!("root is not a store: {other:?}"),
        };
        let store_off = old.store_offset(stmt);
        let elem_size = old.program().elem().size() as u32;
        let mut candidates = Vec::new();
        collect_natural_leaf_offsets(old, expr, elem_size, &mut candidates);
        if let Offset::Byte(b) = natural_target(store_off, elem_size) {
            candidates.push(b);
        }
        candidates.sort_unstable();
        candidates.dedup();
        Search {
            old,
            stmt,
            expr,
            store_off,
            candidates,
        }
    }

    /// The proven minimum shift count for the statement (DP engine).
    pub(crate) fn minimum(&self) -> usize {
        match self.old.node(self.expr) {
            // A bare leaf feeds the store directly — even at a
            // non-natural offset — so no candidate restriction applies.
            RNode::Load { .. } | RNode::Splat { .. } => {
                usize::from(!self.old.offset_of(self.expr).matches(self.store_off))
            }
            _ => {
                let dp = self.dp(self.expr);
                (0..self.candidates.len())
                    .map(|k| dp.raw[k] + self.store_penalty(k))
                    .min()
                    .expect("candidate set is never empty for op-rooted statements")
            }
        }
    }

    /// One extra shift if computing at `candidates[k]` still misses the
    /// store offset.
    fn store_penalty(&self, k: usize) -> usize {
        usize::from(!Offset::Byte(self.candidates[k]).matches(self.store_off))
    }

    fn dp(&self, node: NodeId) -> Dp {
        let n = self.candidates.len();
        match self.old.node(node) {
            RNode::Load { .. } => {
                let off = self.old.offset_of(node);
                Dp {
                    raw: self
                        .candidates
                        .iter()
                        .map(|&t| usize::from(!off.matches(Offset::Byte(t))))
                        .collect(),
                    any: false,
                }
            }
            RNode::Splat { .. } => Dp {
                raw: vec![0; n],
                any: true,
            },
            RNode::Op { srcs, .. } => {
                let kids: Vec<Dp> = srcs.iter().map(|&s| self.dp(s)).collect();
                let raw = (0..n)
                    .map(|k| kids.iter().map(|d| d.delivered(k)).sum())
                    .collect();
                Dp {
                    raw,
                    any: kids.iter().all(|d| d.any),
                }
            }
            RNode::ShiftStream { .. } | RNode::Store { .. } => {
                unreachable!("optimal search runs on unshifted expression subtrees")
            }
        }
    }

    /// The branch-and-bound engine: depth-first over explicit offset
    /// assignments for every `vop`, parents before children, pruning on
    /// `partial ≥ best` and stopping as soon as the proven count
    /// reaches `analytic_lb`.
    pub(crate) fn branch_and_bound(&self, incumbent: usize, analytic_lb: usize) -> usize {
        match self.old.node(self.expr) {
            RNode::Load { .. } | RNode::Splat { .. } => self.minimum(),
            _ => {
                let mut best = incumbent;
                if best > analytic_lb {
                    self.bb_queue(&[(self.expr, None)], 0, &mut best, analytic_lb);
                }
                best
            }
        }
    }

    /// Processes a work queue of `(vop node, consumer offset)` pairs —
    /// `None` for the statement root, whose consumer is the store. An
    /// empty queue means every `vop` is assigned, so `partial` is a
    /// complete (and, past the pruning, improving) shift count.
    fn bb_queue(
        &self,
        queue: &[(NodeId, Option<u32>)],
        partial: usize,
        best: &mut usize,
        analytic_lb: usize,
    ) {
        if *best <= analytic_lb || partial >= *best {
            return;
        }
        let Some((&(node, parent), rest)) = queue.split_first() else {
            *best = partial;
            return;
        };
        let RNode::Op { srcs, .. } = self.old.node(node) else {
            unreachable!("queue holds only vop nodes");
        };
        for (k, &t) in self.candidates.iter().enumerate() {
            // Edge cost toward the consumer: one shift unless the
            // offsets agree (for the root, the final (C.2) shift).
            let edge = match parent {
                Some(p) => usize::from(p != t),
                None => self.store_penalty(k),
            };
            // Leaf children settle immediately once the op's offset is
            // fixed; splats match anything for free.
            let leaves: usize = srcs
                .iter()
                .map(|&s| match self.old.node(s) {
                    RNode::Load { .. } => {
                        usize::from(!self.old.offset_of(s).matches(Offset::Byte(t)))
                    }
                    _ => 0,
                })
                .sum();
            let cost = partial + edge + leaves;
            if cost >= *best {
                continue;
            }
            let mut next: Vec<(NodeId, Option<u32>)> = srcs
                .iter()
                .copied()
                .filter(|&s| matches!(self.old.node(s), RNode::Op { .. }))
                .map(|s| (s, Some(t)))
                .collect();
            next.extend_from_slice(rest);
            self.bb_queue(&next, cost, best, analytic_lb);
        }
    }

    /// Rebuilds the statement's expression into `out` along the DP's
    /// argmin placement, emitting the same trace-event shapes as the
    /// greedy policies; returns the new source node and its offset (the
    /// caller adds the final (C.2) store shift if needed).
    pub(crate) fn rebuild(
        &self,
        out: &mut ReorgGraph,
        trace: &mut PlacementTrace,
    ) -> (NodeId, Offset) {
        trace.events.push(PlacementEvent::OptimalChosen {
            stmt: self.stmt,
            shifts: self.minimum(),
            lower_bound: distinct_alignments(self.old, self.stmt).saturating_sub(1),
            candidates: self.candidates.clone(),
            store: self.store_off,
        });
        match self.old.node(self.expr).clone() {
            RNode::Load { r } => {
                let off = self.old.offset_of(self.expr);
                let loaded = out.add(RNode::Load { r });
                trace.events.push(PlacementEvent::OffsetComputed {
                    stmt: self.stmt,
                    node: loaded,
                    desc: format!("vload({})", self.old.ref_str(r)),
                    offset: off,
                });
                trace.events.push(PlacementEvent::ShiftElided {
                    stmt: self.stmt,
                    node: loaded,
                    offset: off,
                    rule: "optimal placement keeps the bare load at its natural offset; \
                           any required movement is the single (C.2) store shift"
                        .to_string(),
                });
                (loaded, off)
            }
            RNode::Splat { inv } => {
                let n = out.add(RNode::Splat { inv });
                trace.events.push(PlacementEvent::OffsetComputed {
                    stmt: self.stmt,
                    node: n,
                    desc: format!("vsplat({inv})"),
                    offset: Offset::Any,
                });
                (n, Offset::Any)
            }
            RNode::Op { .. } => {
                let dp = self.dp(self.expr);
                // Argmin with ties broken toward meeting the store
                // without a final shift, then the smallest offset —
                // deterministic output for the docs generator.
                let k = (0..self.candidates.len())
                    .min_by_key(|&k| (dp.raw[k] + self.store_penalty(k), self.store_penalty(k), self.candidates[k]))
                    .expect("op-rooted statement has candidates");
                let node = self.rebuild_op_at(out, self.expr, k, trace);
                (node, Offset::Byte(self.candidates[k]))
            }
            RNode::ShiftStream { .. } | RNode::Store { .. } => {
                unreachable!("optimal search runs on unshifted expression subtrees")
            }
        }
    }

    /// Rebuilds the op at `node` computing at `candidates[k]`: each
    /// child is delivered at that offset, by direct computation when
    /// the DP says it is no worse, otherwise via its own best offset
    /// plus one reconciling shift.
    fn rebuild_op_at(
        &self,
        out: &mut ReorgGraph,
        node: NodeId,
        k: usize,
        trace: &mut PlacementTrace,
    ) -> NodeId {
        let target = Offset::Byte(self.candidates[k]);
        let RNode::Op { kind, srcs } = self.old.node(node).clone() else {
            unreachable!("rebuild_op_at visits only vop nodes");
        };
        // Build children at their chosen computing offsets first.
        let rebuilt: Vec<(NodeId, Offset)> = srcs
            .iter()
            .map(|&s| match self.old.node(s).clone() {
                RNode::Load { r } => {
                    let off = self.old.offset_of(s);
                    let loaded = out.add(RNode::Load { r });
                    trace.events.push(PlacementEvent::OffsetComputed {
                        stmt: self.stmt,
                        node: loaded,
                        desc: format!("vload({})", self.old.ref_str(r)),
                        offset: off,
                    });
                    (loaded, off)
                }
                RNode::Splat { inv } => {
                    let n = out.add(RNode::Splat { inv });
                    trace.events.push(PlacementEvent::OffsetComputed {
                        stmt: self.stmt,
                        node: n,
                        desc: format!("vsplat({inv})"),
                        offset: Offset::Any,
                    });
                    (n, Offset::Any)
                }
                RNode::Op { .. } => {
                    let dp = self.dp(s);
                    // Deliver at `k` directly unless computing at the
                    // child's own best offset plus one shift is
                    // strictly cheaper.
                    let kc = if dp.any || dp.raw[k] <= dp.best() + 1 {
                        k
                    } else {
                        (0..self.candidates.len())
                            .min_by_key(|&j| (dp.raw[j], self.candidates[j]))
                            .expect("op node has candidates")
                    };
                    let built = self.rebuild_op_at(out, s, kc, trace);
                    let off = if dp.any {
                        Offset::Any
                    } else {
                        Offset::Byte(self.candidates[kc])
                    };
                    (built, off)
                }
                RNode::ShiftStream { .. } | RNode::Store { .. } => {
                    unreachable!("optimal search runs on unshifted expression subtrees")
                }
            })
            .collect();

        let all_match = rebuilt.iter().all(|&(_, o)| o.matches(target));
        if all_match {
            let ids = rebuilt.iter().map(|&(n, _)| n).collect();
            let op = out.add(RNode::Op { kind, srcs: ids });
            trace.events.push(PlacementEvent::ConstraintChecked {
                stmt: self.stmt,
                constraint: Constraint::C3,
                node: op,
                required: target,
                found: target,
                satisfied: true,
            });
            return op;
        }
        // Reconcile: the (C.3) check reads first (it is the reason for
        // the shifts), so remember where to insert it.
        let mark = trace.events.len();
        let found = rebuilt
            .iter()
            .map(|&(_, o)| o)
            .find(|o| !o.matches(target))
            .unwrap_or(target);
        let ids = rebuilt
            .into_iter()
            .map(|(n, o)| {
                if o.matches(target) {
                    trace.events.push(PlacementEvent::ShiftElided {
                        stmt: self.stmt,
                        node: n,
                        offset: o,
                        rule: format!(
                            "operand already at the optimal computing offset {target}"
                        ),
                    });
                    n
                } else {
                    let s = out.add(RNode::ShiftStream { src: n, to: target });
                    trace.events.push(PlacementEvent::ShiftInserted {
                        stmt: self.stmt,
                        node: s,
                        src: n,
                        from: o,
                        to: target,
                        rule: "optimal placement reconciles the (C.3) conflict: the exact \
                               search chose this offset as the statement's cheapest \
                               computing point"
                            .to_string(),
                    });
                    s
                }
            })
            .collect();
        let op = out.add(RNode::Op { kind, srcs: ids });
        trace.events.insert(
            mark,
            PlacementEvent::ConstraintChecked {
                stmt: self.stmt,
                constraint: Constraint::C3,
                node: op,
                required: target,
                found,
                satisfied: false,
            },
        );
        op
    }
}

fn collect_natural_leaf_offsets(
    graph: &ReorgGraph,
    node: NodeId,
    elem_size: u32,
    out: &mut Vec<u32>,
) {
    match graph.node(node) {
        RNode::Load { .. } => {
            if let Offset::Byte(b) = graph.offset_of(node) {
                if b % elem_size == 0 {
                    out.push(b);
                }
            }
        }
        RNode::Op { srcs, .. } => {
            for &s in srcs {
                collect_natural_leaf_offsets(graph, s, elem_size, out);
            }
        }
        RNode::Splat { .. } | RNode::ShiftStream { .. } | RNode::Store { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use simdize_ir::{parse_program, VectorShape};

    fn graph(src: &str) -> ReorgGraph {
        let p = parse_program(src).unwrap();
        ReorgGraph::build(&p, VectorShape::V16).unwrap()
    }

    const CASES: [&str; 6] = [
        "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
         for i in 0..100 { a[i+3] = b[i+1] + c[i+2]; }",
        "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; }
         for i in 0..100 { a[i+3] = b[i+1] + c[i+1]; }",
        "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0; d: i32[128] @ 0; }
         for i in 0..100 { a[i+3] = b[i+1] * c[i+2] + d[i+1]; }",
        "arrays { a: i32[128] @ 0; b: i32[128] @ 0; c: i32[128] @ 0;
                  d: i32[128] @ 0; e: i32[128] @ 0; }
         for i in 0..100 { a[i+3] = (b[i+1] + c[i+1]) * d[i+2] + e[i+2]; }",
        "arrays { out: i16[256] @ 2; u: i16[256] @ 6; v: i16[256] @ 10; }
         for i in 0..100 { out[i+2] = u[i+1] * v[i+3]; }",
        "arrays { a: i32[128] @ 0; b: i32[128] @ 0; x: i32[128] @ 0; y: i32[128] @ 0; }
         for i in 0..100 { a[i+3] = b[i+1] + b[i+1]; x[i] = y[i]; }",
    ];

    #[test]
    fn dp_and_branch_and_bound_agree() {
        for src in CASES {
            let g = graph(src);
            let dp: Vec<usize> = optimal_shift_counts(&g).iter().map(|s| s.shifts).collect();
            let lazy = g.with_policy(Policy::Lazy).unwrap();
            let incumbents = lazy.stats().per_stmt_shifts;
            let bb = branch_and_bound_shift_counts(&g, &incumbents);
            assert_eq!(dp, bb, "DP vs B&B disagree on {src}");
        }
    }

    #[test]
    fn per_stmt_counts_sum_to_the_placed_graph() {
        for src in CASES {
            let g = graph(src);
            let total: usize = optimal_shift_counts(&g).iter().map(|s| s.shifts).sum();
            let placed = g.with_policy(Policy::Optimal).unwrap();
            placed.validate().unwrap();
            assert_eq!(total, placed.shift_count(), "on {src}");
        }
    }

    #[test]
    fn minimum_respects_the_analytic_bound() {
        for src in CASES {
            for s in optimal_shift_counts(&graph(src)) {
                assert!(s.shifts >= s.lower_bound, "below §5.3 bound on {src}");
                assert!(s.candidates.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn branch_and_bound_keeps_a_tight_incumbent() {
        // An incumbent already at the analytic bound is returned as-is
        // (the search proves it cannot be beaten and stops).
        let g = graph(CASES[0]);
        let stmts = optimal_shift_counts(&g);
        let bb = branch_and_bound_shift_counts(&g, &[stmts[0].shifts]);
        assert_eq!(bb, vec![stmts[0].shifts]);
    }

    #[test]
    fn non_natural_offsets_fall_back_to_the_store_target() {
        // All leaves non-natural: the candidate set is just the store's
        // natural target, and every load pays its own shift.
        let g = graph(
            "arrays { out: i32[64] @ 2; x: i32[64] @ 2; y: i32[64] @ 2; }
             for i in 0..48 { out[i] = x[i] + y[i]; }",
        );
        let s = optimal_shift_counts(&g);
        assert_eq!(s[0].candidates, vec![0]);
        assert_eq!(s[0].shifts, 3); // two load shifts + the (C.2) store shift
    }
}
